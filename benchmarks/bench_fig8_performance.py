"""Figure 8: performance of DynaSpAM vs the host OOO pipeline.

Regenerates the paper's three bar series — mapping only, acceleration
without memory speculation, acceleration with speculation — and checks the
shape claims: small mapping overhead, a w/o-speculation geomean near the
paper's 1.23x with NW regressing, and a w/-speculation geomean in the
paper's 1.42x band with no benchmark slowing down materially.
"""

from benchmarks.conftest import run_once
from repro.harness import figure8_performance


def test_fig8_performance(benchmark, scale, jobs):
    result = run_once(benchmark, lambda: figure8_performance(scale, jobs=jobs))
    print()
    print(result.render())

    spec = result.series_geomean("spec")
    no_spec = result.series_geomean("no_spec")
    mapping = result.series_geomean("mapping")

    # Paper: geomean 1.42x with speculation, 1.23x without, <3% mapping
    # overhead.  Shape bands, not exact numbers:
    assert 1.25 <= spec <= 1.70, f"w/ speculation geomean {spec:.2f}"
    assert 1.05 <= no_spec <= 1.45, f"w/o speculation geomean {no_spec:.2f}"
    assert mapping >= 0.90, f"mapping-only geomean {mapping:.2f}"
    # Speculation must matter, and must matter most for the memory-heavy
    # kernels (paper: NW and SRAD regress without speculation).
    assert spec > no_spec
    nw = result.speedups["NW"]
    srad = result.speedups["SRAD"]
    assert nw["no_spec"] < 1.05, "NW should (nearly) regress w/o speculation"
    assert nw["spec"] > nw["no_spec"] + 0.2
    assert srad["spec"] > srad["no_spec"] + 0.2
