"""Table 6: area comparison.

Regenerates the module-area table, the composed fabric area (paper:
2.9 mm^2 at 8 stripes), and the configuration-cache area (paper:
0.003 mm^2).
"""

from benchmarks.conftest import run_once
from repro.harness import table6_area


def test_table6_area(benchmark):
    result = run_once(benchmark, table6_area)
    print()
    print(result.render())

    assert abs(result.fabric_8_stripes_mm2 - 2.9) < 0.15
    assert 0.001 < result.config_cache_mm2 < 0.01
    assert result.fabric_16_stripes_mm2 > result.fabric_8_stripes_mm2
    # The datapath block is almost as large as an integer ALU (paper text).
    assert 0.8 < result.modules["data_path"] / result.modules["sparc_exu_alu"] < 1.2
