"""Ablation: Table 2 priority scores vs feasibility-only selection.

Section 4.2's priority scores prefer placements that reuse already-routed
values.  This bench maps hot windows with the full Table 2 scoring and
with a feasibility-only policy (host oldest-first among feasible pairs)
and compares routing-resource consumption — the quantity OverallUsage
exists to conserve.
"""

from benchmarks.conftest import run_once
from repro.core.mapper import ResourceAwareMapper
from repro.harness.reporting import format_table
from benchmarks.bench_ablation_naive import windows_of
from repro.workloads import ALL_ABBREVS


def map_both(scale):
    rows = []
    total_scored = total_plain = 0
    for abbrev in sorted(ALL_ABBREVS):
        scored_mapper = ResourceAwareMapper()
        plain_mapper = ResourceAwareMapper(use_priority_scores=False)
        scored_channels = plain_channels = both = 0
        scored_fail = plain_fail = 0
        for window in windows_of(abbrev, scale):
            scored = scored_mapper.map_trace(window.instructions, window.key)
            plain = plain_mapper.map_trace(window.instructions, window.key)
            scored_fail += scored is None
            plain_fail += plain is None
            if scored is not None and plain is not None:
                both += 1
                scored_channels += scored.datapath_channels_used
                plain_channels += plain.datapath_channels_used
        rows.append([abbrev, both, scored_channels, plain_channels,
                     scored_fail, plain_fail])
        total_scored += scored_channels
        total_plain += plain_channels
    return rows, total_scored, total_plain


def test_ablation_priority_scores(benchmark, scale):
    rows, total_scored, total_plain = run_once(
        benchmark, lambda: map_both(scale)
    )
    print()
    print(format_table(
        ["Benchmark", "both mapped", "channels (Table 2)",
         "channels (feasibility only)", "fail (T2)", "fail (plain)"],
        rows,
        title="Ablation: Table 2 priority scoring vs feasibility-only",
    ))
    print(f"total channels: Table 2 = {total_scored}, "
          f"feasibility-only = {total_plain}")

    # Table 2 scoring never fails more often than feasibility-only
    # selection, and routing consumption stays in the same band (the
    # reuse preference trades early selection of reuse-ready ops against
    # deferring route-needing ones; in the stripe-uniform interconnect
    # the two nearly cancel).
    scored_fails = sum(row[4] for row in rows)
    plain_fails = sum(row[5] for row in rows)
    assert scored_fails <= plain_fails
    assert total_scored <= total_plain * 1.15


def test_priority3_rescues_two_livein_traces(benchmark):
    """The feasibility win of Table 2: priority 3 places two-live-in ops
    before older single-live-in ops exhaust the two-port stripe-0 PEs.
    Under feasibility-only (oldest-first) selection the same trace fails —
    the dynamic analog of Figure 2(b)."""
    from repro.isa.builder import ProgramBuilder
    from repro.isa.executor import FunctionalExecutor

    b = ProgramBuilder("fig2b")
    b.addi("r11", "r1", 1)
    b.addi("r12", "r2", 1)
    b.addi("r13", "r3", 1)
    b.addi("r14", "r4", 1)
    b.add("r15", "r5", "r6")    # two live-ins, youngest
    b.halt()
    trace = FunctionalExecutor().run(b.build()).trace[:-1]
    key = (0, (), len(trace))

    def run():
        return (
            ResourceAwareMapper(use_priority_scores=False).map_trace(trace, key),
            ResourceAwareMapper(use_priority_scores=True).map_trace(trace, key),
        )

    plain, scored = run_once(benchmark, run)
    assert plain is None, "feasibility-only selection should strand the op"
    assert scored is not None, "Table 2 scoring should map the trace"
    print("\npriority 3 places the two-live-in op on stripe "
          f"{scored.op_at(4).stripe}; feasibility-only fails")
