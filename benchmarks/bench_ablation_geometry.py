"""Ablation: fabric geometry — DynaSpAM's stripes vs a CCA-like triangle.

Table 7 positions DynaSpAM against CCA: CCA targets *subgraphs* (a small
triangle of integer units, no pass registers, inputs only at the top row)
while DynaSpAM targets kernel-scale traces.  This bench maps every
distinct hot window of every benchmark onto both geometries and measures
how much of the hot-trace population each can accept, plus a stripe-depth
sweep of the DynaSpAM geometry.
"""

from benchmarks.conftest import run_once
from benchmarks.bench_ablation_naive import windows_of
from repro.core.mapper import ResourceAwareMapper
from repro.fabric.config import cca_like, FabricConfig
from repro.harness.reporting import format_table
from repro.workloads import ALL_ABBREVS


def acceptance(scale):
    geometries = {
        "cca_like": cca_like(),
        "dynaspam_8": FabricConfig(num_stripes=8),
        "dynaspam_16": FabricConfig(num_stripes=16),
    }
    rows = []
    totals = {name: 0 for name in geometries}
    total_windows = 0
    for abbrev in sorted(ALL_ABBREVS):
        windows = windows_of(abbrev, scale)
        total_windows += len(windows)
        mapped = {}
        for name, config in geometries.items():
            mapper = ResourceAwareMapper(config)
            mapped[name] = sum(
                mapper.map_trace(w.instructions, w.key) is not None
                for w in windows
            )
            totals[name] += mapped[name]
        rows.append([abbrev, len(windows)] + [mapped[n] for n in geometries])
    return rows, totals, total_windows, list(geometries)


def test_ablation_fabric_geometry(benchmark, scale):
    rows, totals, total_windows, names = run_once(
        benchmark, lambda: acceptance(scale)
    )
    print()
    print(format_table(
        ["Benchmark", "hot windows"] + names,
        rows,
        title="Ablation: hot-trace acceptance by fabric geometry",
    ))
    print(f"totals over {total_windows} windows: " +
          ", ".join(f"{n}={totals[n]}" for n in names))

    # The CCA-like subgraph fabric accepts far fewer kernel-scale traces
    # than DynaSpAM's stripe fabric (Table 7's Subgraph-vs-Kernel row).
    assert totals["cca_like"] < 0.5 * totals["dynaspam_16"]
    # Deeper fabrics accept at least as many traces.
    assert totals["dynaspam_16"] >= totals["dynaspam_8"]
    # The shipping 16-stripe geometry accepts the majority of hot windows.
    assert totals["dynaspam_16"] > 0.6 * total_windows
