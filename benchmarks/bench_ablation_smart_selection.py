"""Ablation: smarter trace selection (the paper's future-work item).

Figure 7's discussion: a trace that straddles a block boundary strands the
rest of the block on the host; "addressing this via more intelligent
instruction selection is a goal of future work."  This bench implements
that selection (static lookahead ends a trace at a branch whenever the
next block cannot fit under the cap) and measures both sides of the
tradeoff: dead zones disappear (coverage rises), but shorter traces cross
the global bus more often for loop-carried values (speedup can drop for
tight serial loops).
"""

from benchmarks.conftest import run_once
from repro.core import DynaSpAM, DynaSpAMConfig
from repro.harness.reporting import format_table
from repro.ooo.pipeline import OOOPipeline
from repro.workloads import ALL_ABBREVS, generate_trace


def sweep(scale):
    rows = []
    coverage_gains = 0
    for abbrev in sorted(ALL_ABBREVS):
        run = generate_trace(abbrev, scale)
        base = OOOPipeline().run_trace(run.trace).cycles
        plain = DynaSpAM(ds_config=DynaSpAMConfig()).run(
            run.trace, run.program)
        smart = DynaSpAM(
            ds_config=DynaSpAMConfig(smart_trace_selection=True)
        ).run(run.trace, run.program)
        plain_cov = plain.coverage["fabric"]
        smart_cov = smart.coverage["fabric"]
        coverage_gains += smart_cov >= plain_cov - 1e-9
        rows.append([
            abbrev,
            f"{plain_cov:.0%}", f"{smart_cov:.0%}",
            round(base / plain.cycles, 2),
            round(base / smart.cycles, 2),
        ])
    return rows, coverage_gains


def test_ablation_smart_trace_selection(benchmark, scale):
    rows, coverage_gains = run_once(benchmark, lambda: sweep(scale))
    print()
    print(format_table(
        ["Benchmark", "coverage", "coverage (smart)", "speedup",
         "speedup (smart)"],
        rows,
        title="Ablation: block-boundary-aware trace selection",
    ))

    # Smart selection never reduces fabric coverage (dead zones vanish).
    assert coverage_gains >= len(rows) - 1
    # But it is not a free win: the harness records the tradeoff rather
    # than assuming it (shorter traces pay more global-bus crossings).
