"""Figure 9: energy consumption of DynaSpAM vs the host OOO pipeline.

Regenerates the per-component normalized energy series and checks the
paper's shape claims: a geomean reduction near 23.9%, every benchmark
reduced, front-end components (Fetch / Rename / InstSchedule / Datapath)
shrinking, memory not shrinking, and the fabric's energy sitting between
the baseline Execution slice and Execution+Datapath+InstSchedule.
"""

from benchmarks.conftest import run_once
from repro.harness import figure9_energy


def test_fig9_energy(benchmark, scale, jobs):
    result = run_once(benchmark, lambda: figure9_energy(scale, jobs=jobs))
    print()
    print(result.render())

    # Paper: 2.5%-36.9% reduction, geomean 23.9%.
    assert 0.15 <= result.geomean_reduction <= 0.35, result.geomean_reduction
    for abbrev, reduction in result.reductions.items():
        assert reduction > 0.0, f"{abbrev} energy increased"
        assert reduction < 0.55, f"{abbrev} reduction implausibly large"

    for abbrev, both in result.components.items():
        base = both["baseline"]
        dyna = both["dynaspam"]
        # Front-end energy shrinks (Figure 9's visible shape).
        for component in ("fetch", "rename", "inst_schedule", "datapath"):
            assert dyna[component] < base[component], (abbrev, component)
        # Memory activity is not reduced by DynaSpAM.
        assert dyna["memory"] >= 0.95 * base["memory"], abbrev
        # Fabric energy between Execution and Exec+Datapath+InstSchedule.
        bound = base["execution"] + base["datapath"] + base["inst_schedule"]
        assert base["execution"] < dyna["fabric"] < bound, abbrev
