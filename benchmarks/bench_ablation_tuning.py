"""Ablation: workload-tuned FU mixes (the paper's future-work study).

For each benchmark, profiles the instruction mix, proposes a tuned
per-stripe PE apportionment under the default 12-PE budget, and compares
the tuned fabric against the Table 4 default on speedup per mm².
"""

from benchmarks.conftest import run_once
from repro.core.tuning import evaluate_mix, FabricTuner
from repro.fabric.config import FabricConfig
from repro.harness.reporting import format_table
from repro.harness.runner import geomean
from repro.workloads import ALL_ABBREVS, generate_trace
from repro.workloads.characterize import characterize


def sweep(scale):
    tuner = FabricTuner(pe_budget=12)
    rows = []
    default_effs = []
    tuned_effs = []
    for abbrev in sorted(ALL_ABBREVS):
        run = generate_trace(abbrev, scale)
        profile = characterize(abbrev, run.trace)
        mix = tuner.propose([profile])
        default = evaluate_mix(run, FabricConfig())
        tuned = evaluate_mix(run, tuner.fabric_config(mix))
        rows.append([
            abbrev,
            f"{default.speedup:.2f}@{default.fabric_area_mm2:.1f}mm2",
            f"{tuned.speedup:.2f}@{tuned.fabric_area_mm2:.1f}mm2",
            round(default.speedup_per_mm2, 2),
            round(tuned.speedup_per_mm2, 2),
        ])
        default_effs.append(max(default.speedup_per_mm2, 1e-9))
        tuned_effs.append(max(tuned.speedup_per_mm2, 1e-9))
    return rows, geomean(default_effs), geomean(tuned_effs)


def test_ablation_workload_tuned_mix(benchmark, scale):
    rows, default_eff, tuned_eff = run_once(benchmark, lambda: sweep(scale))
    print()
    print(format_table(
        ["Benchmark", "default", "tuned", "default speedup/mm2",
         "tuned speedup/mm2"],
        rows,
        title="Ablation: Table 4 FU mix vs workload-tuned mix (12-PE budget)",
    ))
    print(f"geomean speedup/mm^2: default {default_eff:.2f}, "
          f"tuned {tuned_eff:.2f}")

    # Tuning to the workload's own mix should not lose area efficiency in
    # aggregate (it reallocates idle units into demanded pools).
    assert tuned_eff >= default_eff * 0.9
