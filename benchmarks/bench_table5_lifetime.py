"""Table 5: detected traces and average configuration lifetime.

Regenerates the mapped/offloaded trace counts and the 1/2/4-fabric average
configuration lifetimes (plus the paper's BFS-with-8-fabrics case study),
and checks the shape claims: loop-dominated kernels hold one configuration
for hundreds-to-thousands of invocations, BFS has the shortest lifetime at
one fabric, and more fabrics never shorten lifetimes.
"""

from benchmarks.conftest import run_once
from repro.harness import table5_lifetime


def test_table5_lifetime(benchmark, scale, jobs):
    result = run_once(benchmark, lambda: table5_lifetime(scale, jobs=jobs))
    print()
    print(result.render())

    rows = result.rows
    # Every benchmark detects and offloads at least one trace.
    for abbrev, row in rows.items():
        assert row["mapped"] >= 1, abbrev
        assert row["offloaded"] >= 1, abbrev
        assert row["offloaded"] <= row["mapped"], abbrev

    # Loop-dominated kernels: very long configuration lifetimes (paper:
    # thousands of invocations).
    for abbrev in ("KM", "KNN", "NW", "PF", "HS"):
        assert rows[abbrev]["lifetime"][1] > 100, (
            abbrev, rows[abbrev]["lifetime"])

    # BFS: the shortest lifetime at one fabric (paper: 6.4 invocations).
    bfs_life = rows["BFS"]["lifetime"][1]
    assert bfs_life < 50
    assert bfs_life == min(row["lifetime"][1] for row in rows.values())

    # More fabrics never shorten the average lifetime, and help BFS.
    for abbrev, row in rows.items():
        life = row["lifetime"]
        assert life[4] >= life[1] * 0.7, (abbrev, life)
    assert rows["BFS"]["lifetime"][4] > rows["BFS"]["lifetime"][1]
    assert result.bfs_eight_fabrics >= rows["BFS"]["lifetime"][4]
