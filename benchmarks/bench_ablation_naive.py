"""Ablation: naive in-order mapping vs resource-aware mapping.

Section 2.2's claim: naive (CCA/DIF-style, strict program order, first
fit) mapping fails or maps worse because it is not globally resource
aware.  This bench maps every hot-trace-sized window of every benchmark
with both mappers and compares feasibility and mapping depth, and
reproduces Figure 2(b)'s feasibility failure as a microbenchmark.
"""

from benchmarks.conftest import run_once
from repro.core.mapper import ResourceAwareMapper
from repro.core.naive_mapper import NaiveMapper
from repro.core.tcache import TraceWindowBuilder
from repro.harness.reporting import format_table
from repro.workloads import ALL_ABBREVS, generate_trace


def windows_of(abbrev, scale, max_windows=250):
    builder = TraceWindowBuilder(max_length=32)
    windows = []
    seen = set()
    for dyn in generate_trace(abbrev, scale).trace:
        window = builder.feed(dyn)
        if window is None:
            continue
        if window.key in seen:
            continue
        seen.add(window.key)
        windows.append(window)
        if len(windows) >= max_windows:
            break
    return windows


def map_all(scale):
    rows = []
    totals = {"windows": 0, "naive_fail": 0, "aware_fail": 0,
              "naive_deeper": 0}
    for abbrev in sorted(ALL_ABBREVS):
        naive = NaiveMapper()
        aware = ResourceAwareMapper()
        naive_fail = aware_fail = deeper = count = 0
        for window in windows_of(abbrev, scale):
            count += 1
            n = naive.map_trace(window.instructions, window.key)
            a = aware.map_trace(window.instructions, window.key)
            naive_fail += n is None
            aware_fail += a is None
            if n is not None and a is not None:
                deeper += n.stripes_used > a.stripes_used
        rows.append([abbrev, count, naive_fail, aware_fail, deeper])
        totals["windows"] += count
        totals["naive_fail"] += naive_fail
        totals["aware_fail"] += aware_fail
        totals["naive_deeper"] += deeper
    return rows, totals


def test_ablation_naive_vs_resource_aware(benchmark, scale):
    rows, totals = run_once(benchmark, lambda: map_all(scale))
    print()
    print(format_table(
        ["Benchmark", "distinct windows", "naive failures",
         "aware failures", "naive deeper"],
        rows,
        title="Ablation: naive in-order vs resource-aware mapping",
    ))

    # The resource-aware mapper never fails where naive succeeds, and the
    # naive mapper fails (or maps deeper) somewhere across the suite.
    assert totals["aware_fail"] <= totals["naive_fail"]
    assert totals["naive_fail"] + totals["naive_deeper"] > 0


def test_figure2b_feasibility_microbenchmark(benchmark):
    """Figure 2(b): the naive mapper strands a late two-live-in op."""
    from repro.isa.builder import ProgramBuilder
    from repro.isa.executor import FunctionalExecutor

    b = ProgramBuilder("fig2b")
    b.addi("r11", "r1", 1)
    b.addi("r12", "r2", 1)
    b.addi("r13", "r3", 1)
    b.addi("r14", "r4", 1)
    b.add("r15", "r5", "r6")    # needs two input ports, arrives last
    b.halt()
    trace = FunctionalExecutor().run(b.build()).trace[:-1]
    key = (0, (), len(trace))

    def run():
        return (NaiveMapper().map_trace(trace, key),
                ResourceAwareMapper().map_trace(trace, key))

    naive, aware = run_once(benchmark, run)
    assert naive is None, "naive mapping should fail (Figure 2b)"
    assert aware is not None, "resource-aware mapping should succeed"
    print("\nFigure 2(b): naive mapping fails, resource-aware succeeds "
          f"(2-live-in op placed on stripe {aware.op_at(4).stripe})")
