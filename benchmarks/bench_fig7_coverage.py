"""Figure 7: trace coverage at trace lengths 16-40.

Regenerates the stacked host/mapping/fabric coverage bars and checks the
paper's shape claims: only a small fraction of instructions execute during
mapping, coverage is substantial for loop-dominated kernels, and the
coverage-dip effect exists (a longer trace can *reduce* coverage when it
straddles a block boundary — the paper's NW@24 / SRAD@40 discussion).
"""

from benchmarks.conftest import run_once
from repro.harness import figure7_coverage


def test_fig7_coverage(benchmark, scale, jobs):
    result = run_once(benchmark, lambda: figure7_coverage(scale, jobs=jobs))
    print()
    print(result.render())

    for abbrev, per_length in result.coverage.items():
        for length, parts in per_length.items():
            assert abs(sum(parts.values()) - 1.0) < 1e-9
            # "a small fraction of instructions are executed during the
            # mapping phase for all programs"
            assert parts["mapping"] < 0.15, (abbrev, length, parts)

    # Loop-dominated kernels reach substantial fabric coverage at length 32.
    for abbrev in ("KM", "KNN", "NW", "PF", "SRAD", "HS"):
        assert result.coverage[abbrev][32]["fabric"] > 0.4, abbrev

    # The coverage-vs-length curve is non-monotonic somewhere: a longer
    # trace that straddles a block boundary loses coverage.
    dips = 0
    for abbrev, per_length in result.coverage.items():
        series = [per_length[n]["fabric"] for n in result.lengths]
        if any(b < a - 0.02 for a, b in zip(series, series[1:])):
            dips += 1
    assert dips >= 1, "no benchmark shows the block-boundary coverage dip"
