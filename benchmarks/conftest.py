"""Shared benchmark configuration.

``REPRO_BENCH_SCALE`` controls the problem-size scale of the benchmark
harness runs (default 0.4: tens of thousands of dynamic instructions per
kernel, enough for trace detection to reach steady state while keeping a
full ``pytest benchmarks/ --benchmark-only`` run to a few minutes).  Set it
to 1.0 to reproduce the numbers recorded in EXPERIMENTS.md.
"""

import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
