"""Shared benchmark configuration.

``REPRO_BENCH_SCALE`` controls the problem-size scale of the benchmark
harness runs (default 0.4: tens of thousands of dynamic instructions per
kernel, enough for trace detection to reach steady state while keeping a
full ``pytest benchmarks/ --benchmark-only`` run to a few minutes).  Set it
to 1.0 to reproduce the numbers recorded in EXPERIMENTS.md.

``REPRO_BENCH_JOBS`` fans each sweep's independent runs out over that many
worker processes (unset/1 = the seed serial path).  Timing comparisons
against EXPERIMENTS.md should also clear the on-disk cache first or export
``REPRO_DISK_CACHE=0``, otherwise warm runs measure cache loads.
"""

import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))


def bench_jobs() -> int | None:
    value = os.environ.get("REPRO_BENCH_JOBS", "")
    return int(value) if value else None


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def jobs() -> int | None:
    return bench_jobs()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
