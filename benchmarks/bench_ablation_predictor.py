"""Ablation: branch predictor quality vs DynaSpAM effectiveness.

DynaSpAM leans on the host branch predictor twice: the fetch stage uses it
to recognize upcoming hot traces, and every offloaded invocation bets on
three predicted outcomes.  This bench swaps the direction predictor
(bimodal / gshare / tournament) and measures how prediction quality moves
trace squash rates and the accelerated speedup.
"""

from benchmarks.conftest import run_once
from repro.core import DynaSpAM, DynaSpAMConfig
from repro.harness.reporting import format_table
from repro.harness.runner import geomean
from repro.ooo.config import CoreConfig
from repro.ooo.pipeline import OOOPipeline
from repro.workloads import generate_trace

KERNELS = ("KM", "BFS", "BT", "NW", "HS")
KINDS = ("bimodal", "gshare", "tournament")


def sweep(scale):
    rows = []
    speedups = {kind: [] for kind in KINDS}
    for abbrev in KERNELS:
        run = generate_trace(abbrev, scale)
        row = [abbrev]
        for kind in KINDS:
            core = CoreConfig(predictor_kind=kind)
            base = OOOPipeline(core).run_trace(run.trace)
            machine = DynaSpAM(core_config=CoreConfig(predictor_kind=kind),
                               ds_config=DynaSpAMConfig())
            out = machine.run(run.trace, run.program)
            speedup = base.cycles / out.cycles
            speedups[kind].append(speedup)
            accuracy = 1.0 - (
                out.stats.branch_mispredicts
                / max(1, out.stats.predictor_lookups)
            )
            row.append(f"{speedup:.2f} ({accuracy:.0%}, sq={out.squashes})")
        rows.append(row)
    return rows, {kind: geomean(vals) for kind, vals in speedups.items()}


def test_ablation_branch_predictor(benchmark, scale):
    rows, geomeans = run_once(benchmark, lambda: sweep(scale))
    print()
    print(format_table(
        ["Benchmark"] + [f"{kind}" for kind in KINDS],
        rows,
        title="Ablation: predictor kind -> speedup (accuracy, squashes)",
    ))
    print("geomeans: " + ", ".join(
        f"{kind}={value:.2f}" for kind, value in geomeans.items()))

    # The tournament predictor never loses materially to its components.
    assert geomeans["tournament"] >= geomeans["bimodal"] * 0.95
    assert geomeans["tournament"] >= geomeans["gshare"] * 0.95
