"""Tests for the benchmark registry and trace generation."""

import pytest

from repro.workloads import ALL_ABBREVS, BENCHMARKS, generate_trace, get_benchmark
from repro.workloads.suite import clear_trace_cache

PAPER_TABLE3 = {
    "BP": "Pattern Recognition",
    "BFS": "Graph Algorithms",
    "BT": "Search",
    "HS": "Physics Simulation",
    "KM": "Data Mining",
    "LD": "Linear Algebra",
    "KNN": "Data Mining",
    "NW": "Bioinformatics",
    "PF": "Grid Traversal",
    "PTF": "Medical Imaging",
    "SRAD": "Image Processing",
}


def test_all_eleven_benchmarks_registered():
    assert set(ALL_ABBREVS) == set(PAPER_TABLE3)


def test_domains_match_paper_table3():
    for abbrev, domain in PAPER_TABLE3.items():
        assert BENCHMARKS[abbrev].domain == domain


def test_get_benchmark_unknown_raises():
    with pytest.raises(KeyError, match="unknown benchmark"):
        get_benchmark("XYZ")


def test_trace_is_cached_per_scale():
    clear_trace_cache()
    first = generate_trace("KM", 0.05)
    second = generate_trace("KM", 0.05)
    assert first is second
    third = generate_trace("KM", 0.06)
    assert third is not first
    clear_trace_cache()


@pytest.mark.parametrize("abbrev", sorted(ALL_ABBREVS))
def test_every_benchmark_produces_a_nontrivial_trace(abbrev):
    result = generate_trace(abbrev, 0.05)
    assert result.dynamic_count > 500
    branches = sum(1 for d in result.trace if d.is_branch)
    mems = sum(1 for d in result.trace if d.is_memory)
    assert branches > 10, "kernel has no loops?"
    assert mems > 10, "kernel never touches memory?"


@pytest.mark.parametrize("abbrev", sorted(ALL_ABBREVS))
def test_traces_scale_with_problem_size(abbrev):
    small = generate_trace(abbrev, 0.05).dynamic_count
    large = generate_trace(abbrev, 0.2).dynamic_count
    assert large > small
