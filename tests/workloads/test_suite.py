"""Tests for the benchmark registry and trace generation."""

import pytest

from repro.workloads import ALL_ABBREVS, BENCHMARKS, generate_trace, get_benchmark
from repro.workloads.suite import clear_trace_cache

PAPER_TABLE3 = {
    "BP": "Pattern Recognition",
    "BFS": "Graph Algorithms",
    "BT": "Search",
    "HS": "Physics Simulation",
    "KM": "Data Mining",
    "LD": "Linear Algebra",
    "KNN": "Data Mining",
    "NW": "Bioinformatics",
    "PF": "Grid Traversal",
    "PTF": "Medical Imaging",
    "SRAD": "Image Processing",
}


def test_all_eleven_benchmarks_registered():
    assert set(ALL_ABBREVS) == set(PAPER_TABLE3)


def test_domains_match_paper_table3():
    for abbrev, domain in PAPER_TABLE3.items():
        assert BENCHMARKS[abbrev].domain == domain


def test_get_benchmark_unknown_raises():
    with pytest.raises(KeyError, match="unknown benchmark"):
        get_benchmark("XYZ")


def test_trace_is_cached_per_scale():
    clear_trace_cache()
    first = generate_trace("KM", 0.05)
    second = generate_trace("KM", 0.05)
    assert first is second
    third = generate_trace("KM", 0.06)
    assert third is not first
    clear_trace_cache()


@pytest.mark.parametrize("abbrev", sorted(ALL_ABBREVS))
def test_every_benchmark_produces_a_nontrivial_trace(abbrev):
    result = generate_trace(abbrev, 0.05)
    assert result.dynamic_count > 500
    branches = sum(1 for d in result.trace if d.is_branch)
    mems = sum(1 for d in result.trace if d.is_memory)
    assert branches > 10, "kernel has no loops?"
    assert mems > 10, "kernel never touches memory?"


@pytest.mark.parametrize("abbrev", sorted(ALL_ABBREVS))
def test_traces_scale_with_problem_size(abbrev):
    small = generate_trace(abbrev, 0.05).dynamic_count
    large = generate_trace(abbrev, 0.2).dynamic_count
    assert large > small


# ---------------------------------------------------------------------------
# Ingested programs (repro.lang frontend)
# ---------------------------------------------------------------------------
TINY = """\
@main {
  one: int = const 1;
  two: int = const 2;
  s: int = add one two;
  print s;
  ret;
}
"""


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def test_register_program_is_idempotent(tmp_path):
    from repro.workloads.suite import register_program

    path = _write(tmp_path, "tiny.spam", TINY)
    first = register_program(path)
    second = register_program(path)
    assert first.abbrev == second.abbrev
    assert first is second
    assert first.abbrev.startswith("PROG:tiny:")


def test_program_abbrevs_stay_out_of_table3(tmp_path):
    from repro.workloads.suite import register_program

    path = _write(tmp_path, "tiny.spam", TINY)
    bench = register_program(path)
    assert bench.abbrev in BENCHMARKS
    assert bench.abbrev not in ALL_ABBREVS
    assert len(ALL_ABBREVS) == 11


def test_editing_source_changes_abbrev_and_cache_identity(tmp_path):
    """The content hash in the abbreviation is the cache-invalidation
    mechanism: an edited program must never replay stale cached runs."""
    from repro.harness.runner import dynaspam_spec
    from repro.workloads.suite import register_program

    path = _write(tmp_path, "tiny.spam", TINY)
    before = register_program(path)
    with open(path, "a") as fh:
        fh.write("# a comment changes the hash too\n")
    after = register_program(path)
    assert before.abbrev != after.abbrev
    assert dynaspam_spec(before.abbrev).key != dynaspam_spec(after.abbrev).key


def test_passes_change_abbrev(tmp_path):
    from repro.workloads.suite import register_program

    path = _write(tmp_path, "tiny.spam", TINY)
    plain = register_program(path)
    optimized = register_program(path, ("lvn", "dce"))
    assert plain.abbrev != optimized.abbrev


def test_registered_program_traces_like_a_kernel(tmp_path):
    from repro.workloads.suite import register_program

    path = _write(tmp_path, "tiny.spam", TINY)
    bench = register_program(path)
    result = generate_trace(bench.abbrev)
    assert result.dynamic_count > 0
    clear_trace_cache()


def test_discover_programs_sorted(tmp_path):
    from repro.workloads.suite import discover_programs

    _write(tmp_path, "b.spam", TINY)
    _write(tmp_path, "a.spam", TINY)
    names = [b.name for b in discover_programs(str(tmp_path))]
    assert names == ["a", "b"]


def test_discover_programs_empty_dir_raises(tmp_path):
    from repro.workloads.suite import discover_programs

    with pytest.raises(FileNotFoundError):
        discover_programs(str(tmp_path))
