"""Validate every kernel analog against a pure-Python reference.

These tests run the kernels at a reduced scale through the functional
executor and compare computed results word-for-word with the reference
implementations, so a mis-assembled kernel cannot silently skew the
paper-reproduction numbers.
"""

import pytest

from repro.isa.executor import FunctionalExecutor
from repro.isa.instructions import WORD_SIZE
from repro.workloads.kernels import (
    bfs,
    bp,
    btree,
    hotspot,
    kmeans,
    knn,
    lud,
    nw,
    particlefilter,
    pathfinder,
    srad,
)

SCALE = 0.12


def run(module, scale=SCALE):
    program, memory = module.build(scale)
    result = FunctionalExecutor(max_instructions=20_000_000).run(program, memory)
    return result, memory


def test_kmeans_assignments_match_reference():
    result, memory = run(kmeans)
    expected = kmeans.reference(SCALE)
    actual = memory.load_array(kmeans.ASSIGN_BASE, len(expected))
    assert actual == expected


def test_knn_nearest_matches_reference():
    result, memory = run(knn)
    assert memory.load(knn.RESULT_BASE) == knn.reference(SCALE)


def test_knn_distances_are_all_stored():
    _, memory = run(knn)
    n = knn.problem_size(SCALE)
    distances = memory.load_array(knn.DIST_BASE, n)
    assert all(d >= 0.0 for d in distances)
    assert min(distances) > 0.0


def test_bfs_costs_match_reference():
    _, memory = run(bfs)
    expected = bfs.reference(SCALE)
    actual = memory.load_array(bfs.COST_BASE, len(expected))
    assert actual == expected


def test_bfs_visits_every_node():
    _, memory = run(bfs)
    n = bfs.problem_size(SCALE)
    visited = memory.load_array(bfs.VISITED_BASE, n)
    assert all(v == 1 for v in visited)


def test_btree_lookups_match_reference():
    _, memory = run(btree)
    expected = btree.reference(SCALE)
    actual = memory.load_array(btree.RESULT_BASE, len(expected))
    assert actual == expected


def test_btree_has_both_hits_and_misses():
    expected = btree.reference(SCALE)
    assert any(v != 0 for v in expected), "no query hit the tree"
    assert any(v == 0 for v in expected), "every query hit the tree"


def test_hotspot_matches_reference():
    _, memory = run(hotspot)
    n = hotspot.problem_size(SCALE)
    expected = hotspot.reference(SCALE)
    actual = memory.load_array(hotspot.FINAL_BASE, n * n)
    assert actual == pytest.approx(expected, rel=1e-12)


def test_lud_matches_reference():
    _, memory = run(lud)
    n = lud.problem_size(SCALE)
    expected = lud.reference(SCALE)
    actual = memory.load_array(lud.MATRIX_BASE, n * n)
    assert actual == pytest.approx(expected, rel=1e-12)


def test_nw_matches_reference():
    _, memory = run(nw)
    n = nw.problem_size(SCALE)
    dim = n + 1
    expected = nw.reference(SCALE)
    actual = memory.load_array(nw.SCORE_BASE, dim * dim)
    assert actual == expected


def test_pathfinder_matches_reference():
    _, memory = run(pathfinder)
    _, cols = pathfinder.problem_size(SCALE)
    expected = pathfinder.reference(SCALE)
    actual = memory.load_array(pathfinder.final_base(SCALE), cols)
    assert actual == expected


def test_particlefilter_matches_reference():
    _, memory = run(particlefilter)
    expected = particlefilter.reference(SCALE)
    actual = memory.load_array(particlefilter.EST_BASE, particlefilter.NUM_FRAMES)
    assert actual == pytest.approx(expected, rel=1e-9)


def test_particlefilter_estimates_track_observations():
    expected = particlefilter.reference(SCALE)
    # Observations ramp upward; the filtered estimate should ramp too.
    assert expected[-1] > expected[0]


def test_srad_matches_reference():
    _, memory = run(srad)
    n = srad.problem_size(SCALE)
    expected = srad.reference(SCALE)
    actual = memory.load_array(srad.IMAGE_BASE, n * n)
    assert actual == pytest.approx(expected, rel=1e-12)


def test_srad_preserves_positivity():
    expected = srad.reference(SCALE)
    assert all(v > 0 for v in expected)


def test_bp_outputs_match_reference():
    result, _ = run(bp)
    expected = bp.reference(SCALE)
    # Final outputs live in OUTPUT_BASE after the last epoch's forward pass.
    _, memory = run(bp)
    actual = memory.load_array(bp.OUTPUT_BASE, bp.NUM_OUTPUT)
    assert actual == pytest.approx(expected, rel=1e-12)


def test_bp_training_reduces_error():
    inputs, w1, w2, targets = bp._dataset()
    outputs_early = bp.reference(0.05)   # 1 epoch (min clamp)
    outputs_late = bp.reference(1.0)     # full training run
    err_early = sum((t - o) ** 2 for t, o in zip(targets, outputs_early))
    err_late = sum((t - o) ** 2 for t, o in zip(targets, outputs_late))
    assert err_late < err_early
