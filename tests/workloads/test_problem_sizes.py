"""Scaling behaviour of every kernel's problem-size function."""

import pytest

from repro.workloads.kernels import (
    bfs,
    bp,
    btree,
    hotspot,
    kmeans,
    knn,
    lud,
    nw,
    particlefilter,
    pathfinder,
    srad,
)

MODULES = [bp, bfs, btree, hotspot, kmeans, lud, knn, nw, pathfinder,
           particlefilter, srad]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.META["abbrev"])
def test_problem_size_monotonic_in_scale(module):
    sizes = [module.problem_size(scale) for scale in (0.05, 0.25, 0.5, 1.0)]
    flat = [s if isinstance(s, tuple) else (s,) for s in sizes]
    for smaller, larger in zip(flat, flat[1:]):
        assert all(a <= b for a, b in zip(smaller, larger))


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.META["abbrev"])
def test_problem_size_minimum_clamp(module):
    tiny = module.problem_size(1e-9)
    values = tiny if isinstance(tiny, tuple) else (tiny,)
    assert all(v >= 1 for v in values)


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.META["abbrev"])
def test_meta_is_complete(module):
    meta = module.META
    for key in ("abbrev", "name", "domain", "kernel", "description"):
        assert meta.get(key), (meta["abbrev"], key)


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.META["abbrev"])
def test_build_is_deterministic(module):
    p1, m1 = module.build(0.05)
    p2, m2 = module.build(0.05)
    assert len(p1) == len(p2)
    assert [i.opcode for i in p1.instructions] == \
           [i.opcode for i in p2.instructions]
