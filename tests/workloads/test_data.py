"""Unit tests for the synthetic data generators."""

import pytest

from repro.workloads import data


def test_rng_deterministic_per_seed():
    assert data.rng(5).random() == data.rng(5).random()
    assert data.rng(5).random() != data.rng(6).random()


def test_floats_range_and_determinism():
    xs = data.floats(100, -2.0, 3.0, seed=1)
    assert len(xs) == 100
    assert all(-2.0 <= x < 3.0 for x in xs)
    assert xs == data.floats(100, -2.0, 3.0, seed=1)


def test_ints_range():
    xs = data.ints(50, 3, 9, seed=2)
    assert all(3 <= x <= 9 for x in xs)


def test_csr_graph_well_formed():
    offsets, edges = data.csr_graph(20, avg_degree=3, seed=3)
    assert len(offsets) == 21
    assert offsets[0] == 0
    assert offsets[-1] == len(edges)
    assert all(a <= b for a, b in zip(offsets, offsets[1:]))
    assert all(0 <= e < 20 for e in edges)


def test_csr_graph_spine_guarantees_reachability():
    offsets, edges = data.csr_graph(30, avg_degree=2, seed=4)
    visited = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for e in range(offsets[node], offsets[node + 1]):
            nb = edges[e]
            if nb not in visited:
                visited.add(nb)
                frontier.append(nb)
    assert len(visited) == 30


def test_bplus_tree_lookup_hits_and_misses():
    keys = list(range(0, 200, 2))
    tree = data.BPlusTree(keys, order=4)
    for key in keys[:20]:
        assert tree.lookup(key) == key * 2 + 1
    for key in (1, 3, 999):
        assert tree.lookup(key) == 0


def test_bplus_tree_structure():
    tree = data.BPlusTree(list(range(64)), order=4)
    assert tree.num_nodes > 16              # leaves + internals
    assert len(tree.keys) == tree.num_nodes * 4
    assert len(tree.children) == tree.num_nodes * 5
    assert tree.is_leaf[tree.root] == 0


def test_bplus_tree_wide_order():
    keys = sorted(set(data.ints(500, 0, 10_000, seed=9)))
    tree = data.BPlusTree(keys, order=32)
    for key in keys[::17]:
        assert tree.lookup(key) == key * 2 + 1


def test_words_helper():
    assert data.words(0x100, 3) == 0x10C
