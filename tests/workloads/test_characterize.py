"""Tests for workload characterization."""

import pytest

from repro.workloads import generate_trace
from repro.workloads.characterize import characterize, pool_demand, WorkloadProfile

SCALE = 0.1


def profile_of(abbrev):
    return characterize(abbrev, generate_trace(abbrev, SCALE).trace)


def test_empty_trace():
    profile = characterize("empty", [])
    assert profile.dynamic_instructions == 0
    assert profile.pool_mix == {}


def test_mix_fractions_sum_to_one():
    profile = profile_of("KM")
    assert sum(profile.pool_mix.values()) == pytest.approx(1.0)
    assert sum(profile.class_mix.values()) == pytest.approx(1.0)


def test_fp_kernel_dominated_by_fp_pools():
    profile = profile_of("HS")
    fp = profile.pool_mix.get("fp_alu", 0) + profile.pool_mix.get("fp_muldiv", 0)
    assert fp > 0.25


def test_int_kernel_has_no_fp():
    profile = profile_of("BFS")
    assert profile.pool_mix.get("fp_alu", 0.0) == 0.0
    assert profile.pool_mix.get("fp_muldiv", 0.0) == 0.0


def test_memory_fractions_consistent():
    profile = profile_of("NW")
    assert profile.memory_fraction == pytest.approx(
        profile.load_fraction + profile.store_fraction
    )
    assert profile.memory_fraction > 0.25  # NW is memory heavy


def test_branch_statistics():
    profile = profile_of("KM")
    assert 0.0 < profile.branch_fraction < 0.3
    assert 0.5 < profile.taken_fraction <= 1.0  # loop-dominated
    assert profile.mean_block_run > 3


def test_unique_pcs_bounded_by_static_size():
    result = generate_trace("KM", SCALE)
    profile = characterize("KM", result.trace)
    assert profile.unique_pcs <= result.program.static_size()


def test_pool_demand_normalized_to_int_alu():
    profile = profile_of("KM")
    demand = pool_demand(profile)
    assert demand["int_alu"] == pytest.approx(1.0)
    assert set(demand) == {"int_alu", "int_muldiv", "fp_alu",
                           "fp_muldiv", "ldst"}


def test_dominant_pool():
    assert profile_of("BFS").dominant_pool() == "int_alu"
