"""Unit tests for fabric geometry: config, PEs, stripes, FIFOs."""

import pytest

from repro.fabric.config import FabricConfig
from repro.fabric.fifos import FifoModel
from repro.fabric.pe import PE
from repro.fabric.stripe import build_stripes, Stripe
from repro.isa.opcodes import OpClass


def test_default_geometry_matches_table4():
    cfg = FabricConfig()
    assert cfg.num_stripes == 16
    assert cfg.pes_per_stripe == 12        # 4+1+4+1+2
    assert cfg.pass_regs_per_fu == 3
    assert cfg.pass_regs_per_stripe == 36
    assert cfg.fifo_depth == 8
    assert cfg.livein_fifos == 16
    assert cfg.liveout_fifos == 16


def test_config_validation():
    with pytest.raises(ValueError):
        FabricConfig(num_stripes=0)
    with pytest.raises(ValueError):
        FabricConfig(fifo_depth=0)


def test_stripe0_pes_have_two_input_ports():
    stripes = build_stripes(FabricConfig())
    assert all(pe.input_ports == 2 for pe in stripes[0])
    assert all(pe.input_ports == 1 for pe in stripes[1])


def test_stripe_pool_composition():
    stripe = Stripe(0, FabricConfig())
    assert len(stripe.pes_of_pool("int_alu")) == 4
    assert len(stripe.pes_of_pool("int_muldiv")) == 1
    assert len(stripe.pes_of_pool("fp_alu")) == 4
    assert len(stripe.pes_of_pool("fp_muldiv")) == 1
    assert len(stripe.pes_of_pool("ldst")) == 2
    assert len(stripe) == 12


def test_pe_functionality_constraint():
    pe = PE(stripe=0, index=0, pool="int_alu", input_ports=2)
    assert pe.can_execute(OpClass.INT_ALU)
    assert pe.can_execute(OpClass.BRANCH)   # branches run on int ALUs
    assert not pe.can_execute(OpClass.FP_MUL)
    assert not pe.can_execute(OpClass.LOAD)


def test_pe_occupancy_pipelining():
    alu = PE(0, 0, "int_alu", 2)
    div = PE(0, 1, "int_muldiv", 2)
    ldst = PE(0, 2, "ldst", 2)
    assert alu.occupancy(OpClass.INT_ALU, 1) == 1
    assert div.occupancy(OpClass.INT_DIV, 12) == 12   # divider blocks
    assert div.occupancy(OpClass.INT_MUL, 3) == 1     # multiplier pipelined
    # Reservation buffer hides load latency from the PE.
    assert ldst.occupancy(OpClass.LOAD, 1) == 1


def test_reconfig_latency_scales_with_stripes():
    cfg = FabricConfig()
    assert cfg.reconfig_latency(1) < cfg.reconfig_latency(8)
    assert cfg.reconfig_latency(0) == cfg.reconfig_latency(1)


def test_fifo_admission_and_capacity():
    fifo = FifoModel(2)
    assert fifo.admit_ready_cycle() == 0
    fifo.push(10)
    fifo.push(20)
    assert fifo.occupancy == 2
    assert fifo.admit_ready_cycle() == 11   # oldest entry drains at 10
    fifo.push(30)
    assert fifo.admit_ready_cycle() == 21


def test_fifo_rejects_zero_depth():
    with pytest.raises(ValueError):
        FifoModel(0)
