"""Fabric timing corner cases not covered by the main execution tests."""

from repro.fabric.config import FabricConfig
from repro.fabric.fabric import InvocationContext, SpatialFabric
from tests.fabric.test_execution import (
    configure,
    ctx,
    inst_src,
    livein,
    make_config,
    placed,
)
from repro.isa.opcodes import Opcode, OpClass


def test_liveout_includes_bus_crossing():
    cfg = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")], dest="r2"),
    ], live_ins=["r1"], live_outs={"r2": 0})
    fabric = configure(SpatialFabric(), cfg)
    result = fabric.execute(cfg, ctx(start=0))
    bus = fabric.config.global_bus_latency
    assert result.liveout_ready["r2"] == result.finish_times[0] + bus


def test_complete_covers_all_finish_times_plus_drain():
    cfg = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")], dest="r2"),
        placed(1, Opcode.FDIV, OpClass.FP_DIV, 1, [inst_src(0, 1)],
               pool="fp_muldiv", dest="f1"),
    ], live_ins=["r1"], live_outs={"f1": 1})
    fabric = configure(SpatialFabric(), cfg)
    result = fabric.execute(cfg, ctx())
    assert result.complete >= max(result.finish_times.values())


def test_occupancy_cycles_first_vs_steady_state():
    cfg = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")], dest="r2"),
        placed(1, Opcode.ADD, OpClass.INT_ALU, 1, [inst_src(0, 1)], dest="r3"),
    ], live_ins=["r1"], live_outs={"r3": 1})
    fabric = configure(SpatialFabric(), cfg)
    first = fabric.execute(cfg, ctx())
    second = fabric.execute(cfg, ctx())
    # First invocation charges its full latency; pipelined followers only
    # their start-to-start gap.
    assert first.occupancy_cycles == first.complete - first.start
    assert second.occupancy_cycles <= first.occupancy_cycles
    assert second.occupancy_cycles >= 1


def test_reconfiguration_resets_pipelining_state():
    cfg_a = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")], dest="r2"),
    ], live_ins=["r1"], live_outs={"r2": 0})
    fabric = configure(SpatialFabric(), cfg_a)
    for _ in range(4):
        fabric.execute(cfg_a, ctx())
    from repro.fabric.configuration import Configuration

    cfg_b = Configuration(
        trace_key=("other",),
        placements=[placed(0, Opcode.ADD, OpClass.INT_ALU, 0,
                           [livein("r1")], dest="r2")],
        live_ins=("r1",),
        live_outs={"r2": 0},
        branch_outcomes=(),
        mem_op_pcs=(),
        mem_op_kinds=(),
    )
    ready = fabric.configure(cfg_b, 1000)
    result = fabric.execute(cfg_b, ctx(start=ready))
    # No initiation-interval carryover from the old configuration.
    assert result.start == ready
    assert fabric.last_liveout_times.keys() == {"r2"}


def test_store_store_order_preserved_without_speculation():
    placements = [
        placed(0, Opcode.FDIV, OpClass.FP_DIV, 0, [livein("f1")],
               pool="fp_muldiv", dest="f2"),
        placed(1, Opcode.SW, OpClass.STORE, 1,
               [livein("r1"), inst_src(0, 1)], roles=["base", "value"],
               pool="ldst", mem_index=0, pc=0x40),
        placed(2, Opcode.SW, OpClass.STORE, 1,
               [livein("r2"), livein("r3")], roles=["base", "value"],
               pool="ldst", mem_index=1, pc=0x44),
    ]
    cfg = make_config(placements, live_ins=["f1", "r1", "r2", "r3"],
                      live_outs={},
                      mem=[(0x40, "store"), (0x44, "store")])
    fabric = configure(SpatialFabric(), cfg)
    result = fabric.execute(
        cfg, ctx(mem_addrs={0: 0x100, 1: 0x200}, speculative=False)
    )
    first, second = result.mem_events
    assert second.finish > first.finish  # in-order execution


def test_store_store_issue_relaxed_with_speculation():
    placements = [
        placed(0, Opcode.FDIV, OpClass.FP_DIV, 0, [livein("f1")],
               pool="fp_muldiv", dest="f2"),
        placed(1, Opcode.SW, OpClass.STORE, 1,
               [livein("r1"), inst_src(0, 1)], roles=["base", "value"],
               pool="ldst", mem_index=0, pc=0x40),
        placed(2, Opcode.SW, OpClass.STORE, 1,
               [livein("r2"), livein("r3")], roles=["base", "value"],
               pool="ldst", mem_index=1, pc=0x44),
    ]
    cfg = make_config(placements, live_ins=["f1", "r1", "r2", "r3"],
                      live_outs={},
                      mem=[(0x40, "store"), (0x44, "store")])
    fabric = configure(SpatialFabric(), cfg)
    result = fabric.execute(
        cfg, ctx(mem_addrs={0: 0x100, 1: 0x200}, speculative=True)
    )
    first, second = result.mem_events
    # The second store's data is ready immediately (live-ins); the buffer
    # lets it finish before the divider-fed first store.
    assert second.finish < first.finish
