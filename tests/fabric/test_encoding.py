"""Tests for the binary configuration encoding (config-cache image)."""

from hypothesis import given, settings, strategies as st

from repro.core.mapper import ResourceAwareMapper
from repro.fabric.encoding import (
    CONFIG_BLOCK_BYTES,
    configuration_blocks,
    decode,
    encode,
)
from repro.isa.builder import ProgramBuilder
from repro.isa.executor import FunctionalExecutor, Memory


def mapped_config(build, memory=None):
    b = ProgramBuilder("t")
    build(b)
    b.halt()
    trace = FunctionalExecutor().run(b.build(), memory).trace[:-1]
    outcomes = tuple(bool(d.taken) for d in trace if d.is_branch)
    key = (trace[0].pc, outcomes, len(trace))
    config = ResourceAwareMapper().map_trace(trace, key)
    assert config is not None
    return config


def loop_body(b):
    mem_base = 0x100
    b.li("r1", mem_base)
    b.fli("f1", 2.0)
    with b.countdown("loop", "r2", 4):
        b.flw("f2", "r1", 0)
        b.fmul("f3", "f2", "f1")
        b.fadd("f4", "f4", "f3")
        b.fsw("r1", "f3", 0x1000)
        b.addi("r1", "r1", 4)


def make_loop_memory():
    mem = Memory()
    mem.store_array(0x100, [1.0] * 8)
    return mem


def test_round_trip_preserves_structure():
    config = mapped_config(loop_body, make_loop_memory())
    rebuilt = decode(encode(config))
    assert rebuilt.trace_key == config.trace_key
    assert rebuilt.live_ins == config.live_ins
    assert rebuilt.live_outs == config.live_outs
    assert rebuilt.branch_outcomes == config.branch_outcomes
    assert rebuilt.mem_op_pcs == config.mem_op_pcs
    assert rebuilt.mem_op_kinds == config.mem_op_kinds
    assert len(rebuilt.placements) == len(config.placements)
    for a, b in zip(rebuilt.placements, config.placements):
        assert (a.pos, a.opcode, a.stripe, a.pe_index, a.pool) == (
            b.pos, b.opcode, b.stripe, b.pe_index, b.pool)
        assert a.dest_reg == b.dest_reg
        assert a.pc == b.pc
        assert a.predicted_taken == b.predicted_taken
        assert a.mem_index == b.mem_index
        assert a.sources == b.sources
        assert a.source_roles == b.source_roles


def test_decoded_configuration_validates():
    config = mapped_config(loop_body, make_loop_memory())
    decode(encode(config)).validate()


def test_block_accounting():
    config = mapped_config(loop_body, make_loop_memory())
    encoded = encode(config)
    assert encoded.blocks == -(-encoded.size_bytes // CONFIG_BLOCK_BYTES)
    assert configuration_blocks(config) == encoded.blocks
    # A real 20-odd-op trace needs multiple 16-byte blocks.
    assert encoded.blocks > 1


def test_size_grows_with_trace_length():
    small = mapped_config(loop_body, make_loop_memory())

    def bigger(b):
        loop_body(b)
        for i in range(1, 9):
            b.addi(f"r{i + 3}", f"r{i + 2}", 1)

    big = mapped_config(bigger, make_loop_memory())
    assert encode(big).size_bytes > encode(small).size_bytes


REGS = [f"r{i}" for i in range(1, 8)]
int_op = st.tuples(
    st.sampled_from(["add", "sub", "xor", "min_"]),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
)


@given(ops=st.lists(int_op, min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_round_trip_property(ops):
    def body(b):
        for name, d, a, c in ops:
            getattr(b, name)(d, a, c)

    b = ProgramBuilder("prop")
    body(b)
    b.halt()
    trace = FunctionalExecutor().run(b.build()).trace[:-1]
    key = (trace[0].pc, (), len(trace))
    config = ResourceAwareMapper().map_trace(trace, key)
    if config is None:
        return
    rebuilt = decode(encode(config))
    rebuilt.validate()
    assert [(p.pos, p.opcode, p.stripe) for p in rebuilt.placements] == \
           [(p.pos, p.opcode, p.stripe) for p in config.placements]
