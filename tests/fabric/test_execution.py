"""Tests for the fabric dataflow timing engine (hand-built configurations)."""

import pytest

from repro.fabric.config import FabricConfig
from repro.fabric.configuration import Configuration, OperandSource, PlacedOp
from repro.fabric.fabric import InvocationContext, SpatialFabric
from repro.isa.opcodes import Opcode, OpClass


def placed(pos, opcode, opclass, stripe, sources=(), roles=None, pool="int_alu",
           dest=None, mem_index=None, pc=None):
    return PlacedOp(
        pos=pos,
        opcode=opcode,
        opclass=opclass,
        stripe=stripe,
        pe_index=0,
        pool=pool,
        sources=tuple(sources),
        source_roles=tuple(roles) if roles is not None else ("src",) * len(sources),
        dest_reg=dest,
        pc=pc if pc is not None else pos * 4,
        mem_index=mem_index,
    )


def inst_src(producer_pos, hops):
    return OperandSource("inst", producer_pos=producer_pos, hops=hops)


def livein(reg):
    return OperandSource("livein", reg=reg)


def make_config(placements, live_ins=(), live_outs=None, mem=()):
    return Configuration(
        trace_key=("t", 0),
        placements=placements,
        live_ins=tuple(live_ins),
        live_outs=live_outs or {},
        branch_outcomes=(),
        mem_op_pcs=tuple(pc for pc, _ in mem),
        mem_op_kinds=tuple(kind for _, kind in mem),
    )


def flat_cache(addr):
    return 2  # constant L1-hit latency


def ctx(start=0, live_in_ready=None, mem_addrs=None, speculative=True, **kw):
    return InvocationContext(
        start_lower_bound=start,
        live_in_ready=live_in_ready or {},
        mem_addrs=mem_addrs or {},
        dcache_access=flat_cache,
        speculative=speculative,
        **kw,
    )


def fresh_fabric(config=None):
    fabric = SpatialFabric(config or FabricConfig())
    return fabric


def configure(fabric, configuration, cycle=0):
    fabric.configure(configuration, cycle)
    return fabric


# ---------------------------------------------------------------------------
# Dataflow timing
# ---------------------------------------------------------------------------
def test_chain_latency_accumulates():
    cfg = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")], dest="r2"),
        placed(1, Opcode.ADD, OpClass.INT_ALU, 1, [inst_src(0, 1)], dest="r3"),
        placed(2, Opcode.ADD, OpClass.INT_ALU, 2, [inst_src(1, 1)], dest="r4"),
    ], live_ins=["r1"], live_outs={"r4": 2})
    fabric = configure(fresh_fabric(), cfg)
    result = fabric.execute(cfg, ctx(start=10))
    # livein arrives 10+bus(1)=11; each ALU adds 1 cycle, adjacent hops free.
    assert result.finish_times[0] == 12
    assert result.finish_times[1] == 13
    assert result.finish_times[2] == 14
    assert result.liveout_ready["r4"] == 15  # +bus


def test_multi_hop_route_adds_pass_register_latency():
    cfg = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")], dest="r2"),
        placed(1, Opcode.ADD, OpClass.INT_ALU, 4, [inst_src(0, 4)], dest="r3"),
    ], live_ins=["r1"], live_outs={"r3": 1})
    fabric = configure(fresh_fabric(), cfg)
    result = fabric.execute(cfg, ctx(start=0))
    # producer finishes at 2; 4 hops -> 3 extra pass-register cycles.
    assert result.finish_times[1] == 2 + 3 + 1


def test_independent_ops_run_in_parallel():
    cfg = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")], dest="r2"),
        placed(1, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r3")], dest="r4"),
    ], live_ins=["r1", "r3"], live_outs={"r2": 0, "r4": 1})
    fabric = configure(fresh_fabric(), cfg)
    result = fabric.execute(cfg, ctx())
    assert result.finish_times[0] == result.finish_times[1]


def test_live_in_readiness_delays_start():
    cfg = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")], dest="r2"),
    ], live_ins=["r1"], live_outs={"r2": 0})
    fabric = configure(fresh_fabric(), cfg)
    result = fabric.execute(cfg, ctx(start=0, live_in_ready={"r1": 50}))
    assert result.finish_times[0] == 52  # 50 + bus + 1


def test_datapath_and_fifo_accounting():
    cfg = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")], dest="r2"),
        placed(1, Opcode.ADD, OpClass.INT_ALU, 3, [inst_src(0, 3)], dest="r3"),
    ], live_ins=["r1"], live_outs={"r3": 1})
    fabric = configure(fresh_fabric(), cfg)
    result = fabric.execute(cfg, ctx())
    assert result.fu_ops == 2
    assert result.datapath_transfers == 3
    assert result.fifo_ops == 2  # one live-in + one live-out


# ---------------------------------------------------------------------------
# Pipelined invocations
# ---------------------------------------------------------------------------
def test_back_to_back_invocations_pipeline():
    cfg = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")], dest="r2"),
        placed(1, Opcode.FMUL, OpClass.FP_MUL, 1, [inst_src(0, 1)],
               pool="fp_muldiv", dest="f1"),
    ], live_ins=["r1"], live_outs={"f1": 1})
    fabric = configure(fresh_fabric(), cfg)
    first = fabric.execute(cfg, ctx(start=0))
    second = fabric.execute(cfg, ctx(start=0))
    assert second.start >= first.start + first.structural_ii
    # Pipelined: second starts long before the first completes... and the
    # initiation interval is far smaller than the invocation latency.
    assert second.start - first.start < first.complete - first.start + 1


def test_unpipelined_divider_raises_initiation_interval():
    cfg_div = make_config([
        placed(0, Opcode.FDIV, OpClass.FP_DIV, 0, [livein("f1")],
               pool="fp_muldiv", dest="f2"),
    ], live_ins=["f1"], live_outs={"f2": 0})
    fabric = configure(fresh_fabric(), cfg_div)
    first = fabric.execute(cfg_div, ctx())
    second = fabric.execute(cfg_div, ctx())
    assert second.start - first.start >= 12  # divider occupancy


def test_fifo_depth_bounds_inflight_invocations():
    config = FabricConfig(fifo_depth=2)
    cfg = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")], dest="r2"),
    ], live_ins=["r1"], live_outs={"r2": 0})
    fabric = configure(SpatialFabric(config), cfg)
    results = [fabric.execute(cfg, ctx(live_in_ready={"r1": 100})) for _ in range(3)]
    # With depth 2, the third invocation waits for the first to drain.
    assert results[2].start > results[1].start


def test_execute_requires_matching_configuration():
    cfg = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")], dest="r2"),
    ], live_ins=["r1"], live_outs={"r2": 0})
    fabric = fresh_fabric()
    with pytest.raises(ValueError, match="not configured"):
        fabric.execute(cfg, ctx())


# ---------------------------------------------------------------------------
# Memory ordering
# ---------------------------------------------------------------------------
def make_store_load(same_addr=True):
    """A store (late data) followed by a load in trace order."""
    store_addr = 0x100
    load_addr = 0x100 if same_addr else 0x200
    placements = [
        placed(0, Opcode.FDIV, OpClass.FP_DIV, 0, [livein("f1")],
               pool="fp_muldiv", dest="f2"),                    # slow data
        placed(1, Opcode.SW, OpClass.STORE, 1,
               [livein("r1"), inst_src(0, 1)], roles=["base", "value"],
               pool="ldst", mem_index=0, pc=0x40),
        placed(2, Opcode.LW, OpClass.LOAD, 1, [livein("r2")],
               roles=["base"], pool="ldst", dest="r3", mem_index=1, pc=0x44),
    ]
    cfg = make_config(placements, live_ins=["f1", "r1", "r2"],
                      live_outs={"r3": 2},
                      mem=[(0x40, "store"), (0x44, "load")])
    return cfg, {0: store_addr, 1: load_addr}


def test_speculative_load_bypasses_slow_store():
    cfg, addrs = make_store_load(same_addr=False)
    fabric = configure(fresh_fabric(), cfg)
    result = fabric.execute(cfg, ctx(mem_addrs=addrs, speculative=True))
    load = [e for e in result.mem_events if e.kind == "load"][0]
    store = [e for e in result.mem_events if e.kind == "store"][0]
    assert load.start < store.finish
    assert result.violations == []


def test_conservative_load_waits_for_all_older_stores():
    cfg, addrs = make_store_load(same_addr=False)
    fabric = configure(fresh_fabric(), cfg)
    result = fabric.execute(cfg, ctx(mem_addrs=addrs, speculative=False))
    load = [e for e in result.mem_events if e.kind == "load"][0]
    store = [e for e in result.mem_events if e.kind == "store"][0]
    assert load.start >= store.finish
    assert result.violations == []


def test_aliasing_speculative_load_detects_violation_or_forwards():
    cfg, addrs = make_store_load(same_addr=True)
    fabric = configure(fresh_fabric(), cfg)
    result = fabric.execute(cfg, ctx(mem_addrs=addrs, speculative=True))
    # The store's address resolves early (base is a live-in), so the load
    # forwards rather than violating; its data arrives after the store's.
    load = [e for e in result.mem_events if e.kind == "load"][0]
    store = [e for e in result.mem_events if e.kind == "store"][0]
    assert load.finish > store.finish
    assert result.violations == []


def test_predicted_store_dependence_delays_load():
    cfg, addrs = make_store_load(same_addr=True)
    fabric = configure(fresh_fabric(), cfg)
    result = fabric.execute(
        cfg,
        ctx(mem_addrs=addrs, speculative=True, predicted_store_pos={1: 1}),
    )
    load = [e for e in result.mem_events if e.kind == "load"][0]
    store = [e for e in result.mem_events if e.kind == "store"][0]
    assert load.start >= store.finish
    assert result.violations == []


def test_extra_mem_wait_applies():
    cfg, addrs = make_store_load(same_addr=False)
    fabric = configure(fresh_fabric(), cfg)
    result = fabric.execute(
        cfg, ctx(mem_addrs=addrs, speculative=True, extra_mem_wait={1: 500})
    )
    load = [e for e in result.mem_events if e.kind == "load"][0]
    assert load.start >= 500


# ---------------------------------------------------------------------------
# Configuration lifetime bookkeeping (Table 5 inputs)
# ---------------------------------------------------------------------------
def test_lifetime_recorded_on_reconfiguration():
    cfg_a = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")], dest="r2"),
    ], live_ins=["r1"], live_outs={"r2": 0})
    cfg_b = Configuration(
        trace_key=("u", 1),
        placements=[placed(0, Opcode.ADD, OpClass.INT_ALU, 0,
                           [livein("r1")], dest="r2")],
        live_ins=("r1",),
        live_outs={"r2": 0},
        branch_outcomes=(),
        mem_op_pcs=(),
        mem_op_kinds=(),
    )
    fabric = fresh_fabric()
    fabric.configure(cfg_a, 0)
    for _ in range(5):
        fabric.execute(cfg_a, ctx())
    fabric.configure(cfg_b, 100)
    fabric.execute(cfg_b, ctx(start=100))
    assert fabric.lifetime_invocations == [5]
    assert fabric.flush_lifetime() == [5, 1]


def test_power_gating_tracks_active_pes():
    cfg = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")], dest="r2"),
        placed(1, Opcode.ADD, OpClass.INT_ALU, 1, [inst_src(0, 1)], dest="r3"),
    ], live_ins=["r1"], live_outs={"r3": 1})
    fabric = fresh_fabric()
    fabric.configure(cfg, 0)
    assert fabric.active_pes == 2
    total = fabric.config.num_stripes * fabric.config.pes_per_stripe
    assert fabric.active_pes < total
