"""Tests for heterogeneous fabric geometries (CCA-like triangle)."""

import pytest

from repro.core.mapper import ResourceAwareMapper
from repro.core.tables import MappingTables, pos_token
from repro.energy.area import FabricAreaModel
from repro.fabric.config import cca_like, FabricConfig
from repro.fabric.stripe import build_stripes
from repro.isa.builder import ProgramBuilder
from repro.isa.executor import FunctionalExecutor


def test_per_stripe_pools_length_validated():
    with pytest.raises(ValueError):
        FabricConfig(num_stripes=4, per_stripe_pools=({"int_alu": 1},) * 3)


def test_cca_like_shape():
    cfg = cca_like(num_rows=4, top_width=6)
    assert cfg.num_stripes == 4
    widths = [cfg.pools_for(s)["int_alu"] for s in range(4)]
    assert widths == [6, 5, 4, 3]          # shrinking triangle
    assert cfg.pass_regs_per_fu == 0       # no multi-row bypass
    assert cfg.channels_in_stripe(0) == 0


def test_heterogeneous_stripes_built_correctly():
    cfg = cca_like()
    stripes = build_stripes(cfg)
    assert len(stripes[0]) > len(stripes[-1])
    assert stripes[0].pass_registers == 0


def test_zero_channel_tables_cannot_route_far():
    tables = MappingTables(4, [0, 0, 0, 0])
    tables.define(pos_token(0), stripe=0)
    # Adjacent consumption is free (direct wires)...
    assert tables.in_reuse_set(pos_token(0), boundary=1)
    # ...but no pass registers means no reach beyond the next stripe.
    assert not tables.can_route(pos_token(0), to_boundary=2)


def test_cca_like_rejects_deep_traces():
    b = ProgramBuilder("deep")
    b.li("r1", 1)
    for _ in range(8):
        b.add("r1", "r1", "r1")     # 9-deep chain > 4 rows
    b.halt()
    trace = FunctionalExecutor().run(b.build()).trace[:-1]
    key = (0, (), len(trace))
    assert ResourceAwareMapper(cca_like()).map_trace(trace, key) is None
    assert ResourceAwareMapper().map_trace(trace, key) is not None


def test_cca_like_accepts_shallow_integer_subgraphs():
    b = ProgramBuilder("shallow")
    b.add("r3", "r1", "r2")
    b.add("r4", "r3", "r3")   # consumes only the previous row's value:
    b.add("r5", "r4", "r4")   # no pass registers needed
    b.halt()
    trace = FunctionalExecutor().run(b.build()).trace[:-1]
    key = (0, (), len(trace))
    config = ResourceAwareMapper(cca_like()).map_trace(trace, key)
    assert config is not None
    config.validate()


def test_heterogeneous_area_sums_per_stripe():
    model = FabricAreaModel(cca_like())
    total = model.fabric_area_mm2()
    uniform = FabricAreaModel(FabricConfig(num_stripes=4)).fabric_area_mm2()
    assert 0 < total < uniform  # the triangle is smaller than 4 full stripes
