"""Functional fabric execution: mapped traces compute correct values.

The strongest correctness property in the repository: for every hot trace
of every benchmark, evaluating the resource-aware mapper's configuration
as a dataflow over *values* reproduces the oracle's live-out registers,
store values, and branch results exactly.
"""

import pytest

from repro.core.mapper import ResourceAwareMapper
from repro.core.naive_mapper import NaiveMapper
from repro.core.tcache import TraceWindowBuilder
from repro.fabric.functional import (
    CoSimulator,
    FabricExecutionError,
    FunctionalFabric,
)
from repro.isa.builder import ProgramBuilder
from repro.isa.executor import FunctionalExecutor, Memory
from repro.workloads import ALL_ABBREVS, get_benchmark

SCALE = 0.12


def build_run(build, memory=None):
    b = ProgramBuilder("t")
    build(b)
    b.halt()
    program = b.build()
    memory = memory if memory is not None else Memory()
    result = FunctionalExecutor().run(program, memory)
    return program, result


def map_segment(segment):
    outcomes = tuple(bool(d.taken) for d in segment if d.is_branch)
    key = (segment[0].pc, outcomes, len(segment))
    return ResourceAwareMapper().map_trace(segment, key)


def test_simple_arith_values():
    def body(b):
        b.li("r1", 6)
        b.li("r2", 7)
        b.mul("r3", "r1", "r2")
        b.addi("r4", "r3", 1)

    program, run = build_run(body)
    segment = run.trace[:-1]
    config = map_segment(segment)
    fabric = FunctionalFabric()
    result = fabric.execute(config, {}, Memory(), segment)
    assert result.live_outs["r3"] == 42
    assert result.live_outs["r4"] == 43


def test_live_in_values_flow_through():
    def body(b):
        b.fadd("f3", "f1", "f2")
        b.fmul("f4", "f3", "f1")

    program, run = build_run(body)
    segment = run.trace[:-1]
    config = map_segment(segment)
    result = FunctionalFabric().execute(
        config, {"f1": 2.0, "f2": 3.0}, Memory(), segment
    )
    assert result.live_outs["f3"] == 5.0
    assert result.live_outs["f4"] == 10.0


def test_missing_live_in_raises():
    def body(b):
        b.add("r3", "r1", "r2")

    program, run = build_run(body)
    segment = run.trace[:-1]
    config = map_segment(segment)
    with pytest.raises(FabricExecutionError, match="live-in"):
        FunctionalFabric().execute(config, {"r1": 1}, Memory(), segment)


def test_store_buffer_forwards_to_later_load():
    mem = Memory()

    def body(b):
        b.li("r1", 0x100)
        b.li("r2", 99)
        b.sw("r1", "r2", 0)
        b.lw("r3", "r1", 0)

    program, run = build_run(body, mem)
    segment = run.trace[:-1]
    config = map_segment(segment)
    scratch = Memory()  # the store has not reached memory yet
    result = FunctionalFabric().execute(config, {}, scratch, segment)
    assert result.live_outs["r3"] == 99
    assert scratch.load(0x100) == 99  # committed at the end


def test_commit_false_leaves_memory_untouched():
    def body(b):
        b.li("r1", 0x40)
        b.li("r2", 5)
        b.sw("r1", "r2", 0)

    program, run = build_run(body, Memory())
    segment = run.trace[:-1]
    config = map_segment(segment)
    scratch = Memory()
    result = FunctionalFabric().execute(config, {}, scratch, segment,
                                        commit=False)
    assert result.stores == [(0x40, 5)]
    assert scratch.load(0x40) == 0


def test_branch_results_recorded():
    def body(b):
        b.li("r1", 3)
        b.label("loop")
        b.addi("r1", "r1", -1)
        b.bne("r1", "r0", "loop")

    program, run = build_run(body)
    segment = run.trace[:5]  # li + two iterations (taken, taken)
    config = map_segment(segment)
    result = FunctionalFabric().execute(config, {}, Memory(), segment)
    assert result.branch_results == [True, True]


def cosim_benchmark(abbrev, mapper_cls=ResourceAwareMapper):
    """Map every distinct hot window and co-simulate the whole trace."""
    program, memory = get_benchmark(abbrev).build(SCALE)
    run = FunctionalExecutor(max_instructions=20_000_000).run(
        program, memory
    )
    builder = TraceWindowBuilder(max_length=32)
    mapper = mapper_cls()
    configs = {}
    occurrences = {}
    for dyn in run.trace:
        window = builder.feed(dyn)
        if window is None:
            continue
        key = window.key
        if key not in configs:
            configs[key] = mapper.map_trace(window.instructions, key)
        if configs[key] is not None:
            occurrences[window.start_seq] = (window.instructions, configs[key])

    # Fresh memory image for the replay.
    program2, memory2 = get_benchmark(abbrev).build(SCALE)
    cosim = CoSimulator(program2, memory2)
    verified = cosim.run(run.trace, occurrences)
    return verified, cosim


@pytest.mark.parametrize("abbrev", sorted(ALL_ABBREVS))
def test_every_benchmark_mapping_computes_correct_values(abbrev):
    verified, cosim = cosim_benchmark(abbrev)
    assert verified > 10, f"{abbrev}: too few invocations verified"
    assert cosim.mismatches == []


@pytest.mark.parametrize("abbrev", ["KM", "NW", "BFS"])
def test_naive_mapper_also_computes_correct_values(abbrev):
    verified, cosim = cosim_benchmark(abbrev, mapper_cls=NaiveMapper)
    assert verified > 5
    assert cosim.mismatches == []
