"""Unit tests for program containers, linking, and validation."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Instruction, WORD_SIZE
from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock, Program, ProgramError


def simple_program():
    b = ProgramBuilder("p")
    b.li("r1", 1)
    b.label("body")
    b.addi("r1", "r1", 1)
    b.beq("r1", "r0", "body")
    b.halt()
    return b.build()


def test_pcs_are_word_spaced_and_unique():
    p = simple_program()
    pcs = [inst.pc for inst in p.instructions]
    assert pcs == list(range(0, WORD_SIZE * len(pcs), WORD_SIZE))
    assert len(set(pcs)) == len(pcs)


def test_label_pc_resolution():
    p = simple_program()
    assert p.label_pc["entry"] == 0
    assert p.label_pc["body"] == WORD_SIZE
    branch = p.instructions[2]
    assert branch.opcode is Opcode.BEQ
    assert p.target_pc(branch) == WORD_SIZE


def test_by_pc_matches_instruction_list():
    p = simple_program()
    for inst in p.instructions:
        assert p.by_pc[inst.pc] is inst


def test_unknown_target_rejected():
    b = ProgramBuilder("bad")
    b.beq("r1", "r0", "nowhere")
    b.halt()
    with pytest.raises(ProgramError, match="unknown target"):
        b.build()


def test_duplicate_label_rejected():
    blocks = [BasicBlock("a"), BasicBlock("a")]
    for blk in blocks:
        blk.append(Instruction(Opcode.NOP))
    blocks[-1].append(Instruction(Opcode.HALT))
    with pytest.raises(ProgramError, match="duplicate"):
        Program(blocks)


def test_empty_block_rejected():
    blocks = [BasicBlock("a"), BasicBlock("b")]
    blocks[0].append(Instruction(Opcode.HALT))
    with pytest.raises(ProgramError, match="empty"):
        Program(blocks)


def test_missing_halt_rejected():
    b = ProgramBuilder("nohalt")
    b.li("r1", 1)
    with pytest.raises(ProgramError, match="HALT"):
        b.build()


def test_instruction_after_jump_rejected():
    blk = BasicBlock("a")
    blk.append(Instruction(Opcode.JMP, target="a"))
    with pytest.raises(ProgramError, match="after unconditional"):
        blk.append(Instruction(Opcode.NOP))


def test_target_pc_requires_target():
    p = simple_program()
    with pytest.raises(ProgramError):
        p.target_pc(p.instructions[0])


def test_static_size():
    p = simple_program()
    assert p.static_size() == len(p) == 4
