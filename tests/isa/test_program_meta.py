"""Tests for the precomputed per-PC static metadata on ``Program``."""

from repro.isa.instructions import WORD_SIZE
from repro.isa.opcodes import Opcode, OpClass, opclass_of
from repro.workloads import generate_trace

SCALE = 0.05


def reference_distance(program, pc: int, limit: int) -> int:
    """The pre-metadata instruction-by-instruction walk (seed semantics)."""
    cursor = pc
    distance = 0
    while distance < limit:
        inst = program.by_pc.get(cursor)
        if inst is None or inst.opcode is Opcode.HALT:
            return limit
        distance += 1
        if inst.is_branch:
            return distance
        if inst.opclass.is_control:
            cursor = program.target_pc(inst)
        else:
            cursor += WORD_SIZE
    return limit


def test_instruction_metadata_matches_opclass():
    program = generate_trace("KM", SCALE).program
    for inst in program.instructions:
        assert inst.opclass is opclass_of(inst.opcode)
        assert inst.latency >= 1
        assert inst.is_branch == (inst.opclass is OpClass.BRANCH)
        assert inst.is_control == inst.opclass.is_control
        assert inst.is_load == (inst.opclass is OpClass.LOAD)
        assert inst.is_store == (inst.opclass is OpClass.STORE)
        assert inst.is_memory == inst.opclass.is_memory


def test_dynamic_instruction_flattened_fields():
    trace = generate_trace("BFS", SCALE).trace
    for dyn in trace[:2000]:
        assert dyn.pc == dyn.static.pc
        assert dyn.opcode is dyn.static.opcode
        assert dyn.is_branch == dyn.static.is_branch


def test_distance_matches_reference_walk_everywhere():
    for abbrev in ("KM", "NW", "SRAD"):
        program = generate_trace(abbrev, SCALE).program
        for limit in (9, 33):
            for inst in program.instructions:
                assert program.distance_to_next_branch(inst.pc, limit) == (
                    reference_distance(program, inst.pc, limit)
                ), (abbrev, hex(inst.pc), limit)


def test_segment_summaries_are_consistent():
    program = generate_trace("KM", SCALE).program
    for inst in program.instructions:
        seg = program.segment_from(inst.pc)
        if seg.halts:
            # The run reaches HALT (or leaves the program) before a branch.
            assert seg.branch_pc is None
            continue
        assert seg.count >= 1
        branch = program.by_pc[seg.branch_pc]
        assert branch.is_branch
        assert seg.fall_pc == seg.branch_pc + WORD_SIZE
        assert seg.taken_pc == program.target_pc(branch)


def test_segment_from_unmapped_pc_halts():
    program = generate_trace("KM", SCALE).program
    seg = program.segment_from(0xDEAD00)
    assert seg.halts and seg.count == 0


def test_segments_are_cached():
    program = generate_trace("KM", SCALE).program
    assert program.segment_from(0) is program.segment_from(0)
