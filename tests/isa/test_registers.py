"""Unit tests for the architectural register model."""

import pytest

from repro.isa.registers import (
    ArchRegisterFile,
    FREGS,
    IREGS,
    is_fp_reg,
    is_int_reg,
    validate_reg,
)


def test_register_name_sets():
    assert len(IREGS) == 32
    assert len(FREGS) == 32
    assert "r0" in IREGS and "r31" in IREGS
    assert "f0" in FREGS and "f31" in FREGS


def test_name_classification():
    assert is_int_reg("r7") and not is_fp_reg("r7")
    assert is_fp_reg("f7") and not is_int_reg("f7")
    assert not is_int_reg("r32")
    assert not is_fp_reg("x1")


def test_validate_reg_rejects_unknown():
    assert validate_reg("r5") == "r5"
    with pytest.raises(ValueError):
        validate_reg("r99")
    with pytest.raises(ValueError):
        validate_reg("zero")


def test_r0_hardwired_zero():
    regs = ArchRegisterFile()
    regs.write("r0", 42)
    assert regs.read("r0") == 0


def test_int_write_coerces_to_int():
    regs = ArchRegisterFile()
    regs.write("r1", 3.9)
    assert regs.read("r1") == 3


def test_fp_write_coerces_to_float():
    regs = ArchRegisterFile()
    regs.write("f1", 3)
    assert regs.read("f1") == 3.0
    assert isinstance(regs.read("f1"), float)


def test_unknown_register_raises():
    regs = ArchRegisterFile()
    with pytest.raises(ValueError):
        regs.read("q1")
    with pytest.raises(ValueError):
        regs.write("q1", 0)


def test_snapshot_contains_all_registers():
    regs = ArchRegisterFile()
    regs.write("r3", 7)
    regs.write("f3", 2.5)
    snap = regs.snapshot()
    assert snap["r3"] == 7
    assert snap["f3"] == 2.5
    assert len(snap) == 64
