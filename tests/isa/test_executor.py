"""Unit tests for the functional executor and memory model."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import ExecutionLimitExceeded, FunctionalExecutor, Memory
from repro.isa.opcodes import Opcode


def run(build, memory=None, **kwargs):
    b = ProgramBuilder("t")
    build(b)
    b.halt()
    return FunctionalExecutor(**kwargs).run(b.build(), memory)


def test_arithmetic_semantics():
    def body(b):
        b.li("r1", 10)
        b.li("r2", 3)
        b.add("r3", "r1", "r2")
        b.sub("r4", "r1", "r2")
        b.mul("r5", "r1", "r2")
        b.div("r6", "r1", "r2")
        b.rem("r7", "r1", "r2")
        b.min_("r8", "r1", "r2")
        b.max_("r9", "r1", "r2")

    regs = run(body).registers
    assert regs.read("r3") == 13
    assert regs.read("r4") == 7
    assert regs.read("r5") == 30
    assert regs.read("r6") == 3
    assert regs.read("r7") == 1
    assert regs.read("r8") == 3
    assert regs.read("r9") == 10


def test_division_by_zero_is_defined():
    def body(b):
        b.li("r1", 5)
        b.div("r2", "r1", "r0")
        b.rem("r3", "r1", "r0")
        b.fli("f1", 5.0)
        b.fli("f2", 0.0)
        b.fdiv("f3", "f1", "f2")

    regs = run(body).registers
    assert regs.read("r2") == 0
    assert regs.read("r3") == 0
    assert regs.read("f3") == 0.0


def test_float_semantics():
    def body(b):
        b.fli("f1", 2.0)
        b.fli("f2", 8.0)
        b.fadd("f3", "f1", "f2")
        b.fmul("f4", "f1", "f2")
        b.fsqrt("f5", "f4")
        b.fslt("r1", "f1", "f2")
        b.cvtfi("r2", "f2")
        b.cvtif("f6", "r1")

    regs = run(body).registers
    assert regs.read("f3") == 10.0
    assert regs.read("f4") == 16.0
    assert regs.read("f5") == 4.0
    assert regs.read("r1") == 1
    assert regs.read("r2") == 8
    assert regs.read("f6") == 1.0


def test_shift_and_bitwise():
    def body(b):
        b.li("r1", 0b1010)
        b.shl("r2", "r1", 2)
        b.shr("r3", "r1", 1)
        b.andi("r4", "r1", 0b0110)
        b.xori("r5", "r1", 0b1111)

    regs = run(body).registers
    assert regs.read("r2") == 0b101000
    assert regs.read("r3") == 0b101
    assert regs.read("r4") == 0b0010
    assert regs.read("r5") == 0b0101


def test_memory_round_trip():
    mem = Memory()

    def body(b):
        b.li("r1", 0x100)
        b.li("r2", 77)
        b.sw("r1", "r2", 4)
        b.lw("r3", "r1", 4)

    result = run(body, mem)
    assert result.registers.read("r3") == 77
    assert mem.load(0x104) == 77


def test_trace_records_memory_addresses():
    mem = Memory()
    mem.store(0x200, 5)

    def body(b):
        b.li("r1", 0x200)
        b.lw("r2", "r1", 0)
        b.sw("r1", "r2", 8)

    trace = run(body, mem).trace
    load = trace[1]
    store = trace[2]
    assert load.is_load and load.addr == 0x200
    assert store.is_store and store.addr == 0x208


def test_trace_records_branch_outcomes_and_next_pc():
    def body(b):
        b.li("r1", 2)
        b.label("loop")
        b.addi("r1", "r1", -1)
        b.bne("r1", "r0", "loop")

    result = run(body)
    branches = [d for d in result.trace if d.is_branch]
    assert [d.taken for d in branches] == [True, False]
    assert branches[0].next_pc == result.program.label_pc["loop"]
    assert branches[1].next_pc == branches[1].pc + 4


def test_trace_seq_is_contiguous():
    def body(b):
        b.li("r1", 3)
        b.label("loop")
        b.addi("r1", "r1", -1)
        b.bne("r1", "r0", "loop")

    trace = run(body).trace
    assert [d.seq for d in trace] == list(range(len(trace)))


def test_jump_redirects():
    def body(b):
        b.jmp("skip")
        b.label("dead")
        b.li("r1", 99)
        b.label("skip")
        b.li("r2", 1)

    regs = run(body).registers
    assert regs.read("r1") == 0
    assert regs.read("r2") == 1


def test_instruction_limit_guards_infinite_loops():
    def body(b):
        b.label("spin")
        b.jmp("spin")
        b.label("unreachable")

    with pytest.raises(ExecutionLimitExceeded):
        run(body, max_instructions=100)


def test_memory_alignment_enforced():
    mem = Memory()
    with pytest.raises(ValueError):
        mem.load(3)
    with pytest.raises(ValueError):
        mem.store(-4, 1)


def test_memory_arrays():
    mem = Memory()
    mem.store_array(0x40, [1, 2, 3])
    assert mem.load_array(0x40, 3) == [1, 2, 3]
    assert len(mem) == 3


def test_halt_is_in_trace():
    def body(b):
        b.li("r1", 1)

    trace = run(body).trace
    assert trace[-1].opcode is Opcode.HALT
