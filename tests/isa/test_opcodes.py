"""Unit tests for opcode classification and latency tables."""

from repro.isa.opcodes import (
    FU_LATENCY,
    FU_PIPELINED,
    Opcode,
    OpClass,
    latency_of,
    opclass_of,
)


def test_every_opcode_has_a_class():
    for op in Opcode:
        assert isinstance(opclass_of(op), OpClass)


def test_every_class_has_latency_and_pipelining():
    for cls in OpClass:
        assert FU_LATENCY[cls] >= 1
        assert isinstance(FU_PIPELINED[cls], bool)


def test_memory_classification():
    assert opclass_of(Opcode.LW) is OpClass.LOAD
    assert opclass_of(Opcode.FLW) is OpClass.LOAD
    assert opclass_of(Opcode.SW) is OpClass.STORE
    assert opclass_of(Opcode.FSW) is OpClass.STORE
    assert OpClass.LOAD.is_memory and OpClass.STORE.is_memory
    assert not OpClass.INT_ALU.is_memory


def test_control_classification():
    for op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
        assert opclass_of(op) is OpClass.BRANCH
    assert opclass_of(Opcode.JMP) is OpClass.JUMP
    assert OpClass.BRANCH.is_control and OpClass.JUMP.is_control


def test_int_fp_split():
    assert opclass_of(Opcode.ADD) is OpClass.INT_ALU
    assert opclass_of(Opcode.MUL) is OpClass.INT_MUL
    assert opclass_of(Opcode.DIV) is OpClass.INT_DIV
    assert opclass_of(Opcode.FADD) is OpClass.FP_ALU
    assert opclass_of(Opcode.FMUL) is OpClass.FP_MUL
    assert opclass_of(Opcode.FDIV) is OpClass.FP_DIV


def test_long_latency_units_are_unpipelined():
    assert not FU_PIPELINED[OpClass.INT_DIV]
    assert not FU_PIPELINED[OpClass.FP_DIV]
    assert FU_PIPELINED[OpClass.INT_ALU]


def test_latency_ordering_matches_hardware_intuition():
    assert latency_of(Opcode.ADD) < latency_of(Opcode.MUL) < latency_of(Opcode.DIV)
    assert latency_of(Opcode.FADD) < latency_of(Opcode.FMUL) < latency_of(Opcode.FDIV)
