"""Unit tests for the program-builder DSL."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Opcode, OpClass


def test_entry_label_renamed_when_unused():
    b = ProgramBuilder("p")
    b.label("start")
    b.halt()
    p = b.build()
    assert "start" in p.label_pc
    assert "entry" not in p.label_pc


def test_entry_label_kept_when_used():
    b = ProgramBuilder("p")
    b.li("r1", 0)
    b.label("next")
    b.halt()
    p = b.build()
    assert set(p.label_pc) == {"entry", "next"}


def test_register_validation_is_eager():
    b = ProgramBuilder("p")
    with pytest.raises(ValueError):
        b.add("r1", "r2", "r33")
    with pytest.raises(ValueError):
        b.lw("bogus", "r1")


def test_immediate_forms_have_single_source():
    b = ProgramBuilder("p")
    b.addi("r1", "r2", 5)
    b.halt()
    inst = b.build().instructions[0]
    assert inst.opcode is Opcode.ADD
    assert inst.srcs == ("r2",)
    assert inst.imm == 5


def test_store_encodes_base_and_value():
    b = ProgramBuilder("p")
    b.sw("r1", "r2", 8)
    b.halt()
    inst = b.build().instructions[0]
    assert inst.opcode is Opcode.SW
    assert inst.dest is None
    assert inst.srcs == ("r1", "r2")
    assert inst.imm == 8


def test_branch_encodes_target():
    b = ProgramBuilder("p")
    b.label("top")
    b.bne("r1", "r0", "top")
    b.halt()
    inst = b.build().instructions[0]
    assert inst.target == "top"
    assert inst.is_branch


def test_all_emitters_produce_their_opcode():
    """Spot check a representative emitter per opcode class."""
    b = ProgramBuilder("p")
    b.mul("r1", "r2", "r3")
    b.div("r1", "r2", "r3")
    b.fadd("f1", "f2", "f3")
    b.fdiv("f1", "f2", "f3")
    b.flw("f1", "r1", 0)
    b.fsw("r1", "f1", 0)
    b.jmp("end")
    b.label("end")
    b.halt()
    classes = [i.opclass for i in b.build().instructions]
    assert classes == [
        OpClass.INT_MUL,
        OpClass.INT_DIV,
        OpClass.FP_ALU,
        OpClass.FP_DIV,
        OpClass.LOAD,
        OpClass.STORE,
        OpClass.JUMP,
        OpClass.JUMP,
    ]
