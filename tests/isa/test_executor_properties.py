"""Property-based tests for the functional executor.

These exercise the executor with randomly generated straight-line programs
and check structural invariants of the emitted dynamic traces.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import FunctionalExecutor, Memory
from repro.isa.instructions import WORD_SIZE

INT_OPS = ["add", "sub", "and_", "or_", "xor", "slt", "min_", "max_"]
REGS = [f"r{i}" for i in range(1, 8)]

op_strategy = st.tuples(
    st.sampled_from(INT_OPS),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
)


def build_straightline(ops, init):
    b = ProgramBuilder("prop")
    for reg, value in zip(REGS, init):
        b.li(reg, value)
    for name, d, a, c in ops:
        getattr(b, name)(d, a, c)
    b.halt()
    return b.build()


@given(
    ops=st.lists(op_strategy, min_size=1, max_size=30),
    init=st.lists(st.integers(-100, 100), min_size=len(REGS), max_size=len(REGS)),
)
@settings(max_examples=60, deadline=None)
def test_straightline_trace_matches_program(ops, init):
    """A straight-line program's trace is exactly its instruction list."""
    program = build_straightline(ops, init)
    result = FunctionalExecutor().run(program)
    assert len(result.trace) == len(program)
    for dyn, static in zip(result.trace, program.instructions):
        assert dyn.static is static
        assert dyn.next_pc == dyn.pc + WORD_SIZE or dyn.opcode.value == "halt"


@given(
    ops=st.lists(op_strategy, min_size=1, max_size=30),
    init=st.lists(st.integers(-100, 100), min_size=len(REGS), max_size=len(REGS)),
)
@settings(max_examples=60, deadline=None)
def test_determinism(ops, init):
    """Two runs of the same program produce identical register state."""
    program = build_straightline(ops, init)
    r1 = FunctionalExecutor().run(program).registers.snapshot()
    r2 = FunctionalExecutor().run(program).registers.snapshot()
    assert r1 == r2


@given(
    values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=16),
    base=st.integers(0, 64).map(lambda w: w * WORD_SIZE),
)
@settings(max_examples=60, deadline=None)
def test_store_then_load_round_trips(values, base):
    """Every stored word reads back through the ISA."""
    b = ProgramBuilder("mem")
    b.li("r1", base)
    for i, value in enumerate(values):
        b.li("r2", value)
        b.sw("r1", "r2", i * WORD_SIZE)
    for i in range(len(values)):
        b.lw("r3", "r1", i * WORD_SIZE)
        b.sw("r1", "r3", (len(values) + i) * WORD_SIZE)
    b.halt()
    mem = Memory()
    FunctionalExecutor().run(b.build(), mem)
    originals = mem.load_array(base, len(values))
    copies = mem.load_array(base + len(values) * WORD_SIZE, len(values))
    assert originals == list(values)
    assert copies == list(values)


@given(count=st.integers(1, 50))
@settings(max_examples=30, deadline=None)
def test_counted_loop_executes_exactly_n_iterations(count):
    """Branch outcomes in the trace match loop trip counts."""
    b = ProgramBuilder("loop")
    b.li("r1", count)
    b.label("loop")
    b.addi("r1", "r1", -1)
    b.bne("r1", "r0", "loop")
    b.halt()
    trace = FunctionalExecutor().run(b.build()).trace
    branches = [d for d in trace if d.is_branch]
    assert len(branches) == count
    assert all(d.taken for d in branches[:-1])
    assert branches[-1].taken is False
