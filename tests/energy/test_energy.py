"""Tests for the energy model (Figure 9 machinery)."""

import pytest

from repro.energy import EnergyConstants, EnergyModel, FIGURE9_COMPONENTS
from repro.ooo.stats import PipelineStats


def stats_with(**kw):
    s = PipelineStats()
    for key, value in kw.items():
        setattr(s, key, value)
    return s


def test_empty_stats_zero_energy():
    assert EnergyModel().total(PipelineStats()) == 0.0


def test_all_components_present():
    breakdown = EnergyModel().breakdown(PipelineStats())
    assert set(breakdown.components) == set(FIGURE9_COMPONENTS)


def test_fetch_energy_scales_with_fetches():
    m = EnergyModel()
    one = m.breakdown(stats_with(fetches=1)).components["fetch"]
    ten = m.breakdown(stats_with(fetches=10)).components["fetch"]
    assert ten == pytest.approx(10 * one)


def test_execution_energy_uses_class_specific_costs():
    m = EnergyModel()
    alu = m.breakdown(stats_with(int_alu_ops=1)).components["execution"]
    fdiv = m.breakdown(stats_with(fp_div_ops=1)).components["execution"]
    assert fdiv > alu


def test_memory_hierarchy_costs_ordered():
    c = EnergyConstants()
    assert c.dcache_access < c.l2_access < c.dram_access


def test_front_end_event_costs_dominate_alu():
    """The premise of the paper: delivering an instruction costs more than
    executing it."""
    c = EnergyConstants()
    per_instr_frontend = c.fetch_decode + c.rename + c.dispatch + c.select
    assert per_instr_frontend > 3 * c.int_alu


def test_fabric_events_cheaper_than_pipeline_events():
    c = EnergyConstants()
    assert c.fabric_pass_register < c.regfile_read + c.regfile_write
    assert c.fabric_fifo < c.fetch_decode


def test_reduction_vs_baseline():
    m = EnergyModel()
    base = m.breakdown(stats_with(fetches=100, renames=100))
    accel = m.breakdown(stats_with(fetches=50, renames=50))
    assert accel.reduction_vs(base) == pytest.approx(0.5)
    assert base.reduction_vs(base) == pytest.approx(0.0)


def test_reduction_vs_zero_baseline():
    m = EnergyModel()
    empty = m.breakdown(PipelineStats())
    assert empty.reduction_vs(empty) == 0.0


def test_normalized_components_sum_to_relative_total():
    m = EnergyModel()
    base = m.breakdown(stats_with(fetches=100, int_alu_ops=100))
    accel = m.breakdown(stats_with(fetches=40, int_alu_ops=100,
                                   fabric_int_alu_ops=60))
    norm = accel.normalized_to(base)
    assert sum(norm.values()) == pytest.approx(accel.total / base.total)


def test_offload_moves_energy_from_frontend_to_fabric():
    m = EnergyModel()
    baseline = stats_with(
        fetches=1000, renames=1000, dispatches=1000, selections=1000,
        wakeups=2000, int_alu_ops=1000, regfile_reads=1500,
        regfile_writes=900, bypass_transfers=500, rob_writes=1000,
        commits=1000,
    )
    accelerated = stats_with(
        fetches=200, renames=200, dispatches=200, selections=200,
        wakeups=400, int_alu_ops=200, regfile_reads=300,
        regfile_writes=200, bypass_transfers=100, rob_writes=250,
        commits=250, fabric_int_alu_ops=800, fabric_datapath_transfers=1200,
        fabric_fifo_ops=300, fabric_active_pe_cycles=2000,
        fabric_configurations=3,
    )
    b = m.breakdown(baseline)
    a = m.breakdown(accelerated)
    assert a.components["fetch"] < b.components["fetch"]
    assert a.components["inst_schedule"] < b.components["inst_schedule"]
    assert a.components["fabric"] > 0
    assert a.total < b.total
    # Paper: fabric energy exceeds the baseline Execution slice but stays
    # below Execution + Datapath + InstSchedule.
    bound = (b.components["execution"] + b.components["datapath"]
             + b.components["inst_schedule"])
    assert b.components["execution"] < a.components["fabric"] < bound


def test_custom_constants_injectable():
    custom = EnergyConstants(fetch_decode=1000.0)
    m = EnergyModel(custom)
    assert m.breakdown(stats_with(fetches=1)).components["fetch"] == 1000.0
