"""Tests for the area model (Table 6) and the CACTI stand-in."""

import pytest

from repro.energy.area import (
    BULLDOZER_2CORE_MM2,
    FabricAreaModel,
    MODULE_AREAS_UM2,
    PAPER_CONFIG_CACHE_MM2,
    PAPER_FABRIC_MM2,
)
from repro.energy.cacti import SramModel
from repro.fabric.config import FabricConfig


def test_table6_module_areas_match_paper():
    assert MODULE_AREAS_UM2["sparc_exu_alu"] == 4660
    assert MODULE_AREAS_UM2["sparc_mul_top"] == 47752
    assert MODULE_AREAS_UM2["sparc_exu_div"] == 11227
    assert MODULE_AREAS_UM2["fpu_add"] == 34370
    assert MODULE_AREAS_UM2["fpu_mul"] == 62488
    assert MODULE_AREAS_UM2["fpu_div"] == 13769
    assert MODULE_AREAS_UM2["data_path"] == 4717
    assert MODULE_AREAS_UM2["fifo"] == 848


def test_datapath_block_comparable_to_integer_alu():
    """The paper's observation: a datapath block is almost as large as an
    OpenSparc T1 integer ALU."""
    ratio = MODULE_AREAS_UM2["data_path"] / MODULE_AREAS_UM2["sparc_exu_alu"]
    assert 0.8 < ratio < 1.2


def test_fifo_much_smaller_than_alu():
    assert MODULE_AREAS_UM2["fifo"] < MODULE_AREAS_UM2["sparc_exu_alu"] / 4


def test_eight_stripe_fabric_matches_paper_headline():
    model = FabricAreaModel()
    assert model.fabric_area_mm2(8) == pytest.approx(PAPER_FABRIC_MM2, rel=0.05)


def test_fabric_area_scales_linearly_in_stripes():
    model = FabricAreaModel()
    a8 = model.fabric_area_mm2(8)
    a16 = model.fabric_area_mm2(16)
    fifo = model.fifo_area_um2() / 1e6
    assert a16 - fifo == pytest.approx(2 * (a8 - fifo), rel=1e-9)


def test_fabric_is_small_next_to_bulldozer_cores():
    model = FabricAreaModel()
    assert model.fabric_area_mm2(8) < BULLDOZER_2CORE_MM2 / 8


def test_config_cache_area_matches_paper_order():
    sram = SramModel(entries=16, block_bytes=16)
    assert sram.area_mm2 == pytest.approx(PAPER_CONFIG_CACHE_MM2, rel=0.5)
    assert sram.area_mm2 < 0.01


def test_sram_energy_scales_with_block():
    small = SramModel(entries=16, block_bytes=16)
    big = SramModel(entries=16, block_bytes=64)
    assert big.read_energy_pj > small.read_energy_pj
    assert big.area_mm2 > small.area_mm2


def test_custom_geometry():
    cfg = FabricConfig(stripe_pools={"int_alu": 2, "int_muldiv": 1,
                                     "fp_alu": 2, "fp_muldiv": 1, "ldst": 1})
    slim = FabricAreaModel(cfg)
    assert slim.stripe_area_um2() < FabricAreaModel().stripe_area_um2()
