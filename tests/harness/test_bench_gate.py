"""The bench regression gate script, including the null-sink guard."""

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
_spec = importlib.util.spec_from_file_location(
    "check_bench_regression",
    REPO_ROOT / "scripts" / "check_bench_regression.py",
)
gate = importlib.util.module_from_spec(_spec)
sys.modules["check_bench_regression"] = gate
_spec.loader.exec_module(gate)


def _report(**overrides):
    doc = {
        "wall_clock_seconds": 10.0,
        "cold": True,
        "tracing": False,
        "cache": {"runs_simulated": 5, "hit_ratio": 0.0, "disk": {}},
        "geomean": {"spec": 2.0, "no_spec": 1.5, "mapping": 0.9},
    }
    doc.update(overrides)
    return doc


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def test_gate_passes_within_budget(tmp_path, capsys):
    current = _write(tmp_path, "current.json", _report())
    baseline = _write(tmp_path, "baseline.json", _report())
    assert gate.main([current, baseline, "--require-cold",
                      "--require-null-sink"]) == 0
    assert "OK" in capsys.readouterr().out


def test_gate_fails_on_wall_clock_regression(tmp_path, capsys):
    current = _write(tmp_path, "current.json",
                     _report(wall_clock_seconds=20.0))
    baseline = _write(tmp_path, "baseline.json", _report())
    assert gate.main([current, baseline]) == 1
    assert "wall clock regressed" in capsys.readouterr().err


def test_gate_fails_on_traced_timing(tmp_path, capsys):
    current = _write(tmp_path, "current.json", _report(tracing=True))
    baseline = _write(tmp_path, "baseline.json", _report())
    assert gate.main([current, baseline, "--require-null-sink"]) == 1
    assert "tracing enabled" in capsys.readouterr().err
    # Without the flag the same report passes (back-compat).
    assert gate.main([current, baseline]) == 0


def test_gate_tolerates_pre_tracing_reports(tmp_path):
    doc = _report()
    del doc["tracing"]
    current = _write(tmp_path, "current.json", doc)
    baseline = _write(tmp_path, "baseline.json", _report())
    assert gate.main([current, baseline, "--require-null-sink"]) == 0


def test_gate_fails_on_geomean_drift(tmp_path, capsys):
    current = _write(tmp_path, "current.json",
                     _report(geomean={"spec": 2.5, "no_spec": 1.5,
                                      "mapping": 0.9}))
    baseline = _write(tmp_path, "baseline.json", _report())
    assert gate.main([current, baseline]) == 1
    assert "geomean[spec] drifted" in capsys.readouterr().err
