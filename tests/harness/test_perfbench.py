"""Unit tests for the simulator-throughput benchmark (`repro perfbench`)."""

import json

import pytest

from repro.harness.perfbench import (
    ENGINES,
    MODES,
    PERFBENCH_SCHEMA_VERSION,
    _geomean,
    perfbench_report,
    render_perfbench,
)


def test_geomean():
    assert _geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert _geomean([]) == 0.0
    # Non-positive cells are skipped rather than zeroing the geomean.
    assert _geomean([0.0, 5.0]) == pytest.approx(5.0)


def _tiny_report(**kwargs):
    return perfbench_report(scale=0.02, kernels=["KM"], repeat=1, **kwargs)


def test_report_shape_and_rates():
    report = _tiny_report()
    assert report["perfbench_schema_version"] == PERFBENCH_SCHEMA_VERSION
    assert report["experiment"] == "perfbench"
    assert report["code_fingerprint"]
    assert report["kernels"] == ["KM"]
    assert set(report["engines"]) == set(ENGINES)
    for engine in ENGINES:
        summary = report["engines"][engine]
        assert len(summary["cells"]) == len(MODES)
        assert summary["geomean_instr_per_sec"] > 0
        assert summary["total_instructions"] > 0
        for cell in summary["cells"]:
            assert cell["engine"] == engine
            assert cell["kernel"] == "KM"
            assert cell["instructions"] > 0
            assert cell["instr_per_sec"] > 0
            assert cell["simulated_cycles"] > 0
            if cell["mode"] == "accelerate":
                assert cell["invocations"] > 0
    assert report["speedup"] > 0
    # The report must be JSON-serializable as produced.
    json.dumps(report, sort_keys=True)


def test_single_engine_report_has_no_speedup():
    report = perfbench_report(
        scale=0.02, kernels=["KM"], modes=("baseline",), engines=("fast",)
    )
    assert "speedup" not in report
    assert list(report["engines"]) == ["fast"]


def test_profile_section():
    report = _tiny_report(profile=True)
    profile = report["profile"]
    assert profile["sort"] == "cumulative"
    assert 0 < len(profile["top"]) <= 10
    for entry in profile["top"]:
        assert entry["calls"] > 0
        assert entry["cumtime"] >= entry["tottime"] >= 0
    # The harness profiler snapshot rides along with the cProfile view.
    assert "perfbench_profile_pass" in profile["harness"]["sections_seconds"]


def test_render_perfbench():
    report = _tiny_report()
    text = render_perfbench(report)
    assert "fast" in text
    assert "interpreted" in text
    assert "speedup" in text
