"""Determinism and merging tests for the parallel sweep engine."""

import pytest

import repro.harness.diskcache as diskcache
from repro.harness.parallel import default_jobs, execute_runs
from repro.harness.profiling import PROFILER
from repro.harness.runner import (
    clear_run_cache,
    dynaspam_spec,
    execute_spec,
    run_dynaspam,
)
from repro.obs import progress
from repro.obs.runtime import TRACER
from repro.workloads import ALL_ABBREVS

SCALE = 0.05


@pytest.fixture
def no_disk():
    """Force real simulation in both serial and parallel paths."""
    diskcache.configure(enabled=False)
    yield
    diskcache.configure()


def _fingerprint(result) -> dict:
    return {
        "cycles": result.cycles,
        "coverage": result.coverage,
        "squashes": result.squashes,
        "mapped": result.mapped_traces,
        "offloaded": result.offloaded_traces,
        "stats": result.stats.as_dict(),
    }


def test_parallel_matches_serial_for_all_benchmarks(no_disk):
    specs = [dynaspam_spec(abbrev, SCALE) for abbrev in ALL_ABBREVS]
    assert len(specs) == 11

    clear_run_cache()
    serial = {
        spec.key: _fingerprint(execute_spec(spec)) for spec in specs
    }

    clear_run_cache()
    parallel = {
        key: _fingerprint(result)
        for key, result in execute_runs(specs, jobs=4).items()
    }

    assert set(parallel) == set(serial)
    for key in serial:
        assert parallel[key] == serial[key], key.abbrev


def test_parallel_seeds_in_memory_cache(no_disk):
    clear_run_cache()
    specs = [dynaspam_spec("KM", SCALE), dynaspam_spec("BFS", SCALE)]
    results = execute_runs(specs, jobs=2)
    # The lazy driver path must now be a pure memory hit (same object).
    assert run_dynaspam("KM", SCALE) is results[specs[0].key]
    assert run_dynaspam("BFS", SCALE) is results[specs[1].key]


def test_duplicate_specs_collapse(no_disk):
    clear_run_cache()
    specs = [dynaspam_spec("KM", SCALE)] * 3
    results = execute_runs(specs, jobs=2)
    assert len(results) == 1


def test_jobs_one_runs_serially(no_disk):
    clear_run_cache()
    specs = [dynaspam_spec("KM", SCALE)]
    results = execute_runs(specs, jobs=1)
    assert specs[0].key in results


def test_worker_profiles_and_spans_merge_into_parent(no_disk, monkeypatch):
    """Regression: child-process profiler sections and tracer spans both
    come home through the pool fan-out, tagged per worker process."""
    monkeypatch.delenv("REPRO_MAX_JOBS", raising=False)
    clear_run_cache()
    PROFILER.reset()
    TRACER.reset()
    TRACER.enable("run-pool")
    tracker = progress.ProgressTracker(2, label="test")
    progress.activate(tracker)
    try:
        specs = [dynaspam_spec("KM", SCALE), dynaspam_spec("BFS", SCALE)]
        results = execute_runs(specs, jobs=2)
        assert set(results) == {spec.key for spec in specs}
    finally:
        progress.deactivate()
        TRACER.disable()
        records = TRACER.records()
        TRACER.reset()
        TRACER.run_id = None

    # Worker wall-clock sections land under the workers.* prefix.
    sections = PROFILER.snapshot()["sections_seconds"]
    assert "parallel_execution" in sections
    assert any(name.startswith("workers.") for name in sections)

    # Worker spans are merged with a worker-<pid> process tag and the
    # parent's run id; the parent recorded the fan-out span itself.
    names = {record.name for record in records}
    assert "pool.execute_runs" in names
    assert "pool.worker_batch" in names
    assert "sim.execute_spec" in names
    processes = {record.process for record in records}
    assert "main" in processes
    assert any(p.startswith("worker-") for p in processes)
    worker_records = [r for r in records if r.process != "main"]
    assert worker_records
    assert all(r.attrs.get("run_id") == "run-pool" for r in records)

    # The progress tracker saw every unique spec exactly once.
    assert tracker.done == 2
    assert tracker.instructions > 0


def test_serial_runs_advance_progress(no_disk):
    clear_run_cache()
    tracker = progress.ProgressTracker(1, label="test")
    beats = []
    tracker.add_listener(beats.append)
    progress.activate(tracker)
    try:
        execute_runs([dynaspam_spec("KM", SCALE)], jobs=1)
    finally:
        progress.deactivate()
    assert tracker.done == 1
    assert beats and beats[-1]["fraction"] == 1.0


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_default_jobs_ci_clamp(monkeypatch):
    import os

    from repro.harness.parallel import CI_JOBS_CLAMP

    monkeypatch.delenv("REPRO_MAX_JOBS", raising=False)
    monkeypatch.setenv("CI", "true")
    assert default_jobs() == min(os.cpu_count() or 1, CI_JOBS_CLAMP)
    monkeypatch.delenv("CI")
    assert default_jobs() == (os.cpu_count() or 1)


def test_repro_max_jobs_caps_default(monkeypatch):
    monkeypatch.delenv("CI", raising=False)
    monkeypatch.setenv("REPRO_MAX_JOBS", "1")
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_MAX_JOBS", "0")   # floor at 1
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_MAX_JOBS", "totally-bogus")  # ignored
    assert default_jobs() >= 1


def test_repro_max_jobs_caps_explicit_fanout(no_disk, monkeypatch):
    # With the cap at 1, an explicit jobs=8 sweep must run serially —
    # identical results, no process pool on an oversubscribed runner.
    monkeypatch.setenv("REPRO_MAX_JOBS", "1")
    clear_run_cache()
    specs = [dynaspam_spec("KM", SCALE), dynaspam_spec("BFS", SCALE)]
    results = execute_runs(specs, jobs=8)
    assert set(results) == {spec.key for spec in specs}
