"""Tests for the workload characterization harness entry."""

from repro.harness.characterization import characterization


def test_characterization_covers_all_benchmarks():
    result = characterization(scale=0.05)
    assert len(result.profiles) == 11
    text = result.render()
    for abbrev in ("BP", "BFS", "SRAD"):
        assert abbrev in text
    assert "branches" in text


def test_profiles_have_plausible_shapes():
    result = characterization(scale=0.05)
    bfs = result.profiles["BFS"]
    hs = result.profiles["HS"]
    # Integer graph traversal vs FP stencil.
    assert bfs.pool_mix.get("fp_alu", 0.0) == 0.0
    assert hs.pool_mix.get("fp_alu", 0.0) > 0.2
    # Stencil code has long straight-line runs; BFS does not.
    assert hs.mean_block_run > bfs.mean_block_run
