"""Tests for the content-addressed on-disk cache and its runner wiring."""

import pickle

import pytest

import repro.harness.diskcache as diskcache
from repro.core import DynaSpAMConfig
from repro.harness.diskcache import DiskCache
from repro.harness.runner import (
    baseline_spec,
    clear_run_cache,
    dynaspam_spec,
    run_dynaspam,
)
from repro.ooo.config import CoreConfig

SCALE = 0.05


@pytest.fixture
def cache(tmp_path):
    return DiskCache(root=tmp_path, namespace="test", fingerprint="f0")


@pytest.fixture
def isolated_disk(tmp_path):
    """Route the process-wide cache into a temp dir for one test."""
    diskcache.configure(enabled=True, root=str(tmp_path))
    yield tmp_path
    diskcache.configure()


def test_round_trip(cache):
    value = {"cycles": 123, "nested": [1, 2, (3, 4)]}
    assert cache.put(("run", "KM", 0.5), value)
    loaded = cache.get(("run", "KM", 0.5))
    assert loaded == value
    assert cache.stats() == {
        "hits": 1, "misses": 0, "errors": 0, "writes": 1,
    }


def test_miss_on_unknown_key(cache):
    assert cache.get(("nope",)) is None
    assert cache.misses == 1


def test_version_bump_invalidates(tmp_path):
    old = DiskCache(root=tmp_path, version=1, fingerprint="f0")
    new = DiskCache(root=tmp_path, version=2, fingerprint="f0")
    old.put("key", "value")
    assert new.get("key") is None


def test_code_fingerprint_invalidates(tmp_path):
    before = DiskCache(root=tmp_path, fingerprint="aaa")
    after = DiskCache(root=tmp_path, fingerprint="bbb")
    before.put("key", "value")
    assert after.get("key") is None


def test_config_hash_separates_entries(cache):
    key_a = ("run", "KM", 0.5, (("hot_threshold", 3),))
    key_b = ("run", "KM", 0.5, (("hot_threshold", 5),))
    assert cache.path_for(key_a) != cache.path_for(key_b)
    cache.put(key_a, "a")
    assert cache.get(key_b) is None


def test_corrupted_file_falls_back_to_miss(cache):
    cache.put("key", {"fine": True})
    path = cache.path_for("key")
    path.write_bytes(b"\x80\x05 this is not a pickle")
    assert cache.get("key") is None
    assert cache.errors == 1
    assert not path.exists(), "corrupted entry should be dropped"
    # A subsequent put/get pair works again.
    cache.put("key", {"fine": True})
    assert cache.get("key") == {"fine": True}


def test_truncated_pickle_falls_back(cache):
    cache.put("key", list(range(1000)))
    path = cache.path_for("key")
    path.write_bytes(path.read_bytes()[:20])
    assert cache.get("key") is None


def test_writes_are_atomic_no_temp_litter(cache):
    for i in range(5):
        cache.put(("k", i), i)
    litter = [p for p in cache.root.rglob("*.tmp")]
    assert litter == []


def test_env_dir_override(monkeypatch, tmp_path):
    monkeypatch.setenv(diskcache.ENV_CACHE_DIR, str(tmp_path / "elsewhere"))
    assert diskcache.default_cache_dir() == tmp_path / "elsewhere"


def test_env_disable(monkeypatch):
    diskcache.configure()  # clear any explicit override
    monkeypatch.setenv(diskcache.ENV_DISK_CACHE, "0")
    assert diskcache.shared_cache("runs") is None
    monkeypatch.setenv(diskcache.ENV_DISK_CACHE, "1")
    assert diskcache.shared_cache("runs") is not None
    diskcache.configure()


def test_configure_disable_wins_over_env(monkeypatch):
    monkeypatch.setenv(diskcache.ENV_DISK_CACHE, "1")
    diskcache.configure(enabled=False)
    assert diskcache.shared_cache("runs") is None
    diskcache.configure()


def test_runner_round_trips_through_disk(isolated_disk):
    clear_run_cache()
    first = run_dynaspam("KM", SCALE)
    clear_run_cache()
    second = run_dynaspam("KM", SCALE)  # must load from disk
    assert second is not first
    assert second.cycles == first.cycles
    assert second.stats.as_dict() == first.stats.as_dict()
    runs_cache = diskcache.shared_cache("runs")
    assert runs_cache.hits >= 1


def test_run_key_covers_every_dynaspam_knob():
    base = dynaspam_spec("KM", SCALE).key
    for knob, value in (
        ("hot_threshold", 5),
        ("ready_threshold", 7),
        ("smart_trace_selection", True),
        ("num_fabrics", 2),
        ("tcache_entries", 128),
        ("config_cache_entries", 8),
        ("reconfig_hysteresis", 10),
    ):
        other = dynaspam_spec(
            "KM", SCALE, config=DynaSpAMConfig(**{knob: value})
        ).key
        assert other != base, f"{knob} missing from the run key"


def test_baseline_key_covers_core_config():
    base = baseline_spec("KM", SCALE).key
    other = baseline_spec(
        "KM", SCALE, core_config=CoreConfig(rob_entries=64)
    ).key
    assert other != base


def test_run_keys_pickle_and_repr_stably():
    key = dynaspam_spec("KM", SCALE).key
    clone = pickle.loads(pickle.dumps(key))
    assert clone == key
    assert repr(clone) == repr(key)
