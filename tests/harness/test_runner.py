"""Tests for the run cache and experiment drivers (tiny scales)."""

import pytest

from repro.harness import (
    clear_run_cache,
    figure8_performance,
    run_baseline,
    run_dynaspam,
    table3_benchmarks,
    table4_parameters,
    table6_area,
)
from repro.harness.runner import geomean

SCALE = 0.08


def setup_module(module):
    clear_run_cache()


def test_baseline_runs_are_cached():
    first = run_baseline("KM", SCALE)
    second = run_baseline("KM", SCALE)
    assert first is second


def test_dynaspam_runs_cached_by_configuration():
    a = run_dynaspam("KM", SCALE)
    b = run_dynaspam("KM", SCALE)
    c = run_dynaspam("KM", SCALE, speculation=False)
    assert a is b
    assert c is not a


def test_clear_run_cache():
    a = run_baseline("KM", SCALE)
    clear_run_cache()
    b = run_baseline("KM", SCALE)
    assert a is not b


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([]) == 0.0
    assert geomean([1.42]) == pytest.approx(1.42)


def test_table3_lists_all_eleven():
    text = table3_benchmarks()
    for abbrev in ("BP", "BFS", "BT", "HS", "KM", "LD", "KNN", "NW",
                   "PF", "PTF", "SRAD"):
        assert f" {abbrev} " in text or f"| {abbrev}" in text or abbrev in text


def test_table4_reflects_core_config():
    text = table4_parameters()
    assert "192-entry ROB" in text
    assert "8-wide issue" in text
    assert "2 LDST units" in text


def test_table6_render():
    result = table6_area()
    text = result.render()
    assert "sparc_exu_alu" in text
    assert "2.9 mm^2" in text


def test_table7_feature_matrix():
    from repro.harness.experiments import table7_related_work

    text = table7_related_work()
    assert "DynaSpAM" in text and "CCA" in text
    # DynaSpAM's distinguishing row: the only engine with every feature.
    dynaspam_row = [line for line in text.splitlines()
                    if line.lstrip().startswith("DynaSpAM")][0]
    assert dynaspam_row.count("yes") == 5


def test_dynaspam_cache_distinguishes_every_knob():
    """The seed cache keyed on a knob subset; the key now freezes the
    full config, so e.g. hot_threshold sweeps can't serve stale results."""
    from repro.core import DynaSpAMConfig
    from repro.harness.runner import run_dynaspam

    a = run_dynaspam("KM", SCALE)
    b = run_dynaspam("KM", SCALE, config=DynaSpAMConfig(hot_threshold=6))
    c = run_dynaspam("KM", SCALE, config=DynaSpAMConfig(hot_threshold=6))
    assert a is not b
    assert b is c


def test_figure8_runs_at_tiny_scale():
    result = figure8_performance(SCALE)
    assert set(result.speedups) == {
        "BP", "BFS", "BT", "HS", "KM", "LD", "KNN", "NW", "PF", "PTF", "SRAD"
    }
    for series in ("mapping", "no_spec", "spec"):
        value = result.series_geomean(series)
        assert 0.3 < value < 4.0
    text = result.render()
    assert "GEOMEAN" in text


def test_profiler_merge_labels_worker_sections():
    from repro.harness.profiling import Profiler

    parent = Profiler()
    with parent.section("parallel_execution"):
        pass
    parent.merge_snapshot({
        "sections_seconds": {"simulate_dynaspam": 2.5,
                             "workers.trace_generation": 1.0},
        "counters": {"runs_simulated": 3},
    })
    # Worker compute seconds are prefixed so they can never be misread
    # as the parent's wall clock; already-prefixed names stay single.
    assert parent.sections["workers.simulate_dynaspam"] == 2.5
    assert parent.sections["workers.trace_generation"] == 1.0
    assert "simulate_dynaspam" not in parent.sections
    # Counters merge flat: a cache hit is a hit in any process.
    assert parent.counters["runs_simulated"] == 3


def test_traced_run_bypasses_cache_but_seeds_it():
    from repro.harness.runner import (
        clear_run_cache,
        dynaspam_spec,
        execute_spec,
        peek_cached,
    )
    from repro.obs import MemorySink

    clear_run_cache()
    spec = dynaspam_spec("KM", 0.05)
    sink = MemorySink()
    traced = execute_spec(spec, sink=sink)
    assert len(sink) > 0
    # The traced result seeded the cache; an untraced lookup now hits.
    assert peek_cached(spec.key) is traced
    # A second traced call simulates fresh (new events), same numbers.
    second_sink = MemorySink()
    again = execute_spec(spec, sink=second_sink)
    assert len(second_sink) == len(sink)
    assert again.cycles == traced.cycles
    assert again.stats.as_dict() == traced.stats.as_dict()
    clear_run_cache()
