"""Unit tests for the plain-text reporting helpers."""

from repro.harness.reporting import format_bars, format_stacked, format_table


def test_format_table_alignment_and_content():
    text = format_table(
        ["Name", "Value"],
        [["alpha", 1.234], ["b", 10]],
        title="Demo",
    )
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "Name" in lines[1] and "Value" in lines[1]
    assert "-+-" in lines[2]
    assert "1.23" in text
    assert "10" in text


def test_format_table_empty_rows():
    text = format_table(["A", "B"], [])
    assert "A" in text and "B" in text


def test_format_bars_scales_to_peak():
    text = format_bars({"one": 1.0, "two": 2.0}, width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10


def test_format_bars_unit_suffix():
    text = format_bars({"x": 1.5}, unit="x")
    assert "1.50x" in text


def test_format_stacked_fractions():
    rows = {"KM": {"host": 0.2, "mapping": 0.1, "fabric": 0.7}}
    text = format_stacked(rows, width=10)
    assert "host=20%" in text
    assert "fabric=70%" in text
    assert "#" in text and "." in text


def test_format_stacked_handles_missing_parts():
    text = format_stacked({"X": {"host": 1.0}})
    assert "fabric=0%" in text
