"""Smoke tests: every shipped example runs end to end.

Each example's ``main()`` is imported and executed with small arguments so
documentation code cannot rot silently.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_with_argv(name, argv, capsys):
    module = load_example(name)
    old_argv = sys.argv
    sys.argv = [f"{name}.py"] + argv
    try:
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart_example(capsys):
    out = run_with_argv("quickstart", [], capsys)
    assert "speedup" in out
    assert "fabric" in out


def test_accelerate_kmeans_example(capsys):
    out = run_with_argv("accelerate_kmeans", ["0.1"], capsys)
    assert "energy reduction" in out
    assert "inst_schedule" in out


def test_memory_speculation_example(capsys):
    out = run_with_argv("memory_speculation", ["0.08"], capsys)
    assert "w/  speculation" in out
    assert "NW" in out


def test_trace_explorer_example(capsys):
    out = run_with_argv("trace_explorer", ["KM", "0.1"], capsys)
    assert "hottest traces" in out
    assert "stripe" in out


def test_custom_fabric_example(capsys):
    out = run_with_argv("custom_fabric", ["KM", "0.08"], capsys)
    assert "speedup/mm^2" in out


def test_tune_fabric_example(capsys):
    out = run_with_argv("tune_fabric", ["BFS", "0.1"], capsys)
    assert "tuned" in out
    assert "int_alu" in out


def test_ingest_program_example(capsys):
    out = run_with_argv("ingest_program", [], capsys)
    assert "output unchanged" in out
    assert "output matches interpreter" in out
    assert "speedup" in out
