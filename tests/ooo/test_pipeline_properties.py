"""Property-based tests for the OOO pipeline timing model."""

from hypothesis import given, settings, strategies as st

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import FunctionalExecutor, Memory
from repro.isa.instructions import WORD_SIZE
from repro.ooo.config import CoreConfig
from repro.ooo.pipeline import OOOPipeline

REGS = [f"r{i}" for i in range(1, 8)]
FREGS = [f"f{i}" for i in range(1, 8)]

int_op = st.tuples(st.just("int"), st.sampled_from(["add", "sub", "xor"]),
                   st.sampled_from(REGS), st.sampled_from(REGS),
                   st.sampled_from(REGS))
fp_op = st.tuples(st.just("fp"), st.sampled_from(["fadd", "fmul"]),
                  st.sampled_from(FREGS), st.sampled_from(FREGS),
                  st.sampled_from(FREGS))
mem_op = st.tuples(st.just("mem"), st.sampled_from(["load", "store"]),
                   st.integers(0, 15), st.sampled_from(REGS), st.just(""))
mul_op = st.tuples(st.just("muldiv"), st.sampled_from(["mul", "div"]),
                   st.sampled_from(REGS), st.sampled_from(REGS),
                   st.sampled_from(REGS))

any_op = st.one_of(int_op, fp_op, mem_op, mul_op)


def build_program(ops, loop_count):
    b = ProgramBuilder("prop")
    b.li("r10", 0x1000)
    with b.countdown("loop", "r9", loop_count):
        for kind, name, a1, a2, a3 in ops:
            if kind == "int":
                getattr(b, name)(a1, a2, a3)
            elif kind == "fp":
                getattr(b, name)(a1, a2, a3)
            elif kind == "muldiv":
                getattr(b, name)(a1, a2, a3)
            else:
                if name == "load":
                    b.lw(a2, "r10", a1 * WORD_SIZE)
                else:
                    b.sw("r10", a2, a1 * WORD_SIZE)
    b.halt()
    return b.build()


def run_pipeline(ops, loop_count):
    program = build_program(ops, loop_count)
    mem = Memory()
    mem.store_array(0x1000, [1] * 16)
    trace = FunctionalExecutor().run(program, mem).trace
    pipe = OOOPipeline()
    timings = [pipe.process(dyn) for dyn in trace]
    result = pipe.finish()
    return trace, timings, result


@given(ops=st.lists(any_op, min_size=1, max_size=12),
       loop_count=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_per_instruction_stage_ordering(ops, loop_count):
    """fetch <= dispatch < issue < complete < commit, for every instr."""
    _, timings, _ = run_pipeline(ops, loop_count)
    for t in timings:
        assert t.fetch <= t.dispatch < t.issue < t.complete < t.commit


@given(ops=st.lists(any_op, min_size=1, max_size=12),
       loop_count=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_program_order_stages_monotonic(ops, loop_count):
    """Fetch, dispatch, and commit are non-decreasing in program order."""
    _, timings, _ = run_pipeline(ops, loop_count)
    for a, b in zip(timings, timings[1:]):
        assert b.fetch >= a.fetch
        assert b.dispatch >= a.dispatch
        assert b.commit >= a.commit


@given(ops=st.lists(any_op, min_size=1, max_size=12),
       loop_count=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_instruction_conservation_and_width_bounds(ops, loop_count):
    trace, timings, result = run_pipeline(ops, loop_count)
    assert result.instructions == len(trace)
    assert result.stats.commits == len(trace)
    cfg = CoreConfig()
    assert result.ipc <= cfg.issue_width + 1e-9
    # No more than commit_width commits share a cycle.
    from collections import Counter
    per_cycle = Counter(t.commit for t in timings)
    assert max(per_cycle.values()) <= cfg.commit_width


@given(ops=st.lists(any_op, min_size=1, max_size=12),
       loop_count=st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_determinism(ops, loop_count):
    _, _, first = run_pipeline(ops, loop_count)
    _, _, second = run_pipeline(ops, loop_count)
    assert first.cycles == second.cycles
    assert first.stats.as_dict() == second.stats.as_dict()


@given(ops=st.lists(any_op, min_size=1, max_size=10),
       loop_count=st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_rob_window_bounded(ops, loop_count):
    """No instruction dispatches while the ROB-capacity-ago instruction
    has not committed."""
    _, timings, _ = run_pipeline(ops, loop_count)
    rob = CoreConfig().rob_entries
    for i in range(rob, len(timings)):
        assert timings[i].dispatch >= timings[i - rob].commit
