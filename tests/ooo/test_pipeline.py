"""Integration tests for the OOO pipeline timing model."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import FunctionalExecutor, Memory
from repro.ooo.config import CoreConfig
from repro.ooo.pipeline import OOOPipeline


def trace_of(build, memory=None):
    b = ProgramBuilder("t")
    build(b)
    b.halt()
    return FunctionalExecutor().run(b.build(), memory).trace


def run(build, memory=None, config=None, **kwargs):
    pipe = OOOPipeline(config, **kwargs)
    result = pipe.run_trace(trace_of(build, memory))
    return result, pipe


def test_timing_monotonicity_invariants():
    def body(b):
        b.li("r1", 5)
        with b.countdown("loop", "r2", 10):
            b.add("r3", "r1", "r2")
            b.mul("r4", "r3", "r1")

    pipe = OOOPipeline()
    for dyn in trace_of(body):
        t = pipe.process(dyn)
        assert t.fetch <= t.dispatch < t.issue < t.complete < t.commit


def test_commit_is_in_order():
    def body(b):
        b.li("r1", 9)
        b.div("r2", "r1", "r1")       # long latency
        b.addi("r3", "r1", 1)         # independent, completes early

    pipe = OOOPipeline()
    commits = [pipe.process(d).commit for d in trace_of(body)]
    assert commits == sorted(commits)


def test_independent_ops_issue_in_parallel():
    def body(b):
        for i in range(1, 5):
            b.li(f"r{i}", i)
        b.add("r5", "r1", "r2")
        b.add("r6", "r3", "r4")
        b.add("r7", "r1", "r3")
        b.add("r8", "r2", "r4")

    pipe = OOOPipeline()
    timings = [pipe.process(d) for d in trace_of(body)]
    adds = timings[4:8]
    assert len({t.issue for t in adds}) == 1  # 4 ALUs: all in one cycle


def test_dependent_chain_serializes():
    def body(b):
        b.li("r1", 1)
        for _ in range(6):
            b.add("r1", "r1", "r1")

    pipe = OOOPipeline()
    timings = [pipe.process(d) for d in trace_of(body)]
    issues = [t.issue for t in timings[1:7]]  # the six chained adds
    assert all(b2 > a for a, b2 in zip(issues, issues[1:]))


def test_divider_contention_blocks():
    def body(b):
        b.li("r1", 100)
        b.li("r2", 3)
        b.div("r3", "r1", "r2")
        b.div("r4", "r1", "r2")   # same unit, unpipelined

    pipe = OOOPipeline()
    timings = [pipe.process(d) for d in trace_of(body)]
    div1, div2 = timings[2], timings[3]
    assert div2.issue >= div1.issue + 12


def test_correctly_predicted_loop_has_few_mispredicts():
    def body(b):
        with b.countdown("loop", "r1", 200):
            b.addi("r2", "r2", 1)

    result, pipe = run(body)
    # One exit mispredict plus warm-up.
    assert result.stats.branch_mispredicts <= 6


def test_mispredicts_cost_cycles():
    # A data-dependent unpredictable branch pattern.
    def body_with_noise(b):
        b.li("r10", 0x1000)
        with b.countdown("loop", "r1", 200):
            b.lw("r2", "r10", 0)
            b.beq("r2", "r0", "skip")
            b.addi("r3", "r3", 1)
            b.label("skip")
            b.addi("r10", "r10", 4)

    mem = Memory()
    noise = [(i * 2654435761) % 2 for i in range(200)]
    mem.store_array(0x1000, noise)

    def body_biased(b):
        b.li("r10", 0x1000)
        with b.countdown("loop", "r1", 200):
            b.lw("r2", "r10", 0)
            b.beq("r2", "r0", "skip")
            b.addi("r3", "r3", 1)
            b.label("skip")
            b.addi("r10", "r10", 4)

    mem_biased = Memory()
    mem_biased.store_array(0x1000, [1] * 200)

    noisy, _ = run(body_with_noise, mem)
    biased, _ = run(body_biased, mem_biased)
    assert noisy.stats.branch_mispredicts > biased.stats.branch_mispredicts
    assert noisy.cycles > biased.cycles


def test_store_to_load_forwarding():
    def body(b):
        b.li("r1", 0x100)
        b.li("r2", 42)
        with b.countdown("loop", "r3", 50):
            b.sw("r1", "r2", 0)
            b.lw("r4", "r1", 0)

    result, _ = run(body)
    assert result.stats.store_forwards > 40


def test_memory_violation_detection_and_training():
    """A load aliasing a store whose data arrives late: the first encounter
    violates, then store-sets learns and later instances wait."""
    def body(b):
        b.li("r1", 0x100)
        b.li("r5", 64)
        with b.countdown("loop", "r3", 40):
            b.div("r2", "r5", "r3")   # slow producer of store data
            b.sw("r1", "r2", 0)
            b.lw("r4", "r1", 0)       # aliases the store

    result, pipe = run(body)
    assert result.stats.memory_violations >= 1
    assert pipe.storesets.violations_trained >= 1
    # After training, the predictor prevents repeat violations.
    assert result.stats.memory_violations < 10


def test_conservative_memory_mode_has_no_violations():
    def body(b):
        b.li("r1", 0x100)
        b.li("r5", 64)
        with b.countdown("loop", "r3", 40):
            b.div("r2", "r5", "r3")
            b.sw("r1", "r2", 0)
            b.lw("r4", "r1", 0)

    result, _ = run(body, conservative_memory=True)
    assert result.stats.memory_violations == 0


def test_conservative_memory_is_slower_on_independent_streams():
    def body(b):
        b.li("r1", 0x100)
        b.li("r2", 0x8000)
        b.li("r5", 7)
        with b.countdown("loop", "r3", 100):
            b.sw("r1", "r5", 0)
            b.lw("r4", "r2", 0)     # never aliases the store
            b.addi("r1", "r1", 4)
            b.addi("r2", "r2", 4)

    fast, _ = run(body)
    slow, _ = run(body, conservative_memory=True)
    assert slow.cycles > fast.cycles


def test_cache_misses_slow_execution():
    stride = 4096  # distinct L1D sets/blocks every access

    def body(b):
        b.li("r1", 0x10000)
        with b.countdown("loop", "r3", 100):
            b.lw("r4", "r1", 0)
            b.addi("r1", "r1", stride)

    def body_hot(b):
        b.li("r1", 0x10000)
        with b.countdown("loop", "r3", 100):
            b.lw("r4", "r1", 0)

    cold, _ = run(body)
    hot, _ = run(body_hot)
    assert cold.stats.dcache_misses > hot.stats.dcache_misses
    assert cold.cycles > hot.cycles


def test_drain_empties_pipeline():
    def body(b):
        b.li("r1", 100)
        b.div("r2", "r1", "r1")

    pipe = OOOPipeline()
    timings = [pipe.process(d) for d in trace_of(body)]
    drained = pipe.drain()
    assert drained >= max(t.commit for t in timings)
    # Fetch after a drain cannot precede the drain point.
    next_fetch = pipe._alloc_fetch(0x0)
    assert next_fetch >= drained


def test_macro_dispatch_and_commit():
    pipe = OOOPipeline()

    def body(b):
        b.li("r1", 5)
        b.li("r2", 6)

    for d in trace_of(body):
        pipe.process(d)
    seq, dispatch = pipe.macro_dispatch()
    assert seq == 3  # after li, li, halt
    start = max(dispatch, pipe.live_in_ready(["r1", "r2"]))
    commit = pipe.macro_commit(start + 10)
    assert commit > start + 10
    pipe.set_live_out("r9", start + 10, seq)
    assert pipe.regs.ready_cycle("r9") == start + 10


def test_ipc_never_exceeds_width():
    def body(b):
        for _ in range(100):
            b.addi("r1", "r1", 1)
            b.addi("r2", "r2", 1)
            b.addi("r3", "r3", 1)
            b.addi("r4", "r4", 1)

    result, _ = run(body)
    assert result.ipc <= CoreConfig().issue_width


def test_stats_instruction_count_matches_trace():
    def body(b):
        with b.countdown("loop", "r1", 30):
            b.addi("r2", "r2", 1)

    trace = trace_of(body)
    pipe = OOOPipeline()
    result = pipe.run_trace(trace)
    assert result.instructions == len(trace)
    assert result.stats.fetches == len(trace)
    assert result.stats.commits == len(trace)
