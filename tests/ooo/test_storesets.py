"""Unit tests for the Store-Sets memory dependence predictor."""

from repro.ooo.storesets import StoreSetPredictor


def test_untrained_predictor_predicts_independence():
    p = StoreSetPredictor()
    p.store_dispatched(0x100, 5)
    assert p.load_dispatched(0x200) is None


def test_violation_training_creates_shared_set():
    p = StoreSetPredictor()
    p.train_violation(load_pc=0x200, store_pc=0x100)
    p.store_dispatched(0x100, seq=7)
    assert p.load_dispatched(0x200) == 7


def test_load_waits_on_most_recent_store_in_set():
    p = StoreSetPredictor()
    p.train_violation(0x200, 0x100)
    p.store_dispatched(0x100, seq=7)
    p.store_dispatched(0x100, seq=11)
    assert p.load_dispatched(0x200) == 11


def test_stores_in_one_set_serialize():
    p = StoreSetPredictor()
    p.train_violation(0x200, 0x100)
    p.train_violation(0x200, 0x104)  # second store joins the same set
    assert p.store_dispatched(0x100, seq=3) is None
    assert p.store_dispatched(0x104, seq=5) == 3


def test_store_retired_clears_lfst():
    p = StoreSetPredictor()
    p.train_violation(0x200, 0x100)
    p.store_dispatched(0x100, seq=9)
    p.store_retired(0x100, seq=9)
    assert p.load_dispatched(0x200) is None


def test_store_retired_ignores_stale_seq():
    p = StoreSetPredictor()
    p.train_violation(0x200, 0x100)
    p.store_dispatched(0x100, seq=9)
    p.store_dispatched(0x100, seq=12)
    p.store_retired(0x100, seq=9)  # an older instance retiring
    assert p.load_dispatched(0x200) == 12


def test_merging_two_existing_sets():
    p = StoreSetPredictor()
    p.train_violation(0x200, 0x100)   # set A: load 0x200, store 0x100
    p.train_violation(0x300, 0x104)   # set B: load 0x300, store 0x104
    p.train_violation(0x200, 0x104)   # merge A and B
    p.store_dispatched(0x104, seq=4)
    assert p.load_dispatched(0x200) == 4


def test_clear_inflight_keeps_learned_sets():
    p = StoreSetPredictor()
    p.train_violation(0x200, 0x100)
    p.store_dispatched(0x100, seq=9)
    p.clear_inflight()
    assert p.load_dispatched(0x200) is None  # nothing in flight
    p.store_dispatched(0x100, seq=20)
    assert p.load_dispatched(0x200) == 20    # but the set survived


def test_counters():
    p = StoreSetPredictor()
    p.train_violation(0x200, 0x100)
    p.store_dispatched(0x100, 1)
    p.load_dispatched(0x200)
    assert p.violations_trained == 1
    assert p.load_waits == 1
