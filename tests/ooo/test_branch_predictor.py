"""Unit tests for the gshare/BTB branch predictor."""

from repro.ooo.branch_predictor import BranchPredictor, SaturatingCounter
from repro.ooo.config import CoreConfig


def test_saturating_counter_saturates():
    c = SaturatingCounter(bits=2)
    for _ in range(10):
        c.increment()
    assert c.value == 3 and c.taken
    for _ in range(10):
        c.decrement()
    assert c.value == 0 and not c.taken


def test_learns_always_taken_branch():
    """The bimodal side locks onto a biased branch within two updates."""
    bp = BranchPredictor()
    pc = 0x40
    for _ in range(4):
        bp.predict_and_update(pc, True)
    assert bp.predict_and_update(pc, True) is True


def test_learns_alternating_pattern_via_history():
    """Gshare separates the two history contexts of an alternating branch."""
    bp = BranchPredictor()
    pc = 0x80
    outcomes = [bool(i % 2) for i in range(200)]
    mispredicts_late = 0
    for i, taken in enumerate(outcomes):
        predicted = bp.predict_and_update(pc, taken)
        if i >= 100 and predicted != taken:
            mispredicts_late += 1
    assert mispredicts_late == 0


def test_mispredict_counting_and_accuracy():
    bp = BranchPredictor()
    for _ in range(100):
        bp.predict_and_update(0x10, True)
    assert bp.lookups == 100
    assert bp.mispredicts <= 2
    assert bp.accuracy > 0.97


def test_peek_does_not_perturb_state():
    bp = BranchPredictor()
    for _ in range(3):
        bp.predict_and_update(0x20, True)
    state = (list(bp.bimodal), list(bp.gshare), list(bp.chooser), bp.history)
    bp.peek(0x20)
    bp.peek_path([0x20, 0x24, 0x28])
    assert (list(bp.bimodal), list(bp.gshare), list(bp.chooser), bp.history) == state


def test_peek_path_threads_speculative_history():
    bp = BranchPredictor()
    # Train: at history H the branch 0x20 is taken; its outcome then shifts
    # history, so peek_path's second prediction must use the shifted history.
    path = bp.peek_path([0x20, 0x24])
    assert isinstance(path, list) and len(path) == 2
    assert all(isinstance(p, bool) for p in path)


def test_peek_matches_predict_for_same_state():
    bp = BranchPredictor()
    for _ in range(5):
        bp.predict_and_update(0x30, True)
    peeked = bp.peek(0x30)
    predicted = bp.predict_and_update(0x30, True)
    assert peeked == predicted


def test_btb_miss_then_hit():
    bp = BranchPredictor()
    assert bp.btb_lookup(0x100) is False
    assert bp.btb_lookup(0x100) is True


def test_btb_capacity_bounded():
    cfg = CoreConfig()
    bp = BranchPredictor(cfg)
    for i in range(cfg.btb_entries + 100):
        bp.btb_lookup(i * 4)
    assert len(bp.btb) <= cfg.btb_entries


def test_ras_lifo_and_bounded():
    bp = BranchPredictor()
    for i in range(20):
        bp.ras_push(i)
    assert len(bp.ras) <= bp.ras_entries
    assert bp.ras_pop() == 19
    assert bp.ras_pop() == 18


def test_ras_pop_empty_returns_none():
    bp = BranchPredictor()
    assert bp.ras_pop() is None
