"""Front-end corner cases: I-cache misses, BTB penalties, fetch breaks."""

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import FunctionalExecutor
from repro.ooo.config import CoreConfig
from repro.ooo.pipeline import OOOPipeline


def trace_of(build):
    b = ProgramBuilder("t")
    build(b)
    b.halt()
    return FunctionalExecutor().run(b.build()).trace


def test_icache_compulsory_misses_counted_per_block():
    # 64 instructions = 4 bytes each = 4 blocks of 64 bytes.
    def body(b):
        for _ in range(63):
            b.addi("r1", "r1", 1)

    pipe = OOOPipeline()
    pipe.run_trace(trace_of(body))
    assert pipe.stats.icache_misses == 4
    # Re-fetching the same code (a loop) hits.
    def loop(b):
        with b.countdown("loop", "r1", 20):
            for _ in range(10):
                b.addi("r2", "r2", 1)

    pipe2 = OOOPipeline()
    pipe2.run_trace(trace_of(loop))
    assert pipe2.stats.icache_misses <= 2


def test_btb_miss_penalty_on_first_taken_branch():
    def body(b):
        with b.countdown("loop", "r1", 3):
            b.addi("r2", "r2", 1)

    pipe = OOOPipeline()
    timings = [pipe.process(d) for d in trace_of(body)]
    assert pipe.stats.btb_misses >= 1
    # After the BTB warms, back-to-back iterations fetch without the
    # miss penalty: the per-iteration fetch gap shrinks or stays equal.
    branches = [t for t, d in zip(timings, trace_of(body)) ]


def test_taken_branch_breaks_fetch_group():
    """Instructions after a predicted-taken branch fetch a cycle later."""
    def body(b):
        b.li("r1", 40)
        b.label("head")
        b.addi("r1", "r1", -1)
        b.bne("r1", "r0", "head")

    pipe = OOOPipeline()
    trace = trace_of(body)
    timings = [pipe.process(d) for d in trace]
    # Steady state: each iteration is its own fetch group (2 instrs/cycle
    # max despite the 8-wide fetch).
    late = timings[20:60]
    from collections import Counter
    per_cycle = Counter(t.fetch for t in late)
    assert max(per_cycle.values()) <= 2


def test_wrongpath_fetch_estimate_scales_with_mispredicts():
    import random

    def noisy(b):
        b.li("r10", 0x1000)
        with b.countdown("loop", "r1", 150):
            b.lw("r2", "r10", 0)
            b.beq("r2", "r0", "skip")
            b.addi("r3", "r3", 1)
            b.label("skip")
            b.addi("r10", "r10", 4)

    from repro.isa.executor import Memory

    mem = Memory()
    rng = random.Random(7)
    mem.store_array(0x1000, [rng.randint(0, 1) for _ in range(150)])
    b = ProgramBuilder("t")
    noisy(b)
    b.halt()
    trace = FunctionalExecutor().run(b.build(), mem).trace
    pipe = OOOPipeline()
    pipe.run_trace(trace)
    assert pipe.stats.branch_mispredicts > 10
    assert pipe.stats.wrongpath_fetches > pipe.stats.branch_mispredicts
    # Bounded by the window per event.
    cfg = CoreConfig()
    assert (pipe.stats.wrongpath_fetches
            <= pipe.stats.branch_mispredicts * cfg.rob_entries)


def test_store_addr_resolves_before_data():
    def body(b):
        b.li("r1", 0x100)       # base ready immediately
        b.li("r5", 77)
        b.div("r2", "r5", "r5") # slow data
        b.sw("r1", "r2", 0)

    pipe = OOOPipeline()
    for d in trace_of(body):
        pipe.process(d)
    record = pipe.sq.youngest_older(10**9)
    assert record.addr_ready < record.data_ready
