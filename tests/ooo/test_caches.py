"""Unit tests for the cache hierarchy."""

from repro.ooo.caches import Cache, CacheHierarchy


def make_l1():
    return Cache("L1D", size_kb=1, assoc=2, block_bytes=64, latency=2)


def test_compulsory_miss_then_hit():
    c = make_l1()
    assert c.lookup(0x0) is False
    assert c.lookup(0x0) is True
    assert c.lookup(0x3C) is True   # same 64B block
    assert c.lookup(0x40) is False  # next block


def test_lru_eviction_within_set():
    c = make_l1()  # 1KB/64B = 16 blocks, 2-way -> 8 sets
    set_stride = 8 * 64  # same set every 512 bytes
    a, b, d = 0, set_stride, 2 * set_stride
    c.lookup(a)
    c.lookup(b)
    c.lookup(a)        # a is now MRU
    c.lookup(d)        # evicts b (LRU)
    assert c.contains(a)
    assert not c.contains(b)
    assert c.contains(d)


def test_miss_rate_accounting():
    c = make_l1()
    c.lookup(0x0)
    c.lookup(0x0)
    c.lookup(0x0)
    assert c.accesses == 3
    assert c.hits == 2
    assert c.misses == 1
    assert abs(c.miss_rate - 1 / 3) < 1e-12


def test_hierarchy_latencies():
    l1 = Cache("L1", 1, 2, 64, latency=2)
    l2 = Cache("L2", 16, 8, 64, latency=20)
    h = CacheHierarchy(l1, l2, memory_latency=120)
    assert h.access(0x0) == 2 + 20 + 120   # cold: miss everywhere
    assert h.access(0x0) == 2              # L1 hit
    # Evict from tiny L1 but not from L2.
    stride = l1.num_sets * 64
    for i in range(1, 4):
        h.access(i * stride)
    assert h.access(0x0) == 2 + 20         # L1 miss, L2 hit


def test_empty_cache_miss_rate_is_zero():
    assert make_l1().miss_rate == 0.0


def test_working_set_larger_than_cache_thrashes():
    c = Cache("L1", size_kb=1, assoc=2, block_bytes=64, latency=2)
    blocks = 64  # 4KB working set in a 1KB cache
    for _ in range(3):
        for i in range(blocks):
            c.lookup(i * 64)
    assert c.miss_rate > 0.9
