"""Unit tests for ROB/RS/LSQ/regfile/FU structural models."""

import pytest

from repro.isa.opcodes import OpClass
from repro.ooo.fus import FunctionalUnitPool, POOL_OF
from repro.ooo.lsq import LoadQueueModel, StoreQueueModel, StoreRecord
from repro.ooo.regfile import RegisterScoreboard
from repro.ooo.rob import ReorderBufferModel
from repro.ooo.rs import PriorityEncoder, ReservationStationModel


class Item:
    def __init__(self, seq, score=0):
        self.seq = seq
        self.score = score


# ---------------------------------------------------------------------------
# ROB
# ---------------------------------------------------------------------------
def test_rob_free_until_full():
    rob = ReorderBufferModel(4)
    for commit in (10, 20, 30, 40):
        assert rob.dispatch_ready_cycle() == 0
        rob.push(commit)
    # Full: next dispatch waits for the oldest (commit 10) to leave.
    assert rob.dispatch_ready_cycle() == 11
    rob.push(50)
    assert rob.dispatch_ready_cycle() == 21


def test_rob_drain_cycle_tracks_youngest_commit():
    rob = ReorderBufferModel(4)
    rob.push(10)
    rob.push(25)
    rob.push(15)
    assert rob.drain_cycle() == 25


def test_rob_rejects_zero_entries():
    with pytest.raises(ValueError):
        ReorderBufferModel(0)


# ---------------------------------------------------------------------------
# RS
# ---------------------------------------------------------------------------
def test_rs_capacity_constraint():
    rs = ReservationStationModel(2)
    rs.push(5)
    rs.push(9)
    assert rs.dispatch_ready_cycle() == 6
    rs.push(12)
    assert rs.dispatch_ready_cycle() == 10


def test_priority_encoder_plain_oldest_first():
    enc = PriorityEncoder()
    items = [Item(5), Item(2), Item(9)]
    assert enc.select(items).seq == 2


def test_priority_encoder_score_dominates_age():
    enc = PriorityEncoder()
    items = [Item(1, score=0), Item(9, score=3)]
    assert enc.select(items, score=lambda i: i.score).seq == 9


def test_priority_encoder_tie_broken_by_age():
    enc = PriorityEncoder()
    items = [Item(7, score=2), Item(3, score=2)]
    assert enc.select(items, score=lambda i: i.score).seq == 3


def test_priority_encoder_skips_infeasible():
    enc = PriorityEncoder()
    items = [Item(1, score=-1), Item(2, score=-1)]
    assert enc.select(items, score=lambda i: i.score) is None


def test_priority_encoder_empty():
    assert PriorityEncoder().select([]) is None


# ---------------------------------------------------------------------------
# LSQ
# ---------------------------------------------------------------------------
def make_store(seq, addr, addr_ready=0, data_ready=0):
    return StoreRecord(seq=seq, pc=seq * 4, addr=addr,
                       addr_ready=addr_ready, data_ready=data_ready)


def test_store_queue_youngest_alias():
    sq = StoreQueueModel(8)
    sq.push(make_store(1, 0x100))
    sq.push(make_store(3, 0x200))
    sq.push(make_store(5, 0x100))
    hit = sq.youngest_alias(0x100, before_seq=7)
    assert hit.seq == 5
    # Only stores older than the load are visible.
    hit = sq.youngest_alias(0x100, before_seq=5)
    assert hit.seq == 1
    assert sq.youngest_alias(0x300, before_seq=7) is None


def test_store_queue_youngest_older():
    sq = StoreQueueModel(8)
    sq.push(make_store(1, 0x100))
    sq.push(make_store(3, 0x200))
    assert sq.youngest_older(before_seq=3).seq == 1
    assert sq.youngest_older(before_seq=1) is None


def test_store_queue_window_bounded():
    sq = StoreQueueModel(2)
    for seq in range(5):
        sq.push(make_store(seq, 0x100))
    assert len(sq) == 2


def test_load_queue_capacity():
    lq = LoadQueueModel(2)
    lq.push(5)
    lq.push(8)
    assert lq.dispatch_ready_cycle() == 6


# ---------------------------------------------------------------------------
# Register scoreboard
# ---------------------------------------------------------------------------
def test_scoreboard_ready_and_producer():
    sb = RegisterScoreboard(256)
    assert sb.ready_cycle("r4") == 0
    sb.define("r4", 17, seq=3)
    assert sb.ready_cycle("r4") == 17
    assert sb.producer_seq("r4") == 3


def test_scoreboard_r0_never_renamed():
    sb = RegisterScoreboard(256)
    sb.define("r0", 99, seq=1)
    assert sb.ready_cycle("r0") == 0
    assert sb.renames == 0


def test_scoreboard_max_ready():
    sb = RegisterScoreboard(256)
    sb.define("r1", 5, 0)
    sb.define("r2", 9, 1)
    assert sb.max_ready(["r1", "r2", "r3"]) == 9


def test_scoreboard_requires_rename_headroom():
    with pytest.raises(ValueError):
        RegisterScoreboard(32)


# ---------------------------------------------------------------------------
# Functional units
# ---------------------------------------------------------------------------
def test_fu_pool_mapping_covers_all_classes():
    for opclass in OpClass:
        assert POOL_OF[opclass] in ("int_alu", "int_muldiv", "fp_alu",
                                    "fp_muldiv", "ldst")


def test_pipelined_unit_accepts_back_to_back():
    pool = FunctionalUnitPool({"int_alu": 1, "int_muldiv": 1, "fp_alu": 1,
                               "fp_muldiv": 1, "ldst": 1})
    assert pool.earliest_free(OpClass.INT_MUL, 0) == 0
    pool.acquire(OpClass.INT_MUL, 0, latency=3)   # pipelined: busy 1 cycle
    assert pool.earliest_free(OpClass.INT_MUL, 0) == 1


def test_unpipelined_divider_blocks():
    pool = FunctionalUnitPool({"int_alu": 1, "int_muldiv": 1, "fp_alu": 1,
                               "fp_muldiv": 1, "ldst": 1})
    pool.acquire(OpClass.INT_DIV, 0, latency=12)
    assert pool.earliest_free(OpClass.INT_DIV, 0) == 12
    # MUL shares the unit, so it is blocked too.
    assert pool.earliest_free(OpClass.INT_MUL, 0) == 12


def test_multiple_units_round_robin():
    pool = FunctionalUnitPool({"int_alu": 2, "int_muldiv": 1, "fp_alu": 1,
                               "fp_muldiv": 1, "ldst": 1})
    pool.acquire(OpClass.INT_ALU, 0, 1)
    assert pool.earliest_free(OpClass.INT_ALU, 0) == 0  # second unit free
    pool.acquire(OpClass.INT_ALU, 0, 1)
    assert pool.earliest_free(OpClass.INT_ALU, 0) == 1


def test_acquire_busy_unit_raises():
    pool = FunctionalUnitPool({"int_alu": 1, "int_muldiv": 1, "fp_alu": 1,
                               "fp_muldiv": 1, "ldst": 1})
    pool.acquire(OpClass.INT_DIV, 0, 12)
    with pytest.raises(ValueError):
        pool.acquire(OpClass.INT_DIV, 5, 12)
