"""Unit tests for the job model, admission control, and single-flight.

Everything here is socket-free: the queue and flight table are plain
state machines, and the scheduler runs against a stubbed executor so
coalescing and failure paths are exercised deterministically.
"""

import asyncio
import threading

import pytest

from repro.service.errors import Draining, InvalidJob, QueueFull, UnknownJob
from repro.service.jobs import Job, JobRequest, JobState
from repro.service.metrics import ServiceMetrics
from repro.service.queue import JobQueue
from repro.service.scheduler import FlightTable, Scheduler


# ---------------------------------------------------------------------------
# JobRequest validation and identity
# ---------------------------------------------------------------------------
def test_request_canonicalizes_benchmark_case():
    assert JobRequest("km").benchmark == "KM"
    assert JobRequest(" bfs ").benchmark == "BFS"


def test_request_rejects_unknown_benchmark():
    with pytest.raises(InvalidJob, match="unknown benchmark"):
        JobRequest("NOPE")


@pytest.mark.parametrize("scale", [0.0, -1.0, float("nan"),
                                   float("inf"), 17.0, "abc", None])
def test_request_rejects_bad_scale(scale):
    with pytest.raises(InvalidJob):
        JobRequest("KM", scale=scale)


def test_request_rejects_bad_knobs():
    with pytest.raises(InvalidJob, match="mode"):
        JobRequest("KM", mode="warp_speed")
    with pytest.raises(InvalidJob, match="mapper"):
        JobRequest("KM", mapper="psychic")
    with pytest.raises(InvalidJob, match="trace_length"):
        JobRequest("KM", trace_length=0)
    with pytest.raises(InvalidJob, match="fabrics"):
        JobRequest("KM", fabrics=9)
    with pytest.raises(InvalidJob, match="speculation"):
        JobRequest("KM", speculation="yes")


def test_from_payload_rejects_junk():
    with pytest.raises(InvalidJob, match="JSON object"):
        JobRequest.from_payload(["KM"])
    with pytest.raises(InvalidJob, match="missing required"):
        JobRequest.from_payload({"scale": 0.5})
    with pytest.raises(InvalidJob, match="unknown field"):
        JobRequest.from_payload({"benchmark": "KM", "frobnicate": 1})


def test_flight_key_is_cache_identity():
    a = JobRequest("km", scale=0.5)
    b = JobRequest("KM", scale=0.5)
    c = JobRequest("KM", scale=0.5, speculation=False)
    assert a.flight_key == b.flight_key
    assert a.flight_key != c.flight_key
    assert a.flight_key != JobRequest("BFS", scale=0.5).flight_key
    # A decisions run carries an extra report block; it must not share a
    # flight with (or be served from) a plain run's execution.
    assert a.flight_key != JobRequest("km", scale=0.5,
                                      decisions=True).flight_key


def test_decisions_field_is_validated_and_passed_through():
    assert JobRequest("KM").decisions is False
    request = JobRequest.from_payload({"benchmark": "KM", "decisions": True})
    assert request.decisions is True
    assert request.as_dict()["decisions"] is True
    with pytest.raises(InvalidJob, match="decisions"):
        JobRequest("KM", decisions="yes")


# ---------------------------------------------------------------------------
# Queue admission control and transitions
# ---------------------------------------------------------------------------
def _request() -> JobRequest:
    return JobRequest("KM", scale=0.05)


def test_admission_counts_open_jobs():
    queue = JobQueue(depth=2)
    queue.submit(_request())
    queue.submit(_request())
    with pytest.raises(QueueFull):
        queue.submit(_request())
    assert queue.rejected_total == 1

    # Moving jobs to running does NOT free capacity: depth bounds
    # queued + running, the real backpressure contract.
    batch = queue.next_batch(10)
    assert len(batch) == 2
    assert queue.queued_count() == 0
    with pytest.raises(QueueFull):
        queue.submit(_request())

    queue.finish(batch[0].id, {"ok": True})
    queue.submit(_request())  # capacity freed by completion


def test_lifecycle_transitions():
    queue = JobQueue(depth=4)
    job = queue.submit(_request())
    assert job.state == JobState.QUEUED
    assert job.started_at is None

    (running,) = queue.next_batch(1)
    assert running is job
    assert job.state == JobState.RUNNING
    assert job.started_at is not None

    queue.finish(job.id, {"speedup": 2.0})
    assert job.state == JobState.DONE
    assert job.result == {"speedup": 2.0}
    assert job.finished_at is not None
    assert queue.done_total == 1

    failed = queue.submit(_request())
    queue.next_batch(1)
    queue.fail(failed.id, "boom")
    assert failed.state == JobState.FAILED
    assert failed.error == "boom"
    assert queue.failed_total == 1


def test_invalid_transitions_and_unknown_ids():
    queue = JobQueue(depth=4)
    job = queue.submit(_request())
    with pytest.raises(ValueError, match="cannot move"):
        queue.finish(job.id, {})  # still queued, never ran
    with pytest.raises(UnknownJob):
        queue.get("job-missing")
    with pytest.raises(UnknownJob):
        queue.finish("job-missing", {})


def test_retention_evicts_oldest_finished():
    queue = JobQueue(depth=8, retention=2)
    finished = []
    for _ in range(4):
        job = queue.submit(_request())
        queue.next_batch(1)
        queue.finish(job.id, {})
        finished.append(job.id)
    assert queue.evicted_total == 2
    for evicted in finished[:2]:
        with pytest.raises(UnknownJob):
            queue.get(evicted)
    for kept in finished[2:]:
        assert queue.get(kept).state == JobState.DONE


def test_closed_queue_drains_but_rejects():
    queue = JobQueue(depth=4)
    job = queue.submit(_request())
    queue.close()
    with pytest.raises(Draining):
        queue.submit(_request())
    # Already-admitted work still drains normally.
    queue.next_batch(1)
    queue.finish(job.id, {})
    assert queue.is_idle()


# ---------------------------------------------------------------------------
# Single-flight
# ---------------------------------------------------------------------------
def test_flight_table_lease_and_land():
    table = FlightTable()
    flight, leader = table.lease(("k",))
    assert leader and len(table) == 1
    again, second_leader = table.lease(("k",))
    assert again is flight and not second_leader
    table.land(("k",))
    assert ("k",) not in table
    _, fresh_leader = table.lease(("k",))
    assert fresh_leader


def _drive(coro):
    asyncio.run(coro)


async def _wait_until(predicate, timeout=10.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.02)


def test_scheduler_coalesces_identical_inflight_specs():
    async def scenario():
        queue = JobQueue(depth=8)
        metrics = ServiceMetrics()
        release = threading.Event()
        calls = []

        def fake_execute(requests, sim_jobs):
            calls.append(list(requests))
            release.wait(timeout=10)
            return {
                request.flight_key: ("ok", {"benchmark": request.benchmark})
                for request in requests
            }

        scheduler = Scheduler(queue, metrics, workers=1,
                              execute_batch_fn=fake_execute)
        scheduler.start()
        jobs = [queue.submit(_request()) for _ in range(3)]
        scheduler.wake()

        # All three jobs attach to ONE flight while the executor blocks.
        await _wait_until(lambda: queue.running_count() == 3)
        assert scheduler.in_flight() == 1
        release.set()
        await _wait_until(queue.is_idle)

        assert [len(batch) for batch in calls] == [1]
        docs = [queue.get(job.id) for job in jobs]
        assert all(doc.state == JobState.DONE for doc in docs)
        assert sum(doc.coalesced for doc in docs) == 2
        assert metrics.counter("coalesced") == 2
        assert metrics.counter("completed") == 3
        assert len(metrics.latency) == 3
        await scheduler.drain()

    _drive(scenario())


def test_scheduler_distinct_specs_do_not_coalesce():
    async def scenario():
        queue = JobQueue(depth=8)
        metrics = ServiceMetrics()

        def fake_execute(requests, sim_jobs):
            return {
                request.flight_key: ("ok", {"scale": request.scale})
                for request in requests
            }

        scheduler = Scheduler(queue, metrics, workers=2,
                              execute_batch_fn=fake_execute)
        scheduler.start()
        a = queue.submit(JobRequest("KM", scale=0.05))
        b = queue.submit(JobRequest("KM", scale=0.10))
        scheduler.wake()
        await _wait_until(queue.is_idle)
        assert queue.get(a.id).result == {"scale": 0.05}
        assert queue.get(b.id).result == {"scale": 0.10}
        assert metrics.counter("coalesced") == 0
        await scheduler.drain()

    _drive(scenario())


def test_scheduler_failure_marks_jobs_failed_without_crashing():
    async def scenario():
        queue = JobQueue(depth=8)
        metrics = ServiceMetrics()

        def fake_execute(requests, sim_jobs):
            return {
                request.flight_key: ("error", "simulated explosion")
                for request in requests
            }

        scheduler = Scheduler(queue, metrics, workers=1,
                              execute_batch_fn=fake_execute)
        scheduler.start()
        job = queue.submit(_request())
        scheduler.wake()
        await _wait_until(queue.is_idle)
        doc = queue.get(job.id)
        assert doc.state == JobState.FAILED
        assert "simulated explosion" in doc.error
        assert metrics.counter("failed") == 1
        await scheduler.drain()

    _drive(scenario())


def test_scheduler_drain_finishes_queued_work():
    async def scenario():
        queue = JobQueue(depth=8)
        metrics = ServiceMetrics()

        def fake_execute(requests, sim_jobs):
            return {
                request.flight_key: ("ok", {}) for request in requests
            }

        scheduler = Scheduler(queue, metrics, workers=1,
                              execute_batch_fn=fake_execute)
        scheduler.start()
        jobs = [queue.submit(JobRequest("KM", scale=s))
                for s in (0.05, 0.10, 0.15)]
        queue.close()
        await scheduler.drain()
        assert queue.is_idle()
        assert all(queue.get(job.id).state == JobState.DONE for job in jobs)

    _drive(scenario())


def test_job_doc_shape():
    job = Job(request=_request())
    doc = job.to_doc()
    assert doc["id"].startswith("job-")
    assert doc["state"] == "queued"
    assert doc["request"]["benchmark"] == "KM"
    assert doc["result"] is None
    assert "result" not in job.to_doc(include_result=False)
