"""Tests for the latency ring buffer and metrics snapshots."""

from repro.service.metrics import LatencyRing, ServiceMetrics
from repro.service.queue import JobQueue


def test_empty_ring_summary_is_zeroes():
    summary = LatencyRing().summary()
    assert summary == {"count": 0, "p50": 0.0, "p90": 0.0,
                       "p99": 0.0, "max": 0.0}


def test_nearest_rank_percentiles():
    ring = LatencyRing()
    for value in range(1, 101):  # 1..100
        ring.observe(float(value))
    summary = ring.summary()
    assert summary["count"] == 100
    assert summary["p50"] == 50.0
    assert summary["p90"] == 90.0
    assert summary["p99"] == 99.0
    assert summary["max"] == 100.0


def test_ring_is_bounded():
    ring = LatencyRing(capacity=4)
    for value in range(100):
        ring.observe(float(value))
    summary = ring.summary()
    assert summary["count"] == 4
    assert summary["max"] == 99.0
    assert summary["p50"] == 97.0  # only the last four samples remain


def test_retry_after_scales_with_backlog():
    metrics = ServiceMetrics()
    assert metrics.retry_after_hint(open_jobs=4, workers=2) == 1
    for _ in range(10):
        metrics.observe_latency(3.0)
    assert metrics.retry_after_hint(open_jobs=4, workers=2) == 6
    assert metrics.retry_after_hint(open_jobs=1, workers=4) >= 1


def test_snapshot_shape_includes_queue_and_cache():
    metrics = ServiceMetrics()
    metrics.bump("submitted", 3)
    metrics.bump("completed", 2)
    metrics.observe_latency(0.5)
    queue = JobQueue(depth=7)
    snapshot = metrics.snapshot(queue=queue)
    assert snapshot["jobs"]["submitted"] == 3
    assert snapshot["jobs"]["completed"] == 2
    assert snapshot["queue"]["capacity"] == 7
    assert snapshot["latency_seconds"]["count"] == 1
    assert "run_memory_hits" in snapshot["cache"]
    assert "runs_simulated" in snapshot["cache"]
    assert snapshot["uptime_seconds"] >= 0


def test_snapshot_workers_block_zero_filled_without_scheduler():
    snapshot = ServiceMetrics().snapshot()
    workers = snapshot["workers"]
    assert workers["total"] == 0
    assert workers["busy"] == 0
    assert workers["batches_total"] == 0
    assert workers["batch_seconds"]["count"] == 0


def test_snapshot_workers_block_comes_from_scheduler():
    class FakeScheduler:
        def in_flight(self):
            return 0

        def worker_stats(self):
            return {"kind": "process", "total": 3, "busy": 1,
                    "batches_total": 5,
                    "batch_seconds": {"buckets": [], "sum": 1.0, "count": 5}}

    snapshot = ServiceMetrics().snapshot(scheduler=FakeScheduler())
    assert snapshot["workers"]["kind"] == "process"
    assert snapshot["workers"]["total"] == 3
    assert snapshot["workers"]["busy"] == 1


def test_snapshot_tolerates_scheduler_without_worker_stats():
    class BareScheduler:
        def in_flight(self):
            return 0

    snapshot = ServiceMetrics().snapshot(scheduler=BareScheduler())
    assert snapshot["workers"]["total"] == 0


def test_poll_intervals_backoff_grows_and_caps():
    from repro.service.client import poll_intervals

    # rng pinned to 1.0 => each yield is 1.5x the deterministic base.
    intervals = poll_intervals(0.05, rng=lambda: 1.0)
    values = [next(intervals) for _ in range(16)]
    assert values[0] == 0.05 * 1.5
    # Exponential growth until the cap.
    for earlier, later in zip(values, values[1:]):
        assert later >= earlier
    assert values[-1] == 2.0  # capped
    assert all(value <= 2.0 for value in values)
    # Jitter keeps retries from synchronizing: rng low vs high differ.
    low = next(poll_intervals(0.05, rng=lambda: 0.0))
    high = next(poll_intervals(0.05, rng=lambda: 1.0))
    assert low == 0.05 * 0.5
    assert high == 3 * low
