"""Tests for the replica router: hash ring, snapshot merge, and e2e."""

import json
import urllib.request

import pytest

from repro.service.jobs import JobRequest
from repro.service.router import (
    HashRing,
    ReplicaRouter,
    RouterServer,
    merge_snapshots,
)
from repro.service.server import ThreadedServer


def _run_keys(count):
    """Realistic RunKey-shaped keys: the same derivation the router uses."""
    keys = []
    for index in range(count):
        request = JobRequest(
            benchmark="KM", scale=round(0.01 + index * 1e-4, 6)
        )
        keys.append(request.run_key)
    return keys


# ---------------------------------------------------------------------------
# Consistent hashing (satellite: distribution + remap properties)
# ---------------------------------------------------------------------------
def test_ring_spreads_run_keys_evenly_across_four_replicas():
    replicas = [f"127.0.0.1:{9000 + i}" for i in range(4)]
    ring = HashRing(replicas)
    keys = _run_keys(4000)
    counts = {name: 0 for name in replicas}
    for key in keys:
        counts[ring.owner(key)] += 1
    expected = len(keys) / len(replicas)
    for name, count in counts.items():
        assert abs(count - expected) <= 0.20 * expected, (
            f"{name} owns {count} keys; expected {expected} +/- 20%"
        )


def test_ring_removal_remaps_only_departed_replicas_keys():
    replicas = [f"127.0.0.1:{9000 + i}" for i in range(4)]
    ring = HashRing(replicas)
    keys = _run_keys(4000)
    before = {key: ring.owner(key) for key in keys}
    departed = replicas[1]
    ring.remove(departed)
    moved = 0
    for key in keys:
        owner = ring.owner(key)
        if owner != before[key]:
            # Only keys the departed replica owned may move, and every
            # one of its keys must move somewhere live.
            assert before[key] == departed
            moved += 1
        assert owner != departed
    fraction = moved / len(keys)
    assert 0.15 <= fraction <= 0.35, (
        f"removal remapped {fraction:.1%} of keys; expected ~1/4"
    )


def test_ring_readdition_restores_prior_ownership():
    replicas = [f"127.0.0.1:{9000 + i}" for i in range(3)]
    ring = HashRing(replicas)
    keys = _run_keys(500)
    before = {key: ring.owner(key) for key in keys}
    ring.remove(replicas[0])
    ring.add(replicas[0])
    assert {key: ring.owner(key) for key in keys} == before


def test_ring_owner_skips_and_empty():
    ring = HashRing(["a", "b"])
    assert ring.owner("some-key", skip={"a", "b"}) is None
    assert HashRing().owner("some-key") is None
    owner = ring.owner("some-key")
    other = ring.owner("some-key", skip={owner})
    assert other is not None and other != owner


# ---------------------------------------------------------------------------
# Snapshot aggregation
# ---------------------------------------------------------------------------
def test_merge_snapshots_sums_counters_and_histograms():
    part = {
        "uptime_seconds": 10.0,
        "flights_in_flight": 1,
        "jobs": {"submitted": 4, "completed": 3, "coalesced": 1},
        "queue": {"depth": 8, "size": 2},
        "cache": {"run_memo": {"hits": 5, "misses": 2}},
        "latency_seconds": {"count": 2, "p50": 0.2, "p90": 0.3,
                            "p99": 0.4, "max": 0.5},
        "latency_histogram": {
            "buckets": [[0.1, 1], [1.0, 1]], "sum": 0.6, "count": 2,
        },
        "workers": {
            "kind": "process", "total": 2, "busy": 1, "batches_total": 3,
            "batch_seconds": {"buckets": [[1.0, 3]], "sum": 1.5, "count": 3},
        },
        "fabric_utilization": {
            "invocations_observed": 10, "placed_pe_ratio": 0.5,
            "stripe_fill": 0.4,
        },
        "spans": {"sim.execute_spec": {"buckets": [[1.0, 2]],
                                       "sum": 0.4, "count": 2}},
    }
    other = json.loads(json.dumps(part))
    other["jobs"]["submitted"] = 6
    other["latency_seconds"] = {"count": 6, "p50": 0.6, "p90": 0.7,
                               "p99": 0.8, "max": 0.9}
    other["fabric_utilization"]["placed_pe_ratio"] = 0.9

    merged = merge_snapshots([part, other])
    assert merged["aggregated"] is True
    assert merged["replica_count"] == 2
    assert merged["jobs"]["submitted"] == 10
    assert merged["jobs"]["coalesced"] == 2
    assert merged["cache"]["run_memo"]["hits"] == 10
    assert merged["latency_histogram"]["count"] == 4
    assert merged["latency_histogram"]["sum"] == pytest.approx(1.2)
    assert merged["workers"]["total"] == 4
    assert merged["workers"]["busy"] == 2
    assert merged["workers"]["batch_seconds"]["count"] == 6
    # Count-weighted percentile merge: (0.2*2 + 0.6*6) / 8
    assert merged["latency_seconds"]["p50"] == pytest.approx(0.5)
    assert merged["latency_seconds"]["max"] == 0.9
    # Invocation-weighted fabric utilization: (0.5 + 0.9) / 2
    assert merged["fabric_utilization"]["placed_pe_ratio"] == (
        pytest.approx(0.7)
    )
    assert merged["spans"]["sim.execute_spec"]["count"] == 4


def test_merge_snapshots_empty_is_zero_filled():
    merged = merge_snapshots([])
    assert merged["replica_count"] == 0
    assert merged["jobs"] == {}
    assert merged["latency_seconds"]["count"] == 0
    assert merged["workers"]["total"] == 0


# ---------------------------------------------------------------------------
# End-to-end over live replicas (thread pool keeps the test light)
# ---------------------------------------------------------------------------
@pytest.fixture()
def fleet():
    replicas = [
        ThreadedServer(port=0, queue_depth=16, pool="thread", workers=2)
        for _ in range(2)
    ]
    for replica in replicas:
        replica.start()
    router = ReplicaRouter(
        [("127.0.0.1", replica.port) for replica in replicas]
    )
    server = RouterServer(("127.0.0.1", 0), router)
    import threading

    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, router, replicas
    finally:
        server.shutdown()
        server.server_close()
        router.close()
        for replica in replicas:
            replica.stop()


def _http(port, method, path, payload=None):
    body = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=body, method=method,
        headers={"Content-Type": "application/json"} if body else {},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode())


def test_router_end_to_end_submit_poll_metrics(fleet):
    server, router, replicas = fleet
    port = server.port
    status, doc = _http(port, "GET", "/healthz")
    assert status == 200
    assert doc["status"] == "ok"
    assert len(doc["replicas"]) == 2

    status, doc = _http(port, "POST", "/v1/jobs",
                        {"benchmark": "KM", "scale": 0.05})
    assert status == 202
    job_id = doc["job"]["id"]

    # Duplicate payload must land on the same replica (same RunKey) so
    # the flight table can coalesce it.
    status, dup = _http(port, "POST", "/v1/jobs",
                        {"benchmark": "KM", "scale": 0.05})
    assert status == 202

    import time

    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        status, doc = _http(port, "GET", f"/v1/jobs/{job_id}")
        if doc["job"]["state"] in ("done", "failed"):
            break
        time.sleep(0.05)
    assert doc["job"]["state"] == "done"
    assert doc["job"]["result"]["benchmark"] == "KM"

    status, dup_doc = _http(port, "GET", f"/v1/jobs/{dup['job']['id']}")
    assert dup_doc["job"]["state"] in ("done", "running", "queued")

    status, listing = _http(port, "GET", "/v1/jobs")
    ids = {job["id"] for job in listing["jobs"]}
    assert {job_id, dup["job"]["id"]} <= ids

    status, metrics = _http(port, "GET", "/metrics")
    assert metrics["aggregated"] is True
    assert metrics["replica_count"] == 2
    assert metrics["jobs"]["submitted"] >= 2
    assert metrics["workers"]["total"] == 4  # 2 replicas x 2 workers
    assert metrics["routing"]["routed"] >= 2

    # Prometheus rendering works against the merged snapshot.
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/metrics",
        headers={"Accept": "text/plain"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        text = response.read().decode()
    assert 'repro_jobs_total{outcome="submitted"}' in text
    assert "repro_workers_total 4" in text


def test_router_health_check_evicts_draining_replica(fleet):
    server, router, replicas = fleet
    states = router.check_health_once()
    assert set(states.values()) == {"up"}
    assert len(router.ring) == 2

    # Ask one replica to drain; the next health pass must evict it.
    replicas[0].server.queue.close()
    states = router.check_health_once()
    name = f"127.0.0.1:{replicas[0].port}"
    assert states[name] == "draining"
    assert len(router.ring) == 1
    assert name not in router.ring.nodes()
    assert router.stats["evictions"] == 1
    assert router.health_doc()["status"] == "degraded"

    # Every submission now routes to the surviving replica.
    status, doc = _http(server.port, "POST", "/v1/jobs",
                        {"benchmark": "NW", "scale": 0.05})
    assert status == 202
    survivor = f"127.0.0.1:{replicas[1].port}"
    assert router._jobs[doc["job"]["id"]] == survivor
