"""End-to-end tests: real sockets, real simulations, real signals."""

import json
import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro.harness.diskcache as diskcache
from repro.harness.profiling import PROFILER
from repro.harness.runner import clear_run_cache, simulation_report
from repro.service import ServiceClient, ThreadedServer
from repro.service.client import ServerBusy
from repro.service.errors import InvalidJob, UnknownJob
from repro.workloads.suite import clear_trace_cache

REPO_ROOT = Path(__file__).resolve().parents[2]


def _reset_caches():
    clear_run_cache()
    clear_trace_cache()


@pytest.fixture
def tmp_disk_cache(tmp_path):
    """Fresh disk cache root + empty memory caches, restored afterwards."""
    diskcache.configure(enabled=True, root=str(tmp_path / "cache"))
    _reset_caches()
    yield
    diskcache.configure()
    _reset_caches()


@pytest.fixture
def no_disk_cache():
    """Cold everything: every admitted spec must really simulate."""
    diskcache.configure(enabled=False)
    _reset_caches()
    yield
    diskcache.configure()
    _reset_caches()


def test_submit_poll_metrics_roundtrip(tmp_disk_cache):
    with ThreadedServer(workers=1, queue_depth=4) as server:
        client = ServiceClient(port=server.port)
        assert client.health()["status"] == "ok"

        job = client.submit("KM", scale=0.05)
        assert job["state"] in ("queued", "running")
        done = client.wait(job["id"], timeout=180)
        report = done["result"]
        assert report["benchmark"] == "KM"
        assert report["speedup"] > 0
        assert set(report["coverage"]) == {"host", "mapping", "fabric"}

        # The service answer is the same document the CLI path builds —
        # same caches, same report builder.
        assert report == simulation_report("KM", 0.05)

        listed = client.jobs()
        assert any(item["id"] == job["id"] for item in listed)

        metrics = client.metrics()
        assert metrics["queue"]["capacity"] == 4
        assert metrics["queue"]["open"] == 0
        assert metrics["jobs"]["submitted"] >= 1
        assert metrics["jobs"]["completed"] >= 1
        assert metrics["latency_seconds"]["count"] >= 1
        assert metrics["latency_seconds"]["p99"] >= metrics[
            "latency_seconds"]["p50"] >= 0
        assert "runs_simulated" in metrics["cache"]
        assert metrics["latency_histogram"]["count"] >= 1
        assert metrics["lifecycle"]["fabric_invocations"] == \
            report["fabric_invocations"]

        # Content negotiation: Accept: text/plain flips the same endpoint
        # to Prometheus text exposition; the JSON default is untouched.
        text = client.metrics_text()
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{outcome="completed"} 1' in text
        assert 'repro_job_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_queue_capacity 4" in text

        with pytest.raises(UnknownJob):
            client.job("job-does-not-exist")
        with pytest.raises(InvalidJob):
            client.submit("NOPE")
        with pytest.raises(InvalidJob):
            client.submit("KM", scale=-3)


def test_duplicate_burst_coalesces_and_backpressures(no_disk_cache):
    before = PROFILER.counters.get("runs_simulated", 0)
    # workers=1 and a multi-second job: the burst lands while the first
    # submission is still simulating.
    with ThreadedServer(workers=1, queue_depth=3) as server:
        client = ServiceClient(port=server.port)
        admitted, busy = [], []
        for _ in range(10):
            try:
                admitted.append(client.submit("SRAD", scale=1.0))
            except ServerBusy as exc:
                busy.append(exc)
        # Admission control: exactly `depth` open jobs, the rest 429.
        assert len(admitted) == 3
        assert len(busy) == 7
        assert all(exc.retry_after >= 1 for exc in busy)

        docs = [client.wait(job["id"], timeout=600) for job in admitted]
        results = [doc["result"] for doc in docs]
        assert results[0] == results[1] == results[2]
        assert sum(doc["coalesced"] for doc in docs) == 2

        metrics = client.metrics()
        assert metrics["jobs"]["coalesced"] == 2
        assert metrics["jobs"]["rejected"] == 7
        assert metrics["jobs"]["completed"] == 3
    # Single-flight: one baseline + one DynaSpAM simulation, total.
    simulated = PROFILER.counters.get("runs_simulated", 0) - before
    assert simulated == 2


def test_progress_endpoint_tracks_job_lifecycle(no_disk_cache):
    """The progress endpoint reflects queued -> running -> done, with
    heartbeats while running and monotonic queue-wait/run durations."""
    with ThreadedServer(workers=1, queue_depth=4) as server:
        client = ServiceClient(port=server.port)
        job = client.submit("KM", scale=0.05)

        states, heartbeats = [], []

        def on_progress(doc):
            states.append(doc["state"])
            if doc.get("heartbeat"):
                heartbeats.append(doc["heartbeat"])

        final = client.watch(job["id"], timeout=180,
                             poll_interval=0.01, on_progress=on_progress)
        assert final["state"] == "done"
        assert final["terminal"] is True
        assert final["id"] == job["id"]
        assert final["coalesced"] is False
        assert final["error"] is None
        # The lifecycle arrived in order (polling may skip states but
        # must never see them regress).
        order = {"queued": 0, "running": 1, "done": 2}
        ranks = [order[s] for s in states]
        assert ranks == sorted(ranks)
        assert states[-1] == "done"

        # The terminal heartbeat carries the batch progress and phase.
        beat = final["heartbeat"]
        assert beat["phase"] == "done"
        assert beat["label"] == "batch"
        assert beat["done"] == beat["total"] == 1
        assert beat["detail"] == "KM"
        assert any(b.get("phase") in ("dispatched", "running", "finished",
                                      "done")
                   for b in heartbeats)

        # Monotonic duration math: both waits are present, non-negative,
        # and also live on the full job document.
        assert final["queue_wait_seconds"] >= 0.0
        assert final["run_seconds"] >= 0.0
        doc = client.job(job["id"])
        assert doc["queue_wait_seconds"] == final["queue_wait_seconds"]
        assert doc["run_seconds"] == final["run_seconds"]

        # Span histograms reached /metrics (JSON and Prometheus text).
        metrics = client.metrics()
        spans = metrics["spans"]
        assert spans["service.execute_request"]["count"] >= 1
        assert spans["sim.execute_spec"]["count"] >= 1
        text = client.metrics_text()
        assert ('repro_span_duration_seconds_count'
                '{span="service.execute_request"}') in text
        assert "repro_queue_wait_window_seconds" in text

        with pytest.raises(UnknownJob):
            client.progress("job-does-not-exist")


def test_threaded_stop_drains_inflight_jobs(tmp_disk_cache):
    server = ThreadedServer(workers=1, queue_depth=4)
    server.start()
    try:
        client = ServiceClient(port=server.port)
        client.submit("KM", scale=0.25)
    finally:
        server.stop()  # must block until the admitted job completes
    stats = server.server.queue.stats()
    assert stats["draining"] is True
    assert stats["open"] == 0
    assert stats["done_total"] == 1
    assert stats["failed_total"] == 0


def test_sigterm_drains_and_exits_zero(tmp_path):
    import os

    env = dict(
        os.environ,
        PYTHONPATH=str(REPO_ROOT / "src"),
        REPRO_CACHE_DIR=str(tmp_path / "cache"),
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--queue-depth", "8"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
        assert match, f"no listen banner, got: {banner!r}"
        port = int(match.group(1))

        client = ServiceClient(port=port)
        job = client.submit("KM", scale=0.25)
        assert job["state"] in ("queued", "running")

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=180)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)
    assert proc.returncode == 0, out
    assert "draining" in out
    assert "drained (done=1 failed=0)" in out
