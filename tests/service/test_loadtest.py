"""Tests for the open-loop load generator and the SLO gate script."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service.jobs import JobRequest
from repro.service.loadtest import (
    BURST,
    build_schedule,
    run_loadtest,
    summarize,
)
from repro.service.server import ThreadedServer

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"


@pytest.fixture()
def cold_caches(tmp_path):
    """Point every cache tier at an empty store so flights really run.

    Duplicate-heavy coalescing is only observable when a flight stays
    open long enough for its duplicates to arrive; warm caches close
    flights in microseconds and hide the behaviour under test.
    """
    import repro.harness.diskcache as diskcache
    from repro.harness.runner import clear_run_cache
    from repro.workloads.suite import clear_trace_cache

    diskcache.configure(enabled=True, root=str(tmp_path / "cache"))
    clear_run_cache()
    clear_trace_cache()
    yield
    diskcache.configure()
    clear_run_cache()
    clear_trace_cache()


def _keys(payloads):
    return [JobRequest.from_payload(p).run_key for p in payloads]


def test_build_schedule_duplicate_heavy_bursts_share_run_keys():
    payloads = build_schedule("duplicate-heavy", 12)
    keys = _keys(payloads)
    for start in range(0, 12, BURST):
        burst = keys[start:start + BURST]
        assert len(set(burst)) == 1  # whole burst shares one RunKey
    assert len(set(keys)) <= 12 // BURST  # heavy duplication overall


def test_build_schedule_cold_heavy_is_all_unique():
    payloads = build_schedule("cold-heavy", 30)
    keys = _keys(payloads)
    assert len(set(keys)) == 30


def test_build_schedule_is_deterministic_and_mix_checked():
    assert build_schedule("mixed", 10, seed=7) == build_schedule(
        "mixed", 10, seed=7
    )
    with pytest.raises(ValueError):
        build_schedule("tepid", 10)


def test_run_loadtest_duplicate_heavy_coalesces_and_conserves(cold_caches):
    with ThreadedServer(queue_depth=64, pool="thread", workers=2) as server:
        report = run_loadtest(
            port=server.port, rate=50.0, total=9,
            mix="duplicate-heavy", timeout=120,
        )
    client = report["client"]
    server_side = report["server"]
    assert client["attempted"] == 9
    assert client["errors"] == 0
    assert client["completed"] + client["rejected"] == 9
    assert server_side["conserved"] is True
    # Bursts of identical payloads must coalesce on the flight table.
    assert server_side["coalesce_ratio"] > 0
    assert report["throughput_jobs_per_sec"] > 0
    assert report["latency_seconds"]["p99"] >= report["latency_seconds"]["p50"]
    assert server_side["workers"]["total"] == 2
    assert 0.0 <= server_side["workers"]["utilization"] <= 1.0
    line = summarize(report)
    assert "duplicate-heavy" in line and "conserved" in line


def test_loadtest_report_feeds_slo_gate_and_history(tmp_path, cold_caches):
    with ThreadedServer(queue_depth=64, pool="thread", workers=2) as server:
        # Distinct scale from the other live test: its payloads are
        # memoized in-process by then, which would defeat coalescing.
        report = run_loadtest(
            port=server.port, rate=50.0, total=6,
            mix="duplicate-heavy", scale=0.04, timeout=120,
        )
    report_path = tmp_path / "loadtest.json"
    report_path.write_text(json.dumps(report))

    gate = subprocess.run(
        [sys.executable, str(SCRIPTS / "check_loadtest_slo.py"),
         str(report_path), "--min-coalesce-ratio", "0.01"],
        capture_output=True, text=True,
    )
    assert gate.returncode == 0, gate.stderr
    assert "loadtest SLOs met" in gate.stdout

    # An absurd absolute SLO must fail the gate.
    gate = subprocess.run(
        [sys.executable, str(SCRIPTS / "check_loadtest_slo.py"),
         str(report_path), "--min-jobs-per-sec", "1e9"],
        capture_output=True, text=True,
    )
    assert gate.returncode == 1
    assert "below SLO" in gate.stderr

    # Relative gate against itself as baseline passes.
    gate = subprocess.run(
        [sys.executable, str(SCRIPTS / "check_loadtest_slo.py"),
         str(report_path), "--baseline", str(report_path)],
        capture_output=True, text=True,
    )
    assert gate.returncode == 0, gate.stderr

    history = tmp_path / "history.jsonl"
    appended = subprocess.run(
        [sys.executable, str(SCRIPTS / "append_bench_history.py"),
         str(report_path), str(history)],
        capture_output=True, text=True,
    )
    assert appended.returncode == 0, appended.stderr
    record = json.loads(history.read_text())
    assert record["experiment"] == "loadtest"
    assert record["mix"] == "duplicate-heavy"
    assert record["conserved"] is True
    assert record["throughput_jobs_per_sec"] == (
        report["throughput_jobs_per_sec"]
    )


def test_slo_gate_rejects_conservation_violation(tmp_path):
    report = {
        "experiment": "loadtest",
        "mix": "cold-heavy",
        "throughput_jobs_per_sec": 10.0,
        "latency_seconds": {"p99": 0.1},
        "client": {"attempted": 2, "completed": 2, "failed": 0,
                   "rejected": 0, "errors": 0},
        "server": {"conserved": False, "submitted_delta": 2,
                   "completed_delta": 1, "failed_delta": 0,
                   "coalesce_ratio": 0.0},
    }
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(report))
    gate = subprocess.run(
        [sys.executable, str(SCRIPTS / "check_loadtest_slo.py"), str(path)],
        capture_output=True, text=True,
    )
    assert gate.returncode == 1
    assert "conservation violated" in gate.stderr
