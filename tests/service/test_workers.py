"""Tests for the worker-pool abstraction (thread, process, injected)."""

import asyncio

import pytest

import repro.harness.diskcache as diskcache
from repro.harness.profiling import PROFILER
from repro.harness.runner import clear_run_cache
from repro.service.jobs import JobRequest
from repro.service.workers import (
    InjectedWorkerPool,
    ProcessWorkerPool,
    default_workers,
    idle_worker_stats,
    make_pool,
)
from repro.workloads.suite import clear_trace_cache


def test_default_workers_caps_at_eight_and_honors_max_jobs(monkeypatch):
    monkeypatch.delenv("REPRO_MAX_JOBS", raising=False)
    assert 1 <= default_workers() <= 8
    monkeypatch.setenv("REPRO_MAX_JOBS", "1")
    assert default_workers() == 1
    monkeypatch.setenv("REPRO_MAX_JOBS", "999")
    assert default_workers() <= 8


def test_idle_worker_stats_zero_filled():
    stats = idle_worker_stats()
    assert stats["total"] == 0
    assert stats["busy"] == 0
    assert stats["batches_total"] == 0
    histogram = stats["batch_seconds"]
    assert histogram["count"] == 0
    assert histogram["sum"] == 0.0
    assert histogram["buckets"]  # full bucket array even while idle
    assert all(count == 0 for _, count in histogram["buckets"])


def test_make_pool_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_pool("carrier-pigeon", 2)


def test_injected_pool_runs_legacy_two_arg_call():
    calls = []

    def fake_execute(requests, sim_jobs):
        calls.append((list(requests), sim_jobs))
        return {request.flight_key: ("ok", {"fake": True})
                for request in requests}

    pool = InjectedWorkerPool(2, fake_execute)
    request = JobRequest(benchmark="KM", scale=0.05)

    async def go():
        return await pool.run_batch([request], 3, {}, on_progress=None)

    try:
        outcomes = asyncio.run(go())
    finally:
        pool.shutdown()
    assert outcomes[request.flight_key] == ("ok", {"fake": True})
    assert calls == [([request], 3)]
    stats = pool.stats()
    assert stats["kind"] == "injected"
    assert stats["total"] == 2
    assert stats["busy"] == 0
    assert stats["batches_total"] == 1
    assert stats["batch_seconds"]["count"] == 1


def test_process_pool_executes_merges_and_reports(tmp_path):
    """A forked worker really simulates, and the parent gets everything
    back: outcomes, final heartbeats, profiler counters, disk stats."""
    diskcache.configure(enabled=True, root=str(tmp_path / "cache"))
    clear_run_cache()
    clear_trace_cache()
    before = PROFILER.counters.get("runs_simulated", 0)
    pool = ProcessWorkerPool(1)
    request = JobRequest(benchmark="KM", scale=0.05)
    beats = {}

    async def go():
        return await pool.run_batch(
            [request], 1, {request.flight_key: "job-1"},
            on_progress=lambda key, beat: beats.update({key: beat}),
        )

    try:
        outcomes = asyncio.run(go())
        disk = diskcache.shared_stats()
    finally:
        pool.shutdown()
        diskcache.configure()
        clear_run_cache()
        clear_trace_cache()
    status, report = outcomes[request.flight_key]
    assert status == "ok"
    assert report["benchmark"] == "KM"
    assert report["speedup"] > 0
    # Worker profiler counters merged back into the parent.
    simulated = PROFILER.counters.get("runs_simulated", 0) - before
    assert simulated == 2  # baseline + dynaspam
    # The worker's final heartbeat arrived with batch totals.
    beat = beats[request.flight_key]
    assert beat["label"] == "batch"
    assert beat["done"] == beat["total"] == 1
    assert beat["detail"] == "KM"
    # The shared artifact store holds the worker's results.
    assert disk.get("runs", {}).get("writes", 0) >= 2
    stats = pool.stats()
    assert stats["kind"] == "process"
    assert stats["busy"] == 0
    assert stats["batches_total"] == 1
    assert stats["batch_seconds"]["count"] == 1
    assert stats["batch_seconds"]["sum"] > 0
