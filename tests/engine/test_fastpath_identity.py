"""Bit-identity of the optimized engine tiers against the interpreted model.

The compiled fast path (``repro.ooo.fastpath`` + ``repro.fabric.compiled``)
and the invocation-timing memo (``repro.fabric.memo``) are *implementation*
choices, never modeling choices: every cycle count, statistic, report
byte, and traced event sequence must be exactly what the interpreted
reference model produces.  These tests sweep the full kernel suite across
execution modes with each tier toggled independently — all four
fastpath x memo combinations — and demand byte equality, not closeness,
of the serialized results.

The only tolerated difference is the ``ENGINE_TIER_COUNTERS`` /
``ENGINE_TIER_EVENTS`` carve-out: tier hit/miss/batch counters and events
are simulator-internal observability with no modeled meaning, so identity
is asserted on reports with those counters removed and on event streams
with those events filtered (and ``seq`` renumbered).  Within a single
tier setting nothing is filtered: fastpath on/off must agree byte for
byte, tier events included.
"""

import json

import pytest

from repro.core import DynaSpAM, DynaSpAMConfig
from repro.engine import (
    ENGINE_TIER_COUNTERS,
    ENGINE_TIER_EVENTS,
    fastpath_enabled,
    memo_enabled,
    set_fastpath,
    set_memo,
    use_fastpath,
    use_memo,
)
from repro.ooo.fastpath import FastOOOPipeline, make_pipeline
from repro.ooo.pipeline import OOOPipeline
from repro.workloads import ALL_ABBREVS, generate_trace

SCALE = 0.04

#: (mode, speculation) variants covering every engine code path: the
#: plain host pipeline, all fabric execution tiers, speculation off
#: (conservative memory context), and the mapping-only ablation.
VARIANTS = (
    ("baseline", True),
    ("accelerate", True),
    ("accelerate", False),
    ("mapping_only", True),
)

#: Every fastpath x memo combination; (False, False) is the pure
#: interpreted reference all others must match.
TIER_COMBOS = (
    (False, False),
    (True, False),
    (False, True),
    (True, True),
)


def _run_cell(
    abbrev: str, mode: str, speculation: bool, fast: bool, memo: bool
) -> str:
    """One simulation with the engine tiers forced, serialized canonically.

    Machines are constructed directly — not through the harness run
    caches — so every tier combination genuinely simulates.  Tier
    hit/miss counters are removed before serializing: they are the one
    sanctioned difference between tiers.
    """
    tr = generate_trace(abbrev, SCALE)
    with use_fastpath(fast), use_memo(memo):
        if mode == "baseline":
            result = make_pipeline().run_trace(tr.trace)
        else:
            machine = DynaSpAM(
                ds_config=DynaSpAMConfig(mode=mode, speculation=speculation)
            )
            result = machine.run(tr.trace, tr.program)
    stats = result.stats.as_dict()
    for counter in ENGINE_TIER_COUNTERS:
        stats.pop(counter, None)
    return json.dumps(
        {"cycles": result.cycles, "stats": stats},
        sort_keys=True,
    )


@pytest.mark.parametrize("abbrev", ALL_ABBREVS)
def test_engine_bit_identity(abbrev):
    for mode, speculation in VARIANTS:
        interpreted = _run_cell(
            abbrev, mode, speculation, fast=False, memo=False
        )
        for fast, memo in TIER_COMBOS[1:]:
            combo = _run_cell(abbrev, mode, speculation, fast, memo)
            assert combo == interpreted, (
                f"{abbrev} {mode} spec={speculation} "
                f"fastpath={fast} memo={memo}: engines diverge"
            )


def _strip_tier_counters(report: dict) -> dict:
    """Remove engine-tier counters wherever stats dicts appear."""
    for block in ("stats", "baseline_stats"):
        stats = report.get(block)
        if isinstance(stats, dict):
            for counter in ENGINE_TIER_COUNTERS:
                stats.pop(counter, None)
    return report


def test_simulation_report_bit_identity(tmp_path, monkeypatch):
    """The full ``repro run --json`` report is byte-identical per tier
    combination, modulo the tier counters.

    Each combination gets its own disk-cache root and a cleared
    in-memory layer, so no combination can serve another's simulation
    back.
    """
    from repro.harness import diskcache
    from repro.harness.runner import clear_run_cache, simulation_report

    reports = {}
    for fast, memo in TIER_COMBOS:
        clear_run_cache()
        monkeypatch.setenv(
            "REPRO_CACHE_DIR", str(tmp_path / f"f{int(fast)}m{int(memo)}")
        )
        diskcache.configure()  # drop memoized cache objects, re-read env
        with use_fastpath(fast), use_memo(memo):
            reports[(fast, memo)] = json.dumps(
                _strip_tier_counters(simulation_report("NW", SCALE)),
                sort_keys=True,
            )
    clear_run_cache()
    diskcache.configure()
    reference = reports[(False, False)]
    for combo in TIER_COMBOS[1:]:
        assert reports[combo] == reference, f"combo {combo} diverges"


def _event_stream(fast: bool, memo: bool):
    from repro.obs import MemorySink

    tr = generate_trace("KM", SCALE)
    sink = MemorySink()
    with use_fastpath(fast), use_memo(memo):
        machine = DynaSpAM(
            ds_config=DynaSpAMConfig(mode="accelerate"), sink=sink
        )
        machine.run(tr.trace, tr.program)
    return [
        (e.seq, e.type, e.cycle, tuple(sorted(e.data.items())))
        for e in sink.events
    ]


def test_traced_event_streams_identical():
    """Tracing sees the same event sequence from both fastpath settings —
    exactly, tier events included (memo stays at its default on both)."""
    streams = {
        fast: _event_stream(fast, memo_enabled()) for fast in (True, False)
    }
    assert streams[True], "traced run produced no events"
    assert streams[True] == streams[False]


def test_traced_event_streams_identical_across_memo():
    """Memo on vs off produces the same modeled event sequence.

    The memo tier emits its own ``fabric.memo_*`` / ``offload.batch``
    events, which shift ``seq`` numbering; identity holds after
    filtering ``ENGINE_TIER_EVENTS`` and renumbering.
    """
    streams = {}
    for memo in (True, False):
        events = _event_stream(fast=True, memo=memo)
        streams[memo] = [
            (index, e[1], e[2], e[3])
            for index, e in enumerate(
                e for e in events if e[1] not in ENGINE_TIER_EVENTS
            )
        ]
    assert streams[True], "traced run produced no modeled events"
    assert streams[True] == streams[False]


def test_engine_flag_roundtrip(monkeypatch):
    previous = set_fastpath(True)
    try:
        assert fastpath_enabled()
        with use_fastpath(False):
            assert not fastpath_enabled()
            with use_fastpath(True):
                assert fastpath_enabled()
            assert not fastpath_enabled()
        assert fastpath_enabled()
        assert isinstance(make_pipeline(), FastOOOPipeline)
        set_fastpath(False)
        pipeline = make_pipeline()
        assert type(pipeline) is OOOPipeline
    finally:
        set_fastpath(previous)


def test_memo_flag_roundtrip():
    previous = set_memo(True)
    try:
        assert memo_enabled()
        with use_memo(False):
            assert not memo_enabled()
            with use_memo(True):
                assert memo_enabled()
            assert not memo_enabled()
        assert memo_enabled()
    finally:
        set_memo(previous)


def test_memo_tier_engages():
    """The default-on memo tier must actually hit, batch, and go cold
    somewhere — guard against a silently dead tier.  KNN's dynamic inputs
    repeat heavily (timing replays); KM's mostly don't (its configurations
    retire via the adaptive bail-out) but its anchors arrive back-to-back
    (super-step batching)."""
    stats = {}
    # KNN needs a slightly longer run than the identity scale for its
    # dynamic inputs to settle into repetition within the probe window.
    for abbrev, scale in (("KNN", 0.1), ("KM", SCALE)):
        tr = generate_trace(abbrev, scale)
        with use_fastpath(True), use_memo(True):
            machine = DynaSpAM(ds_config=DynaSpAMConfig(mode="accelerate"))
            stats[abbrev] = machine.run(tr.trace, tr.program).stats
    assert stats["KNN"].invocation_memo_hits > 0
    assert stats["KNN"].invocation_memo_misses > 0
    assert stats["KM"].invocation_memo_misses > 0
    assert stats["KM"].batched_invocations > 0


def test_hot_structures_stay_bounded():
    """Slot windows, FU occupancy, and store indexes must not grow with
    trace length — the in-place pruning contract of the fast path."""
    tr = generate_trace("KM", 0.3)
    with use_fastpath(True):
        pipeline = make_pipeline()
        assert isinstance(pipeline, FastOOOPipeline)
        result = pipeline.run_trace(tr.trace)
    instructions = result.stats.instructions
    bound = 3 * OOOPipeline.PRUNE_INTERVAL
    assert instructions > bound, "trace too short to exercise pruning"
    assert len(pipeline._fetch_counts) < bound
    assert len(pipeline._issue_counts) < bound
    assert len(pipeline._commit_counts) < bound
    for pool_busy in pipeline.fus._busy.values():
        assert len(pool_busy) < bound
    entries = pipeline.sq.entries
    assert len(pipeline.sq._window) <= entries
    assert len(pipeline.sq._by_addr) <= entries
    assert len(pipeline._store_by_seq) <= 2 * entries + 1
