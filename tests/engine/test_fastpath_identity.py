"""Bit-identity of the compiled fast engine against the interpreted model.

The fast engine (``repro.ooo.fastpath`` + ``repro.fabric.compiled``) is
an *implementation* choice, never a modeling choice: every cycle count,
statistic, report byte, and traced event sequence must be exactly what
the interpreted reference model produces.  These tests sweep the full
kernel suite across execution modes with the engine toggled both ways
and demand byte equality — not closeness — of the serialized results.
"""

import json

import pytest

from repro.core import DynaSpAM, DynaSpAMConfig
from repro.engine import fastpath_enabled, set_fastpath, use_fastpath
from repro.ooo.fastpath import FastOOOPipeline, make_pipeline
from repro.ooo.pipeline import OOOPipeline
from repro.workloads import ALL_ABBREVS, generate_trace

SCALE = 0.04

#: (mode, speculation) variants covering every engine code path: the
#: plain host pipeline, both fabric execution engines, speculation off
#: (conservative memory context), and the mapping-only ablation.
VARIANTS = (
    ("baseline", True),
    ("accelerate", True),
    ("accelerate", False),
    ("mapping_only", True),
)


def _run_cell(abbrev: str, mode: str, speculation: bool, fast: bool) -> str:
    """One simulation with the engine forced, serialized canonically.

    Machines are constructed directly — not through the harness run
    caches — so both engines genuinely simulate.
    """
    tr = generate_trace(abbrev, SCALE)
    with use_fastpath(fast):
        if mode == "baseline":
            result = make_pipeline().run_trace(tr.trace)
        else:
            machine = DynaSpAM(
                ds_config=DynaSpAMConfig(mode=mode, speculation=speculation)
            )
            result = machine.run(tr.trace, tr.program)
    return json.dumps(
        {"cycles": result.cycles, "stats": result.stats.as_dict()},
        sort_keys=True,
    )


@pytest.mark.parametrize("abbrev", ALL_ABBREVS)
def test_engine_bit_identity(abbrev):
    for mode, speculation in VARIANTS:
        fast = _run_cell(abbrev, mode, speculation, fast=True)
        interpreted = _run_cell(abbrev, mode, speculation, fast=False)
        assert fast == interpreted, (
            f"{abbrev} {mode} spec={speculation}: engines diverge"
        )


def test_simulation_report_bit_identity(tmp_path, monkeypatch):
    """The full ``repro run --json`` report is byte-identical per engine.

    Each engine gets its own disk-cache root and a cleared in-memory
    layer, so neither can serve the other's simulation back.
    """
    from repro.harness import diskcache
    from repro.harness.runner import clear_run_cache, simulation_report

    reports = {}
    for fast in (True, False):
        clear_run_cache()
        monkeypatch.setenv(
            "REPRO_CACHE_DIR", str(tmp_path / ("fast" if fast else "interp"))
        )
        diskcache.configure()  # drop memoized cache objects, re-read env
        with use_fastpath(fast):
            reports[fast] = json.dumps(
                simulation_report("NW", SCALE), sort_keys=True
            )
    clear_run_cache()
    diskcache.configure()
    assert reports[True] == reports[False]


def test_traced_event_streams_identical():
    """Tracing sees the same event sequence from both engines."""
    from repro.obs import MemorySink

    streams = {}
    for fast in (True, False):
        tr = generate_trace("KM", SCALE)
        sink = MemorySink()
        with use_fastpath(fast):
            machine = DynaSpAM(
                ds_config=DynaSpAMConfig(mode="accelerate"), sink=sink
            )
            machine.run(tr.trace, tr.program)
        streams[fast] = [
            (e.seq, e.type, e.cycle, tuple(sorted(e.data.items())))
            for e in sink.events
        ]
    assert streams[True], "traced run produced no events"
    assert streams[True] == streams[False]


def test_engine_flag_roundtrip(monkeypatch):
    previous = set_fastpath(True)
    try:
        assert fastpath_enabled()
        with use_fastpath(False):
            assert not fastpath_enabled()
            with use_fastpath(True):
                assert fastpath_enabled()
            assert not fastpath_enabled()
        assert fastpath_enabled()
        assert isinstance(make_pipeline(), FastOOOPipeline)
        set_fastpath(False)
        pipeline = make_pipeline()
        assert type(pipeline) is OOOPipeline
    finally:
        set_fastpath(previous)


def test_hot_structures_stay_bounded():
    """Slot windows, FU occupancy, and store indexes must not grow with
    trace length — the in-place pruning contract of the fast path."""
    tr = generate_trace("KM", 0.3)
    with use_fastpath(True):
        pipeline = make_pipeline()
        assert isinstance(pipeline, FastOOOPipeline)
        result = pipeline.run_trace(tr.trace)
    instructions = result.stats.instructions
    bound = 3 * OOOPipeline.PRUNE_INTERVAL
    assert instructions > bound, "trace too short to exercise pruning"
    assert len(pipeline._fetch_counts) < bound
    assert len(pipeline._issue_counts) < bound
    assert len(pipeline._commit_counts) < bound
    for pool_busy in pipeline.fus._busy.values():
        assert len(pool_busy) < bound
    entries = pipeline.sq.entries
    assert len(pipeline.sq._window) <= entries
    assert len(pipeline.sq._by_addr) <= entries
    assert len(pipeline._store_by_seq) <= 2 * entries + 1
