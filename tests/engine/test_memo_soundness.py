"""Adversarial soundness tests for the invocation-timing memo tier.

The memo (``repro.fabric.memo``) replays a cached timeline whenever a
configuration is re-invoked with the same dynamic-input key.  These tests
attack the key: each one perturbs exactly one dynamic input that *must*
change the timing outcome — an operand-dependent D-cache latency, a
store-set alias induced by this occurrence's addresses, a host-store
wait, an intra-trace store prediction, the speculation mode — and
demands both a memo **miss** and a result bit-identical to what a
memo-off fabric produces from the same starting state.  A false hit on
any of these would replay a stale timeline and silently corrupt cycles.

The paired-run discipline: every scenario is executed twice from
scratch — one fresh fabric with the memo forced on, one with it forced
off — over the *same* invocation sequence, and every field of every
``InvocationResult`` must match.  The memo-on run's hit/miss counters
then pin down which invocations replayed.
"""

from types import SimpleNamespace

import pytest

import repro.fabric.memo as memo_mod
from repro.core import DynaSpAM, DynaSpAMConfig
from repro.engine import use_fastpath, use_memo
from repro.fabric.fabric import InvocationContext, SpatialFabric
from repro.fabric.memo import (
    INVOCATION_MEMO_CAP,
    MEMO_PROBE_MIN_HITS,
    MEMO_PROBE_WINDOW,
)


@pytest.fixture(autouse=True)
def no_warmup(monkeypatch):
    """Probe from the first invocation.  The production warm-up bypass
    (first ``MEMO_PROBE_WARMUP`` invocations never touch the memo) would
    otherwise hide every short adversarial sequence below; it has its own
    dedicated test."""
    monkeypatch.setattr(memo_mod, "MEMO_PROBE_WARMUP", 0)
from repro.isa.opcodes import Opcode, OpClass
from repro.ooo.stats import PipelineStats
from tests.fabric.test_execution import (
    configure,
    ctx,
    flat_cache,
    inst_src,
    livein,
    make_config,
    make_store_load,
    placed,
)


def mkctx(start=10, live_in_ready=None, mem_addrs=None, speculative=True,
          dcache_access=flat_cache, **kw):
    return InvocationContext(
        start_lower_bound=start,
        live_in_ready=live_in_ready or {},
        mem_addrs=mem_addrs or {},
        dcache_access=dcache_access,
        speculative=speculative,
        **kw,
    )


def _canon(result) -> tuple:
    """Every timing-visible field of an ``InvocationResult``."""
    return (
        result.start,
        result.complete,
        tuple(sorted(result.finish_times.items())),
        tuple(sorted(result.liveout_ready.items())),
        tuple(
            (e.pos, e.mem_index, e.addr, e.kind,
             e.start, e.addr_known, e.finish)
            for e in result.mem_events
        ),
        tuple(result.violations),
        result.structural_ii,
        result.fu_ops,
        result.datapath_transfers,
        result.fifo_ops,
        result.occupancy_cycles,
    )


def _run_sequence(build, memo: bool, shared_fabric: bool):
    """Run ``build()``'s invocation sequence on fresh state.

    ``build`` returns ``(configuration, [context, ...])``; contexts are
    rebuilt per run so stateful ``dcache_access`` closures start fresh.
    With ``shared_fabric`` the sequence pipelines on one fabric (starts
    advance occurrence to occurrence); without, each invocation gets a
    freshly configured fabric so its start — and therefore the
    start-relative key — repeats exactly.  Returns the canonical results
    and the stats the contexts ticked.
    """
    stats = PipelineStats()
    configuration, contexts = build(stats)
    fabric = configure(SpatialFabric(), configuration)
    results = []
    with use_fastpath(False), use_memo(memo):
        for c in contexts:
            if not shared_fabric:
                fabric = configure(SpatialFabric(), configuration)
            results.append(_canon(fabric.execute(configuration, c)))
    return results, stats


def _assert_paired(build, expect_hits: int, expect_misses: int,
                   shared_fabric: bool = False):
    with_memo, stats = _run_sequence(build, True, shared_fabric)
    without, _ = _run_sequence(build, False, shared_fabric)
    assert with_memo == without, "memo tier diverged from the engine walk"
    assert stats.invocation_memo_hits == expect_hits
    assert stats.invocation_memo_misses == expect_misses


def test_repeated_invocation_hits_and_matches():
    """Sanity: identical dynamic inputs replay, and the replayed second
    invocation (pipelined start, steady-state occupancy) still matches."""

    def build(stats):
        cfg = make_config([
            placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")],
                   dest="r2"),
            placed(1, Opcode.ADD, OpClass.INT_ALU, 1, [inst_src(0, 1)],
                   dest="r3"),
        ], live_ins=["r1"], live_outs={"r3": 1})
        return cfg, [ctx(start=10, stats=stats) for _ in range(3)]

    _assert_paired(build, expect_hits=2, expect_misses=1,
                   shared_fabric=True)


def test_perturbed_dcache_latency_misses_and_matches():
    """A load whose D-cache latency changes between occurrences must not
    replay the old latency's timeline."""

    def build(stats):
        cfg = make_config([
            placed(0, Opcode.LW, OpClass.LOAD, 0, [livein("r1")],
                   roles=["base"], pool="ldst", dest="r2", mem_index=0,
                   pc=0x40),
            placed(1, Opcode.ADD, OpClass.INT_ALU, 1, [inst_src(0, 1)],
                   dest="r3"),
        ], live_ins=["r1"], live_outs={"r3": 1},
            mem=[(0x40, "load")])
        latencies = iter([2, 2, 50])   # third occurrence misses the cache

        def dcache(addr):
            return next(latencies)

        return cfg, [
            mkctx(mem_addrs={0: 0x100}, stats=stats, dcache_access=dcache)
            for _ in range(3)
        ]

    _assert_paired(build, expect_hits=1, expect_misses=2)


def test_alias_flip_misses_and_matches():
    """An occurrence whose load newly aliases an older in-flight store
    (address equality this occurrence only) must miss: the load now
    forwards from the store instead of going to the D-cache."""

    def build(stats):
        cfg, _ = make_store_load(same_addr=True)
        return cfg, [
            ctx(mem_addrs={0: 0x100, 1: 0x200}, stats=stats),  # no alias
            ctx(mem_addrs={0: 0x100, 1: 0x100}, stats=stats),  # alias
            ctx(mem_addrs={0: 0x100, 1: 0x100}, stats=stats),  # alias again
        ]

    _assert_paired(build, expect_hits=1, expect_misses=2)


def test_host_store_wait_perturbation_misses_and_matches():
    """A changed ``extra_mem_wait`` (an aliasing in-flight host store from
    the store queue) must miss — the wait delays the memory op."""

    def build(stats):
        cfg, addrs = make_store_load(same_addr=False)
        return cfg, [
            ctx(mem_addrs=addrs, stats=stats),
            ctx(mem_addrs=addrs, stats=stats, extra_mem_wait={1: 500}),
            ctx(mem_addrs=addrs, stats=stats, extra_mem_wait={1: 500}),
        ]

    _assert_paired(build, expect_hits=1, expect_misses=2)


def test_store_set_prediction_change_misses_and_matches():
    """A changed Store-Sets prediction (the load must wait for the
    predicted older store) must miss."""

    def build(stats):
        cfg, addrs = make_store_load(same_addr=False)
        return cfg, [
            ctx(mem_addrs=addrs, stats=stats),
            ctx(mem_addrs=addrs, stats=stats, predicted_store_pos={1: 1}),
            ctx(mem_addrs=addrs, stats=stats, predicted_store_pos={1: 1}),
        ]

    _assert_paired(build, expect_hits=1, expect_misses=2)


def test_speculation_flip_misses_and_matches():
    """Speculation mode changes the whole memory-ordering discipline."""

    def build(stats):
        cfg, addrs = make_store_load(same_addr=False)
        return cfg, [
            ctx(mem_addrs=addrs, stats=stats, speculative=True),
            ctx(mem_addrs=addrs, stats=stats, speculative=False),
            ctx(mem_addrs=addrs, stats=stats, speculative=False),
        ]

    _assert_paired(build, expect_hits=1, expect_misses=2)


def test_live_in_arrival_change_misses_and_matches():
    """A live-in arriving later than ``start`` gates the dataflow; the
    clamped-at-(-bus) floor must still distinguish late arrivals."""

    def build(stats):
        cfg = make_config([
            placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")],
                   dest="r2"),
        ], live_ins=["r1"], live_outs={"r2": 0})
        return cfg, [
            ctx(start=10, stats=stats),
            ctx(start=10, live_in_ready={"r1": 40}, stats=stats),
            ctx(start=10, live_in_ready={"r1": 40}, stats=stats),
        ]

    _assert_paired(build, expect_hits=1, expect_misses=2)


def test_memo_stays_bounded():
    """Distinct keys beyond the cap must not grow the memo without bound
    (PR 5's pruning contract, applied to the new cache)."""
    cfg = make_config([
        placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")],
               dest="r2"),
    ], live_ins=["r1"], live_outs={"r2": 0})
    with use_fastpath(False), use_memo(True):
        # Warm the probe window first (repeating key -> hits) so the
        # cold bail-out doesn't retire the memo before the cap matters.
        for _ in range(MEMO_PROBE_MIN_HITS + 1):
            fabric = configure(SpatialFabric(), cfg)
            fabric.execute(cfg, ctx(start=0))
        for i in range(INVOCATION_MEMO_CAP + 64):
            fabric = configure(SpatialFabric(), cfg)
            # Every invocation gets a fresh live-in arrival offset -> a
            # fresh key.
            fabric.execute(cfg, ctx(start=0, live_in_ready={"r1": 10 + i}))
    assert not getattr(cfg, "_memo_cold", False)
    assert len(cfg._invocation_memo) <= INVOCATION_MEMO_CAP


def test_memo_goes_cold_on_non_repeating_keys():
    """A configuration whose dynamic inputs never repeat must stop being
    probed after the adaptive window — and still match the engine walk."""
    def build(stats):
        cfg = make_config([
            placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")],
                   dest="r2"),
        ], live_ins=["r1"], live_outs={"r2": 0})
        return cfg, [
            ctx(start=0, live_in_ready={"r1": 10 + i}, stats=stats)
            for i in range(MEMO_PROBE_WINDOW + 16)
        ]

    _assert_paired(build, expect_hits=0, expect_misses=MEMO_PROBE_WINDOW)


def test_warmup_invocations_bypass_the_memo(monkeypatch):
    """The first ``MEMO_PROBE_WARMUP`` invocations of a configuration must
    run the engine untouched — no key build, no hit/miss tick — and the
    memo must still match the engine walk once probing begins."""
    monkeypatch.setattr(memo_mod, "MEMO_PROBE_WARMUP", 4)

    def build(stats):
        cfg = make_config([
            placed(0, Opcode.ADD, OpClass.INT_ALU, 0, [livein("r1")],
                   dest="r2"),
        ], live_ins=["r1"], live_outs={"r2": 0})
        return cfg, [ctx(start=10, stats=stats) for _ in range(7)]

    # 4 bypassed + 1 miss + 2 hits.
    _assert_paired(build, expect_hits=2, expect_misses=1)


def test_flipped_branch_occurrence_rejected_by_fast_segment():
    """The batch path's occurrence probe must reject an occurrence whose
    embedded branch flipped — that occurrence has a different trace key
    and must take the general walk (which detects the squash)."""
    machine = DynaSpAM(ds_config=DynaSpAMConfig(mode="accelerate"))
    configuration = SimpleNamespace(
        _occurrence_probe=(3, ((1, 0x44, True),))
    )
    matching = [
        SimpleNamespace(pc=0x40, taken=None),
        SimpleNamespace(pc=0x44, taken=True),
        SimpleNamespace(pc=0x48, taken=None),
    ]
    flipped = [
        SimpleNamespace(pc=0x40, taken=None),
        SimpleNamespace(pc=0x44, taken=False),
        SimpleNamespace(pc=0x48, taken=None),
    ]
    truncated = matching[:2]
    with use_memo(True):
        assert machine._segment_fast(
            matching, 0, configuration, None) == matching
        assert machine._segment_fast(flipped, 0, configuration, None) is None
        assert machine._segment_fast(
            truncated, 0, configuration, None) is None
    with use_memo(False):
        assert machine._segment_fast(
            matching, 0, configuration, None) is None
