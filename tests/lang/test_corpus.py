"""The shipped corpus end-to-end through the CLI: every program must
ingest cleanly and simulate through the full baseline/DynaSpAM stack
with conserved cycle accounting."""

import json
import pathlib

import pytest

from repro.__main__ import main

CORPUS = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "corpus").glob("*.spam")
)
CORPUS_IDS = [p.stem for p in CORPUS]


@pytest.mark.parametrize("path", CORPUS, ids=CORPUS_IDS)
def test_ingest_json(path, capsys):
    assert main(["ingest", str(path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["output_matches_interpreter"] is True
    assert report["abbrev"].startswith(f"PROG:{path.stem}:")
    assert report["lowered"]["dynamic_count"] > 0


@pytest.mark.parametrize("path", CORPUS, ids=CORPUS_IDS)
def test_ingest_with_full_pipeline(path, capsys):
    assert main(["ingest", str(path), "--passes", "lvn,dce,licm",
                 "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["output_matches_interpreter"] is True
    assert report["passes"] == ["lvn", "dce", "licm"]


@pytest.mark.parametrize("path", CORPUS, ids=CORPUS_IDS)
def test_run_program_json_conserves_cycles(path, capsys):
    assert main(["run", "--program", str(path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["program"]["output_matches_interpreter"] is True
    assert report["benchmark"] == report["program"]["abbrev"]
    for series in ("baseline", "dynaspam"):
        assert report["cycle_accounting"][series]["conserved"], (
            f"{path.stem}: {series} cycle buckets leak")


def test_emit_ir_round_trips(capsys):
    path = str(CORPUS[0])
    assert main(["ingest", path, "--passes", "lvn,dce", "--emit-ir"]) == 0
    printed = capsys.readouterr().out
    from repro.lang import check_module, parse_module

    module = parse_module(printed, filename="<emitted>")
    check_module(module, allow_reserved=True)


def test_bfs_like_and_reduction_like_kernels_exist():
    assert "bfs_frontier" in CORPUS_IDS
    assert "sum_loop" in CORPUS_IDS
