"""Optimization-pass semantics over the shipped corpus.

Two properties per pass: it must preserve interpreter output on *every*
corpus program, and it must strictly reduce the dynamic instruction
count on at least one (so a pass can never silently decay into a no-op).
"""

import copy
import pathlib

import pytest

from repro.lang import (
    PASSES,
    check_module,
    load_file,
    parse_pass_spec,
    run_passes,
)
from repro.lang.interp import interpret

CORPUS = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "corpus").glob("*.spam")
)
CORPUS_IDS = [p.stem for p in CORPUS]


def test_corpus_is_at_least_eight_programs():
    assert len(CORPUS) >= 8


@pytest.mark.parametrize("path", CORPUS, ids=CORPUS_IDS)
@pytest.mark.parametrize("pass_name", sorted(PASSES))
def test_pass_preserves_output_on_corpus(path, pass_name):
    module = load_file(str(path))
    ref = interpret(module)
    optimized = run_passes(copy.deepcopy(module), [pass_name])
    check_module(optimized, allow_reserved=True)
    assert interpret(optimized).output == ref.output


@pytest.mark.parametrize("pass_name", sorted(PASSES))
def test_each_pass_strictly_reduces_somewhere(pass_name):
    reduced = []
    for path in CORPUS:
        module = load_file(str(path))
        base = interpret(module).dynamic_count
        optimized = run_passes(copy.deepcopy(module), [pass_name])
        if interpret(optimized).dynamic_count < base:
            reduced.append(path.stem)
    assert reduced, f"{pass_name} reduced dynamic count on no corpus program"


@pytest.mark.parametrize("path", CORPUS, ids=CORPUS_IDS)
def test_full_pipeline_preserves_output(path):
    module = load_file(str(path))
    ref = interpret(module)
    optimized = run_passes(copy.deepcopy(module), ["lvn", "dce", "licm"])
    check_module(optimized, allow_reserved=True)
    result = interpret(optimized)
    assert result.output == ref.output
    assert result.dynamic_count <= ref.dynamic_count + 16


def test_parse_pass_spec():
    assert parse_pass_spec("lvn,dce") == ["lvn", "dce"]
    assert parse_pass_spec(" licm ") == ["licm"]
    with pytest.raises(ValueError) as err:
        parse_pass_spec("lvn,nope")
    assert "nope" in str(err.value)


def test_dce_keeps_dead_alloc():
    """A dead alloc still advances the bump pointer — removing it would
    shift every later allocation's address, which is observable."""
    from repro.lang import load_module

    module = load_module("""\
@main {
  n: int = const 2;
  dead: ptr = alloc n;
  live: ptr = alloc n;
  v: int = const 9;
  store live v;
  w: int = load live;
  print w;
  ret;
}
""", filename="alloc.spam")
    ref = interpret(module)
    optimized = run_passes(copy.deepcopy(module), ["dce"])
    ops = [i.op for fn in optimized.functions for i in fn.instructions()]
    assert ops.count("alloc") == 2
    assert interpret(optimized).output == ref.output


def test_licm_never_hoists_trapping_ops_speculatively():
    """A div guarded by the loop condition must not be hoisted past it."""
    from repro.lang import load_module

    module = load_module("""\
@main {
  zero: int = const 0;
  one: int = const 1;
  ten: int = const 10;
  d: int = const 0;
  i: int = id zero;
  acc: int = id zero;
.head:
  c: bool = eq d zero;
  br c .done .body;
.body:
  q: int = div ten d;
  acc: int = add acc q;
  i: int = add i one;
  jmp .head;
.done:
  print acc;
  ret;
}
""", filename="guard.spam")
    ref = interpret(module)
    optimized = run_passes(copy.deepcopy(module), ["licm"])
    assert interpret(optimized).output == ref.output
