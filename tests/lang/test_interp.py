"""Reference interpreter semantics — the oracle the lowering is tested
against, so its edge cases (division truncation, zero guards, memory
traps) are pinned here explicitly."""

import pytest

from repro.lang import load_module
from repro.lang.interp import InterpError, interpret


def run(source: str):
    return interpret(load_module(source, filename="test.spam"))


def test_arithmetic_and_print():
    result = run("""\
@main {
  a: int = const 7;
  b: int = const 3;
  s: int = add a b;
  d: int = sub a b;
  m: int = mul a b;
  q: int = div a b;
  r: int = rem a b;
  print s; print d; print m; print q; print r;
  ret;
}
""")
    assert result.output == [10, 4, 21, 2, 1]


def test_division_truncates_toward_zero_like_the_isa():
    # The ISA executor computes int(a / b): truncation, not floor.
    result = run("""\
@main {
  a: int = const -7;
  b: int = const 2;
  q: int = div a b;
  print q;
  ret;
}
""")
    assert result.output == [-3]


def test_division_and_rem_by_zero_yield_zero():
    result = run("""\
@main {
  a: int = const 5;
  z: int = const 0;
  q: int = div a z;
  r: int = rem a z;
  print q; print r;
  ret;
}
""")
    assert result.output == [0, 0]


def test_bools_print_as_words():
    result = run("""\
@main {
  t: bool = const true;
  f: bool = const false;
  n: bool = not f;
  a: bool = and t n;
  print t; print f; print n; print a;
  ret;
}
""")
    assert result.output == [1, 0, 1, 1]


def test_comparisons():
    result = run("""\
@main {
  a: int = const 3;
  b: int = const 5;
  l: bool = lt a b;
  g: bool = gt a b;
  e: bool = eq a a;
  n: bool = ne a b;
  print l; print g; print e; print n;
  ret;
}
""")
    assert result.output == [1, 0, 1, 1]


def test_memory_round_trip_and_heap_accounting():
    result = run("""\
@main {
  n: int = const 4;
  p: ptr = alloc n;
  i: int = const 2;
  q: ptr = ptradd p i;
  v: int = const 77;
  store q v;
  w: int = load q;
  print w;
  ret;
}
""")
    assert result.output == [77]
    assert result.heap_words == 4


def test_fresh_memory_reads_zero():
    result = run("""\
@main {
  n: int = const 2;
  p: ptr = alloc n;
  v: int = load p;
  print v;
  ret;
}
""")
    assert result.output == [0]


def test_calls_and_recursion():
    result = run("""\
@fact(n: int): int {
  one: int = const 1;
  base: bool = le n one;
  br base .done .rec;
.rec:
  m: int = sub n one;
  r: int = call @fact m;
  r: int = mul r n;
  ret r;
.done:
  ret one;
}

@main {
  six: int = const 6;
  f: int = call @fact six;
  print f;
  ret;
}
""")
    assert result.output == [720]


def test_runaway_recursion_is_trapped():
    with pytest.raises(InterpError):
        run("""\
@spin(n: int): int {
  r: int = call @spin n;
  ret r;
}
@main {
  z: int = const 0;
  x: int = call @spin z;
  ret;
}
""")


def test_step_budget_is_enforced():
    source = """\
@main {
  one: int = const 1;
.loop:
  one: int = add one one;
  jmp .loop;
}
"""
    module = load_module(source, filename="spin.spam")
    with pytest.raises(InterpError):
        interpret(module, max_steps=1000)


def test_trace_recording_matches_dynamic_count():
    result = interpret(
        load_module("@main {\n  x: int = const 1;\n  print x;\n  ret;\n}\n",
                    filename="t.spam"),
        record_trace=True,
    )
    assert result.trace is not None
    assert len(result.trace) == result.dynamic_count


def test_negative_shift_count_is_trapped():
    with pytest.raises(InterpError):
        run("""\
@main {
  a: int = const 1;
  b: int = const -2;
  c: int = shl a b;
  print c;
  ret;
}
""")
