"""Lowering onto the simulator ISA: the differential contract, register
allocation / spilling, call inlining, and the corpus end-to-end."""

import pathlib

import pytest

from repro.lang import (
    LoweringError,
    execute_lowered,
    load_file,
    load_module,
    lower_module,
    output_of,
)
from repro.lang.interp import interpret
from repro.lang.lower import ALLOCATABLE

CORPUS = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "corpus").glob("*.spam")
)


def lower_and_run(source: str, filename: str = "test.spam"):
    module = load_module(source, filename=filename)
    lowered = lower_module(module, name="test")
    return interpret(module), lowered, execute_lowered(lowered)


@pytest.mark.parametrize("path", CORPUS, ids=[p.stem for p in CORPUS])
def test_corpus_lowers_to_matching_output(path):
    module = load_file(str(path))
    ref = interpret(module)
    result = execute_lowered(lower_module(module, name=path.stem))
    assert output_of(result) == ref.output


def test_recursion_is_a_lowering_error():
    module = load_module("""\
@spin(n: int): int {
  r: int = call @spin n;
  ret r;
}
@main {
  z: int = const 0;
  x: int = call @spin z;
  print x;
  ret;
}
""", filename="rec.spam")
    with pytest.raises(LoweringError) as err:
        lower_module(module, name="rec")
    assert "recursive" in str(err.value)


def test_spilling_beyond_the_register_file():
    """More live variables than allocatable registers forces spills; the
    spilled program must still agree with the interpreter."""
    n = len(ALLOCATABLE) + 10
    lines = ["@main {"]
    lines += [f"  v{i}: int = const {i + 1};" for i in range(n)]
    # Sum them in reverse so every variable stays live until its use.
    lines += [f"  v0: int = add v0 v{i};" for i in range(1, n)]
    lines += ["  print v0;", "  ret;", "}"]
    ref, lowered, result = lower_and_run("\n".join(lines) + "\n")
    assert output_of(result) == ref.output == [n * (n + 1) // 2]
    assert lowered.spill_slots, "expected at least one spilled variable"
    assert len(lowered.var_regs) == len(ALLOCATABLE)


def test_multiple_call_sites_of_one_helper():
    """Regression: the generated per-inline return label must not collide
    with a callee label named 'done'."""
    ref, _lowered, result = lower_and_run("""\
@f(a: int): int {
  one: int = const 1;
  c: bool = lt a one;
  br c .done .big;
.big:
  a: int = add a one;
  jmp .done;
.done:
  ret a;
}

@main {
  x: int = const 5;
  y: int = const -3;
  px: int = call @f x;
  py: int = call @f y;
  print px;
  print py;
  ret;
}
""")
    assert output_of(result) == ref.output == [6, -3]


def test_nested_inlining():
    ref, _lowered, result = lower_and_run("""\
@inc(a: int): int {
  one: int = const 1;
  r: int = add a one;
  ret r;
}
@twice(a: int): int {
  r: int = call @inc a;
  r: int = call @inc r;
  ret r;
}
@main {
  z: int = const 40;
  w: int = call @twice z;
  print w;
  ret;
}
""")
    assert output_of(result) == ref.output == [42]


def test_shifts_and_swapped_comparisons():
    ref, _lowered, result = lower_and_run("""\
@main {
  a: int = const 5;
  b: int = const 2;
  s: int = shl a b;
  t: int = shr s b;
  g: bool = gt a b;
  ge: bool = ge b a;
  print s; print t; print g; print ge;
  ret;
}
""")
    assert output_of(result) == ref.output == [20, 5, 1, 0]


def test_memory_ops_lower_correctly():
    ref, _lowered, result = lower_and_run("""\
@main {
  n: int = const 3;
  p: ptr = alloc n;
  q: ptr = alloc n;
  i: int = const 1;
  pi: ptr = ptradd p i;
  qi: ptr = ptradd q i;
  v: int = const 11;
  store pi v;
  w: int = load pi;
  u: int = load qi;
  print w;
  print u;
  ret;
}
""")
    assert output_of(result) == ref.output == [11, 0]


def test_lowered_program_ends_in_halt():
    module = load_module("@main {\n  x: int = const 1;\n  ret;\n}\n",
                         filename="t.spam")
    lowered = lower_module(module, name="t")
    assert lowered.static_size == len(lowered.program)
