"""Parser, pretty-printer, and checker diagnostics."""

import pytest

from repro.lang import (
    LangError,
    check_module,
    format_module,
    load_module,
    parse_module,
)

GOOD = """\
@add3(a: int, b: int, c: int): int {
  t: int = add a b;
  t: int = add t c;
  ret t;
}

@main {
  one: int = const 1;
  two: int = const 2;
  s: int = call @add3 one two two;
  ok: bool = eq s one;
  br ok .yes .no;
.yes:
  print one;
  jmp .done;
.no:
  print s;
  jmp .done;
.done:
  ret;
}
"""


def test_round_trip_is_fixpoint():
    module = parse_module(GOOD, filename="good.spam")
    printed = format_module(module)
    again = parse_module(printed, filename="good.spam")
    assert format_module(again) == printed


def test_load_module_checks():
    module = load_module(GOOD, filename="good.spam")
    assert [fn.name for fn in module.functions] == ["add3", "main"]


def _diag(source: str) -> LangError:
    with pytest.raises(LangError) as err:
        load_module(source, filename="prog.spam")
    return err.value


def test_unknown_variable_has_position():
    err = _diag("@main {\n  x: int = add y y;\n  ret;\n}\n")
    text = str(err)
    assert text.startswith("prog.spam:2:3")
    assert "y" in text


def test_syntax_error_has_position():
    err = _diag("@main {\n  x int = const 1;\n}\n")
    assert str(err).startswith("prog.spam:2:")


def test_type_mismatch_is_rejected():
    err = _diag("@main {\n  b: bool = const true;\n"
                "  x: int = add b b;\n  ret;\n}\n")
    assert "add" in str(err)


def test_branch_on_int_is_rejected():
    err = _diag("@main {\n  x: int = const 1;\n  br x .a .b;\n"
                ".a:\n  ret;\n.b:\n  ret;\n}\n")
    assert "br" in str(err)


def test_unknown_label_is_rejected():
    err = _diag("@main {\n  jmp .nowhere;\n}\n")
    assert "nowhere" in str(err)


def test_possibly_uninitialized_read_is_rejected():
    source = """\
@main {
  c: bool = const true;
  br c .a .b;
.a:
  x: int = const 1;
  jmp .join;
.b:
  jmp .join;
.join:
  print x;
  ret;
}
"""
    err = _diag(source)
    assert "x" in str(err) and "before assignment" in str(err)


def test_reserved_prefix_rejected_for_user_source():
    err = _diag("@main {\n  __x: int = const 1;\n  ret;\n}\n")
    assert "reserved" in str(err)


def test_reserved_prefix_allowed_for_compiler_output():
    module = parse_module("@main {\n  __x: int = const 1;\n  ret;\n}\n",
                          filename="gen.spam")
    check_module(module, allow_reserved=True)


def test_duplicate_label_is_rejected():
    err = _diag("@main {\n.a:\n  ret;\n.a:\n  ret;\n}\n")
    assert "duplicate" in str(err)


def test_missing_return_value_path_is_rejected():
    err = _diag("@f(): int {\n  x: int = const 1;\n}\n"
                "@main {\n  y: int = call @f;\n  print y;\n  ret;\n}\n")
    assert "fall" in str(err) or "ret" in str(err)


def test_call_arity_mismatch_is_rejected():
    err = _diag("@f(a: int): int {\n  ret a;\n}\n"
                "@main {\n  y: int = call @f;\n  ret;\n}\n")
    assert "@f" in str(err)
