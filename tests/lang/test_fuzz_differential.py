"""Differential fuzzing gate: seeded random programs must agree between
the reference interpreter and the lowered ISA program, across all four
engine-tier combinations, and under every optimization pass."""

from repro.lang.fuzz import differential_check, generate_program, run_fuzz


def test_fifty_programs_agree_across_tiers_and_passes():
    summary = run_fuzz(count=50, seed=20260808)
    assert summary["programs"] == 50
    assert summary["output_words"] > 0


def test_generator_is_deterministic():
    assert generate_program(7) == generate_program(7)
    assert generate_program(7) != generate_program(8)


def test_differential_check_summary_shape():
    source = generate_program(123)
    summary = differential_check(source, filename="<seed 123>")
    assert summary["interp_dynamic"] > 0
    assert summary["lowered_dynamic"] > 0
