"""Tests for the top-level command line interface."""

import json

import pytest

from repro.__main__ import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for abbrev in ("KM", "BFS", "SRAD"):
        assert abbrev in out


def test_run_command_human_readable(capsys):
    assert main(["run", "KM", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "coverage" in out
    assert "energy" in out


def test_run_command_json(capsys):
    assert main(["run", "KM", "--scale", "0.05", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["benchmark"] == "KM"
    assert report["speedup"] > 0
    assert set(report["coverage"]) == {"host", "mapping", "fabric"}
    assert 0 <= report["energy_reduction"] < 1


def test_run_command_modes(capsys):
    assert main(["run", "KM", "--scale", "0.05", "--mode", "baseline",
                 "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["offloaded_traces"] == 0
    assert report["speedup"] == pytest.approx(1.0)


def test_run_command_no_speculation(capsys):
    assert main(["run", "NW", "--scale", "0.05", "--no-speculation",
                 "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["speculation"] is False


def test_run_unknown_benchmark(capsys):
    assert main(["run", "NOPE"]) == 2


def test_harness_delegation(capsys):
    assert main(["harness", "table6"]) == 0
    out = capsys.readouterr().out
    assert "2.9 mm^2" in out


def test_harness_delegation_forwards_perf_flags(capsys):
    assert main(["harness", "table6", "--no-cache", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "profile: per-phase wall clock" in out


def test_bench_command_writes_report(tmp_path, capsys, monkeypatch):
    import repro.harness.diskcache as diskcache

    monkeypatch.setenv(diskcache.ENV_CACHE_DIR, str(tmp_path / "cache"))
    diskcache.configure()
    out_path = tmp_path / "BENCH_speedup.json"
    try:
        assert main(["bench", "--scale", "0.05", "--jobs", "2",
                     "--output", str(out_path)]) == 0
    finally:
        diskcache.configure()
    printed = capsys.readouterr().out
    assert "geomean speedup" in printed

    report = json.loads(out_path.read_text())
    assert report["experiment"] == "fig8"
    assert report["wall_clock_seconds"] > 0
    assert set(report["geomean"]) == {"mapping", "no_spec", "spec"}
    assert len(report["per_benchmark"]) == 11
    assert "disk" in report["cache"]
    assert "predict_memo_hits" in report["cache"]


def test_bench_command_no_cache(tmp_path, capsys):
    import repro.harness.diskcache as diskcache

    out_path = tmp_path / "bench.json"
    try:
        assert main(["bench", "--scale", "0.05", "--no-cache",
                     "--output", str(out_path)]) == 0
    finally:
        diskcache.configure()
    report = json.loads(out_path.read_text())
    assert report["disk_cache_enabled"] is False


def test_run_invalid_scale_is_clean_usage_error(capsys):
    assert main(["run", "KM", "--scale", "-1"]) == 2
    err = capsys.readouterr().err
    assert "invalid scale" in err
    assert "Traceback" not in err
    assert len(err.strip().splitlines()) == 1


def test_run_unknown_benchmark_is_clean_usage_error(capsys):
    assert main(["run", "NOPE", "--scale", "0.05"]) == 2
    err = capsys.readouterr().err
    assert "unknown benchmark" in err
    assert "Traceback" not in err
    assert len(err.strip().splitlines()) == 1


def test_submit_unknown_benchmark_fails_before_connecting(capsys):
    assert main(["submit", "NOPE", "--wait"]) == 2
    err = capsys.readouterr().err
    assert "unknown benchmark" in err
    assert len(err.strip().splitlines()) == 1


def test_submit_invalid_scale_fails_before_connecting(capsys):
    assert main(["submit", "KM", "--scale", "0"]) == 2
    err = capsys.readouterr().err
    assert "invalid scale" in err


def test_submit_unreachable_server_is_one_line_error(capsys):
    # Port 1 is never listening; expect exit 1 and a single stderr line.
    assert main(["submit", "KM", "--scale", "0.05",
                 "--port", "1", "--timeout", "2"]) == 1
    err = capsys.readouterr().err
    assert "cannot reach repro service" in err
    assert "Traceback" not in err


def test_bench_cold_reports_real_simulation(tmp_path, capsys):
    import repro.harness.diskcache as diskcache

    out_path = tmp_path / "bench_cold.json"
    try:
        assert main(["bench", "--scale", "0.05", "--jobs", "2", "--cold",
                     "--output", str(out_path)]) == 0
    finally:
        diskcache.configure()
    report = json.loads(out_path.read_text())
    assert report["cold"] is True
    assert report["disk_cache_enabled"] is False
    assert report["cache"]["runs_simulated"] > 0
    # A cold sweep may legitimately reuse shared baselines in memory,
    # but it must never time a fully-cached replay.
    assert report["cache"]["hit_ratio"] < 1.0
    printed = capsys.readouterr().out
    assert "cache hit ratio" in printed
    assert "(cold)" in printed


def test_serve_rejects_bad_knobs(capsys):
    assert main(["serve", "--workers", "0"]) == 2
    assert "invalid --workers" in capsys.readouterr().err
    assert main(["serve", "--queue-depth", "0"]) == 2
    assert "invalid --queue-depth" in capsys.readouterr().err


def test_run_json_stats_block_covers_every_counter(capsys):
    import dataclasses

    from repro.ooo.stats import PipelineStats

    assert main(["run", "KM", "--scale", "0.05", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    field_names = {f.name for f in dataclasses.fields(PipelineStats)}
    assert set(report["stats"]) == field_names
    assert set(report["baseline_stats"]) == field_names


def test_run_trace_out_keeps_json_stdout_pure(tmp_path, capsys):
    trace_path = tmp_path / "km.trace.json"
    assert main(["run", "KM", "--scale", "0.05", "--json",
                 "--trace-out", str(trace_path)]) == 0
    captured = capsys.readouterr()
    report = json.loads(captured.out)     # stdout is a JSON doc, nothing else
    assert report["benchmark"] == "KM"
    assert "trace:" in captured.err
    doc = json.loads(trace_path.read_text())
    assert doc["traceEvents"]


def test_explain_command_table(capsys):
    assert main(["explain", "KM", "--scale", "0.05", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "traces detected" in out
    assert "offloaded" in out
    body = [line for line in out.splitlines() if line.startswith("0x")]
    assert 0 < len(body) <= 3


def test_explain_command_trace_detail(capsys):
    assert main(["explain", "KM", "--scale", "0.05", "--top", "1"]) == 0
    table = capsys.readouterr().out
    trace_id = next(
        line.split()[0] for line in table.splitlines()
        if line.startswith("0x")
    )
    assert main(["explain", "KM", "--scale", "0.05",
                 "--trace-id", trace_id]) == 0
    detail = capsys.readouterr().out
    assert trace_id in detail
    assert "timeline:" in detail


def test_explain_unknown_trace_id(capsys):
    assert main(["explain", "KM", "--scale", "0.05",
                 "--trace-id", "0xdead:-:1"]) == 2
    assert "no trace" in capsys.readouterr().err


def test_analyze_command_conserves(capsys):
    assert main(["analyze", "KM", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "cycle accounting" in out
    assert out.count("PASS") == 3         # host, mapping, spec columns
    assert "FAIL" not in out
    assert "d(spec-host)" in out
    assert "fabric:" in out


def test_analyze_command_mapping_baseline(capsys):
    assert main(["analyze", "KM", "--scale", "0.05",
                 "--baseline", "mapping"]) == 0
    out = capsys.readouterr().out
    assert "d(spec-mapping)" in out


def test_analyze_unknown_benchmark(capsys):
    assert main(["analyze", "NOPE"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_diff_command_attributes_delta(tmp_path, capsys):
    assert main(["run", "NW", "--scale", "0.05", "--json"]) == 0
    spec = capsys.readouterr().out
    assert main(["run", "NW", "--scale", "0.05", "--no-speculation",
                 "--json"]) == 0
    nospec = capsys.readouterr().out
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(spec)
    b.write_text(nospec)

    assert main(["diff", str(a), str(b)]) == 0
    pretty = capsys.readouterr().out
    assert "NW [dynaspam]" in pretty
    assert "residual +0" in pretty

    assert main(["diff", str(a), str(b), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "run"
    assert all(e["residual"] == 0 for e in doc["entries"])


def test_diff_command_schema_mismatch_is_usage_error(tmp_path, capsys):
    assert main(["run", "KM", "--scale", "0.05", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(report))
    b.write_text(json.dumps(dict(report, schema_version=1)))
    assert main(["diff", str(a), str(b)]) == 2
    assert "schema versions differ" in capsys.readouterr().err
    # --force downgrades the refusal to a warning in the output.
    assert main(["diff", str(a), str(b), "--force"]) == 0
    assert "schema versions differ" in capsys.readouterr().out


def test_diff_command_missing_file_is_usage_error(tmp_path, capsys):
    assert main(["diff", str(tmp_path / "nope.json"),
                 str(tmp_path / "nada.json")]) == 2
    assert "cannot read report" in capsys.readouterr().err


def test_bench_report_has_provenance_accounting_and_dashboard(
        tmp_path, capsys):
    import repro.harness.diskcache as diskcache

    out_path = tmp_path / "bench.json"
    dash_dir = tmp_path / "dash"
    try:
        assert main(["bench", "--scale", "0.05", "--no-cache",
                     "--output", str(out_path),
                     "--dashboard", str(dash_dir)]) == 0
    finally:
        diskcache.configure()
    report = json.loads(out_path.read_text())
    assert report["schema_version"] >= 2
    assert len(report["code_fingerprint"]) == 64
    assert set(report["accounting"]) == set(report["per_benchmark"])
    for by_series in report["accounting"].values():
        assert set(by_series) == {"baseline", "mapping", "no_spec", "spec"}
        for breakdown in by_series.values():
            assert breakdown["conserved"] is True
    assert set(report["fabric_utilization"]) == set(report["per_benchmark"])
    assert isinstance(report["warnings"], list)
    html = (dash_dir / "index.html").read_text()
    assert "Cycle accounting" in html
    assert "dashboard ->" in capsys.readouterr().out


def test_bench_report_records_tracing_disabled(tmp_path, capsys):
    import repro.harness.diskcache as diskcache

    out_path = tmp_path / "bench.json"
    try:
        assert main(["bench", "--scale", "0.05", "--no-cache",
                     "--output", str(out_path)]) == 0
    finally:
        diskcache.configure()
    report = json.loads(out_path.read_text())
    assert report["tracing"] is False


# ---------------------------------------------------------------------------
# Frontend (repro.lang) subcommands
# ---------------------------------------------------------------------------
GOOD_SPAM = """\
@main {
  one: int = const 1;
  two: int = const 2;
  s: int = add one two;
  print s;
  ret;
}
"""


def test_ingest_command_human_readable(tmp_path, capsys):
    path = tmp_path / "tiny.spam"
    path.write_text(GOOD_SPAM)
    assert main(["ingest", str(path)]) == 0
    out = capsys.readouterr().out
    assert "differential check ok" in out
    assert "PROG:tiny:" in out


def test_ingest_parse_error_is_one_line_exit_2(tmp_path, capsys):
    path = tmp_path / "broken.spam"
    path.write_text("@main {\n  x int = const 1;\n}\n")
    assert main(["ingest", str(path)]) == 2
    captured = capsys.readouterr()
    assert captured.out == ""
    lines = captured.err.strip().splitlines()
    assert len(lines) == 1
    assert lines[0].startswith("repro: error: ")
    assert f"{path}:2:" in lines[0]


def test_ingest_type_error_is_one_line_exit_2(tmp_path, capsys):
    path = tmp_path / "typo.spam"
    path.write_text("@main {\n  x: int = add y y;\n  ret;\n}\n")
    assert main(["ingest", str(path)]) == 2
    err = capsys.readouterr().err.strip()
    assert err.count("\n") == 0
    assert f"{path}:2:3" in err


def test_ingest_unknown_pass_is_exit_2(tmp_path, capsys):
    path = tmp_path / "tiny.spam"
    path.write_text(GOOD_SPAM)
    assert main(["ingest", str(path), "--passes", "nope"]) == 2
    assert "nope" in capsys.readouterr().err


def test_ingest_missing_file_is_exit_2(tmp_path, capsys):
    assert main(["ingest", str(tmp_path / "absent.spam")]) == 2
    assert "absent.spam" in capsys.readouterr().err


def test_run_program_rejects_conflicting_selection(tmp_path, capsys):
    path = tmp_path / "tiny.spam"
    path.write_text(GOOD_SPAM)
    assert main(["run", "KM", "--program", str(path)]) == 2
    assert "not both" in capsys.readouterr().err
    assert main(["run"]) == 2
    assert "missing benchmark" in capsys.readouterr().err
    assert main(["run", "KM", "--passes", "lvn"]) == 2
    assert "--program" in capsys.readouterr().err
    assert main(["run", "--program", str(path), "--scale", "0.5"]) == 2
    assert "--scale" in capsys.readouterr().err


def test_list_programs(tmp_path, capsys):
    (tmp_path / "a.spam").write_text(GOOD_SPAM)
    (tmp_path / "b.spam").write_text(GOOD_SPAM)
    assert main(["list", "--programs", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "PROG:a:" in out and "PROG:b:" in out


def test_list_programs_empty_dir_is_exit_2(tmp_path, capsys):
    assert main(["list", "--programs", str(tmp_path)]) == 2
    assert "no .spam programs" in capsys.readouterr().err


CORPUS_DIR = str(
    __import__("pathlib").Path(__file__).resolve().parents[1] / "corpus"
)


def test_why_command_human_readable(capsys):
    assert main(["why", "KM", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "trace fates" in out
    assert "lost-cycles attribution" in out
    assert "conservation:" in out and "PASS" in out


def test_why_command_json(capsys):
    assert main(["why", "KM", "--scale", "0.05", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["benchmark"] == "KM"
    assert doc["decisions"]["trace_fates"]["conserved"] is True
    assert doc["decisions"]["attribution"]["attributed_fraction"] >= 0.95


def test_why_unknown_benchmark_is_usage_error(capsys):
    assert main(["why", "NOPE"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_run_decisions_flag_adds_block(capsys):
    assert main(["run", "KM", "--scale", "0.05", "--decisions",
                 "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["decisions"]["trace_fates"]["conserved"] is True
    # Without the flag the block must stay absent (opt-in contract).
    assert main(["run", "KM", "--scale", "0.05", "--json"]) == 0
    assert "decisions" not in json.loads(capsys.readouterr().out)


def test_study_command_renders_side_by_side(capsys):
    assert main(["study", "--programs", CORPUS_DIR, "--only", "sum_loop",
                 "--passes", "none", "--passes", "lvn,dce"]) == 0
    out = capsys.readouterr().out
    assert "sum_loop" in out
    assert "lvn+dce" in out
    assert "decision conservation across all rows: PASS" in out


def test_study_command_writes_json_report(tmp_path, capsys):
    out_path = tmp_path / "study.json"
    assert main(["study", "--programs", CORPUS_DIR, "--only", "sum_loop",
                 "--passes", "none", "--output", str(out_path)]) == 0
    study = json.loads(out_path.read_text())
    assert study["experiment"] == "study"
    assert study["pipelines"] == ["none"]
    assert study["conserved"] is True
    row = study["programs"]["sum_loop"]["none"]
    assert row["abbrev"].startswith("PROG:sum_loop:")
    assert row["delta"]["speedup"] == 0


def test_study_empty_dir_is_usage_error(tmp_path, capsys):
    assert main(["study", "--programs", str(tmp_path)]) == 2
    assert "no .spam programs" in capsys.readouterr().err


def test_study_unknown_pass_is_usage_error(capsys):
    assert main(["study", "--programs", CORPUS_DIR,
                 "--passes", "nope"]) == 2
    assert "nope" in capsys.readouterr().err
