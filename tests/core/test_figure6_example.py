"""The paper's Figure 6 mapping example, recreated.

Section 4.3 walks a 9-instruction trace through the mapping process:

* cycle 0 — four instructions are ready; three need routing (priority 0)
  and one needs *two live-in input ports* (priority 3), so the priority
  encoder places the two-live-in instruction ahead of older ones;
* cycle 1 — the frontier advances; more instructions become ready as
  their producers complete;
* cycle 2 — an instruction whose operands both sit in the previous
  stripe's pass registers gets priority 2 (full reuse) and lands where no
  new datapath is needed.

The test builds a trace with the same dependence structure and checks the
same scheduling outcomes: the two-live-in instruction reaches stripe 0
despite being youngest, every placement validates, and the full-reuse
instruction consumes no routing channels.
"""

from repro.core.mapper import analyze_trace, ResourceAwareMapper
from repro.core.naive_mapper import NaiveMapper
from repro.core.priority import priority_gen, PRIORITY_TWO_LIVEIN
from repro.core.tables import MappingTables
from repro.isa.builder import ProgramBuilder
from repro.isa.executor import FunctionalExecutor


def figure6_trace():
    """Nine instructions shaped like Figure 6's example.

    Positions 0, 1, 3: single-live-in producers (ready in cycle 0).
    Position 7: a fourth single-live-in producer (fills the last ALU
    under in-order placement).
    Position 8: requires two live-ins (priority 3 in cycle 0).
    Positions 2, 4: consume cycle-0 results.
    Position 6: consumes two values produced in the same stripe — the
    full-reuse (priority 2) case of the paper's cycle 2.
    Positions 5, 9: further consumers.
    """
    b = ProgramBuilder("fig6")
    b.addi("r3", "r10", 1)      # 0: live-in r10
    b.addi("r4", "r11", 2)      # 1: live-in r11
    b.add("r5", "r3", "r3")     # 2: consumes #0
    b.addi("r6", "r12", 3)      # 3: live-in r12
    b.add("r7", "r4", "r4")     # 4: consumes #1
    b.add("r8", "r5", "r5")     # 5: consumes #2
    b.add("r9", "r3", "r4")     # 6: consumes #0 and #1 (reuse pair)
    b.addi("r17", "r18", 4)     # 7: a fourth single-live-in producer
    b.add("r13", "r14", "r15")  # 8: two live-ins -> needs two input ports
    b.add("r16", "r7", "r6")    # 9: consumes #4 and #3
    b.halt()
    return FunctionalExecutor().run(b.build()).trace[:-1]


def test_two_livein_instruction_wins_stripe_zero():
    trace = figure6_trace()
    key = (0, (), len(trace))
    config = ResourceAwareMapper().map_trace(trace, key)
    assert config is not None
    config.validate()
    # Instruction 8 (youngest among the cycle-0 candidates) still lands in
    # stripe 0: priority 3 beats the host oldest-first rule.
    assert config.op_at(8).stripe == 0
    # Three of the four older single-live-in producers share stripe 0; the
    # displaced one takes a one-port PE in a later stripe.
    stripes = [config.op_at(p).stripe for p in (0, 1, 3, 7)]
    assert stripes.count(0) == 3


def test_priority_scores_match_paper_cycle0():
    trace = figure6_trace()
    ops, live_ins, _, _ = analyze_trace(trace)
    from repro.fabric.config import FabricConfig
    from repro.fabric.stripe import build_stripes

    fcfg = FabricConfig()
    stripe0 = build_stripes(fcfg)[0]
    tables = MappingTables(
        fcfg.num_stripes,
        [fcfg.channels_in_stripe(s) for s in range(fcfg.num_stripes)],
    )
    pe = stripe0.pes_of_pool("int_alu")[0]
    # Cycle 0 ready set: 0, 1, 3, 7 (single live-in, priority 0) and 8
    # (two live-ins, priority 3).
    scores = {
        op.pos: priority_gen(pe, op.operand_tokens, tables, 0).score
        for op in ops
        if op.pos in (0, 1, 3, 7, 8)
    }
    assert scores[8] == PRIORITY_TWO_LIVEIN
    assert scores[0] == scores[1] == scores[3] == scores[7] == 0


def test_reuse_pair_consumes_no_new_channels():
    trace = figure6_trace()
    key = (0, (), len(trace))
    config = ResourceAwareMapper().map_trace(trace, key)
    reuse_op = config.op_at(6)
    # Both operands come from stripe-0 producers one stripe up: direct
    # wires / pass registers, one hop, no multi-stripe routing.
    assert all(src.hops == 1 for src in reuse_op.sources)
    assert reuse_op.stripe == 1


def test_naive_ordering_fails_figure6():
    """The paper: 'if the instructions were placed in program order,
    Instruction 7 would not be placed in the first row, resulting in an
    infeasible schedule'."""
    trace = figure6_trace()
    key = (0, (), len(trace))
    assert NaiveMapper().map_trace(trace, key) is None


def test_schedule_depth_matches_dataflow():
    trace = figure6_trace()
    key = (0, (), len(trace))
    config = ResourceAwareMapper().map_trace(trace, key)
    # Dataflow depth is 3 (e.g. 0 -> 2 -> 5): three stripes suffice.
    assert config.stripes_used == 3
