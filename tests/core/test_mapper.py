"""Tests for the resource-aware mapper (Algorithms 1-3) and the naive
baseline, including property-based structural checks."""

from hypothesis import given, settings, strategies as st

from repro.core.mapper import analyze_trace, ResourceAwareMapper
from repro.core.naive_mapper import NaiveMapper
from repro.fabric.config import FabricConfig
from repro.isa.builder import ProgramBuilder
from repro.isa.executor import FunctionalExecutor, Memory
from repro.isa.opcodes import Opcode


def trace_of(build, memory=None):
    b = ProgramBuilder("t")
    build(b)
    b.halt()
    return FunctionalExecutor().run(b.build(), memory).trace


def segment_of(build, memory=None, length=32):
    trace = trace_of(build, memory)
    return trace[: min(length, len(trace) - 1)]  # drop HALT


def key_of(segment):
    outcomes = tuple(bool(d.taken) for d in segment if d.is_branch)
    return (segment[0].pc, outcomes, len(segment))


def map_with(mapper_cls, build, memory=None, **kw):
    segment = segment_of(build, memory)
    mapper = mapper_cls(**kw)
    return mapper.map_trace(segment, key_of(segment)), segment, mapper


# ---------------------------------------------------------------------------
# analyze_trace
# ---------------------------------------------------------------------------
def test_analyze_trace_dependences_and_liveins():
    def body(b):
        b.li("r1", 5)            # pos 0
        b.add("r2", "r1", "r9")  # pos 1: r1 in-trace, r9 live-in
        b.add("r1", "r2", "r2")  # pos 2: redefinition of r1

    segment = segment_of(body)
    ops, live_ins, last_def, outcomes = analyze_trace(segment)
    assert live_ins == ("r9",)
    assert ops[1].operand_tokens == [("pos", 0), ("livein", "r9")]
    assert ops[2].operand_tokens == [("pos", 1), ("pos", 1)]
    assert last_def == {"r1": 2, "r2": 1}
    assert outcomes == ()


def test_analyze_trace_skips_r0_and_transparent_ops():
    def body(b):
        b.add("r2", "r0", "r1")
        b.nop()
        b.jmp("next")
        b.label("next")
        b.li("r3", 1)

    segment = segment_of(body)
    ops, live_ins, _, _ = analyze_trace(segment)
    assert [op.dyn.opcode for op in ops] == [Opcode.ADD, Opcode.LI]
    assert ops[0].operand_tokens == [("livein", "r1")]


def test_analyze_trace_memory_roles_and_order():
    mem = Memory()

    def body(b):
        b.li("r1", 0x100)
        b.li("r2", 7)
        b.sw("r1", "r2", 0)
        b.lw("r3", "r1", 0)

    segment = segment_of(body, mem)
    ops, _, _, _ = analyze_trace(segment)
    store = ops[2]
    load = ops[3]
    assert store.mem_index == 0 and load.mem_index == 1
    assert store.operand_roles == ["base", "value"]
    assert load.operand_roles == ["base"]


# ---------------------------------------------------------------------------
# Resource-aware mapping
# ---------------------------------------------------------------------------
def simple_loop(b):
    b.li("r1", 0x100)
    b.fli("f1", 2.0)
    with b.countdown("loop", "r2", 5):
        b.flw("f2", "r1", 0)
        b.fmul("f3", "f2", "f1")
        b.fadd("f4", "f4", "f3")
        b.addi("r1", "r1", 4)


def test_mapping_succeeds_and_validates():
    mem = Memory()
    mem.store_array(0x100, [1.0] * 8)
    config, segment, mapper = map_with(ResourceAwareMapper, simple_loop, mem)
    assert config is not None
    config.validate()
    assert mapper.failures == 0


def test_mapping_covers_all_nontransparent_instructions():
    mem = Memory()
    mem.store_array(0x100, [1.0] * 8)
    config, segment, _ = map_with(ResourceAwareMapper, simple_loop, mem)
    expected = sum(
        1 for d in segment
        if d.opclass.value not in ("jump", "nop")
    )
    assert config.length == expected


def test_dataflow_moves_strictly_forward():
    mem = Memory()
    mem.store_array(0x100, [1.0] * 8)
    config, _, _ = map_with(ResourceAwareMapper, simple_loop, mem)
    for op in config.placements:
        for src in op.sources:
            if src.kind == "inst":
                producer = config.op_at(src.producer_pos)
                assert producer.stripe < op.stripe


def test_live_outs_are_final_definitions():
    mem = Memory()
    mem.store_array(0x100, [1.0] * 8)
    config, segment, _ = map_with(ResourceAwareMapper, simple_loop, mem)
    # r1 and f4 are redefined every iteration: live-out = last definition.
    for reg, pos in config.live_outs.items():
        op = config.op_at(pos)
        assert op.dest_reg == reg
        later_defs = [
            p.pos for p in config.placements
            if p.dest_reg == reg and p.pos > pos
        ]
        assert later_defs == []


def test_branch_outcomes_embedded():
    mem = Memory()
    mem.store_array(0x100, [1.0] * 8)
    config, segment, _ = map_with(ResourceAwareMapper, simple_loop, mem)
    expected = tuple(bool(d.taken) for d in segment if d.is_branch)
    assert config.branch_outcomes == expected


def test_memory_ops_keep_relative_order():
    mem = Memory()
    mem.store_array(0x100, [0] * 8)

    def body(b):
        b.li("r1", 0x100)
        b.li("r2", 1)
        b.sw("r1", "r2", 0)
        b.lw("r3", "r1", 0)
        b.sw("r1", "r3", 4)

    config, _, _ = map_with(ResourceAwareMapper, body, mem)
    assert config.mem_op_kinds == ("store", "load", "store")
    mem_ops = sorted(
        (op for op in config.placements if op.mem_index is not None),
        key=lambda o: o.mem_index,
    )
    assert [o.pos for o in mem_ops] == sorted(o.pos for o in mem_ops)


def test_two_livein_instructions_go_to_stripe_zero():
    def body(b):
        b.add("r3", "r1", "r2")   # two live-ins
        b.add("r4", "r3", "r3")

    config, _, _ = map_with(ResourceAwareMapper, body)
    two_livein = config.op_at(0)
    assert two_livein.stripe == 0


def test_too_many_liveins_fails():
    def body(b):
        # 17 distinct live-in registers > 16 live-in FIFOs.
        regs = [f"r{i}" for i in range(1, 18)]
        for i, reg in enumerate(regs[:-1]):
            b.add(f"r{i + 1}", reg, regs[i + 1])

    segment = segment_of(body)
    mapper = ResourceAwareMapper()
    assert mapper.map_trace(segment, key_of(segment)) is None
    assert mapper.failures == 1


def test_trace_larger_than_fabric_fails():
    def body(b):
        # A 30-deep dependent chain cannot fit 16 stripes.
        b.li("r1", 1)
        for _ in range(30):
            b.add("r1", "r1", "r1")

    segment = segment_of(body, length=31)
    mapper = ResourceAwareMapper(FabricConfig(num_stripes=16))
    assert mapper.map_trace(segment, key_of(segment)) is None


def test_mapping_cycles_accounted():
    mem = Memory()
    mem.store_array(0x100, [1.0] * 8)
    config, segment, _ = map_with(ResourceAwareMapper, simple_loop, mem)
    assert config.mapping_cycles >= config.stripes_used
    assert config.mapping_cycles < 10 * len(segment)


# ---------------------------------------------------------------------------
# Naive baseline comparison (the Figure 2 effects)
# ---------------------------------------------------------------------------
def test_naive_mapper_produces_valid_mappings():
    mem = Memory()
    mem.store_array(0x100, [1.0] * 8)
    config, _, _ = map_with(NaiveMapper, simple_loop, mem)
    assert config is not None
    config.validate()


def test_naive_fails_where_resource_aware_succeeds():
    """Figure 2(b): late two-live-in instructions strand the naive mapper.

    Five independent single-live-in adds occupy all four stripe-0 integer
    ALUs under in-order first-fit placement; the two-live-in instruction
    then has no two-port PE left.  The resource-aware mapper's priority-3
    rule places the two-live-in instruction first.
    """
    def body(b):
        b.addi("r11", "r1", 1)
        b.addi("r12", "r2", 1)
        b.addi("r13", "r3", 1)
        b.addi("r14", "r4", 1)
        b.add("r15", "r5", "r6")   # two live-ins, arrives last

    naive_config, _, naive = map_with(NaiveMapper, body)
    aware_config, _, aware = map_with(ResourceAwareMapper, body)
    assert naive_config is None
    assert naive.failures == 1
    assert aware_config is not None


def test_resource_aware_is_no_deeper_than_naive():
    """ASAP dataflow scheduling uses no more stripes than in-order
    first-fit (depth drives the invocation's critical path)."""
    mem = Memory()
    mem.store_array(0x100, [1.0] * 16)

    def body(b):
        b.li("r1", 0x100)
        b.fli("f1", 3.0)
        with b.countdown("loop", "r2", 6):
            b.flw("f2", "r1", 0)
            b.fmul("f3", "f2", "f1")
            b.fadd("f4", "f4", "f3")
            b.fsub("f5", "f3", "f1")
            b.fadd("f6", "f6", "f5")
            b.addi("r1", "r1", 4)

    naive_config, _, _ = map_with(NaiveMapper, body, mem)
    aware_config, _, _ = map_with(ResourceAwareMapper, body, mem)
    assert naive_config is not None and aware_config is not None
    assert aware_config.stripes_used <= naive_config.stripes_used


# ---------------------------------------------------------------------------
# Property-based structural checks
# ---------------------------------------------------------------------------
REGS = [f"r{i}" for i in range(1, 9)]
int_op = st.tuples(
    st.sampled_from(["add", "sub", "and_", "xor", "min_"]),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
)


@given(ops=st.lists(int_op, min_size=1, max_size=24))
@settings(max_examples=40, deadline=None)
def test_mapper_output_always_validates(ops):
    def body(b):
        for name, d, a, c in ops:
            getattr(b, name)(d, a, c)

    segment = segment_of(body)
    mapper = ResourceAwareMapper()
    config = mapper.map_trace(segment, key_of(segment))
    if config is None:
        return  # infeasible traces are allowed; invalid ones are not
    config.validate()
    # Every placement sits on a PE of a pool that can execute it.
    from repro.ooo.fus import POOL_OF
    for op in config.placements:
        assert POOL_OF[op.opclass] == op.pool


@given(ops=st.lists(int_op, min_size=1, max_size=24))
@settings(max_examples=40, deadline=None)
def test_mapper_respects_pe_capacity_per_stripe(ops):
    def body(b):
        for name, d, a, c in ops:
            getattr(b, name)(d, a, c)

    segment = segment_of(body)
    config = ResourceAwareMapper().map_trace(segment, key_of(segment))
    if config is None:
        return
    from collections import Counter
    per_stripe_pool = Counter((op.stripe, op.pool) for op in config.placements)
    fabric_pools = FabricConfig().stripe_pools
    for (stripe, pool), count in per_stripe_pool.items():
        assert count <= fabric_pools[pool]
    # No two ops share a PE.
    pes = [(op.stripe, op.pe_index) for op in config.placements]
    assert len(pes) == len(set(pes))


@given(ops=st.lists(int_op, min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_naive_and_aware_agree_on_dependences(ops):
    """Both mappers must encode the same producer-consumer edges."""
    def body(b):
        for name, d, a, c in ops:
            getattr(b, name)(d, a, c)

    segment = segment_of(body)
    aware = ResourceAwareMapper().map_trace(segment, key_of(segment))
    naive = NaiveMapper().map_trace(segment, key_of(segment))
    if aware is None or naive is None:
        return
    def edges(config):
        return {
            (op.pos, src.producer_pos)
            for op in config.placements
            for src in op.sources
            if src.kind == "inst"
        }
    assert edges(aware) == edges(naive)
