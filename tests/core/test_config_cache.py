"""Unit tests for the configuration cache."""

from repro.core.config_cache import ConfigCache


class FakeConfig:
    """Stand-in: the cache never inspects the configuration object."""


def test_miss_then_hit():
    cache = ConfigCache()
    assert cache.lookup(("k", 1)) is None
    cache.insert(("k", 1), FakeConfig())
    entry = cache.lookup(("k", 1))
    assert entry is not None and entry.key == ("k", 1)


def test_ready_after_threshold_predictions():
    cache = ConfigCache(ready_threshold=4)
    entry = cache.insert(("k", 1), FakeConfig())
    results = [cache.predicted_again(entry) for _ in range(4)]
    assert results == [False, False, False, True]
    assert entry.ready


def test_unmappable_marker_never_ready():
    cache = ConfigCache()
    entry = cache.insert(("k", 1), None)
    for _ in range(10):
        assert cache.predicted_again(entry) is False
    assert not entry.ready
    assert ("k", 1) in cache.unmappable_keys


def test_counter_saturates_at_counter_bits():
    cache = ConfigCache(counter_bits=3)
    entry = cache.insert(("k", 1), FakeConfig())
    for _ in range(100):
        cache.predicted_again(entry)
    assert entry.counter == 7


def test_lru_eviction_at_capacity():
    cache = ConfigCache(entries=2)
    cache.insert(("a",), FakeConfig())
    cache.insert(("b",), FakeConfig())
    cache.lookup(("a",))               # refresh a
    cache.insert(("c",), FakeConfig()) # evicts b (LRU)
    assert cache.lookup(("a",)) is not None
    assert cache.lookup(("b",)) is None
    assert cache.lookup(("c",)) is not None
    assert cache.evictions == 1


def test_periodic_clearing_zeroes_counters():
    cache = ConfigCache(clear_interval=10)
    entry = cache.insert(("k", 1), FakeConfig())
    cache.predicted_again(entry)
    cache.predicted_again(entry)
    cache.tick(10)
    assert entry.counter == 0
    # Ready flag persists once earned.
    entry2 = cache.insert(("k", 2), FakeConfig())
    for _ in range(4):
        cache.predicted_again(entry2)
    cache.tick(10)
    assert entry2.ready


def test_mapped_trace_count_tracks_distinct_keys():
    cache = ConfigCache()
    cache.insert(("a",), FakeConfig())
    cache.insert(("b",), FakeConfig())
    cache.insert(("a",), FakeConfig())  # re-mapping the same key
    assert cache.mapped_trace_count == 2


def test_reads_and_writes_counted():
    cache = ConfigCache()
    cache.lookup(("a",))
    cache.insert(("a",), FakeConfig())
    cache.lookup(("a",))
    assert cache.reads == 2
    assert cache.writes == 1
