"""Tests for the workload-driven fabric tuner (future-work feature)."""

import pytest

from repro.core.tuning import evaluate_mix, FabricTuner, TunedMix
from repro.fabric.config import FabricConfig
from repro.workloads import generate_trace
from repro.workloads.characterize import characterize, WorkloadProfile

SCALE = 0.1


def profile_of(abbrev):
    return characterize(abbrev, generate_trace(abbrev, SCALE).trace)


def test_budget_must_cover_every_pool():
    with pytest.raises(ValueError):
        FabricTuner(pe_budget=4)


def test_propose_requires_profiles():
    with pytest.raises(ValueError):
        FabricTuner().propose([])


def test_proposal_respects_budget_and_minimums():
    tuner = FabricTuner(pe_budget=12)
    mix = tuner.propose([profile_of("KM"), profile_of("BFS")])
    assert mix.total_pes == 12
    assert all(count >= 1 for count in mix.pools.values())


def test_int_workload_gets_integer_heavy_mix():
    tuner = FabricTuner(pe_budget=12)
    mix = tuner.propose([profile_of("BFS")])
    assert mix.pools["int_alu"] > mix.pools["fp_alu"]
    assert mix.pools["ldst"] >= 2  # BFS is load heavy


def test_fp_workload_gets_fp_capacity():
    tuner = FabricTuner(pe_budget=12)
    mix = tuner.propose([profile_of("HS")])
    assert mix.pools["fp_alu"] >= 2


def test_fabric_config_from_mix():
    tuner = FabricTuner(pe_budget=10)
    mix = tuner.propose([profile_of("KM")])
    config = tuner.fabric_config(mix)
    assert config.pes_per_stripe == 10
    assert config.num_stripes == FabricConfig().num_stripes


def test_evaluate_mix_reports_sane_numbers():
    run = generate_trace("KM", 0.25)
    tuner = FabricTuner(pe_budget=12)
    mix = tuner.propose([characterize("KM", run.trace)])
    evaluation = evaluate_mix(run, tuner.fabric_config(mix))
    assert evaluation.speedup > 0.5
    assert evaluation.fabric_area_mm2 > 0
    assert 0.0 <= evaluation.fabric_coverage <= 1.0
    assert evaluation.speedup_per_mm2 > 0


def test_tuned_mix_beats_budget_matched_default_density():
    """A KM-tuned 12-PE stripe should not lose to the default 12-PE stripe
    on KM itself (it reallocates idle FP-divider/LDST slack)."""
    run = generate_trace("KM", 0.25)
    profile = characterize("KM", run.trace)
    tuner = FabricTuner(pe_budget=12)
    tuned = evaluate_mix(run, tuner.fabric_config(tuner.propose([profile])))
    default = evaluate_mix(run, FabricConfig())
    assert tuned.speedup >= default.speedup * 0.9
