"""Tests for smart (block-boundary-aware) trace selection."""

from repro.core import DynaSpAM, DynaSpAMConfig
from repro.core.tcache import TraceWindowBuilder
from repro.isa.builder import ProgramBuilder
from repro.isa.executor import FunctionalExecutor, Memory


def big_block_program(body_adds=40, iterations=8):
    b = ProgramBuilder("bigblock")
    with b.countdown("loop", "r1", iterations):
        for i in range(body_adds):
            # Four independent chains keep the dataflow shallow enough to
            # map onto 16 stripes.
            reg = f"r{2 + i % 4}"
            b.addi(reg, reg, 1)
    b.halt()
    program = b.build()
    result = FunctionalExecutor().run(program)
    return program, result


def test_distance_to_next_branch():
    program, _ = big_block_program(body_adds=10)
    builder = TraceWindowBuilder(max_length=32, program=program)
    # From the loop head: 10 adds + countdown addi + bne = 12 instructions.
    loop_pc = program.label_pc["loop"]
    assert builder.distance_to_next_branch(loop_pc) == 12
    # From just before the bne: 1 instruction.
    bne_pc = program.instructions[-2].pc
    assert builder.distance_to_next_branch(bne_pc) == 1


def test_distance_beyond_cap_saturates():
    program, _ = big_block_program(body_adds=50)
    builder = TraceWindowBuilder(max_length=32, program=program)
    loop_pc = program.label_pc["loop"]
    assert builder.distance_to_next_branch(loop_pc) == 33  # cap + 1


def test_smart_windows_end_at_branches():
    program, result = big_block_program(body_adds=24, iterations=8)
    builder = TraceWindowBuilder(max_length=32, program=program)
    windows = [w for w in map(builder.feed, result.trace) if w]
    # body = 26 instructions: one iteration fits, two do not; each window
    # ends at the backedge branch and the next anchors at the loop head.
    steady = windows[1:-1]
    assert all(w.instructions[-1].is_branch for w in steady)
    assert len({w.anchor_pc for w in steady}) == 1
    assert all(len(w.outcomes) == 1 for w in steady)


def test_smart_selection_increases_coverage_on_big_blocks():
    program, result = big_block_program(body_adds=24, iterations=400)
    plain = DynaSpAM(ds_config=DynaSpAMConfig()).run(result.trace, program)
    smart = DynaSpAM(
        ds_config=DynaSpAMConfig(smart_trace_selection=True)
    ).run(result.trace, program)
    assert smart.coverage["fabric"] > plain.coverage["fabric"] + 0.1
    assert smart.total_instructions == plain.total_instructions


def test_smart_selection_conserves_instructions_with_memory():
    mem = Memory()
    mem.store_array(0x100, [1.0] * 64)
    b = ProgramBuilder("fp")
    b.li("r1", 0x100)
    with b.countdown("loop", "r2", 200):
        for _ in range(6):
            b.flw("f1", "r1", 0)
            b.fadd("f2", "f2", "f1")
        b.addi("r1", "r1", 4)
    b.halt()
    program = b.build()
    result = FunctionalExecutor().run(program, mem)
    out = DynaSpAM(
        ds_config=DynaSpAMConfig(smart_trace_selection=True)
    ).run(result.trace, program)
    assert out.total_instructions == result.dynamic_count
