"""Unit tests for the mapping status tables (ProdTable/ReuseSet/...)."""

import pytest

from repro.core.tables import MappingTables, livein_token, pos_token


def make_tables(stripes=8, channels=4):
    return MappingTables(num_stripes=stripes, channels_per_stripe=channels)


def test_define_publishes_to_next_boundary():
    t = make_tables()
    t.define(pos_token(0), stripe=2)
    assert t.producer_stripe(pos_token(0)) == 2
    assert t.in_reuse_set(pos_token(0), boundary=3)
    assert not t.in_reuse_set(pos_token(0), boundary=4)


def test_route_allocation_consumes_channels_and_extends_reuse():
    t = make_tables(channels=2)
    t.define(pos_token(0), stripe=0)
    assert t.can_route(pos_token(0), to_boundary=4)
    consumed = t.allocate_route(pos_token(0), to_boundary=4)
    assert consumed == 3                     # boundaries 2,3,4 via stripes 1,2,3
    for boundary in (1, 2, 3, 4):
        assert t.in_reuse_set(pos_token(0), boundary)
    assert t.channels_used[1] == 1
    assert t.channels_used[3] == 1
    assert t.total_channels_allocated == 3


def test_route_reuses_existing_prefix():
    t = make_tables()
    t.define(pos_token(0), stripe=0)
    t.allocate_route(pos_token(0), to_boundary=3)
    before = t.total_channels_allocated
    t.allocate_route(pos_token(0), to_boundary=5)
    assert t.total_channels_allocated == before + 2


def test_can_route_fails_when_channels_exhausted():
    t = make_tables(channels=1)
    t.define(pos_token(0), stripe=0)
    t.define(pos_token(1), stripe=0)
    t.allocate_route(pos_token(0), to_boundary=3)
    # Stripe 1's single channel is taken; token 1 cannot reach boundary 3.
    assert not t.can_route(pos_token(1), to_boundary=3)


def test_can_route_unknown_token():
    t = make_tables()
    assert not t.can_route(pos_token(99), to_boundary=2)


def test_allocate_route_unknown_token_raises():
    t = make_tables()
    with pytest.raises(ValueError):
        t.allocate_route(pos_token(99), to_boundary=2)


def test_propagate_carries_live_tokens_forward():
    t = make_tables(channels=4)
    t.define(pos_token(0), stripe=0)   # available at boundary 1
    t.propagate(from_boundary=1, live_tokens={pos_token(0)})
    assert t.in_reuse_set(pos_token(0), boundary=2)
    assert t.channels_used[1] == 1


def test_propagate_skips_dead_tokens():
    t = make_tables()
    t.define(pos_token(0), stripe=0)
    t.propagate(from_boundary=1, live_tokens=set())
    assert not t.in_reuse_set(pos_token(0), boundary=2)


def test_propagate_respects_capacity():
    t = make_tables(channels=1)
    t.define(pos_token(0), stripe=0)
    t.define(pos_token(1), stripe=0)
    live = {pos_token(0), pos_token(1)}
    t.propagate(from_boundary=1, live_tokens=live)
    carried = [tok for tok in live if t.in_reuse_set(tok, 2)]
    assert len(carried) == 1  # only one channel available


def test_livein_tokens_never_have_producers():
    t = make_tables()
    assert t.producer_stripe(livein_token("r5")) is None
    assert not t.can_route(livein_token("r5"), 3)


def test_live_out_and_last_used_tables():
    t = make_tables()
    t.set_live_out("r7", pos=12)
    assert t.live_out == {"r7": 12}
    t.note_use(pos_token(12), stripe=3)
    t.note_use(pos_token(12), stripe=1)  # earlier use does not regress
    assert t.last_used[pos_token(12)] == 3
