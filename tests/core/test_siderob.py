"""Unit tests for the side reorder buffer (ROB')."""

import pytest

from repro.core.siderob import SideEntryState, SideROB


def test_allocate_complete_commit_lifecycle():
    rob = SideROB()
    entry = rob.allocate(seq=5, trace_key=("k",))
    assert entry.state is SideEntryState.PENDING
    assert not entry.can_commit
    rob.mark_complete(entry, cycle=100, live_outs={"r1": 99},
                      branch_results=[True, False], stores=[(0x100, None)])
    assert entry.can_commit
    rob.commit(entry, cycle=105)
    assert entry.state is SideEntryState.COMMITTED
    assert entry.commit_cycle == 105
    assert rob.committed == 1
    assert rob.occupancy == 0


def test_commit_requires_completion():
    rob = SideROB()
    entry = rob.allocate(1, ("k",))
    with pytest.raises(RuntimeError):
        rob.commit(entry, 10)


def test_squash_removes_entry():
    rob = SideROB()
    entry = rob.allocate(1, ("k",))
    rob.squash(entry, cycle=50)
    assert entry.state is SideEntryState.SQUASHED
    assert rob.squashed == 1
    assert rob.occupancy == 0


def test_capacity_enforced():
    rob = SideROB(entries=2)
    rob.allocate(1, ("a",))
    rob.allocate(2, ("b",))
    with pytest.raises(RuntimeError):
        rob.allocate(3, ("c",))


def test_entry_records_architectural_side_effects():
    rob = SideROB()
    entry = rob.allocate(7, ("k",))
    rob.mark_complete(entry, 40, {"f4": 38, "r1": 39}, [True], [(0x20, None)])
    assert entry.live_outs == {"f4": 38, "r1": 39}
    assert entry.branch_results == [True]
    assert entry.buffered_stores == [(0x20, None)]
    assert entry.complete_cycle == 40
