"""Tests for the predicted-trace-key memo and its stamp invalidation."""

from repro.core import DynaSpAM, DynaSpAMConfig
from repro.ooo.branch_predictor import BranchPredictor
from repro.workloads import generate_trace

SCALE = 0.1


def _strip_memo_counters(result) -> dict:
    stats = result.stats.as_dict()
    stats.pop("predict_memo_hits")
    stats.pop("predict_memo_misses")
    return stats


def test_memoized_runs_match_unmemoized_exactly():
    for abbrev in ("KM", "NW"):
        run = generate_trace(abbrev, SCALE)
        memoized = DynaSpAM(ds_config=DynaSpAMConfig()).run(
            run.trace, run.program
        )
        plain = DynaSpAM(
            ds_config=DynaSpAMConfig(predict_memo=False)
        ).run(run.trace, run.program)
        assert memoized.cycles == plain.cycles
        assert memoized.squashes == plain.squashes
        assert memoized.coverage == plain.coverage
        assert memoized.mapped_traces == plain.mapped_traces
        assert memoized.offloaded_traces == plain.offloaded_traces
        assert _strip_memo_counters(memoized) == _strip_memo_counters(plain)
        assert memoized.stats.predict_memo_hits > 0
        assert plain.stats.predict_memo_hits == 0


def test_memo_disabled_counts_nothing():
    run = generate_trace("KM", SCALE)
    result = DynaSpAM(
        ds_config=DynaSpAMConfig(predict_memo=False)
    ).run(run.trace, run.program)
    assert result.stats.predict_memo_hits == 0
    assert result.stats.predict_memo_misses == 0


def test_predictor_stamps_bump_only_on_table_change():
    bpred = BranchPredictor()
    pc = 0x40
    taken, deps = bpred.peek_with_deps(pc, bpred.history)
    (pc_index, pc_stamp), (g_index, g_stamp) = deps
    # Training toward taken moves both weak counters: stamps must bump.
    bpred.predict_and_update(pc, True)
    assert bpred.update_stamp[pc_index] > pc_stamp
    assert bpred.update_stamp[g_index] > g_stamp
    # Saturate the counters, then train again: values stop changing and
    # stamps stop moving.
    for _ in range(8):
        bpred.predict_and_update(pc, True)
    frozen_pc = bpred.update_stamp[pc_index]
    frozen_g = bpred.update_stamp[g_index]
    bpred.predict_and_update(pc, True)
    assert bpred.update_stamp[pc_index] == frozen_pc
    assert bpred.update_stamp[g_index] == frozen_g


def test_peek_with_deps_matches_peek_with_history():
    bpred = BranchPredictor()
    for pc in (0x0, 0x10, 0x44, 0x100):
        for history in (0, 3, 0b1010):
            taken, _ = bpred.peek_with_deps(pc, history)
            assert taken == bpred.peek_with_history(pc, history)
