"""Unit tests for PriorityGen (Algorithm 2 / Table 2 scores)."""

from repro.core.priority import (
    priority_gen,
    PRIORITY_FULL_REUSE,
    PRIORITY_INFEASIBLE,
    PRIORITY_PART_REUSE,
    PRIORITY_ROUTED,
    PRIORITY_TWO_LIVEIN,
)
from repro.core.tables import MappingTables, livein_token, pos_token
from repro.fabric.pe import PE


def tables(**kw):
    return MappingTables(num_stripes=8, channels_per_stripe=4, **kw)


def pe_with_ports(ports, stripe=1):
    return PE(stripe=stripe, index=0, pool="int_alu", input_ports=ports)


def test_two_liveins_need_two_ports():
    t = tables()
    ops = [livein_token("r1"), livein_token("r2")]
    wide = priority_gen(pe_with_ports(2, stripe=0), ops, t, frontier=0)
    narrow = priority_gen(pe_with_ports(1), ops, t, frontier=1)
    assert wide.score == PRIORITY_TWO_LIVEIN
    assert narrow.score == PRIORITY_INFEASIBLE


def test_full_reuse_scores_two():
    t = tables()
    t.define(pos_token(0), stripe=0)
    t.define(pos_token(1), stripe=0)
    ops = [pos_token(0), pos_token(1)]
    plan = priority_gen(pe_with_ports(1, stripe=1), ops, t, frontier=1)
    assert plan.score == PRIORITY_FULL_REUSE
    assert [p.action for p in plan.operands] == ["reuse", "reuse"]


def test_partial_reuse_scores_one():
    t = tables()
    t.define(pos_token(0), stripe=0)   # reusable at boundary 1
    t.define(pos_token(1), stripe=0)
    t.propagate(1, {pos_token(0)})     # only token 0 carried to boundary 2
    ops = [pos_token(0), pos_token(1)]
    plan = priority_gen(pe_with_ports(1, stripe=2), ops, t, frontier=2)
    assert plan.score == PRIORITY_PART_REUSE
    actions = sorted(p.action for p in plan.operands)
    assert actions == ["reuse", "route"]


def test_all_routed_scores_zero():
    t = tables()
    t.define(pos_token(0), stripe=0)
    t.define(pos_token(1), stripe=0)
    ops = [pos_token(0), pos_token(1)]
    plan = priority_gen(pe_with_ports(1, stripe=3), ops, t, frontier=3)
    assert plan.score == PRIORITY_ROUTED


def test_unroutable_operand_is_infeasible():
    t = MappingTables(num_stripes=8, channels_per_stripe=0)
    t.define(pos_token(0), stripe=0)
    ops = [pos_token(0)]
    # Zero channels: value can reach boundary 1 (direct wires) but not 3.
    plan = priority_gen(pe_with_ports(1, stripe=3), ops, t, frontier=3)
    assert plan.score == PRIORITY_INFEASIBLE


def test_single_livein_with_port_is_routable():
    t = tables()
    ops = [livein_token("r1")]
    plan = priority_gen(pe_with_ports(1), ops, t, frontier=1)
    assert plan.score == PRIORITY_ROUTED
    assert plan.operands[0].action == "livein"


def test_livein_plus_reuse_scores_part_reuse():
    t = tables()
    t.define(pos_token(0), stripe=0)
    ops = [livein_token("r1"), pos_token(0)]
    plan = priority_gen(pe_with_ports(1, stripe=1), ops, t, frontier=1)
    assert plan.score == PRIORITY_PART_REUSE


def test_livein_beyond_port_capacity_infeasible():
    t = tables()
    pe = PE(stripe=1, index=0, pool="int_alu", input_ports=0)
    plan = priority_gen(pe, [livein_token("r1")], t, frontier=1)
    assert plan.score == PRIORITY_INFEASIBLE


def test_zero_operand_instruction_scores_routed():
    t = tables()
    plan = priority_gen(pe_with_ports(1), [], t, frontier=1)
    assert plan.score == PRIORITY_ROUTED


def test_priority_ordering_matches_table2():
    assert (PRIORITY_TWO_LIVEIN > PRIORITY_FULL_REUSE > PRIORITY_PART_REUSE
            > PRIORITY_ROUTED > PRIORITY_INFEASIBLE)
