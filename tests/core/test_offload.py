"""Unit tests for the offload engine against a live host pipeline."""

import pytest

from repro.core.mapper import ResourceAwareMapper
from repro.core.offload import OffloadEngine
from repro.core.multifabric import FabricPool
from repro.isa.builder import ProgramBuilder
from repro.isa.executor import FunctionalExecutor, Memory
from repro.ooo.pipeline import OOOPipeline


def build_segment(build, memory=None):
    b = ProgramBuilder("t")
    build(b)
    b.halt()
    result = FunctionalExecutor().run(b.build(), memory)
    segment = result.trace[:-1]
    outcomes = tuple(bool(d.taken) for d in segment if d.is_branch)
    key = (segment[0].pc, outcomes, len(segment))
    return segment, key


def offload_once(build, memory=None, speculation=True):
    segment, key = build_segment(build, memory)
    config = ResourceAwareMapper().map_trace(segment, key)
    assert config is not None
    pipeline = OOOPipeline()
    pool = FabricPool(1)
    fabric, ready = pool.acquire(config, 0)
    engine = OffloadEngine(pipeline=pipeline, speculation=speculation)
    outcome = engine.offload(fabric, config, segment, ready)
    return outcome, pipeline, engine


def simple_body(b):
    b.fli("f1", 3.0)
    b.fli("f2", 4.0)
    b.fmul("f3", "f1", "f2")
    b.fadd("f4", "f3", "f1")


def test_successful_offload_commits_fat_instruction():
    outcome, pipeline, engine = offload_once(simple_body)
    assert outcome.success
    assert outcome.consumed == 4
    assert engine.siderob.committed == 1
    assert pipeline.stats.fabric_invocations == 1
    assert pipeline.stats.offloaded_instructions == 4
    assert pipeline.stats.commits == 1


def test_live_outs_reach_host_scoreboard():
    outcome, pipeline, _ = offload_once(simple_body)
    assert pipeline.regs.ready_cycle("f3") > 0
    assert pipeline.regs.ready_cycle("f4") > 0
    assert pipeline.regs.ready_cycle("f4") <= outcome.complete + 1


def test_fabric_stores_enter_host_store_queue():
    mem = Memory()

    def body(b):
        b.li("r1", 0x100)
        b.li("r2", 9)
        b.sw("r1", "r2", 0)

    outcome, pipeline, _ = offload_once(body, mem)
    assert outcome.success
    assert len(pipeline.sq) == 1
    assert pipeline.sq.youngest_alias(0x100, before_seq=10**9) is not None
    assert pipeline.stats.stores == 1


def test_offloaded_branches_train_host_predictor():
    def body(b):
        b.li("r1", 1)
        b.addi("r1", "r1", -1)
        b.bne("r1", "r0", "end")
        b.label("end")
        b.addi("r2", "r2", 1)

    outcome, pipeline, _ = offload_once(body)
    assert outcome.success
    assert pipeline.bpred.lookups == 1


def test_rename_energy_charged_for_lives():
    outcome, pipeline, _ = offload_once(simple_body)
    # 2 live-ins? (none: both fli) -> live-outs at least f3/f4 renamed.
    assert pipeline.stats.renames >= 2


def test_per_pool_fabric_op_counters():
    outcome, pipeline, _ = offload_once(simple_body)
    s = pipeline.stats
    assert s.fabric_fp_alu_ops == 3    # fli, fli, fadd
    assert s.fabric_fp_muldiv_ops == 1  # fmul
    assert s.fabric_fu_ops == 4


def test_memory_violation_squashes_and_trains():
    """An intra-trace aliasing store whose *address* resolves late forces a
    violation under speculation."""
    mem = Memory()
    mem.store_array(0x100, [0x200, 7])

    def body(b):
        b.li("r9", 0x100)
        b.lw("r1", "r9", 0)       # r1 = 0x200 (slow-ish address chain)
        b.mul("r2", "r1", "r1")   # long dependency to stretch addr time
        b.div("r3", "r2", "r1")   # 0x200*0x200/0x200 = 0x200
        b.li("r4", 42)
        b.sw("r3", "r4", 0)       # store to 0x200, address late
        b.li("r5", 0x200)
        b.lw("r6", "r5", 0)       # load 0x200: issues before store addr
    outcome, pipeline, engine = offload_once(body, mem)
    assert not outcome.success
    assert outcome.squash_reason == "memory"
    assert pipeline.stats.memory_violations == 1
    assert pipeline.storesets.violations_trained == 1
    assert engine.siderob.squashed == 1


def test_conservative_mode_never_violates():
    mem = Memory()
    mem.store_array(0x100, [0x200, 7])

    def body(b):
        b.li("r9", 0x100)
        b.lw("r1", "r9", 0)
        b.mul("r2", "r1", "r1")
        b.div("r3", "r2", "r1")
        b.li("r4", 42)
        b.sw("r3", "r4", 0)
        b.li("r5", 0x200)
        b.lw("r6", "r5", 0)

    outcome, pipeline, _ = offload_once(body, mem, speculation=False)
    assert outcome.success
    assert pipeline.stats.memory_violations == 0
