"""Unit tests for the multi-fabric pool (Table 5's 1/2/4-fabric study)."""

import pytest

from repro.core.multifabric import FabricPool
from repro.fabric.configuration import Configuration, OperandSource, PlacedOp
from repro.isa.opcodes import Opcode, OpClass


def make_config(name):
    op = PlacedOp(
        pos=0,
        opcode=Opcode.ADD,
        opclass=OpClass.INT_ALU,
        stripe=0,
        pe_index=0,
        pool="int_alu",
        sources=(OperandSource("livein", reg="r1"),),
        source_roles=("src",),
        dest_reg="r2",
    )
    return Configuration(
        trace_key=(name,),
        placements=[op],
        live_ins=("r1",),
        live_outs={"r2": 0},
        branch_outcomes=(),
        mem_op_pcs=(),
        mem_op_kinds=(),
    )


def test_pool_requires_a_fabric():
    with pytest.raises(ValueError):
        FabricPool(0)


def test_reuse_of_resident_configuration():
    pool = FabricPool(1)
    cfg = make_config("a")
    fabric1, ready1 = pool.acquire(cfg, 0)
    assert ready1 > 0  # first configure pays reconfiguration latency
    fabric2, ready2 = pool.acquire(cfg, 100)
    assert fabric2 is fabric1
    assert ready2 == 100  # no reconfiguration
    assert pool.reconfigurations == 1


def test_two_fabrics_hold_two_configurations():
    pool = FabricPool(2)
    a, b = make_config("a"), make_config("b")
    fa, _ = pool.acquire(a, 0)
    fb, _ = pool.acquire(b, 0)
    assert fa is not fb
    # Both stay resident: re-acquiring neither reconfigures.
    pool.acquire(a, 50)
    pool.acquire(b, 50)
    assert pool.reconfigurations == 2


def test_lru_evicts_least_recently_used():
    pool = FabricPool(2)
    a, b, c = make_config("a"), make_config("b"), make_config("c")
    fa, _ = pool.acquire(a, 0)
    fb, _ = pool.acquire(b, 0)
    pool.acquire(a, 10)          # a is now most recent
    fc, _ = pool.acquire(c, 20)  # evicts b
    assert fc is fb
    assert not any(f.is_configured_for(("b",)) for f in pool.fabrics)


def test_hysteresis_protects_fresh_configurations():
    pool = FabricPool(1)
    a, b = make_config("a"), make_config("b")
    pool.acquire(a, 0)
    assert pool.acquire(b, 10, reconfig_hysteresis=100) is None
    acquired = pool.acquire(b, 200, reconfig_hysteresis=100)
    assert acquired is not None


def test_alternating_keys_on_one_fabric_thrash():
    pool = FabricPool(1)
    a, b = make_config("a"), make_config("b")
    for i in range(6):
        pool.acquire(a if i % 2 == 0 else b, i * 100)
    assert pool.reconfigurations == 6


def test_lifetimes_collected_across_fabrics():
    pool = FabricPool(2)
    a, b = make_config("a"), make_config("b")
    fa, ready = pool.acquire(a, 0)
    from repro.fabric.fabric import InvocationContext
    ctx = InvocationContext(
        start_lower_bound=ready,
        live_in_ready={},
        mem_addrs={},
        dcache_access=lambda addr: 2,
    )
    fa.execute(a, ctx)
    fa.execute(a, ctx)
    fb, _ = pool.acquire(b, 100)
    lifetimes = pool.lifetimes()
    assert sorted(lifetimes) == [2]
    assert pool.total_invocations == 2
