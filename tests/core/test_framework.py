"""Integration tests for the full DynaSpAM framework."""

import pytest

from repro.core import DynaSpAM, DynaSpAMConfig
from repro.isa.builder import ProgramBuilder
from repro.isa.executor import FunctionalExecutor, Memory
from repro.ooo.pipeline import OOOPipeline
from repro.workloads import generate_trace

SCALE = 0.25


def run_program(build, memory=None):
    b = ProgramBuilder("t")
    build(b)
    b.halt()
    program = b.build()
    result = FunctionalExecutor().run(program, memory)
    return result


def hot_loop(iterations=400):
    def body(b):
        b.li("r1", 0x100)
        b.fli("f1", 2.0)
        with b.countdown("loop", "r2", iterations):
            b.flw("f2", "r1", 0)
            b.fmul("f3", "f2", "f1")
            b.fadd("f4", "f4", "f3")
            b.fsw("r1", "f3", 0x1000)
            b.addi("r1", "r1", 4)
    return body


def make_memory():
    mem = Memory()
    mem.store_array(0x100, [1.0] * 512)
    return mem


def dyna(mode="accelerate", **kw):
    return DynaSpAM(ds_config=DynaSpAMConfig(mode=mode, **kw))


def test_baseline_mode_matches_plain_pipeline():
    result = run_program(hot_loop(100), make_memory())
    plain = OOOPipeline().run_trace(result.trace)
    ds = dyna(mode="baseline")
    out = ds.run(result.trace, result.program)
    assert out.cycles == plain.cycles
    assert out.offloaded_instructions == 0
    assert out.mapping_instructions == 0


def test_hot_loop_is_detected_mapped_and_offloaded():
    result = run_program(hot_loop(), make_memory())
    ds = dyna()
    out = ds.run(result.trace, result.program)
    assert out.mapped_traces >= 1
    assert out.offloaded_traces >= 1
    assert out.offloaded_instructions > 0.5 * result.dynamic_count
    assert out.stats.fabric_invocations > 50


def test_hot_loop_speeds_up():
    result = run_program(hot_loop(), make_memory())
    base = OOOPipeline().run_trace(result.trace)
    out = dyna().run(result.trace, result.program)
    assert out.cycles < base.cycles


def test_coverage_fractions_sum_to_one():
    result = run_program(hot_loop(), make_memory())
    out = dyna().run(result.trace, result.program)
    cov = out.coverage
    assert cov["host"] + cov["mapping"] + cov["fabric"] == pytest.approx(1.0)
    assert out.total_instructions == result.dynamic_count


def test_mapping_only_mode_never_offloads():
    result = run_program(hot_loop(), make_memory())
    out = dyna(mode="mapping_only").run(result.trace, result.program)
    assert out.mapped_traces >= 1
    assert out.offloaded_instructions == 0
    assert out.mapping_instructions > 0


def test_mapping_only_overhead_is_small():
    """Paper: mapping alone causes < ~3% slowdown."""
    result = run_program(hot_loop(), make_memory())
    base = OOOPipeline().run_trace(result.trace)
    out = dyna(mode="mapping_only").run(result.trace, result.program)
    assert out.cycles <= base.cycles * 1.05


def test_short_program_never_accelerates():
    """Too few repetitions: nothing becomes hot or ready."""
    result = run_program(hot_loop(4), make_memory())
    out = dyna().run(result.trace, result.program)
    assert out.offloaded_instructions == 0


def test_lifetime_accounting_single_loop():
    result = run_program(hot_loop(600), make_memory())
    out = dyna().run(result.trace, result.program)
    assert out.lifetimes, "no configuration lifetime recorded"
    assert out.mean_lifetime > 50


def test_instructions_conserved_across_modes():
    result = run_program(hot_loop(), make_memory())
    for mode in ("baseline", "mapping_only", "accelerate"):
        out = dyna(mode=mode).run(result.trace, result.program)
        assert out.total_instructions == result.dynamic_count, mode


def test_unbiased_branches_cause_squashes():
    mem = Memory()
    noise = [(i * 2654435761) % 2 for i in range(600)]
    mem.store_array(0x100, noise)

    def body(b):
        b.li("r1", 0x100)
        with b.countdown("loop", "r2", 600):
            b.lw("r3", "r1", 0)
            b.beq("r3", "r0", "skip")
            b.addi("r4", "r4", 1)
            b.label("skip")
            b.addi("r1", "r1", 4)

    result = run_program(body, mem)
    out = dyna().run(result.trace, result.program)
    # Data-dependent branches: offload predictions sometimes wrong.
    if out.stats.fabric_invocations:
        assert out.squashes > 0


def test_results_identical_across_repeat_runs():
    result = run_program(hot_loop(), make_memory())
    a = dyna().run(result.trace, result.program)
    b = dyna().run(result.trace, result.program)
    assert a.cycles == b.cycles
    assert a.stats.as_dict() == b.stats.as_dict()


def test_naive_mapper_mode_runs():
    result = run_program(hot_loop(), make_memory())
    out = dyna(mapper="naive").run(result.trace, result.program)
    assert out.total_instructions == result.dynamic_count


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        DynaSpAMConfig(mode="bogus")
    with pytest.raises(ValueError):
        DynaSpAMConfig(mapper="bogus")


def test_speculation_off_is_no_faster():
    result = run_program(hot_loop(), make_memory())
    fast = dyna(speculation=True).run(result.trace, result.program)
    slow = dyna(speculation=False).run(result.trace, result.program)
    assert slow.cycles >= fast.cycles


@pytest.mark.parametrize("abbrev", ["KM", "NW", "BFS"])
def test_benchmark_end_to_end(abbrev):
    res = generate_trace(abbrev, SCALE)
    base = OOOPipeline().run_trace(res.trace)
    out = dyna().run(res.trace, res.program)
    assert out.total_instructions == res.dynamic_count
    # DynaSpAM must stay within a sane band of the baseline.
    assert out.cycles < base.cycles * 1.3


def test_energy_relevant_counters_populated():
    result = run_program(hot_loop(), make_memory())
    out = dyna().run(result.trace, result.program)
    s = out.stats
    assert s.fabric_fu_ops > 0
    assert s.fabric_datapath_transfers > 0
    assert s.fabric_fifo_ops > 0
    assert s.config_cache_reads > 0
    assert s.offloaded_instructions == out.offloaded_instructions
    # Offloaded instructions skip fetch: fewer fetches than instructions.
    assert s.fetches < s.instructions
