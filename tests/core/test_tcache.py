"""Unit tests for trace window building and the T-Cache."""

from repro.core.tcache import TCache, TraceWindowBuilder
from repro.isa.builder import ProgramBuilder
from repro.isa.executor import FunctionalExecutor


def trace_of(build):
    b = ProgramBuilder("t")
    build(b)
    b.halt()
    return FunctionalExecutor().run(b.build()).trace


def loop_trace(iterations, body_adds):
    def body(b):
        with b.countdown("loop", "r1", iterations):
            for _ in range(body_adds):
                b.addi("r2", "r2", 1)
    return trace_of(body)


# ---------------------------------------------------------------------------
# Window builder
# ---------------------------------------------------------------------------
def test_window_closes_at_third_branch():
    trace = loop_trace(iterations=10, body_adds=3)  # 5 instrs/iter, 1 branch
    builder = TraceWindowBuilder(max_length=32)
    windows = [w for w in map(builder.feed, trace) if w]
    assert all(len(w.outcomes) <= 3 for w in windows)
    assert len(windows[0].outcomes) == 3
    # Steady state (after the loop preamble window): 3 iterations of 5.
    assert windows[1].length == 15


def test_window_closes_at_length_cap_and_enters_dead_zone():
    trace = loop_trace(iterations=6, body_adds=40)  # 42 instrs/iter
    builder = TraceWindowBuilder(max_length=32)
    windows = []
    for dyn in trace:
        w = builder.feed(dyn)
        if w:
            windows.append(w)
    # Cap closes each window at 32 mid-block; the rest of the iteration is
    # a dead zone, so steady-state windows anchor at iteration starts.
    assert all(w.length == 32 for w in windows[:-1])
    anchor_pcs = {w.anchor_pc for w in windows[1:-1]}
    assert len(anchor_pcs) == 1


def test_windows_anchor_after_branches():
    trace = loop_trace(iterations=9, body_adds=3)
    builder = TraceWindowBuilder(max_length=32)
    windows = [w for w in map(builder.feed, trace) if w]
    # 9 iterations, 3 per window: steady-state windows share the loop
    # anchor (the first window additionally covers the loop preamble).
    loop_windows = [w for w in windows if len(w.outcomes) == 3]
    assert len({w.anchor_pc for w in loop_windows[1:]}) == 1


def test_stable_loop_yields_identical_keys():
    trace = loop_trace(iterations=15, body_adds=3)
    builder = TraceWindowBuilder(max_length=32)
    keys = [w.key for w in map(builder.feed, trace) if w]
    # Steady-state windows: fully-taken loop iterations -> same key.
    assert keys[1] == keys[2] == keys[3]


def test_halt_discards_open_window():
    trace = loop_trace(iterations=2, body_adds=2)
    builder = TraceWindowBuilder(max_length=32)
    windows = [w for w in map(builder.feed, trace) if w]
    # 2 iterations = 2 branches < 3: no window ever closes, HALT discards.
    assert windows == []
    assert builder.at_anchor


def test_resume_after_realigns_anchor_state():
    builder = TraceWindowBuilder(max_length=32)
    trace = loop_trace(iterations=6, body_adds=40)
    segment = trace[:32]  # ends mid-block (not at a branch)
    builder.resume_after(segment)
    assert not builder.at_anchor
    # Feeding until the branch re-arms the anchor.
    for dyn in trace[32:]:
        builder.feed(dyn)
        if dyn.is_branch:
            break
    assert builder.at_anchor


def test_at_anchor_initially_true():
    assert TraceWindowBuilder().at_anchor


# ---------------------------------------------------------------------------
# TCache
# ---------------------------------------------------------------------------
def closed_windows(trace, max_length=32):
    builder = TraceWindowBuilder(max_length=max_length)
    return [w for w in map(builder.feed, trace) if w]


def test_trace_becomes_hot_after_threshold():
    windows = closed_windows(loop_trace(iterations=30, body_adds=3))
    tcache = TCache(hot_threshold=3)
    hot_after = None
    for i, w in enumerate(windows):
        if tcache.observe(w) and hot_after is None:
            hot_after = i
    # The steady-state key (first seen at window 1) crosses threshold 3 on
    # its third observation, i.e. overall window index 3.
    assert hot_after == 3
    assert tcache.hot_count >= 1


def test_is_hot_by_key():
    windows = closed_windows(loop_trace(iterations=30, body_adds=3))
    tcache = TCache(hot_threshold=2)
    for w in windows[1:3]:
        tcache.observe(w)
    assert tcache.is_hot(windows[1].key)
    assert not tcache.is_hot(("bogus", (), 0))


def test_counter_saturates():
    windows = closed_windows(loop_trace(iterations=60, body_adds=3))
    tcache = TCache(counter_bits=3, hot_threshold=3)
    for w in windows:
        tcache.observe(w)
    key = windows[1].key
    assert tcache._counters[key] <= 7


def test_periodic_clearing_demotes_and_rewarm():
    """Clearing resets counters and demotes hot flags; a genuinely hot
    trace re-warms within threshold observations."""
    windows = closed_windows(loop_trace(iterations=60, body_adds=3))
    tcache = TCache(hot_threshold=2, clear_interval=5)
    steady = [w for w in windows if w.key == windows[1].key]
    key = windows[1].key
    tcache.observe(steady[0])
    tcache.observe(steady[1])
    assert tcache.is_hot(key)
    # Force a clearing epoch with unrelated observations.
    for w in steady[2:7]:
        tcache.observe(w)
    assert tcache.clears >= 1
    # The dominant trace re-warms quickly after demotion.
    hot_again = False
    for w in steady[7:10]:
        hot_again = tcache.observe(w) or hot_again
    assert hot_again


def test_capacity_eviction():
    tcache = TCache(entries=2, hot_threshold=1)
    traces = loop_trace(iterations=30, body_adds=3)
    builder = TraceWindowBuilder(max_length=32)
    windows = [w for w in map(builder.feed, traces) if w]
    w = windows[0]
    # Fabricate distinct keys by perturbing anchors.
    for anchor in (1000, 2000, 3000):
        w.anchor_pc = anchor
        tcache.observe(w)
    assert len(tcache._counters) <= 2
