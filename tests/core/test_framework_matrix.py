"""Cross-benchmark, cross-configuration integration matrix.

Runs every benchmark at a small scale through every DynaSpAM mode and
checks global invariants that must hold regardless of workload: dynamic
instruction conservation, sane coverage, consistent trace accounting, and
the relative ordering of the three Figure 8 series.
"""

import pytest

from repro.core import DynaSpAM, DynaSpAMConfig
from repro.ooo import OOOPipeline
from repro.workloads import ALL_ABBREVS, generate_trace

SCALE = 0.15


@pytest.fixture(scope="module")
def traces():
    return {abbrev: generate_trace(abbrev, SCALE) for abbrev in ALL_ABBREVS}


@pytest.fixture(scope="module")
def baselines(traces):
    return {
        abbrev: OOOPipeline().run_trace(run.trace)
        for abbrev, run in traces.items()
    }


def run_mode(run, **kw):
    machine = DynaSpAM(ds_config=DynaSpAMConfig(**kw))
    return machine.run(run.trace, run.program)


@pytest.mark.parametrize("abbrev", sorted(ALL_ABBREVS))
def test_instruction_conservation_all_modes(traces, abbrev):
    run = traces[abbrev]
    for mode in ("baseline", "mapping_only", "accelerate"):
        out = run_mode(run, mode=mode)
        assert out.total_instructions == run.dynamic_count, mode
        cov = out.coverage
        assert abs(sum(cov.values()) - 1.0) < 1e-9


@pytest.mark.parametrize("abbrev", sorted(ALL_ABBREVS))
def test_trace_accounting_consistency(traces, abbrev):
    out = run_mode(traces[abbrev], mode="accelerate")
    assert out.offloaded_traces <= out.mapped_traces
    assert out.stats.fabric_invocations >= out.offloaded_traces * 0
    if out.offloaded_instructions:
        assert out.stats.fabric_invocations > 0
        assert out.lifetimes
    assert out.mean_lifetime >= 0
    assert out.reconfigurations >= 0


@pytest.mark.parametrize("abbrev", sorted(ALL_ABBREVS))
def test_mode_ordering(traces, baselines, abbrev):
    """mapping_only never beats baseline by much; acceleration with
    speculation is at least as fast as without."""
    run = traces[abbrev]
    base = baselines[abbrev].cycles
    mapping = run_mode(run, mode="mapping_only").cycles
    spec = run_mode(run, speculation=True).cycles
    no_spec = run_mode(run, speculation=False).cycles
    assert mapping >= base * 0.99          # mapping cannot speed things up
    assert spec <= no_spec * 1.02          # speculation never loses


@pytest.mark.parametrize("abbrev", sorted(ALL_ABBREVS))
def test_acceleration_within_sane_band(traces, baselines, abbrev):
    run = traces[abbrev]
    out = run_mode(run)
    speedup = baselines[abbrev].cycles / out.cycles
    assert 0.7 < speedup < 12.0, speedup


@pytest.mark.parametrize("fabrics", [1, 2, 4])
def test_multi_fabric_lifetimes_never_shrink_much(traces, fabrics):
    run = traces["BFS"]
    single = run_mode(run, num_fabrics=1)
    multi = run_mode(run, num_fabrics=fabrics)
    assert multi.mean_lifetime >= single.mean_lifetime * 0.7


def test_trace_length_sweep_coverage_valid(traces):
    run = traces["SRAD"]
    for length in (16, 24, 32, 40):
        out = run_mode(run, trace_length=length)
        assert out.total_instructions == run.dynamic_count
        assert 0.0 <= out.coverage["fabric"] <= 1.0
