"""Progress heartbeats: tracker math, rendering, and the active slot."""

import io

from repro.obs import progress


def test_tracker_heartbeat_fields():
    tracker = progress.ProgressTracker(4, label="bench")
    beat = tracker.advance(1, instructions=1000, detail="KM")
    assert beat["label"] == "bench"
    assert beat["done"] == 1 and beat["total"] == 4
    assert beat["fraction"] == 0.25
    assert beat["instructions"] == 1000
    assert beat["instructions_per_second"] > 0
    assert beat["eta_seconds"] is not None
    assert beat["detail"] == "KM"

    tracker.advance(3, instructions=3000)
    final = tracker.heartbeat()
    assert final["done"] == 4 and final["fraction"] == 1.0


def test_zero_total_never_divides():
    tracker = progress.ProgressTracker(0, label="study")
    beat = tracker.heartbeat()
    assert beat["fraction"] == 1.0
    assert beat["eta_seconds"] is None


def test_listeners_fire_and_never_raise():
    tracker = progress.ProgressTracker(2)
    beats = []
    tracker.add_listener(beats.append)
    tracker.add_listener(lambda beat: 1 / 0)    # must be swallowed
    tracker.advance(1)
    tracker.advance(1)
    assert [b["done"] for b in beats] == [1, 2]


def test_render_heartbeat_line():
    line = progress.render_heartbeat({
        "label": "bench", "done": 12, "total": 44, "fraction": 0.27,
        "instructions_per_second": 1_800_000.0, "eta_seconds": 9.0,
        "detail": "KM",
    })
    assert line == "[12/44] bench  27% | 1.8M instr/s | ETA 9s | KM"


def test_stderr_listener_rate_limits_but_prints_final():
    stream = io.StringIO()
    tracker = progress.ProgressTracker(3, label="bench")
    tracker.add_listener(
        progress.stderr_listener(stream=stream, min_interval=3600.0)
    )
    tracker.advance(1)      # first beat prints (nothing printed before)
    tracker.advance(1)      # suppressed (within the interval)
    tracker.advance(1)      # final beat always prints
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    assert lines[-1].startswith("[3/3]")


def test_active_slot_roundtrip():
    assert progress.current() is None
    progress.advance_active(1)            # free no-op with no tracker
    tracker = progress.ProgressTracker(2)
    progress.activate(tracker)
    try:
        assert progress.current() is tracker
        progress.advance_active(1, instructions=10, detail="x")
        assert tracker.done == 1 and tracker.instructions == 10
    finally:
        progress.deactivate()
    assert progress.current() is None
