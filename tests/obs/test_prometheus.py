"""Prometheus text exposition rendering."""

from repro.obs.prometheus import CONTENT_TYPE, render_prometheus
from repro.service.metrics import LatencyHistogram, ServiceMetrics

SNAPSHOT = {
    "uptime_seconds": 12.5,
    "jobs": {"submitted": 7, "rejected": 1, "completed": 5,
             "failed": 1, "coalesced": 2},
    "flights_in_flight": 3,
    "queue": {"capacity": 64, "queued": 2, "running": 3, "open": 5,
              "retained": 9, "draining": False},
    "latency_seconds": {"count": 5, "p50": 0.2, "p90": 0.9,
                        "p99": 1.5, "max": 1.5},
    "latency_histogram": {
        "buckets": [[0.1, 2], [1.0, 2], [None, 1]],
        "sum": 3.3,
        "count": 5,
    },
    "cache": {"run_memory_hits": 11, "runs_simulated": 4,
              "disk": {"runs": {"hits": 6, "misses": 4}}},
    "lifecycle": {"traces_mapped": 9, "fabric_invocations": 400,
                  "squashes_branch": 12, "squashes_memory": 3},
}


def test_renders_counters_gauges_and_histogram():
    text = render_prometheus(SNAPSHOT)
    assert text.endswith("\n")
    assert 'repro_jobs_total{outcome="completed"} 5' in text
    assert 'repro_jobs_total{outcome="coalesced"} 2' in text
    assert "repro_uptime_seconds 12.5" in text
    assert 'repro_queue_jobs{state="queued"} 2' in text
    assert "repro_queue_capacity 64" in text
    assert "repro_queue_draining 0" in text
    assert "repro_jobs_in_flight 3" in text
    assert 'repro_cache_hits_total{layer="memory"} 11' in text
    assert 'repro_cache_hits_total{layer="disk"} 6' in text
    assert "repro_runs_simulated_total 4" in text
    assert ('repro_lifecycle_events_total{event="fabric_invocations"} 400'
            in text)
    assert ('repro_lifecycle_events_total{event="squashes_memory"} 3'
            in text)


def test_histogram_buckets_are_cumulative_and_end_at_inf():
    text = render_prometheus(SNAPSHOT)
    assert 'repro_job_latency_seconds_bucket{le="0.1"} 2' in text
    assert 'repro_job_latency_seconds_bucket{le="1.0"} 4' in text
    assert 'repro_job_latency_seconds_bucket{le="+Inf"} 5' in text
    assert "repro_job_latency_seconds_sum 3.3" in text
    assert "repro_job_latency_seconds_count 5" in text


def test_families_are_typed_and_helped():
    text = render_prometheus(SNAPSHOT)
    for family, kind in (
        ("repro_jobs_total", "counter"),
        ("repro_queue_jobs", "gauge"),
        ("repro_job_latency_seconds", "histogram"),
        ("repro_lifecycle_events_total", "counter"),
    ):
        assert f"# TYPE {family} {kind}" in text
        assert f"# HELP {family} " in text


def test_content_type_is_version_0_0_4():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_empty_snapshot_renders_zeroes():
    text = render_prometheus({})
    assert 'repro_jobs_total{outcome="submitted"} 0' in text
    assert "repro_job_latency_seconds_bucket" not in text


def test_latency_histogram_observe_buckets():
    histogram = LatencyHistogram(buckets=(0.1, 1.0, None))
    for value in (0.05, 0.5, 0.7, 5.0):
        histogram.observe(value)
    summary = histogram.summary()
    assert summary["buckets"] == [[0.1, 1], [1.0, 2], [None, 1]]
    assert summary["count"] == 4
    assert summary["sum"] == 0.05 + 0.5 + 0.7 + 5.0


def test_observe_report_feeds_lifecycle_counters():
    metrics = ServiceMetrics()
    metrics.observe_report({
        "mapped_traces": 4, "offloaded_traces": 2,
        "fabric_invocations": 50, "reconfigurations": 3, "squashes": 10,
        "stats": {"memory_violations": 4, "offloaded_instructions": 900},
    })
    snapshot = metrics.snapshot()
    lifecycle = snapshot["lifecycle"]
    assert lifecycle["traces_mapped"] == 4
    assert lifecycle["fabric_invocations"] == 50
    assert lifecycle["squashes_memory"] == 4
    assert lifecycle["squashes_branch"] == 6
    assert lifecycle["instructions_offloaded"] == 900
    text = render_prometheus(snapshot)
    assert 'repro_lifecycle_events_total{event="squashes_branch"} 6' in text
    # Non-dict results (failed jobs) are ignored, not crashed on.
    metrics.observe_report("boom")


def test_observe_report_feeds_buckets_and_fabric_gauges():
    metrics = ServiceMetrics()
    metrics.observe_report({
        "cycle_accounting": {
            "dynaspam": {"buckets": {"host": 300, "offload": 600,
                                     "squash_branch": 100}},
        },
        "fabric_utilization": {"total_invocations": 40,
                               "placed_pe_ratio": 0.25,
                               "stripe_fill": 0.5},
    })
    metrics.observe_report({
        "cycle_accounting": {"dynaspam": {"buckets": {"host": 100}}},
        "fabric_utilization": {"total_invocations": 10,
                               "placed_pe_ratio": 0.75,
                               "stripe_fill": 1.0},
    })
    snapshot = metrics.snapshot()
    assert snapshot["cycle_buckets"] == {
        "host": 400, "offload": 600, "squash_branch": 100}
    fabric = snapshot["fabric_utilization"]
    assert fabric["invocations_observed"] == 50
    # Invocation-weighted means, not naive averages of ratios.
    assert fabric["placed_pe_ratio"] == (0.25 * 40 + 0.75 * 10) / 50
    assert fabric["stripe_fill"] == (0.5 * 40 + 1.0 * 10) / 50
    text = render_prometheus(snapshot)
    assert 'repro_cycle_bucket_cycles_total{bucket="offload"} 600' in text
    assert 'repro_cycle_bucket_cycles_total{bucket="drain"} 0' in text
    assert 'repro_fabric_utilization{stat="stripe_fill"} 0.6' in text
    assert "repro_fabric_invocations_observed_total 50" in text


def test_report_without_accounting_leaves_gauges_at_zero():
    metrics = ServiceMetrics()
    metrics.observe_report({"mapped_traces": 1, "stats": {}})
    snapshot = metrics.snapshot()
    assert snapshot["cycle_buckets"] == {}
    assert snapshot["fabric_utilization"]["placed_pe_ratio"] == 0.0
    text = render_prometheus(snapshot)
    assert 'repro_fabric_utilization{stat="placed_pe_ratio"} 0.0' in text


def test_observe_report_feeds_trace_fate_family():
    metrics = ServiceMetrics()
    metrics.observe_report({
        "decisions": {
            "trace_fates": {
                "identities": 4,
                "counts": {"offloaded": 2, "unmappable": 2},
                "unmappable_reasons": {"out_of_stripes": 1, "deadlock": 1},
                "conserved": True,
            },
        },
    })
    text = render_prometheus(metrics.snapshot())
    assert 'repro_trace_fate_total{fate="offloaded",reason=""} 2' in text
    assert ('repro_trace_fate_total{fate="unmappable",'
            'reason="out_of_stripes"} 1') in text
    assert ('repro_trace_fate_total{fate="unmappable",'
            'reason="deadlock"} 1') in text
    # Fates nobody observed still expose a zero sample.
    assert 'repro_trace_fate_total{fate="never_hot",reason=""} 0' in text


def test_trace_fate_family_zero_filled_without_decisions():
    text = render_prometheus(ServiceMetrics().snapshot())
    from repro.obs.decisions import TRACE_FATES
    for fate in TRACE_FATES:
        assert f'repro_trace_fate_total{{fate="{fate}",reason=""}} 0' in text


def test_worker_pool_gauges_render():
    histogram = LatencyHistogram()
    histogram.observe(0.2)
    histogram.observe(3.0)
    snapshot = dict(SNAPSHOT)
    snapshot["workers"] = {
        "kind": "process", "total": 4, "busy": 2, "batches_total": 7,
        "batch_seconds": histogram.summary(),
    }
    text = render_prometheus(snapshot)
    assert "# TYPE repro_workers_total gauge" in text
    assert "repro_workers_total 4" in text
    assert "repro_workers_busy 2" in text
    assert "repro_worker_batches_total 7" in text
    assert "# TYPE repro_worker_batch_seconds histogram" in text
    assert "repro_worker_batch_seconds_count 2" in text
    assert 'repro_worker_batch_seconds_bucket{le="+Inf"} 2' in text


def test_worker_pool_gauges_zero_filled_when_idle():
    text = render_prometheus(ServiceMetrics().snapshot())
    assert "repro_workers_total 0" in text
    assert "repro_workers_busy 0" in text
    assert "repro_worker_batches_total 0" in text
    assert "repro_worker_batch_seconds_count 0" in text
    assert 'repro_worker_batch_seconds_bucket{le="+Inf"} 0' in text
