"""Run-diff attribution: completeness, schema guards, rendering."""

import json

import pytest

from repro.harness.runner import simulation_report
from repro.obs.diffing import (
    DiffError,
    check_compatibility,
    diff_reports,
    load_report,
    render_diff,
    report_kind,
)

SCALE = 0.05


@pytest.fixture(scope="module")
def spec_report():
    return simulation_report("NW", SCALE)


@pytest.fixture(scope="module")
def nospec_report():
    return simulation_report("NW", SCALE, speculation=False)


def test_run_diff_attributes_full_delta(spec_report, nospec_report):
    diff = diff_reports(spec_report, nospec_report)
    assert diff["kind"] == "run"
    assert diff["warnings"] == []
    dyna = next(e for e in diff["entries"] if e["series"] == "dynaspam")
    assert dyna["delta_cycles"] == (
        nospec_report["dynaspam_cycles"] - spec_report["dynaspam_cycles"])
    # Conservation on both sides makes bucket deltas a complete
    # attribution (the >= 95% acceptance bar is met exactly, at 100%).
    assert sum(dyna["bucket_deltas"].values()) == dyna["delta_cycles"]
    assert dyna["residual"] == 0
    assert dyna["attributed_fraction"] >= 0.95


def test_diff_refuses_schema_mismatch(spec_report, nospec_report):
    old = dict(nospec_report, schema_version=1)
    with pytest.raises(DiffError, match="schema versions differ"):
        diff_reports(spec_report, old)
    forced = diff_reports(spec_report, old, force=True)
    assert any("schema versions differ" in w for w in forced["warnings"])


def test_diff_refuses_missing_schema(spec_report):
    bare = {k: v for k, v in spec_report.items() if k != "schema_version"}
    with pytest.raises(DiffError, match="no schema_version"):
        diff_reports(bare, bare)


def test_diff_warns_on_fingerprint_mismatch(spec_report, nospec_report):
    other = dict(nospec_report, code_fingerprint="f" * 64)
    diff = diff_reports(spec_report, other)
    assert any("fingerprints differ" in w for w in diff["warnings"])


def test_diff_refuses_different_benchmarks(spec_report):
    other = simulation_report("KM", SCALE)
    with pytest.raises(DiffError, match="different benchmarks"):
        diff_reports(spec_report, other)


def test_diff_refuses_mixed_report_kinds(spec_report):
    bench = {"schema_version": spec_report["schema_version"],
             "per_benchmark": {}, "accounting": {}}
    with pytest.raises(DiffError, match="cannot compare"):
        check_compatibility(spec_report, bench)


def test_bench_diff_and_geomean_warning(spec_report, nospec_report):
    def bench_doc(run, geomean):
        return {
            "schema_version": run["schema_version"],
            "code_fingerprint": run["code_fingerprint"],
            "per_benchmark": {"NW": {"spec": run["speedup"]}},
            "geomean": {"spec": geomean},
            "accounting": {
                "NW": {"spec": run["cycle_accounting"]["dynaspam"]},
            },
        }

    diff = diff_reports(bench_doc(spec_report, 1.10),
                        bench_doc(nospec_report, 0.95))
    assert diff["kind"] == "bench"
    (entry,) = diff["entries"]
    assert entry["benchmark"] == "NW"
    assert entry["residual"] == 0
    assert entry["attributed_fraction"] >= 0.95
    assert any("geomean[spec] moved" in w for w in diff["warnings"])


def test_bench_diff_requires_accounting_block():
    doc = {"schema_version": 2, "per_benchmark": {"NW": {}}}
    with pytest.raises(DiffError, match="no accounting block"):
        diff_reports(doc, doc)


def test_render_diff_is_readable(spec_report, nospec_report):
    diff = diff_reports(spec_report, nospec_report)
    text = render_diff(diff, label_a="a.json", label_b="b.json")
    assert "a.json vs b.json" in text
    assert "NW [dynaspam]" in text
    assert "residual +0" in text
    assert "100.0% of the delta attributed" in text


def test_load_report_errors(tmp_path):
    with pytest.raises(DiffError, match="cannot read"):
        load_report(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2, 3]")
    with pytest.raises(DiffError, match="not a JSON report object"):
        load_report(bad)
    good = tmp_path / "good.json"
    good.write_text(json.dumps({"benchmark": "KM"}))
    assert report_kind(load_report(good)) == "run"
    with pytest.raises(DiffError, match="unrecognized report shape"):
        report_kind({"something": 1})
