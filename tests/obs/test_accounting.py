"""Cycle-accounting conservation sweep and breakdown unit tests.

The conservation property — every bucket non-negative, buckets mutually
exclusive, and their sum exactly equal to the run's total cycles — must
hold on *every* suite benchmark in every execution mode, because
``repro diff`` relies on it to attribute cycle deltas completely.
"""

import dataclasses

import pytest

from repro.harness.experiments import (
    PerformanceResult,
    figure8_accounting,
    speedup_warnings,
)
from repro.harness.runner import run_baseline, run_dynaspam
from repro.obs.accounting import (
    BUCKET_FIELDS,
    BUCKET_HELP,
    BUCKETS,
    bucket_breakdown,
    check_conservation,
    render_breakdown,
    render_conservation,
    render_utilization,
)
from repro.ooo.stats import PipelineStats
from repro.workloads import ALL_ABBREVS

SCALE = 0.05

MODES = {
    "host": lambda abbrev: run_baseline(abbrev, SCALE).stats,
    "mapping": lambda abbrev: run_dynaspam(
        abbrev, SCALE, mode="mapping_only").stats,
    "spec": lambda abbrev: run_dynaspam(abbrev, SCALE).stats,
}


@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize("abbrev", ALL_ABBREVS)
def test_conservation_across_suite(abbrev, mode):
    stats = MODES[mode](abbrev)
    breakdown = bucket_breakdown(stats.as_dict())
    assert set(breakdown["buckets"]) == set(BUCKETS)
    assert all(v >= 0 for v in breakdown["buckets"].values()), breakdown
    assert sum(breakdown["buckets"].values()) == stats.cycles, breakdown
    assert breakdown["residual"] == 0
    assert breakdown["conserved"] is True
    assert check_conservation(stats.as_dict()) == []


def test_buckets_are_exclusive_stat_fields():
    # Exclusivity is structural: each bucket reads its own counter, and
    # every counter is a real PipelineStats field.
    fields = list(BUCKET_FIELDS.values())
    assert len(fields) == len(set(fields))
    stat_names = {f.name for f in dataclasses.fields(PipelineStats)}
    assert set(fields) <= stat_names
    assert set(BUCKET_HELP) == set(BUCKETS)


def test_breakdown_reports_residual_on_leaky_stats():
    stats = {"cycles": 100, "cycles_host": 60, "cycles_offload": 30}
    breakdown = bucket_breakdown(stats)
    assert breakdown["residual"] == 10
    assert breakdown["conserved"] is False
    problems = check_conservation(stats)
    assert any("residual 10" in p for p in problems)


def test_breakdown_flags_negative_bucket():
    stats = {"cycles": 10, "cycles_host": 15, "cycles_drain": -5}
    breakdown = bucket_breakdown(stats)
    assert breakdown["residual"] == 0
    assert breakdown["conserved"] is False
    assert any("negative" in p for p in check_conservation(stats))


def test_render_breakdown_has_delta_columns():
    host = bucket_breakdown({"cycles": 100, "cycles_host": 100})
    spec = bucket_breakdown(
        {"cycles": 80, "cycles_host": 50, "cycles_offload": 30})
    text = render_breakdown({"host": host, "spec": spec}, baseline="host")
    assert "d(spec-host)" in text
    assert "-20" in text          # total delta
    assert "TOTAL" in text
    conservation = render_conservation({"host": host, "spec": spec})
    assert conservation.count("PASS") == 2


def test_render_utilization_handles_idle_fabric():
    assert "no invocations" in render_utilization({})
    assert "no invocations" in render_utilization(
        {"total_invocations": 0})


def test_fabric_utilization_summary_is_sane():
    run = run_dynaspam("KM", SCALE)
    util = run.fabric_utilization
    assert util["total_invocations"] > 0
    assert 0.0 < util["placed_pe_ratio"] <= 1.0
    assert 0.0 < util["stripe_fill"] <= 1.0
    assert len(util["per_stripe"]) == util["num_stripes"]
    for entry in util["per_stripe"]:
        assert 0.0 <= entry["occupancy"] <= 1.0
    # Per-stripe placed counts must add up to the pool-wide numerator.
    placed = sum(e["placed_pe_invocations"] for e in util["per_stripe"])
    assert placed == pytest.approx(
        util["placed_pe_ratio"] * util["total_pes"]
        * util["total_invocations"])


def test_figure8_accounting_covers_suite_and_conserves():
    accounting, utilization = figure8_accounting(SCALE)
    assert set(accounting) == set(ALL_ABBREVS)
    assert set(utilization) == set(ALL_ABBREVS)
    for by_series in accounting.values():
        assert set(by_series) == {"baseline", "mapping", "no_spec", "spec"}
        for breakdown in by_series.values():
            assert breakdown["conserved"] is True


def test_speedup_warnings_flag_sub_unity_geomean():
    result = PerformanceResult(scale=1.0)
    result.speedups = {
        "AA": {"mapping": 0.9, "no_spec": 1.2, "spec": 1.5},
        "BB": {"mapping": 0.8, "no_spec": 1.1, "spec": 1.4},
    }
    warnings = speedup_warnings(result)
    assert len(warnings) == 1
    assert "'mapping'" in warnings[0]
    assert "BB" in warnings[0]          # names the worst benchmark
    result.speedups = {"AA": {"mapping": 1.0, "no_spec": 1.0, "spec": 1.0}}
    assert speedup_warnings(result) == []
