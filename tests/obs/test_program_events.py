"""Event-bus smoke over frontend-ingested corpus programs.

The lifecycle taxonomy was grown against the Table 3 kernels; ``PROG:*``
benchmarks arrive through a different front door (``repro.lang`` text IR
-> passes -> ISA lowering -> content-hash registration).  This smoke test
pins that the bus wiring, window terminal records, and fate conservation
hold on that path too — a frontend regression that stops emitting (or
double-emits) lifecycle events fails here.
"""

import pathlib

import pytest

from repro.harness.runner import program_simulation_report
from repro.obs import AggregateSink, TRACE_FATES

CORPUS = pathlib.Path(__file__).resolve().parents[2] / "corpus"

#: One branchy and one straight-line-loop program — cheap but they cover
#: both window close flavors (branch_limit and length_cap).
PROGRAMS = ("bfs_frontier.spam", "sum_loop.spam")


@pytest.mark.parametrize("name", PROGRAMS)
def test_corpus_program_emits_conserved_decisions(name):
    sink = AggregateSink()
    report = program_simulation_report(
        str(CORPUS / name), sink=sink, decisions=True,
    )
    assert report["program"]["abbrev"].startswith("PROG:")

    # The user sink rode the tee next to the decision fold: both saw the
    # same stream.
    assert sink.counts.get("tcache.window", 0) > 0
    assert sink.counts.get("tcache.detect", 0) > 0

    block = report["decisions"]
    fates = block["trace_fates"]
    assert fates["conserved"]
    assert fates["identities"] > 0
    assert sink.counts["tcache.window"] == block["windows"]["total"]
    assert set(fates["counts"]) == set(TRACE_FATES)
    assert block["attribution"]["attributed_fraction"] >= 0.95
