"""Unit tests for the event bus and sinks."""

import io
import json

import pytest

from repro.obs import (
    EVENT_TYPES,
    AggregateSink,
    Event,
    EventBus,
    EventSink,
    JsonlSink,
    MemorySink,
    NullSink,
    TeeSink,
)


def test_bus_stamps_sequence_and_clock():
    sink = MemorySink()
    ticks = iter(range(100, 200))
    bus = EventBus(sink, clock=lambda: next(ticks))
    bus.emit("tcache.detect", key=(4, (), 8), length=8)
    bus.emit("tcache.hot", cycle=777, key=(4, (), 8), count=3)
    first, second = list(sink)
    assert (first.seq, first.cycle) == (0, 100)
    assert second.seq == 1
    assert second.cycle == 777          # explicit cycle beats the clock
    assert bus.emitted == 2


def test_bus_rejects_unregistered_types():
    bus = EventBus(MemorySink())
    with pytest.raises(ValueError, match="unregistered"):
        bus.emit("tcache.bogus")


def test_every_sink_satisfies_the_protocol():
    for sink in (NullSink(), MemorySink(), JsonlSink(io.StringIO()),
                 AggregateSink(), TeeSink()):
        assert isinstance(sink, EventSink)
    assert NullSink().enabled is False
    assert MemorySink().enabled is True


def test_memory_sink_ring_drops_oldest():
    sink = MemorySink(capacity=3)
    bus = EventBus(sink)
    for index in range(5):
        bus.emit("pipeline.phase", cycle=index, phase="host")
    assert len(sink) == 3
    assert sink.dropped == 2
    assert [event.cycle for event in sink] == [2, 3, 4]


def test_jsonl_sink_round_trips_trace_keys(tmp_path):
    path = tmp_path / "events.jsonl"
    with JsonlSink(path) as sink:
        bus = EventBus(sink)
        bus.emit("map.done", cycle=9, key=(4, (True, False), 32),
                 placements=7)
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    doc = json.loads(lines[0])
    assert doc["type"] == "map.done"
    assert doc["cycle"] == 9
    assert doc["key"] == [4, [True, False], 32]
    assert doc["placements"] == 7


def test_aggregate_sink_counts_only():
    sink = AggregateSink()
    bus = EventBus(sink)
    for _ in range(4):
        bus.emit("ccache.hit", cycle=5, key=(1, (), 8))
    bus.emit("ccache.ready", cycle=8, key=(1, (), 8))
    assert sink.counts == {"ccache.hit": 4, "ccache.ready": 1}
    assert sink.total == 5
    assert sink.last_cycle == 8


def test_tee_sink_fans_out():
    memory, aggregate = MemorySink(), AggregateSink()
    bus = EventBus(TeeSink(memory, aggregate))
    bus.emit("fabric.reconfig", cycle=3, fabric=0,
             key=(2, (), 8), evicted=None, stripes=4)
    assert len(memory) == 1
    assert aggregate.counts == {"fabric.reconfig": 1}


def test_event_as_dict_flattens_payload():
    event = Event(seq=3, type="offload.commit", cycle=42,
                  data={"key": (1, (), 8), "instructions": 12})
    doc = event.as_dict()
    assert doc == {"seq": 3, "type": "offload.commit", "cycle": 42,
                   "key": (1, (), 8), "instructions": 12}


def test_registry_names_are_namespaced():
    for name in EVENT_TYPES:
        component, _, verb = name.partition(".")
        assert component and verb, name
