"""Host-runtime span tracer: nesting, correlation, merging, watchdog."""

import json
import threading
import time

import pytest

from repro.obs.logging import attach_log, close_log, detach_log, open_log
from repro.obs.runtime import (
    TRACER,
    SpanRecord,
    SpanTracer,
    SpanWatchdog,
    begin_worker,
    init_runtime_telemetry,
    shutdown_runtime_telemetry,
    worker_telemetry,
)


@pytest.fixture
def tracer():
    """A fresh private tracer (the global TRACER stays untouched)."""
    return SpanTracer()


@pytest.fixture
def global_tracer():
    """The process-wide TRACER, enabled for the test and fully reset after."""
    TRACER.reset()
    TRACER.enable("run-test")
    yield TRACER
    TRACER.disable()
    TRACER.reset()
    TRACER.run_id = None
    TRACER._listeners.clear()


def test_disabled_tracer_is_free(tracer):
    with tracer.span("sim.execute_spec", benchmark="KM") as span:
        assert span is None
    with tracer.bind(job_id="nope"):
        pass
    assert tracer.records() == []
    assert tracer.snapshot()["spans"] == []


def test_spans_nest_without_overlap_per_thread(tracer):
    tracer.enable("run-abc")
    with tracer.span("cli.run"):
        with tracer.span("sim.report", benchmark="KM"):
            with tracer.span("sim.baseline"):
                pass
            with tracer.span("sim.dynaspam"):
                pass
    records = tracer.records()
    # Close order: innermost first.
    assert [r.name for r in records] == [
        "sim.baseline", "sim.dynaspam", "sim.report", "cli.run",
    ]
    depths = {r.name: r.depth for r in records}
    assert depths == {"cli.run": 0, "sim.report": 1,
                      "sim.baseline": 2, "sim.dynaspam": 2}
    # Children lie strictly within their parent's [start, start+duration].
    by_name = {r.name: r for r in records}
    parent = by_name["sim.report"]
    for child in ("sim.baseline", "sim.dynaspam"):
        rec = by_name[child]
        assert rec.start >= parent.start
        assert rec.start + rec.duration <= parent.start + parent.duration
    # Every record carries the run id.
    assert all(r.attrs["run_id"] == "run-abc" for r in records)


def test_sibling_threads_keep_independent_stacks(tracer):
    tracer.enable()
    barrier = threading.Barrier(2)

    def work(label):
        with tracer.span("pool.worker_batch", label=label):
            barrier.wait(timeout=5)
            with tracer.span("sim.execute_spec", label=label):
                pass

    threads = [threading.Thread(target=work, args=(str(i),), name=f"w{i}")
               for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    records = tracer.records()
    assert len(records) == 4
    for record in records:
        # Depth is per-thread: the outer span is 0 on BOTH threads even
        # though they overlap in time.
        expected = 0 if record.name == "pool.worker_batch" else 1
        assert record.depth == expected, record
        assert record.thread in ("w0", "w1")


def test_bind_attaches_context_to_inner_spans(tracer):
    tracer.enable("run-ctx")
    with tracer.bind(job_id="job-1", run_key="abc123"):
        with tracer.span("service.execute_request", benchmark="KM"):
            pass
    with tracer.span("service.execute_batch"):
        pass
    first, second = tracer.records()
    assert first.attrs["job_id"] == "job-1"
    assert first.attrs["run_key"] == "abc123"
    assert first.attrs["benchmark"] == "KM"
    assert "job_id" not in second.attrs


def test_snapshot_merge_tags_process_and_fires_listeners(tracer):
    worker = SpanTracer()
    worker.enable("run-shared")
    with worker.span("sim.execute_spec", benchmark="BFS"):
        pass
    shipped = worker.snapshot()
    # Snapshots survive a JSON round trip (process boundary).
    shipped = json.loads(json.dumps(shipped))

    tracer.enable("run-shared")
    seen = []
    tracer.add_listener(seen.append)
    merged = tracer.merge(shipped, process="worker-1234")
    assert merged == 1
    (record,) = tracer.records()
    assert isinstance(record, SpanRecord)
    assert record.process == "worker-1234"
    assert record.attrs["run_id"] == "run-shared"
    assert seen == [record]
    assert tracer.merge(None, process="x") == 0
    assert tracer.merge({"spans": []}, process="x") == 0


def test_span_buffer_is_bounded(tracer):
    tracer.enable()
    import repro.obs.runtime as runtime

    original = runtime.MAX_BUFFERED_SPANS
    runtime.MAX_BUFFERED_SPANS = 4
    try:
        for _ in range(6):
            with tracer.span("cache.get"):
                pass
    finally:
        runtime.MAX_BUFFERED_SPANS = original
    assert len(tracer.records()) == 4
    assert tracer.dropped == 2
    assert tracer.snapshot()["dropped"] == 2


def test_watchdog_warns_once_with_thread_stack(tracer):
    tracer.enable()
    warnings = []
    dog = SpanWatchdog(
        tracer, threshold=0.01,
        on_warn=lambda message, details: warnings.append((message, details)),
    )
    with tracer.span("cli.bench"):
        with tracer.span("sim.execute_spec", benchmark="LD"):
            time.sleep(0.03)
            assert dog.check_once() == 2       # both open spans are slow
            assert dog.check_once() == 0       # but each warns only once
    message, details = warnings[0]
    assert "slow span" in message
    assert details["threshold_seconds"] == 0.01
    assert details["stack"] == ["cli.bench", "sim.execute_spec"]
    assert {d["span"] for _, d in warnings} == \
        {"cli.bench", "sim.execute_spec"}
    # Closed spans never re-warn.
    assert dog.check_once() == 0


def test_watchdog_rejects_bad_threshold(tracer):
    with pytest.raises(ValueError):
        SpanWatchdog(tracer, threshold=0.0)


def test_worker_handoff_reenables_with_parent_run_id(global_tracer):
    with global_tracer.span("pool.execute_runs"):
        pass
    telemetry = worker_telemetry()
    assert telemetry == {"enabled": True, "run_id": "run-test"}
    # Simulate the forked child: inherited spans+listeners must be shed.
    global_tracer.add_listener(lambda record: None)
    begin_worker(telemetry)
    assert global_tracer.enabled
    assert global_tracer.run_id == "run-test"
    assert global_tracer.records() == []
    assert global_tracer._listeners == []

    begin_worker({"enabled": False, "run_id": None})
    assert not global_tracer.enabled


def test_init_runtime_telemetry_is_off_without_any_knob(monkeypatch):
    monkeypatch.delenv("REPRO_LOG", raising=False)
    monkeypatch.delenv("REPRO_SLOW_SPAN_SECONDS", raising=False)
    was_enabled = TRACER.enabled
    assert init_runtime_telemetry("run") is None
    assert TRACER.enabled == was_enabled


def test_init_runtime_telemetry_writes_jsonl(tmp_path, monkeypatch):
    log_path = tmp_path / "runs.jsonl"
    monkeypatch.setenv("REPRO_LOG", str(log_path))
    run_id = init_runtime_telemetry(
        "run", argv=["run", "KM", "--scale", "0.05"]
    )
    try:
        assert run_id and run_id.startswith("run-")
        with TRACER.span("sim.execute_spec", benchmark="KM"):
            pass
    finally:
        shutdown_runtime_telemetry()
        TRACER.disable()
        TRACER.reset()
        TRACER.run_id = None
        TRACER._listeners.clear()
    lines = [json.loads(line) for line in log_path.read_text().splitlines()]
    assert [rec["kind"] for rec in lines] == ["start", "span"]
    start, span = lines
    assert start["run_id"] == run_id
    assert start["command"] == "run"
    assert start["argv"] == ["run", "KM", "--scale", "0.05"]
    assert span["name"] == "sim.execute_spec"
    assert span["attrs"]["run_id"] == run_id
    assert span["attrs"]["benchmark"] == "KM"
    assert span["duration"] >= 0
    # Shutdown detached the log listener from the tracer.
    assert TRACER._listeners == []


def test_attach_detach_log_is_idempotent(tmp_path, tracer):
    tracer.enable()
    log = open_log(str(tmp_path / "l.jsonl"))
    try:
        attach_log(tracer, log)
        attach_log(tracer, log)
        assert len(tracer._listeners) == 1
        detach_log(tracer, log)
        detach_log(tracer, log)
        assert tracer._listeners == []
    finally:
        close_log()
