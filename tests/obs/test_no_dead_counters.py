"""No dead counters: every stat field and event type fires somewhere.

Runs the whole benchmark suite at smoke scale (plus targeted runs with
configs that force the rare paths: periodic T-Cache clears, config-cache
eviction, integer division) and asserts the union of the results ticks

* every ``PipelineStats`` field, and
* every registered lifecycle event type.

A counter or event nobody can trigger is dead weight that silently rots;
this test forces each addition to arrive with a scenario exercising it.
"""

import dataclasses

from repro.core import DynaSpAM, DynaSpAMConfig
from repro.engine import use_fastpath, use_memo
from repro.harness.runner import run_dynaspam
from repro.isa.builder import ProgramBuilder
from repro.isa.executor import FunctionalExecutor
from repro.isa.opcodes import OpClass, Opcode
from repro.obs import EVENT_TYPES, AggregateSink, EventBus
from repro.ooo.stats import PipelineStats
from repro.workloads import ALL_ABBREVS

SCALE = 0.05


def _int_div_run(sink):
    """A synthetic hot division loop: no suite kernel uses integer DIV."""
    b = ProgramBuilder("divloop")
    b.li("r1", 4000)
    b.li("r2", 3)
    with b.countdown("loop", "r3", 64):
        b.div("r4", "r1", "r2")
        b.rem("r5", "r1", "r2")
        b.add("r6", "r4", "r5")
    b.halt()
    program = b.build()
    trace = FunctionalExecutor().run(program).trace
    machine = DynaSpAM(
        ds_config=DynaSpAMConfig(hot_threshold=2, ready_threshold=2),
        sink=sink,
    )
    return machine.run(trace, program)


def _memo_unsupported_fire(sink):
    """A hand-made invocation context missing its memory address: the memo
    tier cannot build a key (``fabric.memo_unsupported``), falls back for
    good, and the engine walk reproduces the context's own error.  No suite
    kernel can reach this — the framework always populates ``mem_addrs``.
    """
    import repro.fabric.memo as memo_mod
    from repro.fabric.fabric import InvocationContext, SpatialFabric
    from tests.fabric.test_execution import (
        configure, livein, make_config, placed,
    )

    cfg = make_config([
        placed(0, Opcode.LW, OpClass.LOAD, 0, [livein("r1")],
               roles=["base"], pool="ldst", dest="r2", mem_index=0,
               pc=0x40),
    ], live_ins=["r1"], live_outs={"r2": 0}, mem=[(0x40, "load")])
    cfg._memo_probes = memo_mod.MEMO_PROBE_WARMUP  # skip the warm-up bypass
    fabric = configure(SpatialFabric(bus=EventBus(sink)), cfg)
    broken = InvocationContext(
        start_lower_bound=0,
        live_in_ready={},
        mem_addrs={},               # the load's address is missing
        dcache_access=lambda addr: 2,
        speculative=True,
    )
    with use_fastpath(False), use_memo(True):
        try:
            fabric.execute(cfg, broken)
        except KeyError:
            pass


def test_every_stat_and_event_fires_across_the_suite():
    field_names = {f.name for f in dataclasses.fields(PipelineStats)}
    ticked: set[str] = set()
    fired: set[str] = set()

    def absorb(result, sink):
        ticked.update(
            name for name, value in result.stats.as_dict().items() if value
        )
        fired.update(sink.counts)

    for abbrev in ALL_ABBREVS:
        sink = AggregateSink()
        absorb(run_dynaspam(abbrev, SCALE, sink=sink), sink)

    # Forced rare paths -----------------------------------------------
    # Periodic T-Cache clear: the interval counts *observed windows*
    # (offloaded invocations bypass the commit stream), so it must sit
    # far below the handful of windows a smoke run commits on the host.
    sink = AggregateSink()
    absorb(
        run_dynaspam(
            "KM", SCALE, sink=sink,
            config=DynaSpAMConfig(tcache_clear_interval=20),
        ),
        sink,
    )
    # Config-cache eviction: a trace-diverse benchmark with 2 entries.
    sink = AggregateSink()
    absorb(
        run_dynaspam(
            "BFS", SCALE, sink=sink,
            config=DynaSpAMConfig(config_cache_entries=2),
        ),
        sink,
    )
    # Integer division (synthetic; see _int_div_run).
    sink = AggregateSink()
    absorb(_int_div_run(sink), sink)
    # Unkeyable invocation context (synthetic; see _memo_unsupported_fire).
    sink = AggregateSink()
    _memo_unsupported_fire(sink)
    fired.update(sink.counts)

    dead_stats = field_names - ticked
    assert not dead_stats, f"stats fields never ticked: {sorted(dead_stats)}"
    dead_events = set(EVENT_TYPES) - fired
    assert not dead_events, f"event types never fired: {sorted(dead_events)}"
