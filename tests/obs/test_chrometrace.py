"""Chrome trace-event export: format validity and bit-identical runs."""

import json

from repro.harness.runner import run_dynaspam, simulation_report
from repro.obs import MemorySink, build_chrome_trace, write_chrome_trace
from repro.obs.runtime import SpanRecord

REQUIRED_EVENT_KEYS = {"name", "ph", "pid", "tid"}


def _trace_doc(abbrev="KM", scale=0.05):
    sink = MemorySink()
    result = run_dynaspam(abbrev, scale, sink=sink)
    doc = build_chrome_trace(sink.events, end_cycle=result.cycles)
    return doc, sink, result.cycles


def test_export_is_valid_chrome_trace_json(tmp_path):
    doc, sink, cycles = _trace_doc()
    # Golden structural contract of the trace-event format.
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = doc["traceEvents"]
    assert events, "empty export"
    for event in events:
        assert REQUIRED_EVENT_KEYS <= set(event), event
        assert event["ph"] in {"X", "i", "M"}, event
        if event["ph"] != "M":
            assert isinstance(event["ts"], int) and event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 1
    # The file writer produces the same document, parseable from disk.
    path = tmp_path / "out.trace.json"
    count = write_chrome_trace(sink.events, path, end_cycle=cycles)
    assert count == len(events)
    assert json.loads(path.read_text()) == doc


def test_timestamps_are_monotonic_per_track():
    doc, _, _ = _trace_doc()
    by_tid = {}
    for event in doc["traceEvents"]:
        if event["ph"] == "M":
            continue
        by_tid.setdefault(event["tid"], []).append(event["ts"])
    assert set(by_tid) >= {1, 3, 4, 5}, "expected tracks missing"
    for tid, stamps in by_tid.items():
        assert stamps == sorted(stamps), f"track {tid} not monotonic"


def test_tracks_carry_the_lifecycle():
    doc, _, _ = _trace_doc()
    names = {e["name"] for e in doc["traceEvents"]}
    meta = {e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"}
    assert meta == {"pipeline phase", "front-end stalls", "fabric mapping",
                    "fat instructions", "lifecycle"}
    assert "host" in names and "mapping" in names
    assert any(name.startswith("map 0x") for name in names)
    assert any(name.startswith("fat 0x") for name in names)
    assert any(name.startswith("tcache.hot") for name in names)


def test_fat_spans_pair_dispatch_with_commit():
    doc, sink, cycles = _trace_doc()
    commits = sum(1 for e in sink if e.type == "offload.commit")
    fat_spans = [e for e in doc["traceEvents"]
                 if e["tid"] == 4 and e["ph"] == "X"]
    committed = [e for e in fat_spans
                 if e["args"].get("outcome") == "commit"]
    assert len(committed) == commits
    for span in committed:
        assert "complete" in span["args"]
        assert span["args"]["instructions"] >= 1


def _host_spans():
    """A deterministic wall-clock span set: a nested main-thread pair
    plus one span from a pool worker process."""
    return [
        SpanRecord(name="cli.run", start=0.0, duration=0.5,
                   wall_start=1000.0, thread="MainThread", depth=0,
                   attrs={"run_id": "run-golden"}),
        SpanRecord(name="sim.execute_spec", start=0.1, duration=0.3,
                   wall_start=1000.1, thread="MainThread", depth=1,
                   attrs={"run_id": "run-golden", "benchmark": "KM"}),
        SpanRecord(name="pool.worker_batch", start=0.05, duration=0.2,
                   wall_start=1000.05, thread="MainThread", depth=0,
                   process="worker-41", attrs={"run_id": "run-golden"}),
    ]


def test_host_track_is_a_second_wall_clock_process():
    """Golden contract: host spans land on pid 2 with per-(process,
    thread) tracks, microsecond timestamps, and monotonic nesting —
    while the simulated-cycle tracks stay bit-identical."""
    sink = MemorySink()
    result = run_dynaspam("KM", 0.05, sink=sink)
    plain = build_chrome_trace(sink.events, end_cycle=result.cycles)
    combined = build_chrome_trace(
        sink.events, end_cycle=result.cycles, host_spans=_host_spans()
    )

    # The simulated process (pid 1) is untouched, event for event.
    sim_plain = [e for e in plain["traceEvents"] if e["pid"] == 1]
    sim_combined = [e for e in combined["traceEvents"] if e["pid"] == 1]
    assert sim_combined == sim_plain

    host = [e for e in combined["traceEvents"] if e["pid"] == 2]
    meta = {e["name"]: e for e in host if e["ph"] == "M"}
    spans = [e for e in host if e["ph"] == "X"]
    assert meta["process_name"]["args"]["name"] == \
        "host runtime (wall clock)"
    track_names = {e["args"]["name"] for e in host
                   if e["ph"] == "M" and e["name"] == "thread_name"}
    assert track_names == {"main / MainThread", "worker-41 / MainThread"}

    # One tid per (process, thread); worker spans never share a track
    # with main-process spans.
    by_track = {}
    for span in spans:
        by_track.setdefault(span["tid"], []).append(span)
    assert len(by_track) == 2
    # Timestamps are µs relative to the earliest host span, monotonic
    # per track, and nesting holds: the child lies within its parent.
    for track in by_track.values():
        stamps = [s["ts"] for s in track]
        assert stamps == sorted(stamps)
        assert all(isinstance(s["ts"], int) and s["ts"] >= 0
                   for s in track)
    outer = next(s for s in spans if s["name"] == "cli.run")
    inner = next(s for s in spans if s["name"] == "sim.execute_spec")
    assert outer["tid"] == inner["tid"]
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
    assert outer["dur"] == 500_000 and inner["dur"] == 300_000
    assert inner["args"]["benchmark"] == "KM"
    assert all(s["args"]["run_id"] == "run-golden" for s in spans)


def test_no_host_spans_means_no_second_process(tmp_path):
    sink = MemorySink()
    result = run_dynaspam("KM", 0.05, sink=sink)
    plain = build_chrome_trace(sink.events, end_cycle=result.cycles)
    explicit = build_chrome_trace(
        sink.events, end_cycle=result.cycles, host_spans=[]
    )
    assert explicit == plain
    path = tmp_path / "host.trace.json"
    count = write_chrome_trace(
        sink.events, path, end_cycle=result.cycles,
        host_spans=_host_spans(),
    )
    doc = json.loads(path.read_text())
    assert count == len(doc["traceEvents"])
    assert {e["pid"] for e in doc["traceEvents"]} == {1, 2}


def test_tracing_leaves_the_report_byte_identical():
    plain = simulation_report("KM", 0.05)
    traced = simulation_report("KM", 0.05, sink=MemorySink())
    assert json.dumps(traced, sort_keys=True) == \
        json.dumps(plain, sort_keys=True)
