"""Chrome trace-event export: format validity and bit-identical runs."""

import json

from repro.harness.runner import run_dynaspam, simulation_report
from repro.obs import MemorySink, build_chrome_trace, write_chrome_trace

REQUIRED_EVENT_KEYS = {"name", "ph", "pid", "tid"}


def _trace_doc(abbrev="KM", scale=0.05):
    sink = MemorySink()
    result = run_dynaspam(abbrev, scale, sink=sink)
    doc = build_chrome_trace(sink.events, end_cycle=result.cycles)
    return doc, sink, result.cycles


def test_export_is_valid_chrome_trace_json(tmp_path):
    doc, sink, cycles = _trace_doc()
    # Golden structural contract of the trace-event format.
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = doc["traceEvents"]
    assert events, "empty export"
    for event in events:
        assert REQUIRED_EVENT_KEYS <= set(event), event
        assert event["ph"] in {"X", "i", "M"}, event
        if event["ph"] != "M":
            assert isinstance(event["ts"], int) and event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 1
    # The file writer produces the same document, parseable from disk.
    path = tmp_path / "out.trace.json"
    count = write_chrome_trace(sink.events, path, end_cycle=cycles)
    assert count == len(events)
    assert json.loads(path.read_text()) == doc


def test_timestamps_are_monotonic_per_track():
    doc, _, _ = _trace_doc()
    by_tid = {}
    for event in doc["traceEvents"]:
        if event["ph"] == "M":
            continue
        by_tid.setdefault(event["tid"], []).append(event["ts"])
    assert set(by_tid) >= {1, 3, 4, 5}, "expected tracks missing"
    for tid, stamps in by_tid.items():
        assert stamps == sorted(stamps), f"track {tid} not monotonic"


def test_tracks_carry_the_lifecycle():
    doc, _, _ = _trace_doc()
    names = {e["name"] for e in doc["traceEvents"]}
    meta = {e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"}
    assert meta == {"pipeline phase", "front-end stalls", "fabric mapping",
                    "fat instructions", "lifecycle"}
    assert "host" in names and "mapping" in names
    assert any(name.startswith("map 0x") for name in names)
    assert any(name.startswith("fat 0x") for name in names)
    assert any(name.startswith("tcache.hot") for name in names)


def test_fat_spans_pair_dispatch_with_commit():
    doc, sink, cycles = _trace_doc()
    commits = sum(1 for e in sink if e.type == "offload.commit")
    fat_spans = [e for e in doc["traceEvents"]
                 if e["tid"] == 4 and e["ph"] == "X"]
    committed = [e for e in fat_spans
                 if e["args"].get("outcome") == "commit"]
    assert len(committed) == commits
    for span in committed:
        assert "complete" in span["args"]
        assert span["args"]["instructions"] >= 1


def test_tracing_leaves_the_report_byte_identical():
    plain = simulation_report("KM", 0.05)
    traced = simulation_report("KM", 0.05, sink=MemorySink())
    assert json.dumps(traced, sort_keys=True) == \
        json.dumps(plain, sort_keys=True)
