"""Dashboard renderer: well-formed, self-contained, data-complete."""

from html.parser import HTMLParser

import pytest

from repro.obs.accounting import BUCKETS, bucket_breakdown
from repro.obs.dashboard import render_dashboard, write_dashboard


class _Balance(HTMLParser):
    VOID = {"meta", "br", "hr", "img", "input", "link"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.errors = []
        self.counts = {}

    def handle_starttag(self, tag, attrs):
        self.counts[tag] = self.counts.get(tag, 0) + 1
        if tag not in self.VOID:
            self.stack.append(tag)
        for key, value in attrs:
            if key in ("width", "height") and value:
                assert float(value) >= 0, f"negative {key} on <{tag}>"

    def handle_endtag(self, tag):
        if self.stack and self.stack[-1] == tag:
            self.stack.pop()
        elif tag not in self.VOID:
            self.errors.append(tag)


@pytest.fixture
def report():
    def breakdown(host, offload=0, squash=0):
        return bucket_breakdown({
            "cycles": host + offload + squash,
            "cycles_host": host,
            "cycles_offload": offload,
            "cycles_squash_branch": squash,
        })

    return {
        "schema_version": 2,
        "code_fingerprint": "ab" * 32,
        "scale": 0.05,
        "wall_clock_seconds": 1.25,
        "geomean": {"mapping": 0.96, "no_spec": 1.01, "spec": 1.10},
        "warnings": ["geomean speedup for 'mapping' is 0.960x (< 1.0x)"],
        "per_benchmark": {"KM": {"mapping": 0.98, "no_spec": 1.0,
                                 "spec": 1.06}},
        "accounting": {
            "KM": {
                "baseline": breakdown(1000, squash=500),
                "mapping": breakdown(1020, squash=510),
                "no_spec": breakdown(400, offload=700, squash=200),
                "spec": breakdown(300, offload=600, squash=100),
            },
        },
        "fabric_utilization": {
            "KM": {
                "num_fabrics": 1,
                "num_stripes": 2,
                "total_pes": 24,
                "total_invocations": 10,
                "reconfigurations": 3,
                "placed_pe_ratio": 0.25,
                "stripe_fill": 0.5,
                "per_stripe": [
                    {"stripe": 0, "pes": 12, "placed_pe_invocations": 40,
                     "invocations": 10, "occupancy": 0.33},
                    {"stripe": 1, "pes": 12, "placed_pe_invocations": 20,
                     "invocations": 10, "occupancy": 0.17},
                ],
                "reuse_distance": {"count": 2, "mean": 1.5, "max": 2},
            },
        },
    }


def test_dashboard_is_well_formed_html(report):
    doc = render_dashboard(report)
    parser = _Balance()
    parser.feed(doc)
    assert parser.stack == [], f"unclosed tags: {parser.stack}"
    assert parser.errors == [], f"mismatched tags: {parser.errors}"


def test_dashboard_is_self_contained(report):
    doc = render_dashboard(report)
    assert "<script" not in doc
    assert "http://" not in doc and "https://" not in doc
    assert "@import" not in doc


def test_dashboard_carries_every_value(report):
    doc = render_dashboard(report)
    for bucket in BUCKETS:
        assert f"--bucket-{bucket}" in doc       # legend + segments
    assert doc.count('class="swatch"') == len(BUCKETS)
    assert "1.10×" in doc                        # geomean tile
    assert "geomean speedup for" in doc          # warnings surfaced
    assert "KM" in doc
    # Table view backs the charts (the light-palette contrast relief).
    assert "<table>" in doc
    assert "1,500" in doc                        # baseline total in table
    # Heatmap tooltips carry exact occupancy.
    assert "occupancy 33.0%" in doc


def test_dashboard_tolerates_empty_report():
    doc = render_dashboard({"schema_version": 2})
    assert "no accounting data" in doc
    assert "no fabric-utilization data" in doc


def test_write_dashboard_creates_index(tmp_path, report):
    path = write_dashboard(report, tmp_path / "dash")
    assert path == tmp_path / "dash" / "index.html"
    assert path.read_text().startswith("<!DOCTYPE html>")


def test_dashboard_renders_fate_panel_when_decisions_present(report):
    from repro.obs.dashboard import FATE_COLORS
    from repro.obs.decisions import TRACE_FATES

    counts = dict.fromkeys(TRACE_FATES, 0)
    counts.update({"offloaded": 1, "unmappable": 1, "never_hot": 1})
    report["decisions"] = {
        "KM": {
            "windows": {"total": 5, "by_reason": {"branch_limit": 5}},
            "trace_fates": {
                "identities": 3,
                "counts": counts,
                "unmappable_reasons": {"out_of_stripes": 1},
                "conserved": True,
            },
        },
    }
    doc = render_dashboard(report)
    assert "Trace fates" in doc
    for fate in TRACE_FATES:
        assert f"--fate-{fate}" in doc
    # Legend: bucket swatches + fate swatches.
    assert doc.count('class="swatch"') == len(BUCKETS) + len(FATE_COLORS)
    # Tooltip carries exact identity counts and shares.
    assert "KM — offloaded: 1 traces (33.3%)" in doc
    parser = _Balance()
    parser.feed(doc)
    assert parser.stack == [] and parser.errors == []
    # Without decisions the section stays out entirely.
    del report["decisions"]
    assert "Trace fates" not in render_dashboard(report)
