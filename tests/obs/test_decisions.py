"""Decision records: fold units, fate conservation, lost-cycles attribution.

The tentpole contract (ISSUE 8): every trace-window candidate produces
exactly one terminal ``tcache.window`` record, every trace identity lands
in exactly one :data:`~repro.obs.decisions.TRACE_FATES` fate, and the
``repro why`` join attributes >= 95% of non-host cycles to named decision
records.  The sweep below checks conservation on the whole suite across
the three simulation modes, so a new lifecycle path that leaks identities
out of the fate lattice fails here, not in a downstream dashboard.
"""

import pytest

from repro.core.mapper import MAP_FAIL_REASONS, MappingFailure
from repro.core.tcache import WINDOW_CLOSE_REASONS
from repro.harness.runner import simulation_report
from repro.obs import DecisionSink, TRACE_FATES, decisions_from_events
from repro.obs.events import Event
from repro.workloads import ALL_ABBREVS

SCALE = 0.05

KEY_A = (0x40, (True,), 32)
KEY_B = (0x80, (), 16)


def _events(*specs):
    """Build a synthetic stream: each spec is ``(type, data)``."""
    return [
        Event(seq, etype, seq, data) for seq, (etype, data) in enumerate(specs)
    ]


# ---------------------------------------------------------------------------
# Fold units
# ---------------------------------------------------------------------------
def test_window_records_fold_by_reason_and_identity():
    sink = decisions_from_events(_events(
        ("tcache.window", {"key": KEY_A, "reason": "branch_limit",
                           "hot": False}),
        ("tcache.window", {"key": KEY_A, "reason": "branch_limit",
                           "hot": True}),
        ("tcache.window", {"key": KEY_B, "reason": "length_cap",
                           "hot": False}),
    ))
    block = sink.as_dict()
    assert block["windows"]["total"] == 3
    assert block["windows"]["by_reason"] == {
        "branch_limit": 2, "length_cap": 1,
    }
    assert block["trace_fates"]["identities"] == 2
    # KEY_A went hot on its second window; KEY_B never did.
    assert sink.trace_fates() == {
        KEY_A: "hot_never_mapped", KEY_B: "never_hot",
    }


def test_fate_precedence_is_exclusive():
    """One identity walking the whole lifecycle gets the topmost fate."""
    sink = decisions_from_events(_events(
        ("tcache.window", {"key": KEY_A, "reason": "smart_close",
                           "hot": True}),
        ("map.start", {"key": KEY_A}),
        ("map.done", {"key": KEY_A}),
        ("ccache.ready", {"key": KEY_A}),
        ("offload.commit", {"key": KEY_A}),
        ("offload.squash", {"key": KEY_A, "cause": "branch",
                            "branch_pc": 0x50}),
    ))
    assert sink.trace_fates() == {KEY_A: "offloaded"}
    counts = sink.fate_counts()
    assert sum(counts.values()) == 1
    assert set(counts) == set(TRACE_FATES)


@pytest.mark.parametrize("events, fate", [
    ([("tcache.window", {"key": KEY_A, "reason": "length_cap",
                         "hot": False})], "never_hot"),
    ([("tcache.hot", {"key": KEY_A})], "hot_never_mapped"),
    ([("tcache.hot", {"key": KEY_A}),
      ("map.abort", {"key": KEY_A, "actual": KEY_B})], "map_aborted"),
    ([("map.start", {"key": KEY_A}),
      ("map.fail", {"key": KEY_A, "reason": "out_of_stripes"})],
     "unmappable"),
    ([("map.start", {"key": KEY_A}), ("map.done", {"key": KEY_A})],
     "mapped_never_ready"),
    ([("map.done", {"key": KEY_A}), ("ccache.ready", {"key": KEY_A})],
     "ready_never_offloaded"),
    ([("ccache.ready", {"key": KEY_A}),
      ("offload.commit", {"key": KEY_A})], "offloaded"),
])
def test_single_identity_fates(events, fate):
    sink = decisions_from_events(_events(*events))
    assert sink.trace_fates() == {KEY_A: fate}


def test_squash_offender_tallies():
    sink = decisions_from_events(_events(
        ("offload.squash", {"key": KEY_A, "cause": "branch",
                            "branch_pc": 0x50}),
        ("offload.squash", {"key": KEY_A, "cause": "branch",
                            "branch_pc": 0x50}),
        ("offload.squash", {"key": KEY_A, "cause": "memory",
                            "load_pc": 0x60, "store_pc": 0x64}),
        ("offload.defer", {"key": KEY_A}),
        ("offload.batch", {"key": KEY_A, "invocations": 5}),
    ))
    block = sink.as_dict()
    inv = block["invocations"]
    assert inv["squashed_branch"] == 2
    assert inv["squashed_memory"] == 1
    assert inv["deferred"] == 1
    assert inv["squash_branch_pcs"] == [{"pc": "0x50", "count": 2}]
    assert inv["squash_memory_pairs"] == [
        {"load_pc": "0x60", "store_pc": "0x64", "count": 1}
    ]
    assert block["engine_tier"]["batched_invocations"] == 4


def test_unknown_event_types_are_ignored():
    sink = DecisionSink()
    sink.emit(Event(0, "pipeline.phase", 0, {"phase": "host"}))
    assert sink.as_dict()["trace_fates"]["identities"] == 0


# ---------------------------------------------------------------------------
# Closed vocabularies
# ---------------------------------------------------------------------------
def test_mapping_failure_reason_must_be_registered():
    exc = MappingFailure("deadlock", "deadlock: no instruction is ready")
    assert exc.reason == "deadlock"
    assert str(exc) == "deadlock: no instruction is ready"
    with pytest.raises(ValueError, match="unregistered"):
        MappingFailure("ran_out_of_luck", "free-text reasons are banned")


def test_mapping_failure_detail_defaults_to_reason():
    exc = MappingFailure("deadlock")
    assert str(exc) == "deadlock"


# ---------------------------------------------------------------------------
# Whole-suite conservation sweep
# ---------------------------------------------------------------------------
MODES = [
    ("mapping_only", True),
    ("accelerate", True),
    ("accelerate", False),
]


@pytest.mark.parametrize("mode, speculation", MODES)
def test_fate_conservation_across_the_suite(mode, speculation):
    for abbrev in ALL_ABBREVS:
        report = simulation_report(
            abbrev, SCALE, mode=mode, speculation=speculation,
            decisions=True,
        )
        block = report["decisions"]
        fates = block["trace_fates"]
        label = f"{abbrev} {mode} spec={speculation}"
        assert fates["conserved"], label
        assert sum(fates["counts"].values()) == fates["identities"], label
        assert set(fates["counts"]) == set(TRACE_FATES), label
        for reason in block["windows"]["by_reason"]:
            assert reason in WINDOW_CLOSE_REASONS, label
        for reason in fates["unmappable_reasons"]:
            assert reason in MAP_FAIL_REASONS, label
        # Every identity saw at least one closed window or a direct
        # lifecycle event; window totals cover all identity windows.
        assert block["windows"]["total"] >= fates["identities"], label


def test_attribution_covers_non_host_cycles_when_accelerating():
    """The headline ``repro why`` gate: >= 95% of non-host cycles joined
    to at least one named decision record (cycle-weighted)."""
    for abbrev in ALL_ABBREVS:
        report = simulation_report(abbrev, SCALE, decisions=True)
        attribution = report["decisions"]["attribution"]
        assert attribution["attributed_fraction"] >= 0.95, (
            f"{abbrev}: {attribution}"
        )


def test_decisions_block_is_strictly_additive():
    """Same report with and without decisions — the block is the only
    difference (the bit-identity contract for the opt-in path)."""
    plain = simulation_report("KM", SCALE)
    with_decisions = dict(simulation_report("KM", SCALE, decisions=True))
    block = with_decisions.pop("decisions")
    assert with_decisions == plain
    assert block["trace_fates"]["conserved"]
