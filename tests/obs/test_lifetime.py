"""Lifetime reports: folding the event stream into per-trace records."""

from repro.harness.runner import run_dynaspam
from repro.obs import (
    MemorySink,
    build_lifetime_report,
    format_trace_id,
    render_lifetime_report,
    render_trace_detail,
)


def _traced_run(abbrev="KM", scale=0.05):
    sink = MemorySink()
    result = run_dynaspam(abbrev, scale, sink=sink)
    return result, sink


def test_format_trace_id():
    assert format_trace_id((0x30, (True, False, True), 27)) == "0x30:TNT:27"
    assert format_trace_id((4, (), 32)) == "0x4:-:32"


def test_lifetimes_are_ordered_and_consistent():
    result, sink = _traced_run()
    report = build_lifetime_report(sink.events)
    assert report.events == len(sink)
    assert report.lifetimes, "no traces detected"
    for trace in report.lifetimes.values():
        # Milestones must be reached in lifecycle order.
        stamps = [cycle for cycle, _ in trace.timeline()]
        assert stamps == sorted(stamps), trace.trace_id
        if trace.offloads:
            assert trace.fate == "offloaded"
            assert trace.mapped is not None
            assert trace.ready is not None
    # The fold's offload totals agree with the simulator's own accounting.
    offloaded = [t for t in report.lifetimes.values() if t.offloads]
    assert len(offloaded) == result.offloaded_traces
    assert sum(t.offloads for t in offloaded) == \
        result.stats.fabric_invocations


def test_fate_counts_partition_the_traces():
    _, sink = _traced_run()
    report = build_lifetime_report(sink.events)
    fates = report.counts()
    assert sum(fates.values()) == len(report.lifetimes)


def test_ranked_puts_heaviest_offloader_first():
    _, sink = _traced_run()
    report = build_lifetime_report(sink.events)
    ranked = report.ranked()
    assert ranked[0].offloads == max(
        t.offloads for t in report.lifetimes.values()
    )


def test_render_table_and_summary():
    _, sink = _traced_run()
    report = build_lifetime_report(sink.events)
    text = render_lifetime_report(report, top=5)
    assert "traces detected" in text
    assert "offloaded" in text
    # top=5 caps the table body.
    body = [line for line in text.splitlines() if line.startswith("0x")]
    assert 0 < len(body) <= 5


def test_render_trace_detail():
    _, sink = _traced_run()
    report = build_lifetime_report(sink.events)
    best = report.ranked()[0]
    detail = render_trace_detail(report, sink.events, best.trace_id)
    assert detail is not None
    assert best.trace_id in detail
    assert "timeline:" in detail
    assert "first offload" in detail
    assert render_trace_detail(report, sink.events, "0xdead:-:1") is None
