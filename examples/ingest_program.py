"""Frontend walkthrough: from a `.spam` source program to a DynaSpAM run.

Writes a small reduction kernel in the `repro.lang` text IR, interprets
it (the reference semantics), optimizes it with the lvn/dce/licm
pipeline, lowers it onto the simulator ISA, and runs the lowered program
through the baseline out-of-order core and the DynaSpAM machine —
demonstrating the differential contract along the way: the interpreter,
the optimized interpreter, and the simulated architectural output all
agree word for word.

Run:  python examples/ingest_program.py
"""

from repro.core import DynaSpAM
from repro.lang import (
    execute_lowered,
    interpret,
    load_module,
    lower_module,
    output_of,
    run_passes,
)
from repro.ooo import OOOPipeline

SOURCE = """\
# Weighted sum with a loop-invariant weight recomputation (licm fodder)
# and a redundant address-style recompute (lvn fodder).
@main {
  zero: int = const 0;
  one: int = const 1;
  four: int = const 4;
  n: int = const 200;
  acc: int = id zero;
  i: int = id zero;
.loop:
  c: bool = lt i n;
  br c .body .done;
.body:
  w: int = mul four four;     # invariant: hoisted by licm
  w: int = mul four four;     # redundant: deleted by lvn
  t: int = mul i w;
  acc: int = add acc t;
  i: int = add i one;
  jmp .loop;
.done:
  print acc;
  ret;
}
"""


def main() -> None:
    module = load_module(SOURCE, filename="<example>")

    # 1. The reference interpreter defines what the program means.
    ref = interpret(module)
    print(f"interpreter: output {ref.output}, "
          f"{ref.dynamic_count} dynamic IR instructions")

    # 2. Optimize; output must be preserved, work should shrink.
    optimized = run_passes(module, ["lvn", "dce", "licm"])
    opt = interpret(optimized)
    assert opt.output == ref.output
    print(f"lvn,dce,licm: output unchanged, dynamic count "
          f"{ref.dynamic_count} -> {opt.dynamic_count}")

    # 3. Lower onto the simulator ISA and execute functionally — the
    #    architectural output region must match the interpreter.
    lowered = lower_module(optimized, name="example")
    run = execute_lowered(lowered)
    assert output_of(run) == ref.output
    print(f"lowered: {lowered.static_size} static ISA instructions, "
          f"{run.dynamic_count} dynamic, output matches interpreter")

    # 4. The lowered trace drives the full cycle-level stack.
    baseline = OOOPipeline().run_trace(run.trace)
    dynaspam = DynaSpAM().run(run.trace, lowered.program)
    print(f"baseline {baseline.cycles} cycles | "
          f"DynaSpAM {dynaspam.cycles} cycles | "
          f"speedup {baseline.cycles / dynaspam.cycles:.2f}x")


if __name__ == "__main__":
    main()
