"""Why memory speculation matters: the NW case study (Figure 8).

Needleman-Wunsch re-loads values it stored one iteration earlier, so a
fabric that conservatively preserves all load-store orderings serializes,
while Store-Sets speculation lets independent memory operations proceed.
The paper singles out NW (and SRAD) as the benchmarks that *slow down*
without memory speculation; this example reproduces that contrast.

Run:  python examples/memory_speculation.py [scale]
"""

import sys

from repro.core import DynaSpAM, DynaSpAMConfig
from repro.ooo import OOOPipeline
from repro.workloads import generate_trace


def run_mode(trace, program, speculation: bool):
    machine = DynaSpAM(
        ds_config=DynaSpAMConfig(mode="accelerate", speculation=speculation)
    )
    return machine.run(trace, program)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    for abbrev in ("NW", "SRAD", "HS"):
        run = generate_trace(abbrev, scale)
        baseline = OOOPipeline().run_trace(run.trace)
        with_spec = run_mode(run.trace, run.program, speculation=True)
        without = run_mode(run.trace, run.program, speculation=False)
        print(f"{abbrev}:")
        print(f"  baseline                   {baseline.cycles:8d} cycles")
        print(f"  DynaSpAM w/  speculation   {with_spec.cycles:8d} cycles "
              f"({baseline.cycles / with_spec.cycles:.2f}x)")
        print(f"  DynaSpAM w/o speculation   {without.cycles:8d} cycles "
              f"({baseline.cycles / without.cycles:.2f}x)")
        print(f"  memory violations w/ spec: "
              f"{with_spec.stats.memory_violations}, squashes: "
              f"{with_spec.squashes}")
        print()
    print("Expected shape (paper): speculation wins everywhere; NW drops")
    print("to (or below) baseline when orderings are preserved "
          "conservatively.")


if __name__ == "__main__":
    main()
