"""Design-space exploration: fabric geometry vs performance vs area.

Sweeps the number of stripes and the number of on-chip fabrics for a
benchmark, reporting speedup over the baseline next to the silicon cost
from the Table 6 area model — the kind of study the paper's "future work"
paragraph proposes (adjusting functional-unit counts to workload mix).

Run:  python examples/custom_fabric.py [abbrev] [scale]
"""

import sys

from repro.core import DynaSpAM, DynaSpAMConfig
from repro.energy import FabricAreaModel
from repro.fabric.config import FabricConfig
from repro.ooo import OOOPipeline
from repro.workloads import generate_trace


def main() -> None:
    abbrev = sys.argv[1] if len(sys.argv) > 1 else "HS"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    run = generate_trace(abbrev, scale)
    baseline = OOOPipeline().run_trace(run.trace)
    print(f"{abbrev}: baseline {baseline.cycles} cycles\n")
    print(f"{'stripes':>8} {'fabrics':>8} {'speedup':>8} "
          f"{'area mm^2':>10} {'speedup/mm^2':>13}")

    area_model = FabricAreaModel()
    for num_stripes in (4, 8, 16):
        for num_fabrics in (1, 2):
            fabric_config = FabricConfig(num_stripes=num_stripes)
            machine = DynaSpAM(
                fabric_config=fabric_config,
                ds_config=DynaSpAMConfig(num_fabrics=num_fabrics),
            )
            result = machine.run(run.trace, run.program)
            speedup = baseline.cycles / result.cycles
            area = num_fabrics * area_model.fabric_area_mm2(num_stripes)
            print(f"{num_stripes:>8} {num_fabrics:>8} {speedup:>8.2f} "
                  f"{area:>10.2f} {speedup / area:>13.2f}")

    print("\nSmaller fabrics reject deep traces (mapping failures) but are")
    print("far cheaper; the paper's 8-stripe point is the balance it ships.")


if __name__ == "__main__":
    main()
