"""Accelerating a Rodinia-style kernel and reading the energy ledger.

Runs the KM (kmeans clustering) workload — one of the paper's eleven
benchmarks — through the full DynaSpAM stack and prints the Figure 9-style
per-component energy breakdown next to the baseline.

Run:  python examples/accelerate_kmeans.py [scale]
"""

import sys

from repro.core import DynaSpAM, DynaSpAMConfig
from repro.energy import EnergyModel, FIGURE9_COMPONENTS
from repro.ooo import OOOPipeline
from repro.workloads import generate_trace, get_benchmark


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    bench = get_benchmark("KM")
    print(f"{bench.name} ({bench.domain}): {bench.description}")

    run = generate_trace("KM", scale)
    print(f"dynamic instructions: {run.dynamic_count}")

    baseline = OOOPipeline().run_trace(run.trace)
    machine = DynaSpAM(ds_config=DynaSpAMConfig())
    accelerated = machine.run(run.trace, run.program)

    print(f"\nbaseline: {baseline.cycles} cycles  |  "
          f"DynaSpAM: {accelerated.cycles} cycles  |  "
          f"speedup {baseline.cycles / accelerated.cycles:.2f}x")

    model = EnergyModel()
    base_energy = model.breakdown(baseline.stats)
    dyna_energy = model.breakdown(accelerated.stats)
    base_norm = base_energy.normalized_to(base_energy)
    dyna_norm = dyna_energy.normalized_to(base_energy)

    print("\nenergy by component (normalized to baseline total):")
    print(f"{'component':>14} {'baseline':>9} {'dynaspam':>9}")
    for name in FIGURE9_COMPONENTS:
        print(f"{name:>14} {base_norm.get(name, 0.0):9.3f} "
              f"{dyna_norm.get(name, 0.0):9.3f}")
    print(f"{'TOTAL':>14} {sum(base_norm.values()):9.3f} "
          f"{sum(dyna_norm.values()):9.3f}")
    print(f"\nenergy reduction: {dyna_energy.reduction_vs(base_energy):.1%} "
          f"(paper geomean across the suite: 23.9%)")


if __name__ == "__main__":
    main()
