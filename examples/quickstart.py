"""Quickstart: accelerate a hand-written kernel with DynaSpAM.

Builds a small dot-product-style loop in the reproduction ISA, runs it on
the baseline out-of-order pipeline and on the DynaSpAM-augmented core, and
prints what the framework did: traces detected, mapped, offloaded, and the
resulting speedup.

Run:  python examples/quickstart.py
"""

from repro.core import DynaSpAM, DynaSpAMConfig
from repro.isa import FunctionalExecutor, Memory, ProgramBuilder
from repro.ooo import OOOPipeline


def build_dot_product(num_elements: int):
    """sum += a[i] * b[i], the archetypal fabric-friendly loop."""
    b = ProgramBuilder("dot_product")
    b.li("r1", 0x1_0000)          # a[]
    b.li("r2", 0x2_1000)          # b[]
    b.fli("f4", 0.0)              # accumulator
    with b.countdown("loop", "r3", num_elements):
        b.flw("f1", "r1", 0)
        b.flw("f2", "r2", 0)
        b.fmul("f3", "f1", "f2")
        b.fadd("f4", "f4", "f3")
        b.addi("r1", "r1", 4)
        b.addi("r2", "r2", 4)
    b.halt()

    memory = Memory()
    memory.store_array(0x1_0000, [float(i % 7) for i in range(num_elements)])
    memory.store_array(0x2_1000, [1.5] * num_elements)
    return b.build(), memory


def main() -> None:
    program, memory = build_dot_product(num_elements=2000)

    # 1. Functional execution produces the dynamic trace (and the answer).
    run = FunctionalExecutor().run(program, memory)
    print(f"kernel executed: {run.dynamic_count} dynamic instructions, "
          f"dot product = {run.registers.read('f4'):.1f}")

    # 2. Baseline: the Table 4 out-of-order core.
    baseline = OOOPipeline().run_trace(run.trace)
    print(f"baseline OOO:   {baseline.cycles} cycles "
          f"(IPC {baseline.ipc:.2f})")

    # 3. DynaSpAM: same core + spatial fabric + dynamic mapping.
    machine = DynaSpAM(ds_config=DynaSpAMConfig(mode="accelerate"))
    accelerated = machine.run(run.trace, run.program)
    coverage = accelerated.coverage
    print(f"DynaSpAM:       {accelerated.cycles} cycles "
          f"(speedup {baseline.cycles / accelerated.cycles:.2f}x)")
    print(f"  traces: {accelerated.mapped_traces} mapped, "
          f"{accelerated.offloaded_traces} offloaded, "
          f"{accelerated.stats.fabric_invocations} fabric invocations")
    print(f"  instruction venues: {coverage['host']:.1%} host, "
          f"{coverage['mapping']:.1%} mapping phase, "
          f"{coverage['fabric']:.1%} fabric")
    print(f"  mean configuration lifetime: "
          f"{accelerated.mean_lifetime:.0f} invocations")


if __name__ == "__main__":
    main()
