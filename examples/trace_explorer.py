"""Trace explorer: watch detection find hot traces and inspect a mapping.

Feeds a benchmark's committed instruction stream through the trace-window
builder and the T-Cache exactly as the framework does, reports the hottest
trace identities, then maps the hottest one with the resource-aware mapper
and prints its stripe-by-stripe placement — a text rendition of the
paper's Figure 6 mapping example.

Run:  python examples/trace_explorer.py [abbrev] [scale]
"""

import sys
from collections import Counter

from repro.core.mapper import ResourceAwareMapper
from repro.core.tcache import TraceWindowBuilder
from repro.workloads import generate_trace


def main() -> None:
    abbrev = sys.argv[1] if len(sys.argv) > 1 else "KM"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    run = generate_trace(abbrev, scale)
    builder = TraceWindowBuilder(max_length=32)
    counts: Counter = Counter()
    example = {}
    for dyn in run.trace:
        window = builder.feed(dyn)
        if window is not None:
            counts[window.key] += 1
            example.setdefault(window.key, window)

    print(f"{abbrev}: {run.dynamic_count} dynamic instructions, "
          f"{len(counts)} distinct trace identities\n")
    print("hottest traces (anchor pc, branch outcomes, length) x count:")
    for key, count in counts.most_common(5):
        pc, outcomes, length = key
        taken = "".join("T" if o else "N" for o in outcomes)
        print(f"  pc=0x{pc:04x} outcomes={taken:3s} len={length:2d}  "
              f"x{count}")

    hottest, _ = counts.most_common(1)[0]
    window = example[hottest]
    config = ResourceAwareMapper().map_trace(window.instructions, hottest)
    if config is None:
        print("\nhottest trace is unmappable on the default fabric")
        return

    print(f"\nmapping of the hottest trace "
          f"({config.length} ops, {config.stripes_used} stripes, "
          f"{config.datapath_channels_used} datapath channels, "
          f"{len(config.live_ins)} live-ins, {len(config.live_outs)} "
          f"live-outs):\n")
    for stripe in range(config.stripes_used):
        ops = [op for op in config.placements if op.stripe == stripe]
        cells = []
        for op in sorted(ops, key=lambda o: o.pe_index):
            sources = []
            for src in op.sources:
                if src.kind == "livein":
                    sources.append(src.reg)
                else:
                    sources.append(f"#{src.producer_pos}"
                                   + (f"+{src.hops - 1}h" if src.hops > 1 else ""))
            operand_text = ",".join(sources) or "-"
            cells.append(f"#{op.pos}:{op.opcode.value}({operand_text})")
        print(f"  stripe {stripe:2d} | " + "  ".join(cells))


if __name__ == "__main__":
    main()
