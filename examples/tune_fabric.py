"""Future work, implemented: tune the fabric's FU mix to a workload.

The paper closes its area section with: "research will be done to adjust
the number of functional units according to instruction type
distributions of the benchmarks."  This example profiles a benchmark's
instruction mix, lets ``FabricTuner`` apportion a per-stripe PE budget to
match, and compares the tuned fabric against the default Table 4 mix on
both performance and silicon.

Run:  python examples/tune_fabric.py [abbrev] [scale]
"""

import sys

from repro.core.tuning import evaluate_mix, FabricTuner
from repro.fabric.config import FabricConfig
from repro.workloads import generate_trace
from repro.workloads.characterize import characterize


def main() -> None:
    abbrev = sys.argv[1] if len(sys.argv) > 1 else "BFS"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    run = generate_trace(abbrev, scale)
    profile = characterize(abbrev, run.trace)

    print(f"{abbrev} instruction mix "
          f"({profile.dynamic_instructions} dynamic instructions):")
    for pool, fraction in sorted(profile.pool_mix.items(),
                                 key=lambda kv: -kv[1]):
        print(f"  {pool:>10}: {fraction:6.1%}")
    print(f"  branches: {profile.branch_fraction:.1%} "
          f"({profile.taken_fraction:.0%} taken), "
          f"memory: {profile.memory_fraction:.1%}")

    tuner = FabricTuner(pe_budget=12)  # same budget as the Table 4 stripe
    mix = tuner.propose([profile])
    default_pools = FabricConfig().stripe_pools
    print("\nper-stripe PE mix (default -> tuned):")
    for pool in default_pools:
        print(f"  {pool:>10}: {default_pools[pool]} -> {mix.pools[pool]}")

    default_eval = evaluate_mix(run, FabricConfig())
    tuned_eval = evaluate_mix(run, tuner.fabric_config(mix))
    print(f"\n{'':>12} {'speedup':>8} {'area mm^2':>10} "
          f"{'speedup/mm^2':>13} {'coverage':>9}")
    for name, ev in (("default", default_eval), ("tuned", tuned_eval)):
        print(f"{name:>12} {ev.speedup:>8.2f} {ev.fabric_area_mm2:>10.2f} "
              f"{ev.speedup_per_mm2:>13.2f} {ev.fabric_coverage:>9.1%}")


if __name__ == "__main__":
    main()
