"""Content-addressed on-disk cache for traces and completed runs.

Entries are pickled values addressed by the SHA-256 of a canonical key
string built from ``(namespace, cache format version, code fingerprint,
key object)``.  The code fingerprint digests every ``repro`` source file,
so any code change — not just deliberate format bumps — invalidates the
whole cache rather than ever serving stale simulation results.

Writes are atomic (temp file + ``os.replace``); loads tolerate corruption
(any unpickle error counts as a miss and removes the bad file, so the
caller falls back to re-simulation).

The cache root defaults to ``.repro_cache`` under the current directory
and can be overridden with the ``REPRO_CACHE_DIR`` environment variable or
``configure(root=...)``; ``REPRO_DISK_CACHE=0`` or ``configure(enabled=False)``
disables the layer entirely.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

from repro.obs.runtime import TRACER

#: Bump when the on-disk layout or pickled value schema changes shape.
CACHE_FORMAT_VERSION = 1

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_DISK_CACHE = "REPRO_DISK_CACHE"
DEFAULT_CACHE_DIR = ".repro_cache"

_FALSE_VALUES = ("0", "false", "no", "off")


def default_cache_dir() -> Path:
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


_fingerprint: str | None = None


def code_fingerprint() -> str:
    """Digest of the ``repro`` package sources (computed once per process)."""
    global _fingerprint
    if _fingerprint is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint = digest.hexdigest()
    return _fingerprint


class DiskCache:
    """One namespace of the content-addressed cache."""

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        namespace: str = "runs",
        version: int = CACHE_FORMAT_VERSION,
        fingerprint: str | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.namespace = namespace
        self.version = version
        self.fingerprint = (
            fingerprint if fingerprint is not None else code_fingerprint()
        )
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.writes = 0

    # ------------------------------------------------------------------
    def path_for(self, key_obj) -> Path:
        """Deterministic file path for a key object.

        ``repr`` of the key must be stable and value-complete — run keys
        are frozen tuples of primitives, which satisfy both.
        """
        canonical = repr(
            (self.namespace, self.version, self.fingerprint, key_obj)
        )
        digest = hashlib.sha256(canonical.encode()).hexdigest()
        return self.root / self.namespace / digest[:2] / f"{digest}.pkl"

    def get(self, key_obj):
        """Cached value for ``key_obj``, or ``None`` on miss/corruption."""
        with TRACER.span("cache.get", namespace=self.namespace) as span:
            value = self._get(key_obj)
            if span is not None:
                span.attrs["outcome"] = "miss" if value is None else "hit"
            return value

    def _get(self, key_obj):
        path = self.path_for(key_obj)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupted or unreadable entry: drop it and re-simulate.
            self.errors += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return value

    def put(self, key_obj, value) -> bool:
        """Atomically store ``value``; returns False on any I/O failure."""
        with TRACER.span("cache.put", namespace=self.namespace):
            return self._put(key_obj, value)

    def _put(self, key_obj, value) -> bool:
        path = self.path_for(key_obj)
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
            tmp_name = None
        except Exception:
            self.errors += 1
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            return False
        self.writes += 1
        return True

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "writes": self.writes,
        }


# ---------------------------------------------------------------------------
# Process-wide shared caches (the runner and trace generator use these).
# ---------------------------------------------------------------------------
_state: dict = {"enabled": None, "root": None, "caches": {}}


def configure(enabled: bool | None = None, root: str | None = None) -> None:
    """Override the process-wide cache policy (``None`` leaves env defaults)."""
    _state["enabled"] = enabled
    _state["root"] = root
    _state["caches"] = {}


def configured_root() -> str | None:
    """The explicitly configured root, if any (workers re-apply it)."""
    return _state["root"]


def is_enabled() -> bool:
    if _state["enabled"] is not None:
        return _state["enabled"]
    return os.environ.get(ENV_DISK_CACHE, "1").lower() not in _FALSE_VALUES


def shared_cache(namespace: str) -> DiskCache | None:
    """The process-wide cache for a namespace, or ``None`` when disabled."""
    if not is_enabled():
        return None
    cache = _state["caches"].get(namespace)
    if cache is None:
        cache = DiskCache(root=_state["root"], namespace=namespace)
        _state["caches"][namespace] = cache
    return cache


def shared_stats() -> dict[str, dict[str, int]]:
    """Per-namespace hit/miss counters of the process-wide caches."""
    return {
        name: cache.stats() for name, cache in _state["caches"].items()
    }


def merge_stats(stats: dict[str, dict[str, int]]) -> None:
    """Fold a worker process's cache counters into this process's caches."""
    for namespace, counters in stats.items():
        cache = shared_cache(namespace)
        if cache is None:
            continue
        cache.hits += counters.get("hits", 0)
        cache.misses += counters.get("misses", 0)
        cache.errors += counters.get("errors", 0)
        cache.writes += counters.get("writes", 0)
