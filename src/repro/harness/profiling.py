"""Wall-clock sections and counters for the experiment harness.

The module-level ``PROFILER`` accumulates per-phase wall-clock time
(trace generation, simulation, cache I/O, parallel fan-out) and named
counters (memo and cache hits/misses).  The CLI prints it under
``--profile``; ``repro bench`` embeds a snapshot in its JSON report.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class Profiler:
    """Accumulating wall-clock sections + counters."""

    def __init__(self) -> None:
        self.sections: dict[str, float] = {}
        self.counters: dict[str, int] = {}

    def reset(self) -> None:
        self.sections.clear()
        self.counters.clear()

    @contextmanager
    def section(self, name: str):
        """Accumulate the wall-clock time of the enclosed block."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.sections[name] = self.sections.get(name, 0.0) + elapsed

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def snapshot(self) -> dict:
        """JSON-serializable copy of the accumulated state."""
        return {
            "sections_seconds": dict(self.sections),
            "counters": dict(self.counters),
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a worker process's snapshot into this profiler.

        Worker section times sum across processes, so they land under a
        ``workers.`` prefix: ``workers.simulate_dynaspam`` is aggregate
        compute seconds across the pool, not wall clock, and must never
        be read alongside the parent's own wall-clock sections as if it
        were.  Counters stay flat — a cache hit is a cache hit no matter
        which process scored it.
        """
        for name, seconds in snapshot.get("sections_seconds", {}).items():
            if not name.startswith("workers."):
                name = f"workers.{name}"
            self.sections[name] = self.sections.get(name, 0.0) + seconds
        for name, count in snapshot.get("counters", {}).items():
            self.bump(name, count)

    def render(self) -> str:
        lines = ["profile: per-phase wall clock"]
        total = sum(self.sections.values())
        for name, seconds in sorted(
            self.sections.items(), key=lambda kv: -kv[1]
        ):
            share = seconds / total if total else 0.0
            lines.append(f"  {name:<24} {seconds:8.3f}s  {share:6.1%}")
        if self.counters:
            lines.append("profile: counters")
            for name, count in sorted(self.counters.items()):
                lines.append(f"  {name:<24} {count}")
        return "\n".join(lines)


#: Process-wide profiler instance.
PROFILER = Profiler()
