"""Wall-clock sections and counters for the experiment harness.

The module-level ``PROFILER`` accumulates per-phase wall-clock time
(trace generation, simulation, cache I/O, parallel fan-out) and named
counters (memo and cache hits/misses).  The CLI prints it under
``--profile``; ``repro bench`` embeds a snapshot in its JSON report.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class Profiler:
    """Accumulating wall-clock sections + counters.

    Thread-safe: the service runs simulations on a ``ThreadPoolExecutor``
    with several workers, so the read-modify-write accumulations below
    take a lock — without it concurrent flights silently lose seconds
    and counts.  (Subprocess workers each get their own instance; those
    merge back explicitly via :meth:`merge_snapshot`.)
    """

    def __init__(self) -> None:
        self.sections: dict[str, float] = {}
        self.counters: dict[str, int] = {}
        self._lock = threading.Lock()

    def reset(self) -> None:
        with self._lock:
            self.sections.clear()
            self.counters.clear()

    @contextmanager
    def section(self, name: str):
        """Accumulate the wall-clock time of the enclosed block."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self.sections[name] = self.sections.get(name, 0.0) + elapsed

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def snapshot(self) -> dict:
        """JSON-serializable copy of the accumulated state."""
        with self._lock:
            return {
                "sections_seconds": dict(self.sections),
                "counters": dict(self.counters),
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a worker process's snapshot into this profiler.

        Worker section times sum across processes, so they land under a
        ``workers.`` prefix: ``workers.simulate_dynaspam`` is aggregate
        compute seconds across the pool, not wall clock, and must never
        be read alongside the parent's own wall-clock sections as if it
        were.  Counters stay flat — a cache hit is a cache hit no matter
        which process scored it.
        """
        with self._lock:
            for name, seconds in snapshot.get("sections_seconds", {}).items():
                if not name.startswith("workers."):
                    name = f"workers.{name}"
                self.sections[name] = self.sections.get(name, 0.0) + seconds
            for name, count in snapshot.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + count

    def render(self) -> str:
        snap = self.snapshot()
        sections, counters = snap["sections_seconds"], snap["counters"]
        lines = ["profile: per-phase wall clock"]
        total = sum(sections.values())
        for name, seconds in sorted(sections.items(), key=lambda kv: -kv[1]):
            share = seconds / total if total else 0.0
            lines.append(f"  {name:<24} {seconds:8.3f}s  {share:6.1%}")
        if counters:
            lines.append("profile: counters")
            for name, count in sorted(counters.items()):
                lines.append(f"  {name:<24} {count}")
        return "\n".join(lines)


#: Process-wide profiler instance.
PROFILER = Profiler()
