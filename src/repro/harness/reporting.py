"""Plain-text rendering of experiment results (tables and bar series)."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    def cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells, pad=" "):
        return " | ".join(c.rjust(w, pad[0]) if pad == " " else c.ljust(w)
                          for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        out.append(line(row))
    return "\n".join(out)


def format_bars(
    series: dict[str, float],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """Render a labelled horizontal bar chart (one bar per key)."""
    out = [title] if title else []
    peak = max(series.values(), default=1.0) or 1.0
    label_width = max((len(k) for k in series), default=4)
    for name, value in series.items():
        bar = "#" * max(1, int(round(width * value / peak)))
        out.append(f"{name.rjust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(out)


def format_stacked(
    rows: dict[str, dict[str, float]],
    title: str = "",
    width: int = 50,
) -> str:
    """Render stacked 0..1 fractions (Figure 7's coverage bars)."""
    symbols = {"host": ".", "mapping": "m", "fabric": "#"}
    out = [title] if title else []
    label_width = max((len(k) for k in rows), default=4)
    for name, fractions in rows.items():
        bar = ""
        for part, symbol in symbols.items():
            bar += symbol * int(round(width * fractions.get(part, 0.0)))
        out.append(
            f"{name.rjust(label_width)} | {bar.ljust(width)} "
            f"host={fractions.get('host', 0):.0%} "
            f"map={fractions.get('mapping', 0):.1%} "
            f"fabric={fractions.get('fabric', 0):.0%}"
        )
    return "\n".join(out)
