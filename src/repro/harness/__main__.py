"""Command-line entry point: regenerate any evaluation table or figure.

Usage::

    python -m repro.harness fig8 [--scale 1.0]
    python -m repro.harness all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import experiments


def _characterization(scale: float) -> str:
    from repro.harness.characterization import characterization

    return characterization(scale).render()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate DynaSpAM evaluation tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=["table3", "table4", "fig7", "table5", "fig8", "fig9",
                 "table6", "table7", "workloads", "all"],
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="benchmark problem-size scale (default 1.0)")
    args = parser.parse_args(argv)

    jobs = {
        "table3": lambda: experiments.table3_benchmarks(),
        "table4": lambda: experiments.table4_parameters(),
        "fig7": lambda: experiments.figure7_coverage(args.scale).render(),
        "table5": lambda: experiments.table5_lifetime(args.scale).render(),
        "fig8": lambda: experiments.figure8_performance(args.scale).render(),
        "fig9": lambda: experiments.figure9_energy(args.scale).render(),
        "table6": lambda: experiments.table6_area().render(),
        "table7": lambda: experiments.table7_related_work(),
        "workloads": lambda: _characterization(args.scale),
    }
    names = list(jobs) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(jobs[name]())
        print(f"[{name} regenerated in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
