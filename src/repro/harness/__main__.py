"""Command-line entry point: regenerate any evaluation table or figure.

Usage::

    python -m repro.harness fig8 [--scale 1.0] [--jobs 4]
                                 [--no-cache] [--profile]
    python -m repro.harness all
"""

from __future__ import annotations

import argparse
import sys
import time

import repro.harness.diskcache as diskcache
from repro.harness import experiments
from repro.harness.profiling import PROFILER


def _characterization(scale: float) -> str:
    from repro.harness.characterization import characterization

    return characterization(scale).render()


def add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared performance flags (also used by ``python -m repro``)."""
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan independent runs out over N processes "
             "(default: cpu count, clamped to 8 under CI; "
             "REPRO_MAX_JOBS caps both)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk trace/result cache")
    parser.add_argument("--profile", action="store_true",
                        help="print per-phase wall clock and cache counters")


def apply_cache_arguments(args) -> None:
    from repro.harness.parallel import default_jobs

    if args.no_cache:
        diskcache.configure(enabled=False)
    if args.jobs is None:
        args.jobs = default_jobs()


def print_profile() -> None:
    for namespace, stats in sorted(diskcache.shared_stats().items()):
        for name, count in stats.items():
            PROFILER.bump(f"disk_{namespace}_{name}", count)
    print(PROFILER.render())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate DynaSpAM evaluation tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=["table3", "table4", "fig7", "table5", "fig8", "fig9",
                 "table6", "table7", "workloads", "all"],
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="benchmark problem-size scale (default 1.0)")
    add_cache_arguments(parser)
    args = parser.parse_args(argv)
    apply_cache_arguments(args)

    jobs = {
        "table3": lambda: experiments.table3_benchmarks(),
        "table4": lambda: experiments.table4_parameters(),
        "fig7": lambda: experiments.figure7_coverage(
            args.scale, jobs=args.jobs).render(),
        "table5": lambda: experiments.table5_lifetime(
            args.scale, jobs=args.jobs).render(),
        "fig8": lambda: experiments.figure8_performance(
            args.scale, jobs=args.jobs).render(),
        "fig9": lambda: experiments.figure9_energy(
            args.scale, jobs=args.jobs).render(),
        "table6": lambda: experiments.table6_area().render(),
        "table7": lambda: experiments.table7_related_work(),
        "workloads": lambda: _characterization(args.scale),
    }
    names = list(jobs) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(jobs[name]())
        print(f"[{name} regenerated in {time.time() - started:.1f}s]\n")
    if args.profile:
        print_profile()
    return 0


if __name__ == "__main__":
    sys.exit(main())
