"""Parallel sweep execution: fan independent runs out over processes.

Every experiment sweep is embarrassingly parallel across ``RunSpec``s.
``execute_runs`` resolves what it can from the local caches, groups the
remaining work by ``(benchmark, scale)`` so each worker generates (or
disk-loads) a trace once, fans the groups out over a ``ProcessPoolExecutor``,
and merges worker results back into the parent's in-memory and on-disk
caches.  Serial and parallel execution produce bit-identical results: a
run never depends on any other run.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import defaultdict
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Iterable

import repro.harness.diskcache as diskcache
from repro.harness.profiling import PROFILER
from repro.harness.runner import (
    RunKey,
    RunSpec,
    execute_spec,
    peek_cached,
    seed_run_cache,
)
from repro.obs import progress
from repro.obs.runtime import TRACER, begin_worker, worker_telemetry


#: Hard cap on worker processes (overrides the CI clamp and the CLI).
ENV_MAX_JOBS = "REPRO_MAX_JOBS"

#: Small CI runners advertise many cores but can't feed them; fanning a
#: process pool that wide just thrashes.  Clamp the *default* there.
CI_JOBS_CLAMP = 8


def max_jobs() -> int | None:
    """The ``REPRO_MAX_JOBS`` cap, or ``None`` when unset/invalid."""
    raw = os.environ.get(ENV_MAX_JOBS)
    if not raw:
        return None
    try:
        return max(1, int(raw))
    except ValueError:
        return None


def default_jobs() -> int:
    """Worker-count default: cpu count, clamped to 8 in CI environments.

    ``REPRO_MAX_JOBS`` overrides both the cpu count and the CI clamp.
    """
    jobs = os.cpu_count() or 1
    if os.environ.get("CI"):
        jobs = min(jobs, CI_JOBS_CLAMP)
    cap = max_jobs()
    if cap is not None:
        jobs = min(jobs, cap)
    return jobs


def _instructions(result) -> int:
    """Committed instruction count of a run result (progress rate input)."""
    stats = getattr(result, "stats", None)
    return getattr(stats, "instructions", 0) if stats is not None else 0


def _worker_batch(
    specs: list[RunSpec],
    cache_enabled: bool,
    cache_root: str | None,
    telemetry: dict | None = None,
) -> tuple[list[tuple[RunKey, Any]], dict, dict, dict]:
    """Run one batch of specs inside a worker process.

    Returns the results plus the worker's profiler snapshot, disk cache
    counters, and wall-clock span buffer, which the parent folds back
    in — otherwise a parallel ``--profile``/``bench`` report would show
    zero simulation time and zero cache writes, and the span timeline
    would have a hole where the pool did all the work.
    """
    diskcache.configure(enabled=cache_enabled, root=cache_root)
    PROFILER.reset()  # forked workers inherit the parent's totals
    begin_worker(telemetry)
    with TRACER.span("pool.worker_batch", specs=len(specs)):
        pairs = [(spec.key, execute_spec(spec)) for spec in specs]
    spans = {"pid": os.getpid(), **TRACER.snapshot()}
    return pairs, PROFILER.snapshot(), diskcache.shared_stats(), spans


def execute_runs(
    specs: Iterable[RunSpec], jobs: int | None = None
) -> dict[RunKey, Any]:
    """Resolve every spec, fanning cache misses out over ``jobs`` processes.

    ``jobs`` of ``None``/0/1 runs serially in-process.  Returns a dict
    keyed by ``RunKey``; the parent's caches are seeded either way, so
    subsequent ``run_baseline``/``run_dynaspam`` calls are memory hits.
    """
    unique: dict[RunKey, RunSpec] = {}
    for spec in specs:
        unique.setdefault(spec.key, spec)

    results: dict[RunKey, Any] = {}
    for key, spec in unique.items():
        cached = peek_cached(key)
        if cached is not None:
            results[key] = cached
    pending = [spec for key, spec in unique.items() if key not in results]
    if results:
        progress.advance_active(
            len(results),
            sum(_instructions(r) for r in results.values()),
            detail="cache",
        )

    jobs = jobs or 1
    cap = max_jobs()
    if cap is not None:
        jobs = min(jobs, cap)
    if jobs <= 1 or len(pending) <= 1:
        for spec in pending:
            results[spec.key] = execute_spec(spec)
            progress.advance_active(
                1, _instructions(results[spec.key]), detail=spec.abbrev
            )
        return results

    # One batch per (benchmark, scale): the worker's in-process trace
    # cache then amortizes trace generation across the batch's runs.
    groups: dict[tuple[str, float], list[RunSpec]] = defaultdict(list)
    for spec in pending:
        groups[(spec.abbrev, spec.scale)].append(spec)
    batches = list(groups.values())

    cache_enabled = diskcache.is_enabled()
    cache_root = diskcache.configured_root()
    workers = min(jobs, len(batches))
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()
    telemetry = worker_telemetry()
    with TRACER.span("pool.execute_runs", pending=len(pending),
                     batches=len(batches), workers=workers):
        with PROFILER.section("parallel_execution"):
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            ) as pool:
                futures = [
                    pool.submit(_worker_batch, batch, cache_enabled,
                                cache_root, telemetry)
                    for batch in batches
                ]
                for future in as_completed(futures):
                    pairs, worker_profile, worker_disk, spans = (
                        future.result()
                    )
                    instructions = 0
                    for key, result in pairs:
                        seed_run_cache(key, result)
                        results[key] = result
                        PROFILER.bump("parallel_runs_completed")
                        instructions += _instructions(result)
                    PROFILER.merge_snapshot(worker_profile)
                    diskcache.merge_stats(worker_disk)
                    TRACER.merge(
                        spans, process=f"worker-{spans.get('pid', '?')}"
                    )
                    progress.advance_active(
                        len(pairs), instructions,
                        detail=pairs[0][0].abbrev if pairs else None,
                    )
    return results


def warm_cache(specs: Iterable[RunSpec], jobs: int | None = None) -> None:
    """Prefetch runs into the caches ahead of a serial driver loop.

    With ``jobs`` unset this is a no-op — the driver's own lazy calls do
    the work serially, exactly as before the parallel engine existed —
    unless a progress tracker is active, in which case the serial work
    routes through ``execute_runs`` anyway (identical execution, but
    each resolved run emits a heartbeat instead of staying dark).
    """
    if jobs and jobs > 1:
        execute_runs(specs, jobs)
    elif progress.current() is not None:
        execute_runs(specs, jobs)
