"""Simulator-throughput benchmark (``repro perfbench``).

``repro bench`` answers "is the *model* still right and how long does the
sweep take end to end"; this module answers a different question: **how
fast does the simulator itself execute**, in dynamic instructions per
second and fabric invocations per second, per kernel and mode, for each
engine (the compiled fast path of ``repro.ooo.fastpath`` /
``repro.fabric.compiled`` vs the interpreted reference model).

Methodology:

* Traces are generated *before* the timer starts — trace synthesis is
  workload generation, not simulation, and must not pollute throughput.
* Every measurement constructs the machine fresh and runs it directly,
  bypassing the run caches entirely (a cache hit would measure nothing).
* Timing is serial, one cell at a time, on ``time.perf_counter``; with
  ``repeat > 1`` the best (minimum-time) repetition is kept, which
  filters scheduler noise without averaging it in.
* The report carries the same provenance block as every other report
  (schema version + code fingerprint) so the regression gate
  (``scripts/check_perf_regression.py``) can refuse stale baselines.

The resulting JSON feeds the CI ``perfbench`` job: the gate fails the
build when the fast engine's geomean instructions/sec regresses more than
the threshold against the committed baseline, or when the fast-vs-
interpreted speedup falls below the floor recorded at PR time.
"""

from __future__ import annotations

import math
import time

from repro.engine import use_fastpath

#: Version of the perfbench JSON layout (independent of the simulation
#: report schema — throughput reports are not `repro diff` inputs).
PERFBENCH_SCHEMA_VERSION = 1

#: The Figure 8 suite's execution modes.
MODES = ("baseline", "mapping_only", "accelerate")

ENGINES = ("fast", "interpreted")


def _geomean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _measure_cell(trace, mode: str, engine: str, repeat: int) -> dict:
    """Time one (kernel, mode, engine) cell; returns the cell record."""
    from repro.core import DynaSpAM, DynaSpAMConfig
    from repro.ooo.fastpath import make_pipeline

    fast = engine == "fast"
    best = None
    for _ in range(max(1, repeat)):
        with use_fastpath(fast):
            if mode == "baseline":
                pipeline = make_pipeline()
                started = time.perf_counter()
                result = pipeline.run_trace(trace.trace)
                elapsed = time.perf_counter() - started
            else:
                machine = DynaSpAM(ds_config=DynaSpAMConfig(mode=mode))
                started = time.perf_counter()
                result = machine.run(trace.trace, trace.program)
                elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    elapsed, result = best
    stats = result.stats
    instructions = stats.instructions
    invocations = getattr(stats, "fabric_invocations", 0)
    elapsed = max(elapsed, 1e-9)
    return {
        "mode": mode,
        "engine": engine,
        "instructions": instructions,
        "simulated_cycles": result.cycles,
        "wall_seconds": elapsed,
        "instr_per_sec": instructions / elapsed,
        "invocations": invocations,
        "invocations_per_sec": invocations / elapsed,
    }


def perfbench_report(
    scale: float = 0.1,
    kernels=None,
    modes=MODES,
    engines=ENGINES,
    repeat: int = 1,
    profile: bool = False,
) -> dict:
    """Measure simulator throughput over kernels x modes x engines."""
    from repro.harness.runner import report_provenance
    from repro.workloads import ALL_ABBREVS, generate_trace

    kernels = list(kernels or ALL_ABBREVS)
    started = time.perf_counter()

    # Warm the trace cache up front: after this loop generate_trace is a
    # dictionary lookup and never shows up inside a timed region.
    traces = {abbrev: generate_trace(abbrev, scale) for abbrev in kernels}

    per_engine: dict[str, dict] = {}
    for engine in engines:
        cells = []
        for abbrev in kernels:
            for mode in modes:
                cell = _measure_cell(traces[abbrev], mode, engine, repeat)
                cell["kernel"] = abbrev
                cells.append(cell)
        per_engine[engine] = {
            "cells": cells,
            "geomean_instr_per_sec": _geomean(
                c["instr_per_sec"] for c in cells
            ),
            "geomean_invocations_per_sec": _geomean(
                c["invocations_per_sec"] for c in cells
            ),
            "total_instructions": sum(c["instructions"] for c in cells),
            "total_wall_seconds": sum(c["wall_seconds"] for c in cells),
        }

    report = {
        **report_provenance(),
        "experiment": "perfbench",
        "perfbench_schema_version": PERFBENCH_SCHEMA_VERSION,
        "scale": scale,
        "repeat": repeat,
        "kernels": kernels,
        "modes": list(modes),
        "engines": per_engine,
        "wall_clock_seconds": time.perf_counter() - started,
    }
    if "fast" in per_engine and "interpreted" in per_engine:
        slow = per_engine["interpreted"]["geomean_instr_per_sec"]
        fast = per_engine["fast"]["geomean_instr_per_sec"]
        report["speedup"] = fast / slow if slow else 0.0
    if profile:
        report["profile"] = _profile_fast_engine(traces, modes)
    return report


def _profile_fast_engine(traces, modes) -> dict:
    """cProfile one fast-engine pass; top functions by cumulative time.

    Complements the harness ``PROFILER`` (whose sections cover the cache
    and experiment layers) with function-level attribution of the
    simulation hot loop itself; the harness profiler's snapshot rides
    along so both views land in one report.
    """
    import cProfile
    import pstats

    from repro.harness.profiling import PROFILER

    profiler = cProfile.Profile()
    profiler.enable()
    with PROFILER.section("perfbench_profile_pass"):
        for trace in traces.values():
            for mode in modes:
                _measure_cell(trace, mode, "fast", repeat=1)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    top = []
    for func, (cc, nc, tottime, cumtime, _callers) in sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    ):
        filename, line, name = func
        if "cProfile" in filename or filename.startswith("<"):
            continue
        top.append({
            "function": f"{filename}:{line}({name})",
            "calls": nc,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        })
        if len(top) >= 10:
            break
    return {
        "sort": "cumulative",
        "top": top,
        "harness": PROFILER.snapshot(),
    }


def render_perfbench(report: dict) -> str:
    """One-screen human summary of a perfbench report."""
    lines = []
    engines = report["engines"]
    for engine in ("fast", "interpreted"):
        if engine not in engines:
            continue
        summary = engines[engine]
        lines.append(
            f"{engine:>12}: {summary['geomean_instr_per_sec']:>12,.0f} "
            f"instr/s geomean | "
            f"{summary['geomean_invocations_per_sec']:>10,.1f} invoc/s | "
            f"{summary['total_wall_seconds']:.2f}s over "
            f"{len(summary['cells'])} cells"
        )
    if "speedup" in report:
        lines.append(f"{'speedup':>12}: {report['speedup']:.2f}x "
                     f"(fast vs interpreted, geomean instr/s)")
    return "\n".join(lines)
