"""Simulator-throughput benchmark (``repro perfbench``).

``repro bench`` answers "is the *model* still right and how long does the
sweep take end to end"; this module answers a different question: **how
fast does the simulator itself execute**, in dynamic instructions per
second and fabric invocations per second, per kernel and mode, for each
engine.  The "fast" engine is the full production stack — the compiled
fast path of ``repro.ooo.fastpath`` / ``repro.fabric.compiled`` *plus*
the invocation-timing memo of ``repro.fabric.memo`` — while
"interpreted" forces both tiers off, i.e. the pure reference model, so
the reported speedup is the whole optimization stack against the
reference.

Methodology:

* Traces are generated *before* the timer starts — trace synthesis is
  workload generation, not simulation, and must not pollute throughput.
* Every measurement constructs the machine fresh and runs it directly,
  bypassing the run caches entirely (a cache hit would measure nothing).
* Timing is serial, one cell at a time, on ``time.perf_counter``; with
  ``repeat > 1`` the best (minimum-time) repetition is kept, which
  filters scheduler noise without averaging it in.
* The report carries the same provenance block as every other report
  (schema version + code fingerprint) so the regression gate
  (``scripts/check_perf_regression.py``) can refuse stale baselines.

The resulting JSON feeds the CI ``perfbench`` job: the gate fails the
build when the fast engine's geomean instructions/sec regresses more than
the threshold against the committed baseline, or when the fast-vs-
interpreted speedup falls below the floor recorded at PR time.
"""

from __future__ import annotations

import math
import time

from repro.engine import use_fastpath, use_memo

#: Version of the perfbench JSON layout (independent of the simulation
#: report schema — throughput reports are not `repro diff` inputs).
#: v2: memo-tier counters per cell and per engine; cells with zero
#: invocations report ``invocations_per_sec: null`` instead of ``0.0``.
PERFBENCH_SCHEMA_VERSION = 2

#: The Figure 8 suite's execution modes.
MODES = ("baseline", "mapping_only", "accelerate")

ENGINES = ("fast", "interpreted")


def _geomean(values) -> float:
    values = [v for v in values if v is not None and v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _measure_cell(trace, mode: str, engine: str, repeat: int) -> dict:
    """Time one (kernel, mode, engine) cell; returns the cell record."""
    from repro.core import DynaSpAM, DynaSpAMConfig
    from repro.ooo.fastpath import make_pipeline

    fast = engine == "fast"
    best = None
    for _ in range(max(1, repeat)):
        # "fast" is the production stack (compiled fastpath + invocation
        # memo); "interpreted" is the pure reference with both tiers off.
        with use_fastpath(fast), use_memo(fast):
            if mode == "baseline":
                pipeline = make_pipeline()
                started = time.perf_counter()
                result = pipeline.run_trace(trace.trace)
                elapsed = time.perf_counter() - started
            else:
                machine = DynaSpAM(ds_config=DynaSpAMConfig(mode=mode))
                started = time.perf_counter()
                result = machine.run(trace.trace, trace.program)
                elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    elapsed, result = best
    stats = result.stats
    instructions = stats.instructions
    invocations = getattr(stats, "fabric_invocations", 0)
    elapsed = max(elapsed, 1e-9)
    return {
        "mode": mode,
        "engine": engine,
        "instructions": instructions,
        "simulated_cycles": result.cycles,
        "wall_seconds": elapsed,
        "instr_per_sec": instructions / elapsed,
        "invocations": invocations,
        # A cell that never invoked the fabric (baseline mode, or a
        # kernel whose traces never became ready) has no invocation
        # throughput — null, not a misleading 0.0 that would poison
        # ratio math downstream.
        "invocations_per_sec": (
            invocations / elapsed if invocations else None
        ),
        "memo_hits": getattr(stats, "invocation_memo_hits", 0),
        "memo_misses": getattr(stats, "invocation_memo_misses", 0),
        "batched_invocations": getattr(stats, "batched_invocations", 0),
    }


def perfbench_report(
    scale: float = 0.1,
    kernels=None,
    modes=MODES,
    engines=ENGINES,
    repeat: int = 1,
    profile: bool = False,
) -> dict:
    """Measure simulator throughput over kernels x modes x engines."""
    from repro.harness.runner import report_provenance
    from repro.workloads import ALL_ABBREVS, generate_trace

    kernels = list(kernels or ALL_ABBREVS)
    started = time.perf_counter()

    # Warm the trace cache up front: after this loop generate_trace is a
    # dictionary lookup and never shows up inside a timed region.
    traces = {abbrev: generate_trace(abbrev, scale) for abbrev in kernels}

    per_engine: dict[str, dict] = {}
    for engine in engines:
        cells = []
        for abbrev in kernels:
            for mode in modes:
                cell = _measure_cell(traces[abbrev], mode, engine, repeat)
                cell["kernel"] = abbrev
                cells.append(cell)
        per_engine[engine] = {
            "cells": cells,
            "geomean_instr_per_sec": _geomean(
                c["instr_per_sec"] for c in cells
            ),
            "geomean_invocations_per_sec": _geomean(
                c["invocations_per_sec"] for c in cells
            ),
            "total_instructions": sum(c["instructions"] for c in cells),
            "total_wall_seconds": sum(c["wall_seconds"] for c in cells),
            "total_memo_hits": sum(c["memo_hits"] for c in cells),
            "total_memo_misses": sum(c["memo_misses"] for c in cells),
            "total_batched_invocations": sum(
                c["batched_invocations"] for c in cells
            ),
        }

    report = {
        **report_provenance(),
        "experiment": "perfbench",
        "perfbench_schema_version": PERFBENCH_SCHEMA_VERSION,
        "scale": scale,
        "repeat": repeat,
        "kernels": kernels,
        "modes": list(modes),
        "engines": per_engine,
        "wall_clock_seconds": time.perf_counter() - started,
    }
    if "fast" in per_engine and "interpreted" in per_engine:
        slow = per_engine["interpreted"]["geomean_instr_per_sec"]
        fast = per_engine["fast"]["geomean_instr_per_sec"]
        report["speedup"] = fast / slow if slow else 0.0
    if profile:
        report["profile"] = _profile_fast_engine(traces, modes)
    return report


def _profile_fast_engine(traces, modes) -> dict:
    """cProfile one fast-engine pass; top functions by cumulative time.

    Complements the harness ``PROFILER`` (whose sections cover the cache
    and experiment layers) with function-level attribution of the
    simulation hot loop itself; the harness profiler's snapshot rides
    along so both views land in one report.
    """
    import cProfile
    import pstats

    from repro.harness.profiling import PROFILER

    profiler = cProfile.Profile()
    profiler.enable()
    with PROFILER.section("perfbench_profile_pass"):
        for trace in traces.values():
            for mode in modes:
                _measure_cell(trace, mode, "fast", repeat=1)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    top = []
    for func, (cc, nc, tottime, cumtime, _callers) in sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    ):
        filename, line, name = func
        if "cProfile" in filename or filename.startswith("<"):
            continue
        top.append({
            "function": f"{filename}:{line}({name})",
            "calls": nc,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        })
        if len(top) >= 10:
            break
    return {
        "sort": "cumulative",
        "top": top,
        "harness": PROFILER.snapshot(),
    }


def render_perfbench(report: dict) -> str:
    """One-screen human summary of a perfbench report."""
    lines = []
    engines = report["engines"]
    for engine in ("fast", "interpreted"):
        if engine not in engines:
            continue
        summary = engines[engine]
        lines.append(
            f"{engine:>12}: {summary['geomean_instr_per_sec']:>12,.0f} "
            f"instr/s geomean | "
            f"{summary['geomean_invocations_per_sec']:>10,.1f} invoc/s | "
            f"{summary['total_wall_seconds']:.2f}s over "
            f"{len(summary['cells'])} cells"
        )
    if "speedup" in report:
        lines.append(f"{'speedup':>12}: {report['speedup']:.2f}x "
                     f"(fast vs interpreted, geomean instr/s)")
    fast = engines.get("fast")
    if fast and "total_memo_hits" in fast:
        probes = fast["total_memo_hits"] + fast["total_memo_misses"]
        rate = fast["total_memo_hits"] / probes if probes else 0.0
        lines.append(
            f"{'memo':>12}: {fast['total_memo_hits']:,} hits / "
            f"{fast['total_memo_misses']:,} misses ({rate:.1%}) | "
            f"{fast['total_batched_invocations']:,} batched invocations"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# ``repro perfbench --compare A.json B.json``


def compare_perfbench(
    baseline: dict, candidate: dict, force: bool = False
) -> dict:
    """Per-cell throughput deltas between two perfbench reports.

    Reuses the compatibility discipline of :mod:`repro.obs.diffing`:
    mismatched perfbench schema versions are refused unless ``force``,
    and a code-fingerprint mismatch is surfaced as a warning (the usual
    case — comparing across commits is the point of the tool).
    """
    from repro.obs.diffing import DiffError

    warnings: list[str] = []
    for name, report in (("baseline", baseline), ("candidate", candidate)):
        if report.get("experiment") != "perfbench":
            raise DiffError(f"{name} report is not a perfbench report")
    a_ver = baseline.get("perfbench_schema_version")
    b_ver = candidate.get("perfbench_schema_version")
    if a_ver != b_ver:
        message = (
            f"perfbench schema mismatch: baseline v{a_ver}, "
            f"candidate v{b_ver}"
        )
        if not force:
            raise DiffError(message + " (use --force to compare anyway)")
        warnings.append(message)
    if baseline.get("fingerprint") != candidate.get("fingerprint"):
        warnings.append(
            "code fingerprints differ (expected when comparing commits)"
        )
    for knob in ("scale", "repeat"):
        if baseline.get(knob) != candidate.get(knob):
            warnings.append(
                f"{knob} differs: baseline {baseline.get(knob)!r}, "
                f"candidate {candidate.get(knob)!r}"
            )

    def _cells(report):
        out = {}
        for engine, summary in report.get("engines", {}).items():
            for cell in summary["cells"]:
                out[(engine, cell["kernel"], cell["mode"])] = cell
        return out

    a_cells, b_cells = _cells(baseline), _cells(candidate)
    rows = []
    for key in sorted(set(a_cells) & set(b_cells)):
        a, b = a_cells[key], b_cells[key]
        ratio = (
            b["instr_per_sec"] / a["instr_per_sec"]
            if a["instr_per_sec"] else None
        )
        rows.append({
            "engine": key[0],
            "kernel": key[1],
            "mode": key[2],
            "baseline_instr_per_sec": a["instr_per_sec"],
            "candidate_instr_per_sec": b["instr_per_sec"],
            "ratio": ratio,
        })
    only_a = sorted(set(a_cells) - set(b_cells))
    only_b = sorted(set(b_cells) - set(a_cells))
    if only_a:
        warnings.append(f"{len(only_a)} cells only in baseline")
    if only_b:
        warnings.append(f"{len(only_b)} cells only in candidate")

    per_engine = {}
    for engine in sorted({row["engine"] for row in rows}):
        per_engine[engine] = _geomean(
            row["ratio"] for row in rows if row["engine"] == engine
        )
    return {
        "kind": "perfbench_compare",
        "warnings": warnings,
        "cells": rows,
        "geomean_ratio": per_engine,
    }


def render_perfbench_compare(comparison: dict) -> str:
    """One-screen delta view: per-cell instr/sec ratio plus geomeans."""
    lines = []
    for warning in comparison["warnings"]:
        lines.append(f"warning: {warning}")
    lines.append(
        f"{'engine':>12} {'kernel':>8} {'mode':>14} "
        f"{'baseline':>14} {'candidate':>14} {'ratio':>8}"
    )
    for row in comparison["cells"]:
        ratio = f"{row['ratio']:.2f}x" if row["ratio"] else "n/a"
        lines.append(
            f"{row['engine']:>12} {row['kernel']:>8} {row['mode']:>14} "
            f"{row['baseline_instr_per_sec']:>14,.0f} "
            f"{row['candidate_instr_per_sec']:>14,.0f} {ratio:>8}"
        )
    for engine, ratio in comparison["geomean_ratio"].items():
        lines.append(
            f"{engine:>12} geomean instr/s ratio: {ratio:.3f}x "
            f"(candidate vs baseline)"
        )
    return "\n".join(lines)
