"""Pass-impact study: how optimization pipelines change what DynaSpAM
detects, maps, and squashes.

ROADMAP item 2's open question (and the arXiv 2307.02847 experiment):
does LICM help or hurt trace detection on control-heavy programs?  Does
LVN+DCE shrink traces enough to change mapping feasibility?  The study
harness answers it mechanically: every ``.spam`` corpus program runs
under each pass pipeline with decision records enabled, and the report
lays the per-pipeline detection/mapping/squash outcomes side by side,
with deltas against the unoptimized baseline pipeline.

Everything resolves through the standard layered run caches (each
(program, passes) pair has its own content-hash benchmark abbreviation),
so re-running a study only simulates what changed.
"""

from __future__ import annotations

import pathlib

from repro.harness.runner import program_simulation_report, report_provenance

#: Default pipelines, baseline first: the ``repro study`` and CI
#: ``study-smoke`` matrix.
DEFAULT_PIPELINES: tuple[tuple[str, ...], ...] = (
    (),
    ("lvn", "dce"),
    ("licm",),
)


def pipeline_label(passes: tuple[str, ...]) -> str:
    return "+".join(passes) if passes else "none"


def parse_pipeline(spec: str) -> tuple[str, ...]:
    """One ``--passes`` value -> a pipeline tuple (``none`` = baseline)."""
    spec = spec.strip()
    if not spec or spec.lower() == "none":
        return ()
    from repro.lang import parse_pass_spec

    return tuple(parse_pass_spec(spec))


def _row(report: dict) -> dict:
    """Flatten one decision-enabled program report into a study row."""
    decisions = report["decisions"]
    fates = decisions["trace_fates"]
    invocations = decisions["invocations"]
    return {
        "abbrev": report["program"]["abbrev"],
        "dynamic_instructions": report["dynamic_instructions"],
        "baseline_cycles": report["baseline_cycles"],
        "dynaspam_cycles": report["dynaspam_cycles"],
        "speedup": report["speedup"],
        "fabric_coverage": report["coverage"]["fabric"],
        "windows": decisions["windows"],
        "fates": fates["counts"],
        "unmappable_reasons": fates["unmappable_reasons"],
        "conserved": fates["conserved"],
        "mapping": decisions["mapping"],
        "invocations": {
            "committed": invocations["committed"],
            "squashed_branch": invocations["squashed_branch"],
            "squashed_memory": invocations["squashed_memory"],
            "deferred": invocations["deferred"],
        },
    }


def _delta(row: dict, base: dict) -> dict:
    """Per-row deltas vs the baseline pipeline's row."""
    return {
        "dynamic_instructions": (row["dynamic_instructions"]
                                 - base["dynamic_instructions"]),
        "dynaspam_cycles": row["dynaspam_cycles"] - base["dynaspam_cycles"],
        "speedup": row["speedup"] - base["speedup"],
        "windows_total": (row["windows"]["total"]
                          - base["windows"]["total"]),
        "offloaded": (row["fates"]["offloaded"]
                      - base["fates"]["offloaded"]),
        "unmappable": (row["fates"]["unmappable"]
                       - base["fates"]["unmappable"]),
        "committed": (row["invocations"]["committed"]
                      - base["invocations"]["committed"]),
        "squashed": (
            row["invocations"]["squashed_branch"]
            + row["invocations"]["squashed_memory"]
            - base["invocations"]["squashed_branch"]
            - base["invocations"]["squashed_memory"]
        ),
    }


def study_programs(
    programs_dir: str,
    pipelines: tuple[tuple[str, ...], ...] = DEFAULT_PIPELINES,
    only: tuple[str, ...] | None = None,
    tracker=None,
    **sim_knobs,
) -> dict:
    """Run every corpus program under every pipeline with decisions on.

    Returns the study report::

        {"pipelines": ["none", "lvn+dce", ...],
         "programs": {stem: {pipeline_label: row + "delta"}},
         "conserved": bool}    # every row's fates conserved

    ``only`` restricts to the named program stems.  Raises ``ValueError``
    when the directory has no (matching) programs; ``repro.lang`` errors
    propagate for the CLI to format.

    ``tracker`` (an ``repro.obs.progress.ProgressTracker``) receives one
    ``advance`` per finished study cell; its total is set here once the
    corpus has been globbed (programs x pipelines).
    """
    pipelines = tuple(dict.fromkeys(pipelines))  # dedup, keep order
    if not pipelines:
        raise ValueError("no pass pipelines to study")
    paths = sorted(pathlib.Path(programs_dir).glob("*.spam"))
    if only:
        wanted = set(only)
        paths = [p for p in paths if p.stem in wanted]
        missing = wanted - {p.stem for p in paths}
        if missing:
            raise ValueError(
                f"no programs named {', '.join(sorted(missing))} under "
                f"{programs_dir}"
            )
    if not paths:
        raise ValueError(f"no .spam programs under {programs_dir}")

    labels = [pipeline_label(p) for p in pipelines]
    if tracker is not None:
        tracker.total = len(paths) * len(pipelines)
    programs: dict[str, dict] = {}
    conserved = True
    for path in paths:
        rows: dict[str, dict] = {}
        for passes in pipelines:
            label = pipeline_label(passes)
            report = program_simulation_report(
                str(path), passes, decisions=True, **sim_knobs
            )
            rows[label] = _row(report)
            if tracker is not None:
                tracker.advance(
                    1,
                    int(report["dynamic_instructions"]),
                    detail=f"{path.stem}/{label}",
                )
        base = rows[labels[0]]
        for label, row in rows.items():
            row["delta"] = _delta(row, base)
            conserved = conserved and row["conserved"]
        programs[path.stem] = rows
    return {
        **report_provenance(),
        "experiment": "study",
        "programs_dir": str(programs_dir),
        "pipelines": labels,
        "programs": programs,
        "conserved": conserved,
    }


def render_study(study: dict) -> str:
    """Human rendering: one side-by-side table per program."""
    from repro.harness.reporting import format_table

    labels = study["pipelines"]
    base_label = labels[0]
    lines = [
        f"pass-impact study over {study['programs_dir']} "
        f"({len(study['programs'])} programs x "
        f"{len(labels)} pipelines; deltas vs '{base_label}')"
    ]
    metrics = [
        ("dynamic instrs", lambda r: r["dynamic_instructions"]),
        ("DynaSpAM cycles", lambda r: r["dynaspam_cycles"]),
        ("speedup", lambda r: f"{r['speedup']:.2f}"),
        ("fabric coverage", lambda r: f"{r['fabric_coverage']:.1%}"),
        ("windows", lambda r: r["windows"]["total"]),
        ("offloaded traces", lambda r: r["fates"]["offloaded"]),
        ("unmappable traces", lambda r: r["fates"]["unmappable"]),
        ("mapping attempts", lambda r: r["mapping"]["attempts"]),
        ("committed invocations",
         lambda r: r["invocations"]["committed"]),
        ("squashed invocations",
         lambda r: (r["invocations"]["squashed_branch"]
                    + r["invocations"]["squashed_memory"])),
        ("deferred invocations",
         lambda r: r["invocations"]["deferred"]),
    ]
    for stem, rows in study["programs"].items():
        table_rows = []
        for name, getter in metrics:
            table_rows.append(
                [name] + [getter(rows[label]) for label in labels]
            )
        lines.append("")
        lines.append(
            format_table(["metric"] + list(labels), table_rows, title=stem)
        )
    state = "PASS" if study["conserved"] else "FAIL"
    lines.append("")
    lines.append(f"decision conservation across all rows: {state}")
    return "\n".join(lines)
