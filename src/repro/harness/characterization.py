"""Workload characterization table (a companion to the paper's Table 3).

Summarizes each benchmark analog's dynamic properties — instruction mix,
branch behaviour, memory intensity, footprint — the quantities that drive
trace detection quality and fabric utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.reporting import format_table
from repro.workloads import generate_trace
from repro.workloads.characterize import characterize, WorkloadProfile

PAPER_ORDER = ("BP", "BFS", "BT", "HS", "KM", "LD", "KNN", "NW", "PF",
               "PTF", "SRAD")


@dataclass
class CharacterizationResult:
    scale: float
    profiles: dict[str, WorkloadProfile] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        for abbrev, p in self.profiles.items():
            fp = (p.pool_mix.get("fp_alu", 0.0)
                  + p.pool_mix.get("fp_muldiv", 0.0))
            rows.append([
                abbrev,
                p.dynamic_instructions,
                f"{p.branch_fraction:.1%}",
                f"{p.taken_fraction:.0%}",
                f"{p.memory_fraction:.1%}",
                f"{fp:.1%}",
                round(p.mean_block_run, 1),
                p.unique_pcs,
                p.unique_blocks_touched,
            ])
        return format_table(
            ["Benchmark", "dyn insts", "branches", "taken", "memory",
             "FP ops", "mean run", "static PCs", "data blocks"],
            rows,
            title="Workload characterization (companion to Table 3)",
        )


def characterization(scale: float = 1.0) -> CharacterizationResult:
    result = CharacterizationResult(scale)
    for abbrev in PAPER_ORDER:
        trace = generate_trace(abbrev, scale).trace
        result.profiles[abbrev] = characterize(abbrev, trace)
    return result
