"""One driver per evaluation table and figure.

Every function returns a structured result (so benchmarks and tests can
assert on it) and can render itself as text.  The mapping from experiment
to paper artifact is the DESIGN.md experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy import EnergyModel, FabricAreaModel, FIGURE9_COMPONENTS, SramModel
from repro.energy.area import MODULE_AREAS_UM2, PAPER_CONFIG_CACHE_MM2
from repro.harness.parallel import warm_cache
from repro.harness.reporting import format_bars, format_stacked, format_table
from repro.harness.runner import (
    baseline_spec,
    dynaspam_spec,
    geomean,
    run_baseline,
    run_dynaspam,
)
from repro.ooo.config import CoreConfig
from repro.workloads import ALL_ABBREVS, BENCHMARKS

#: Table 3 presentation order.
PAPER_ORDER = ("BP", "BFS", "BT", "HS", "KM", "LD", "KNN", "NW", "PF",
               "PTF", "SRAD")


# ---------------------------------------------------------------------------
# Table 3 / Table 4 (descriptive)
# ---------------------------------------------------------------------------
def table3_benchmarks() -> str:
    rows = [
        [b.name, b.abbrev, b.domain, b.kernel, b.description]
        for b in (BENCHMARKS[a] for a in PAPER_ORDER)
    ]
    return format_table(
        ["Benchmark Name", "Abbrev", "Domain", "Kernel", "Description"],
        rows,
        title="Table 3: Programs tested from the Rodinia Benchmark Suite",
    )


def table4_parameters() -> str:
    cfg = CoreConfig()
    rows = [
        ["Fetch Unit", f"{cfg.ras_entries}-entry return stack; "
                       f"{cfg.btb_entries}-entry BTB branch predictor"],
        ["Caches", f"{cfg.l1i_kb}KB {cfg.l1i_assoc}-way {cfg.l1i_latency}-cycle "
                   f"ICache; {cfg.l1d_kb}KB L1D; {cfg.l2_kb // 1024}MB "
                   f"{cfg.l2_assoc}-way {cfg.l2_latency}-cycle L2"],
        ["Window Size", f"{cfg.rob_entries}-entry ROB; {cfg.phys_registers}-entry "
                        f"physical RF; {cfg.issue_width}-wide issue"],
        ["Execution Units", f"{cfg.fu_pools['int_alu']} Int ALUs; "
                            f"{cfg.fu_pools['int_muldiv']} Int MUL/DIV; "
                            f"{cfg.fu_pools['fp_alu']} FP ALUs; "
                            f"{cfg.fu_pools['fp_muldiv']} FP MUL/DIV; "
                            f"{cfg.fu_pools['ldst']} LDST units"],
        ["Memory Unit", f"{cfg.load_queue}-entry load queue; "
                        f"{cfg.store_queue}-entry store queue"],
        ["Fabric", "8-entry buffers; same execution units as OOO per stripe; "
                   "16 stripes; 3 pass regs per FU; 16 live-in/out FIFOs"],
        ["Config. Cache", "16-entry, 16-byte blocks, 3-bit saturating "
                          "counters, threshold 4"],
    ]
    return format_table(["Parameter", "Setting"], rows,
                        title="Table 4: Evaluation system parameters")


def table7_related_work() -> str:
    """Table 7: DynaSpAM vs other in-core reconfigurable engines.

    A qualitative feature matrix (from the paper's related-work section);
    the quantitative side of the CCA comparison is
    ``benchmarks/bench_ablation_geometry.py``.
    """
    rows = [
        ["PRISC / Chimaera", "no", "no", "no", "no", "no", "Subgraph"],
        ["DySER", "no", "no", "no", "yes", "yes", "Subgraph"],
        ["ADRES / PipeRench", "no", "no", "no", "yes", "yes", "Kernel"],
        ["BERET", "partial", "no", "no", "yes", "yes", "Subgraph"],
        ["SGMF", "no", "no", "no", "yes", "yes", "Kernel"],
        ["Tartan / WaveScalar", "no", "no", "no", "yes", "yes", "Whole Program"],
        ["CCA", "yes", "yes", "no", "no", "no", "Subgraph"],
        ["DynaSpAM", "yes", "yes", "yes", "yes", "yes", "Kernel"],
    ]
    return format_table(
        ["Engine", "No compiler P&R", "Dynamic mapping",
         "Resource-aware sched.", "Pipelined exec.", "Dataflow",
         "Target range"],
        rows,
        title="Table 7: comparison with other in-core reconfigurable "
              "computation engines",
    )


# ---------------------------------------------------------------------------
# Figure 7: trace coverage vs trace length
# ---------------------------------------------------------------------------
@dataclass
class CoverageResult:
    scale: float
    lengths: tuple[int, ...]
    #: coverage[abbrev][length] = {"host": f, "mapping": f, "fabric": f}
    coverage: dict[str, dict[int, dict[str, float]]] = field(default_factory=dict)

    def render(self) -> str:
        out = ["Figure 7: dynamic-instruction coverage by venue "
               f"(trace lengths {list(self.lengths)})"]
        for abbrev in self.coverage:
            rows = {
                f"len {length}": parts
                for length, parts in self.coverage[abbrev].items()
            }
            out.append(format_stacked(rows, title=f"\n{abbrev}"))
        return "\n".join(out)


def figure7_coverage(
    scale: float = 1.0, lengths: tuple[int, ...] = (16, 24, 32, 40),
    jobs: int | None = None,
) -> CoverageResult:
    warm_cache(
        (dynaspam_spec(abbrev, scale, trace_length=length)
         for abbrev in PAPER_ORDER for length in lengths),
        jobs,
    )
    result = CoverageResult(scale, tuple(lengths))
    for abbrev in PAPER_ORDER:
        per_length = {}
        for length in lengths:
            run = run_dynaspam(abbrev, scale, trace_length=length)
            per_length[length] = run.coverage
        result.coverage[abbrev] = per_length
    return result


# ---------------------------------------------------------------------------
# Table 5: detected traces and configuration lifetime
# ---------------------------------------------------------------------------
@dataclass
class LifetimeResult:
    scale: float
    fabric_counts: tuple[int, ...]
    rows: dict[str, dict] = field(default_factory=dict)
    bfs_eight_fabrics: float = 0.0

    def render(self) -> str:
        headers = (["Benchmark", "Mapped", "Offloaded"]
                   + [f"{n} fabric{'s' if n > 1 else ''}"
                      for n in self.fabric_counts])
        table_rows = []
        for abbrev, row in self.rows.items():
            table_rows.append(
                [abbrev, row["mapped"], row["offloaded"]]
                + [round(row["lifetime"][n], 1) for n in self.fabric_counts]
            )
        text = format_table(
            headers, table_rows,
            title="Table 5: Detected traces and average configuration "
                  "lifetime (invocations)",
        )
        return text + (
            f"\nBFS with 8 fabrics: {self.bfs_eight_fabrics:.1f} "
            "invocations per configuration"
        )


def table5_lifetime(
    scale: float = 1.0, fabric_counts: tuple[int, ...] = (1, 2, 4),
    jobs: int | None = None,
) -> LifetimeResult:
    warm_cache(
        [dynaspam_spec(abbrev, scale, num_fabrics=count)
         for abbrev in PAPER_ORDER for count in fabric_counts]
        + [dynaspam_spec("BFS", scale, num_fabrics=8)],
        jobs,
    )
    result = LifetimeResult(scale, tuple(fabric_counts))
    for abbrev in PAPER_ORDER:
        lifetime = {}
        mapped = offloaded = 0
        for count in fabric_counts:
            run = run_dynaspam(abbrev, scale, num_fabrics=count)
            lifetime[count] = run.mean_lifetime
            if count == 1:
                mapped = run.mapped_traces
                offloaded = run.offloaded_traces
        result.rows[abbrev] = {
            "mapped": mapped,
            "offloaded": offloaded,
            "lifetime": lifetime,
        }
    bfs8 = run_dynaspam("BFS", scale, num_fabrics=8)
    result.bfs_eight_fabrics = bfs8.mean_lifetime
    return result


# ---------------------------------------------------------------------------
# Figure 8: performance comparison
# ---------------------------------------------------------------------------
@dataclass
class PerformanceResult:
    scale: float
    #: speedups[abbrev] = {"mapping": x, "no_spec": x, "spec": x}
    speedups: dict[str, dict[str, float]] = field(default_factory=dict)

    def series_geomean(self, series: str) -> float:
        return geomean(v[series] for v in self.speedups.values())

    def render(self) -> str:
        rows = [
            [abbrev, s["mapping"], s["no_spec"], s["spec"]]
            for abbrev, s in self.speedups.items()
        ]
        rows.append([
            "GEOMEAN",
            self.series_geomean("mapping"),
            self.series_geomean("no_spec"),
            self.series_geomean("spec"),
        ])
        return format_table(
            ["Benchmark", "mapping only", "accel w/o spec", "accel w/ spec"],
            rows,
            title="Figure 8: speedup vs host OOO pipeline",
        )


def figure8_specs(scale: float = 1.0) -> list:
    """Every run the Figure 8 sweep needs (baseline + three series)."""
    specs = []
    for abbrev in PAPER_ORDER:
        specs.append(baseline_spec(abbrev, scale))
        specs.append(dynaspam_spec(abbrev, scale, mode="mapping_only"))
        specs.append(dynaspam_spec(abbrev, scale, speculation=False))
        specs.append(dynaspam_spec(abbrev, scale))
    return specs


def figure8_performance(
    scale: float = 1.0, jobs: int | None = None
) -> PerformanceResult:
    warm_cache(figure8_specs(scale), jobs)
    result = PerformanceResult(scale)
    for abbrev in PAPER_ORDER:
        base = run_baseline(abbrev, scale).cycles
        result.speedups[abbrev] = {
            "mapping": base / run_dynaspam(abbrev, scale,
                                           mode="mapping_only").cycles,
            "no_spec": base / run_dynaspam(abbrev, scale,
                                           speculation=False).cycles,
            "spec": base / run_dynaspam(abbrev, scale).cycles,
        }
    return result


def speedup_warnings(result: PerformanceResult) -> list[str]:
    """Regression callouts for a Figure 8 sweep (``repro bench``).

    One warning per series whose geomean dips below 1.0x — i.e. DynaSpAM
    made the suite *slower* than the host pipeline on average — naming
    the worst benchmark so the reader knows where to point
    ``repro analyze``.
    """
    warnings = []
    for series in ("mapping", "no_spec", "spec"):
        geo = result.series_geomean(series)
        if geo < 1.0:
            worst = min(result.speedups,
                        key=lambda a: result.speedups[a][series])
            warnings.append(
                f"geomean speedup for '{series}' is {geo:.3f}x (< 1.0x): "
                f"suite runs slower than the host pipeline; worst is "
                f"{worst} at {result.speedups[worst][series]:.3f}x — "
                f"try `repro analyze {worst}`"
            )
    return warnings


def figure8_accounting(scale: float = 1.0) -> tuple[dict, dict]:
    """Cycle accounting + fabric utilization for the Figure 8 runs.

    Resolves every run through the layered caches — called right after
    :func:`figure8_performance` it re-reads the in-process results and
    simulates nothing, so attaching accounting to a bench report costs no
    wall clock and cannot perturb its timings.

    Returns ``(accounting, fabric_utilization)``:
    ``accounting[abbrev][series]`` is a ``bucket_breakdown`` dict and
    ``fabric_utilization[abbrev]`` the accelerated run's pool summary.
    """
    from repro.obs.accounting import bucket_breakdown

    accounting: dict[str, dict] = {}
    fabric_utilization: dict[str, dict] = {}
    for abbrev in PAPER_ORDER:
        spec_run = run_dynaspam(abbrev, scale)
        accounting[abbrev] = {
            "baseline": bucket_breakdown(
                run_baseline(abbrev, scale).stats.as_dict()),
            "mapping": bucket_breakdown(
                run_dynaspam(abbrev, scale,
                             mode="mapping_only").stats.as_dict()),
            "no_spec": bucket_breakdown(
                run_dynaspam(abbrev, scale,
                             speculation=False).stats.as_dict()),
            "spec": bucket_breakdown(spec_run.stats.as_dict()),
        }
        fabric_utilization[abbrev] = spec_run.fabric_utilization
    return accounting, fabric_utilization


# ---------------------------------------------------------------------------
# Figure 9: energy comparison
# ---------------------------------------------------------------------------
@dataclass
class EnergyResult:
    scale: float
    #: components[abbrev] = {"baseline": {...}, "dynaspam": {...}} —
    #: per-component energy normalized to the baseline total.
    components: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    reductions: dict[str, float] = field(default_factory=dict)

    @property
    def geomean_reduction(self) -> float:
        return 1.0 - geomean(1.0 - r for r in self.reductions.values())

    def render(self) -> str:
        out = ["Figure 9: normalized energy by component "
               "(baseline -> DynaSpAM)"]
        for abbrev, both in self.components.items():
            base = both["baseline"]
            dyna = both["dynaspam"]
            parts = [
                f"{name}:{base.get(name, 0):.2f}->{dyna.get(name, 0):.2f}"
                for name in FIGURE9_COMPONENTS
                if base.get(name, 0) >= 0.005 or dyna.get(name, 0) >= 0.005
            ]
            out.append(
                f"{abbrev:5s} total {sum(base.values()):.2f}->"
                f"{sum(dyna.values()):.2f} "
                f"(reduction {self.reductions[abbrev]:6.1%})  "
                + "  ".join(parts)
            )
        out.append(f"geomean energy reduction: {self.geomean_reduction:.1%}")
        return "\n".join(out)


def figure9_energy(
    scale: float = 1.0, jobs: int | None = None
) -> EnergyResult:
    warm_cache(
        [spec for abbrev in PAPER_ORDER
         for spec in (baseline_spec(abbrev, scale),
                      dynaspam_spec(abbrev, scale))],
        jobs,
    )
    model = EnergyModel()
    result = EnergyResult(scale)
    for abbrev in PAPER_ORDER:
        base = model.breakdown(run_baseline(abbrev, scale).stats)
        dyna = model.breakdown(run_dynaspam(abbrev, scale).stats)
        result.components[abbrev] = {
            "baseline": base.normalized_to(base),
            "dynaspam": dyna.normalized_to(base),
        }
        result.reductions[abbrev] = dyna.reduction_vs(base)
    return result


# ---------------------------------------------------------------------------
# Table 6: area comparison
# ---------------------------------------------------------------------------
@dataclass
class AreaResult:
    modules: dict[str, float]
    fabric_8_stripes_mm2: float
    fabric_16_stripes_mm2: float
    config_cache_mm2: float

    def render(self) -> str:
        rows = [[name, area] for name, area in self.modules.items()]
        text = format_table(
            ["Module", "Area (um^2)"], rows,
            title="Table 6: area comparison for different components",
        )
        return text + (
            f"\nfabric area @ 8 stripes:  {self.fabric_8_stripes_mm2:.2f} mm^2"
            f" (paper: 2.9 mm^2)"
            f"\nfabric area @ 16 stripes: {self.fabric_16_stripes_mm2:.2f} mm^2"
            f"\nconfiguration cache:      {self.config_cache_mm2:.4f} mm^2"
            f" (paper: {PAPER_CONFIG_CACHE_MM2} mm^2)"
        )


def table6_area() -> AreaResult:
    model = FabricAreaModel()
    return AreaResult(
        modules=dict(MODULE_AREAS_UM2),
        fabric_8_stripes_mm2=model.fabric_area_mm2(8),
        fabric_16_stripes_mm2=model.fabric_area_mm2(16),
        config_cache_mm2=SramModel().area_mm2,
    )
