"""Simulation drivers with run-level caching.

Figure 8 and Figure 9 share the same accelerated runs, and Figure 7 reuses
runs across trace lengths; caching by run key keeps a full experiment
sweep to one simulation per distinct configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import DynaSpAM, DynaSpAMConfig, DynaSpAMResult
from repro.ooo.pipeline import OOOPipeline, PipelineResult
from repro.workloads import generate_trace


@dataclass(frozen=True)
class RunKey:
    """Identity of one simulation run."""

    abbrev: str
    scale: float
    mode: str = "baseline"
    speculation: bool = True
    trace_length: int = 32
    num_fabrics: int = 1
    mapper: str = "resource_aware"


_BASELINE_CACHE: dict[tuple, PipelineResult] = {}
_DYNASPAM_CACHE: dict[RunKey, DynaSpAMResult] = {}


def clear_run_cache() -> None:
    _BASELINE_CACHE.clear()
    _DYNASPAM_CACHE.clear()


def run_baseline(abbrev: str, scale: float = 1.0) -> PipelineResult:
    """Simulate a benchmark on the plain host OOO pipeline."""
    key = (abbrev, scale)
    if key not in _BASELINE_CACHE:
        trace = generate_trace(abbrev, scale)
        _BASELINE_CACHE[key] = OOOPipeline().run_trace(trace.trace)
    return _BASELINE_CACHE[key]


def run_dynaspam(
    abbrev: str,
    scale: float = 1.0,
    mode: str = "accelerate",
    speculation: bool = True,
    trace_length: int = 32,
    num_fabrics: int = 1,
    mapper: str = "resource_aware",
) -> DynaSpAMResult:
    """Simulate a benchmark on the DynaSpAM-augmented core."""
    key = RunKey(abbrev, scale, mode, speculation, trace_length,
                 num_fabrics, mapper)
    if key not in _DYNASPAM_CACHE:
        trace = generate_trace(abbrev, scale)
        machine = DynaSpAM(
            ds_config=DynaSpAMConfig(
                mode=mode,
                speculation=speculation,
                trace_length=trace_length,
                num_fabrics=num_fabrics,
                mapper=mapper,
            )
        )
        _DYNASPAM_CACHE[key] = machine.run(trace.trace, trace.program)
    return _DYNASPAM_CACHE[key]


def geomean(values) -> float:
    """Geometric mean (the paper's summary statistic)."""
    values = list(values)
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
