"""Simulation drivers with layered run caching.

Figure 8 and Figure 9 share the same accelerated runs, and Figure 7 reuses
runs across trace lengths.  A run is resolved through three layers,
cheapest first:

1. the in-process ``_RUN_CACHE`` dict,
2. the content-addressed on-disk cache (``repro.harness.diskcache``),
3. a fresh simulation (whose result seeds both caches).

Cache identity is the *full* frozen configuration — every field of
``DynaSpAMConfig``, ``CoreConfig``, and ``FabricConfig`` — so runs that
differ in any knob (``hot_threshold``, ``ready_threshold``, fabric
geometry, ...) can never serve each other's results.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any

import repro.harness.diskcache as diskcache
from repro.core import DynaSpAM, DynaSpAMConfig, DynaSpAMResult
from repro.fabric.config import FabricConfig
from repro.harness.profiling import PROFILER
from repro.obs.runtime import TRACER
from repro.ooo.config import CoreConfig
from repro.ooo.fastpath import make_pipeline
from repro.ooo.pipeline import OOOPipeline, PipelineResult
from repro.workloads import generate_trace

#: Version of the JSON report layout shared by ``repro run --json``,
#: ``repro bench`` reports, and service job results.  ``repro diff``
#: refuses to attribute across different schema versions.  Bump when a
#: report field changes meaning; adding fields does not require a bump.
REPORT_SCHEMA_VERSION = 2


def report_provenance() -> dict:
    """The identity block every JSON report carries (``repro diff`` reads
    it to warn on cross-version comparisons)."""
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "code_fingerprint": diskcache.code_fingerprint(),
    }


def freeze_config(obj) -> Any:
    """Recursively freeze a config dataclass into a hashable, stable tuple."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return tuple(
            (f.name, freeze_config(getattr(obj, f.name)))
            for f in dataclasses.fields(obj)
        )
    if isinstance(obj, dict):
        return tuple(
            sorted((k, freeze_config(v)) for k, v in obj.items())
        )
    if isinstance(obj, (list, tuple)):
        return tuple(freeze_config(v) for v in obj)
    return obj


@dataclass(frozen=True)
class RunKey:
    """Identity of one simulation run: benchmark, scale, frozen configs."""

    kind: str              # "baseline" | "dynaspam"
    abbrev: str
    scale: float
    config: tuple = ()


@dataclass
class RunSpec:
    """A run request.

    The live config objects travel with the spec (they pickle cleanly to
    worker processes); ``key`` freezes them into the cache identity.
    """

    kind: str              # "baseline" | "dynaspam"
    abbrev: str
    scale: float
    ds_config: DynaSpAMConfig | None = None
    core_config: CoreConfig | None = None
    fabric_config: FabricConfig | None = None

    @property
    def key(self) -> RunKey:
        core = freeze_config(self.core_config or CoreConfig())
        if self.kind == "baseline":
            frozen = (("core", core),)
        else:
            frozen = (
                ("ds", freeze_config(self.ds_config or DynaSpAMConfig())),
                ("core", core),
                ("fabric",
                 freeze_config(self.fabric_config or FabricConfig())),
            )
        return RunKey(self.kind, self.abbrev, self.scale, frozen)


def baseline_spec(
    abbrev: str, scale: float = 1.0, core_config: CoreConfig | None = None
) -> RunSpec:
    return RunSpec("baseline", abbrev, scale, core_config=core_config)


def dynaspam_spec(
    abbrev: str,
    scale: float = 1.0,
    *,
    config: DynaSpAMConfig | None = None,
    core_config: CoreConfig | None = None,
    fabric_config: FabricConfig | None = None,
    **knobs,
) -> RunSpec:
    """Build a DynaSpAM run spec from a full config or individual knobs."""
    if config is None:
        config = DynaSpAMConfig(**knobs)
    elif knobs:
        raise TypeError("pass either a full config or knobs, not both")
    return RunSpec(
        "dynaspam", abbrev, scale,
        ds_config=config, core_config=core_config,
        fabric_config=fabric_config,
    )


# ---------------------------------------------------------------------------
# Layered resolution
# ---------------------------------------------------------------------------
_RUN_CACHE: dict[RunKey, Any] = {}


def clear_run_cache() -> None:
    """Drop the in-process run cache (the disk layer is untouched)."""
    _RUN_CACHE.clear()


def peek_cached(key: RunKey):
    """Resolve a key from the memory or disk layers only (no simulation)."""
    cached = _RUN_CACHE.get(key)
    if cached is not None:
        PROFILER.bump("run_cache_memory_hits")
        return cached
    disk = diskcache.shared_cache("runs")
    if disk is not None:
        with PROFILER.section("disk_cache_io"):
            result = disk.get(key)
        if result is not None:
            _RUN_CACHE[key] = result
            return result
    return None


def seed_run_cache(key: RunKey, result) -> None:
    """Install an externally computed result into the in-memory layer."""
    _RUN_CACHE[key] = result


def _simulate(spec: RunSpec, sink=None):
    with TRACER.span("sim.trace_generation",
                     benchmark=spec.abbrev, scale=spec.scale):
        with PROFILER.section("trace_generation"):
            trace = generate_trace(spec.abbrev, spec.scale)
    if spec.kind == "baseline":
        with TRACER.span("sim.baseline",
                         benchmark=spec.abbrev, scale=spec.scale):
            with PROFILER.section("simulate_baseline"):
                return make_pipeline(spec.core_config).run_trace(trace.trace)
    machine = DynaSpAM(
        core_config=spec.core_config,
        fabric_config=spec.fabric_config,
        ds_config=spec.ds_config,
        sink=sink,
    )
    with TRACER.span("sim.dynaspam",
                     benchmark=spec.abbrev, scale=spec.scale):
        with PROFILER.section("simulate_dynaspam"):
            result = machine.run(trace.trace, trace.program)
    PROFILER.bump("predict_memo_hits", result.stats.predict_memo_hits)
    PROFILER.bump("predict_memo_misses", result.stats.predict_memo_misses)
    return result


def execute_spec(spec: RunSpec, sink=None):
    """Resolve one run through memory -> disk -> simulation.

    A run with an event sink always simulates fresh — a cached result has
    no event stream to replay.  It still *seeds* the caches: tracing is
    bit-identical by construction, so the traced result is the same object
    an untraced run would have produced.
    """
    key = spec.key
    if sink is None:
        cached = peek_cached(key)
        if cached is not None:
            return cached
    PROFILER.bump("runs_simulated")
    with TRACER.span("sim.execute_spec", kind=spec.kind,
                     benchmark=spec.abbrev, scale=spec.scale):
        result = _simulate(spec, sink=sink)
    _RUN_CACHE[key] = result
    disk = diskcache.shared_cache("runs")
    if disk is not None:
        with PROFILER.section("disk_cache_io"):
            disk.put(key, result)
    return result


# ---------------------------------------------------------------------------
# Public drivers
# ---------------------------------------------------------------------------
def run_baseline(
    abbrev: str, scale: float = 1.0, core_config: CoreConfig | None = None
) -> PipelineResult:
    """Simulate a benchmark on the plain host OOO pipeline."""
    return execute_spec(baseline_spec(abbrev, scale, core_config))


def run_dynaspam(
    abbrev: str,
    scale: float = 1.0,
    mode: str = "accelerate",
    speculation: bool = True,
    trace_length: int = 32,
    num_fabrics: int = 1,
    mapper: str = "resource_aware",
    *,
    config: DynaSpAMConfig | None = None,
    core_config: CoreConfig | None = None,
    fabric_config: FabricConfig | None = None,
    sink=None,
) -> DynaSpAMResult:
    """Simulate a benchmark on the DynaSpAM-augmented core.

    ``sink`` (any ``repro.obs.EventSink``) records the lifecycle event
    stream; it forces a fresh simulation but never changes its numbers.
    """
    if config is None:
        config = DynaSpAMConfig(
            mode=mode,
            speculation=speculation,
            trace_length=trace_length,
            num_fabrics=num_fabrics,
            mapper=mapper,
        )
    return execute_spec(
        dynaspam_spec(
            abbrev, scale, config=config,
            core_config=core_config, fabric_config=fabric_config,
        ),
        sink=sink,
    )


def simulation_report(
    abbrev: str,
    scale: float = 1.0,
    *,
    mode: str = "accelerate",
    speculation: bool = True,
    trace_length: int = 32,
    num_fabrics: int = 1,
    mapper: str = "resource_aware",
    sink=None,
    decisions: bool = False,
) -> dict:
    """Baseline-vs-DynaSpAM comparison for one benchmark, as a JSON dict.

    This is the shared report builder behind ``repro run --json`` and
    the service's job results — both resolve through the layered run
    caches, so a served job and a CLI run of the same spec are not just
    equal but the very same cached simulation.  Passing ``sink`` records
    the DynaSpAM run's lifecycle event stream without changing a single
    reported number.

    ``decisions=True`` folds the event stream through a
    ``repro.obs.decisions.DecisionSink`` and attaches a ``decisions``
    block (trace fates, invocation outcomes, lost-cycles attribution).
    It is an explicit opt-in — merely passing ``sink`` never changes the
    report, so traced and untraced reports stay byte-identical.
    """
    from repro.energy import EnergyModel
    from repro.obs.accounting import bucket_breakdown

    decision_sink = None
    if decisions:
        from repro.obs.decisions import (
            DecisionSink, attribute_lost_cycles,
        )
        from repro.obs.events import TeeSink

        decision_sink = DecisionSink()
        sink = (
            decision_sink if sink is None else TeeSink(sink, decision_sink)
        )

    with TRACER.span("sim.report", benchmark=abbrev, scale=scale):
        run = generate_trace(abbrev, scale)
        baseline = run_baseline(abbrev, scale)
        result = run_dynaspam(
            abbrev, scale, mode=mode, speculation=speculation,
            trace_length=trace_length, num_fabrics=num_fabrics, mapper=mapper,
            sink=sink,
        )
    model = EnergyModel()
    base_energy = model.breakdown(baseline.stats)
    dyna_energy = model.breakdown(result.stats)
    report = {
        **report_provenance(),
        "benchmark": abbrev,
        "scale": scale,
        "mode": mode,
        "speculation": speculation,
        "dynamic_instructions": run.dynamic_count,
        "baseline_cycles": baseline.cycles,
        "baseline_ipc": baseline.ipc,
        "dynaspam_cycles": result.cycles,
        "speedup": baseline.cycles / result.cycles if result.cycles else 0.0,
        "coverage": result.coverage,
        "mapped_traces": result.mapped_traces,
        "offloaded_traces": result.offloaded_traces,
        "fabric_invocations": result.stats.fabric_invocations,
        "mean_configuration_lifetime": result.mean_lifetime,
        "squashes": result.squashes,
        "reconfigurations": result.reconfigurations,
        "energy_reduction": dyna_energy.reduction_vs(base_energy),
        "energy_components_normalized": dyna_energy.normalized_to(base_energy),
        # Top-down cycle accounting (repro.obs.accounting): exclusive
        # buckets summing exactly to each run's cycles, plus the fabric
        # occupancy summary — the inputs of `repro analyze` / `repro diff`.
        "cycle_accounting": {
            "baseline": bucket_breakdown(baseline.stats.as_dict()),
            "dynaspam": bucket_breakdown(result.stats.as_dict()),
        },
        "fabric_utilization": result.fabric_utilization,
        # Full counter blocks, generated from dataclasses.fields so a new
        # PipelineStats counter can never be silently omitted from --json.
        "stats": result.stats.as_dict(),
        "baseline_stats": baseline.stats.as_dict(),
    }
    if decision_sink is not None:
        stats_dict = result.stats.as_dict()
        breakdown = bucket_breakdown(stats_dict)
        block = decision_sink.as_dict()
        block["attribution"] = attribute_lost_cycles(
            block, stats_dict, breakdown
        )
        report["decisions"] = block
    return report


def program_simulation_report(
    path: str,
    passes: tuple[str, ...] = (),
    **sim_knobs,
) -> dict:
    """``simulation_report`` for a frontend-ingested ``.spam`` program.

    Registers the program in the benchmark registry (its content-hash
    abbreviation keys all caches), verifies the lowered program's
    architectural output against the reference interpreter, and then
    reports through the exact same pipeline as the Table 3 kernels.
    Raises ``repro.lang.LangError`` on parse/check failures and
    ``AssertionError`` if simulator and interpreter outputs ever diverge.
    """
    import pathlib

    from repro.lang import interpret, load_module, output_of, run_passes
    from repro.workloads.suite import register_program

    with TRACER.span("ingest.program", program=str(path)):
        bench = register_program(path, passes)
        module = load_module(
            pathlib.Path(path).read_text(), filename=str(path)
        )
        if passes:
            module = run_passes(module, list(passes))
        ref = interpret(module)
        trace = generate_trace(bench.abbrev)
        output = output_of(trace)
    assert output == ref.output, (
        f"{path}: simulated output {output} != interpreter {ref.output}"
    )
    report = simulation_report(bench.abbrev, **sim_knobs)
    report["program"] = {
        "path": str(path),
        "passes": list(passes),
        "abbrev": bench.abbrev,
        "output": output,
        "output_matches_interpreter": True,
        "interpreter_dynamic_count": ref.dynamic_count,
    }
    return report


def geomean(values) -> float:
    """Geometric mean (the paper's summary statistic)."""
    values = list(values)
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
