"""Experiment harness: one driver per evaluation table and figure.

``python -m repro.harness <experiment>`` regenerates any of: ``table3``,
``table4``, ``fig7``, ``table5``, ``fig8``, ``fig9``, ``table6``, or
``all``.  The ``benchmarks/`` directory wraps the same drivers in
pytest-benchmark targets.
"""

from repro.harness.runner import (
    baseline_spec,
    clear_run_cache,
    dynaspam_spec,
    run_baseline,
    run_dynaspam,
    simulation_report,
    RunKey,
    RunSpec,
)
from repro.harness.parallel import (
    default_jobs,
    execute_runs,
    max_jobs,
    warm_cache,
)
from repro.harness.experiments import (
    figure7_coverage,
    figure8_accounting,
    figure8_performance,
    figure9_energy,
    speedup_warnings,
    table3_benchmarks,
    table4_parameters,
    table5_lifetime,
    table6_area,
)

__all__ = [
    "baseline_spec",
    "clear_run_cache",
    "default_jobs",
    "dynaspam_spec",
    "execute_runs",
    "figure7_coverage",
    "figure8_accounting",
    "figure8_performance",
    "figure9_energy",
    "speedup_warnings",
    "max_jobs",
    "run_baseline",
    "run_dynaspam",
    "simulation_report",
    "RunKey",
    "RunSpec",
    "table3_benchmarks",
    "table4_parameters",
    "table5_lifetime",
    "table6_area",
    "warm_cache",
]
