"""Experiment harness: one driver per evaluation table and figure.

``python -m repro.harness <experiment>`` regenerates any of: ``table3``,
``table4``, ``fig7``, ``table5``, ``fig8``, ``fig9``, ``table6``, or
``all``.  The ``benchmarks/`` directory wraps the same drivers in
pytest-benchmark targets.
"""

from repro.harness.runner import (
    clear_run_cache,
    run_baseline,
    run_dynaspam,
    RunKey,
)
from repro.harness.experiments import (
    figure7_coverage,
    figure8_performance,
    figure9_energy,
    table3_benchmarks,
    table4_parameters,
    table5_lifetime,
    table6_area,
)

__all__ = [
    "clear_run_cache",
    "figure7_coverage",
    "figure8_performance",
    "figure9_energy",
    "run_baseline",
    "run_dynaspam",
    "RunKey",
    "table3_benchmarks",
    "table4_parameters",
    "table5_lifetime",
    "table6_area",
]
