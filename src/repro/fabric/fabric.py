"""The fabric dataflow timing engine.

Executes a configured trace as a dataflow schedule: every placed operation
starts when its operands arrive (from producer PEs through direct wires or
pass registers, or from live-in FIFOs over the global bus) and memory
ordering permits.  Back-to-back invocations pipeline with an initiation
interval set by the busiest PE and the FIFO depth; loop-carried values flow
from one invocation's producer directly into the next invocation's live-in
ports over the global bus (paper Section 3.1, "Trace Offloading").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import fastpath_enabled, memo_enabled
from repro.fabric.compiled import T_ALU, T_STORE, timing_plan_of
from repro.fabric.config import FabricConfig
from repro.fabric.configuration import Configuration, PlacedOp
from repro.fabric.fifos import FifoModel
from repro.fabric.stripe import Stripe, build_stripes


@dataclass
class InvocationContext:
    """Everything one invocation needs from the outside world.

    ``mem_addrs`` maps a placed op's ``mem_index`` to its effective address
    for *this* invocation.  ``dcache_access`` is a callable returning the
    load-to-use latency for an address.  ``extra_mem_wait`` provides
    lower bounds (e.g. waits on host-pipeline stores predicted by the
    Store-Sets unit); ``speculative`` selects speculative vs conservative
    intra-trace memory ordering.
    """

    start_lower_bound: int
    live_in_ready: dict[str, int]
    mem_addrs: dict[int, int]
    dcache_access: callable
    speculative: bool = True
    extra_mem_wait: dict[int, int] = field(default_factory=dict)
    predicted_store_pos: dict[int, int] = field(default_factory=dict)
    #: Optional ``PipelineStats`` for the memo tier's hit/miss counters
    #: (simulator-internal observability; no energy cost, no timing role).
    stats: object | None = None


@dataclass
class MemEvent:
    """Timing of one memory operation inside an invocation.

    For stores, ``addr_known`` (base operand arrival) can precede
    ``finish`` (data available) by many cycles; the distinction drives both
    conservative ordering and violation detection.
    """

    pos: int
    mem_index: int
    addr: int
    kind: str            # "load" | "store"
    start: int = 0       # cycle the op issues (loads) / enters buffer
    addr_known: int = 0  # cycle the effective address resolves
    finish: int = 0      # data available (stores) / value returned (loads)


@dataclass
class InvocationResult:
    """Timing outcome of one invocation."""

    start: int
    complete: int
    finish_times: dict[int, int]          # position -> finish cycle
    liveout_ready: dict[str, int]         # register -> cycle on the bus
    mem_events: list[MemEvent]
    violations: list[tuple[int, int]]     # (load pos, store pos) intra-trace
    structural_ii: int
    fu_ops: int
    datapath_transfers: int
    fifo_ops: int
    #: Wall-clock cycles this invocation adds to the fabric's busy time
    #: (pipelined invocations overlap, so this is the start-to-start gap,
    #: not the full latency) — the leakage-accounting basis.
    occupancy_cycles: int = 0


class SpatialFabric:
    """One reconfigurable fabric instance."""

    def __init__(
        self,
        config: FabricConfig | None = None,
        fabric_id: int = 0,
        bus=None,
    ) -> None:
        self.config = config or FabricConfig()
        self.fabric_id = fabric_id
        #: Optional ``repro.obs.EventBus`` (None = tracing disabled).
        self.bus = bus
        self.stripes: list[Stripe] = build_stripes(self.config)
        self.fifo = FifoModel(self.config.fifo_depth)

        # Current configuration state.
        self.current_key: tuple | None = None
        self.configured_at: int = 0
        self.last_invocation_start: int = 0
        self.last_liveout_times: dict[str, int] = {}
        self.invocations_on_current: int = 0

        # Lifetime statistics (Table 5).
        self.reconfigurations: int = 0
        self.total_invocations: int = 0
        self.lifetime_invocations: list[int] = []

        # Power-gating accounting: (active PEs, total PEs) per configuration.
        self.active_pes: int = 0

        # Occupancy statistics (repro.obs.accounting): per-stripe placed-op
        # counts of the current configuration, accumulated per invocation.
        self._current_stripe_placed: list[int] = [0] * self.config.num_stripes
        #: stripe -> sum over invocations of ops placed on that stripe.
        self.stripe_placed_invocations: list[int] = (
            [0] * self.config.num_stripes)
        #: stripe -> invocations with at least one op on that stripe.
        self.stripe_invocations: list[int] = [0] * self.config.num_stripes
        #: sum over invocations of PEs the invocation's config occupied.
        self.placed_pe_invocations: int = 0
        #: sum over invocations of stripes the invocation's config touched.
        self.filled_stripe_invocations: int = 0

    # ------------------------------------------------------------------
    # Configuration management
    # ------------------------------------------------------------------
    def is_configured_for(self, trace_key: tuple) -> bool:
        return self.current_key == trace_key

    def configure(self, configuration: Configuration, cycle: int) -> int:
        """Load a configuration; returns the cycle the fabric is ready."""
        if self.current_key is not None and self.invocations_on_current:
            self.lifetime_invocations.append(self.invocations_on_current)
        if self.bus is not None:
            self.bus.emit(
                "fabric.reconfig",
                cycle=cycle,
                fabric=self.fabric_id,
                key=configuration.trace_key,
                evicted=self.current_key,
                stripes=configuration.stripes_used,
            )
        self.current_key = configuration.trace_key
        self.invocations_on_current = 0
        self.reconfigurations += 1
        self.active_pes = configuration.pes_used
        placed = [0] * self.config.num_stripes
        for op in configuration.placements:
            placed[op.stripe] += 1
        self._current_stripe_placed = placed
        self.last_liveout_times = {}
        self.last_invocation_start = cycle
        self.fifo = FifoModel(self.config.fifo_depth)
        self.configured_at = cycle
        return cycle + self.config.reconfig_latency(configuration.stripes_used)

    def flush_lifetime(self) -> list[int]:
        """Close the books on the current configuration (end of run)."""
        if self.current_key is not None and self.invocations_on_current:
            self.lifetime_invocations.append(self.invocations_on_current)
            self.invocations_on_current = 0
        return self.lifetime_invocations

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, configuration: Configuration, ctx: InvocationContext
    ) -> InvocationResult:
        """Run one invocation of the currently loaded configuration."""
        if self.current_key != configuration.trace_key:
            raise ValueError("fabric is not configured for this trace")
        if memo_enabled():
            global _execute_memoized
            if _execute_memoized is None:
                from repro.fabric.memo import execute_memoized

                _execute_memoized = execute_memoized
            return _execute_memoized(self, configuration, ctx)
        return self._execute_engine(configuration, ctx)

    def _execute_engine(
        self, configuration: Configuration, ctx: InvocationContext
    ) -> InvocationResult:
        """The engine walk proper (plan-driven or interpreted), below the
        memo tier's dispatch."""
        if fastpath_enabled():
            return self._execute_plan(configuration, timing_plan_of(configuration), ctx)
        cfg = self.config
        bus = cfg.global_bus_latency

        # Invocation admission: FIFO space and pipelined initiation.
        structural_ii = max(
            (pe_busy(op) for op in configuration.placements), default=1
        )
        start = max(ctx.start_lower_bound, self.fifo.admit_ready_cycle())
        if self.invocations_on_current:
            start = max(start, self.last_invocation_start + structural_ii)
            occupancy = start - self.last_invocation_start
        else:
            occupancy = None  # charged below as the full first latency

        finish: dict[int, int] = {}
        mem_events: list[MemEvent] = []
        violations: list[tuple[int, int]] = []
        datapath_transfers = 0
        fifo_ops = 0

        # Stores seen so far in trace order: (pos, mem_index, addr, finish).
        older_stores: list[MemEvent] = []

        for op in configuration.placements:
            ready = start
            base_arrival = start
            roles = op.source_roles or ("src",) * len(op.sources)
            for src, role in zip(op.sources, roles):
                if src.kind == "inst":
                    arrival = finish[src.producer_pos] + max(0, src.hops - 1)
                    datapath_transfers += src.hops
                else:  # live-in over the global bus
                    arrival = ctx.live_in_ready.get(src.reg, start) + bus
                    fifo_ops += 1
                if arrival > ready:
                    ready = arrival
                if role == "base" and arrival > base_arrival:
                    base_arrival = arrival

            if op.is_load or op.is_store:
                event = MemEvent(
                    pos=op.pos,
                    mem_index=op.mem_index,
                    addr=ctx.mem_addrs[op.mem_index],
                    kind="load" if op.is_load else "store",
                )
                extra = ctx.extra_mem_wait.get(op.mem_index, start)
                if op.is_store:
                    self._time_store(event, base_arrival, ready, extra,
                                     older_stores, ctx.speculative)
                    older_stores.append(event)
                else:
                    violation = self._time_load(
                        op, event, ready, extra, older_stores, ctx
                    )
                    if violation is not None:
                        violations.append((op.pos, violation))
                mem_events.append(event)
                finish[op.pos] = event.finish
            else:
                finish[op.pos] = ready + op.latency

        liveout_ready = {}
        for reg, pos in configuration.live_outs.items():
            liveout_ready[reg] = finish[pos] + bus
            fifo_ops += 1

        complete = start
        if finish:
            complete = max(finish.values())
        # Branch results and live-outs drain through the output FIFOs.
        complete += bus

        self.fifo.push(complete)
        self.last_invocation_start = start
        self.last_liveout_times = dict(liveout_ready)
        self.invocations_on_current += 1
        self.total_invocations += 1
        for stripe, placed in enumerate(self._current_stripe_placed):
            if placed:
                self.stripe_placed_invocations[stripe] += placed
                self.stripe_invocations[stripe] += 1
                self.filled_stripe_invocations += 1
        self.placed_pe_invocations += len(configuration.placements)

        if occupancy is None:
            occupancy = complete - start
        return InvocationResult(
            start=start,
            complete=complete,
            finish_times=finish,
            liveout_ready=liveout_ready,
            mem_events=mem_events,
            violations=violations,
            structural_ii=structural_ii,
            fu_ops=len(configuration.placements),
            datapath_transfers=datapath_transfers,
            fifo_ops=fifo_ops,
            occupancy_cycles=max(1, occupancy),
        )

    def _execute_plan(
        self,
        configuration: Configuration,
        plan,
        ctx: InvocationContext,
    ) -> InvocationResult:
        """Plan-driven twin of :meth:`execute` (see repro.fabric.compiled).

        Bit-identical by construction: the per-op arrival computation is an
        order-independent max over the same source set, the FIFO/datapath
        totals are per-configuration constants, and the memory-op timing
        delegates to the same ``_time_store``/``_time_load``.  The identity
        sweep in ``tests/engine`` holds the two paths equal.
        """
        bus = self.config.global_bus_latency
        structural_ii = plan.structural_ii

        start = ctx.start_lower_bound
        admit = self.fifo.admit_ready_cycle()
        if admit > start:
            start = admit
        if self.invocations_on_current:
            pipelined = self.last_invocation_start + structural_ii
            if pipelined > start:
                start = pipelined
            occupancy = start - self.last_invocation_start
        else:
            occupancy = None

        finish: dict[int, int] = {}
        mem_events: list[MemEvent] = []
        violations: list[tuple[int, int]] = []
        older_stores: list[MemEvent] = []
        live_in_ready = ctx.live_in_ready
        mem_addrs = ctx.mem_addrs
        extra_mem_wait = ctx.extra_mem_wait
        speculative = ctx.speculative
        time_store = self._time_store
        time_load = self._time_load

        for pos, kind, latency, mem_index, op, inst_srcs, live_srcs in plan.steps:
            ready = start
            base_arrival = start
            for producer_pos, add, is_base in inst_srcs:
                arrival = finish[producer_pos] + add
                if arrival > ready:
                    ready = arrival
                if is_base and arrival > base_arrival:
                    base_arrival = arrival
            for reg, is_base in live_srcs:
                arrival = live_in_ready.get(reg, start) + bus
                if arrival > ready:
                    ready = arrival
                if is_base and arrival > base_arrival:
                    base_arrival = arrival

            if kind == T_ALU:
                finish[pos] = ready + latency
            else:
                event = MemEvent(
                    pos=pos,
                    mem_index=mem_index,
                    addr=mem_addrs[mem_index],
                    kind="store" if kind == T_STORE else "load",
                )
                extra = extra_mem_wait.get(mem_index, start)
                if kind == T_STORE:
                    time_store(event, base_arrival, ready, extra,
                               older_stores, speculative)
                    older_stores.append(event)
                else:
                    violation = time_load(
                        op, event, ready, extra, older_stores, ctx
                    )
                    if violation is not None:
                        violations.append((pos, violation))
                mem_events.append(event)
                finish[pos] = event.finish

        liveout_ready = {}
        for reg, pos in plan.liveouts:
            liveout_ready[reg] = finish[pos] + bus

        complete = start
        if finish:
            complete = max(finish.values())
        complete += bus

        self.fifo.push(complete)
        self.last_invocation_start = start
        self.last_liveout_times = dict(liveout_ready)
        self.invocations_on_current += 1
        self.total_invocations += 1
        for stripe, placed in enumerate(self._current_stripe_placed):
            if placed:
                self.stripe_placed_invocations[stripe] += placed
                self.stripe_invocations[stripe] += 1
                self.filled_stripe_invocations += 1
        self.placed_pe_invocations += len(plan.steps)

        if occupancy is None:
            occupancy = complete - start
        return InvocationResult(
            start=start,
            complete=complete,
            finish_times=finish,
            liveout_ready=liveout_ready,
            mem_events=mem_events,
            violations=violations,
            structural_ii=structural_ii,
            fu_ops=len(plan.steps),
            datapath_transfers=plan.datapath_transfers,
            fifo_ops=plan.fifo_ops,
            occupancy_cycles=max(1, occupancy),
        )

    @staticmethod
    def _time_store(
        event: MemEvent,
        base_arrival: int,
        data_arrival: int,
        extra_wait: int,
        older_stores: list[MemEvent],
        speculative: bool,
    ) -> None:
        """Assign timing to a store.

        The address resolves when the base operand arrives; the memory
        reservation buffer allocates entries in order, so the address is
        also ordered behind older stores' address resolutions.  Data may
        arrive much later.  Without speculation, store-store *execution*
        order is preserved outright (Figure 8's "w/o speculation" series).
        """
        addr_known = max(base_arrival, extra_wait)
        for store in older_stores:
            if store.addr_known > addr_known:
                addr_known = store.addr_known
        event.start = addr_known
        event.addr_known = addr_known
        event.finish = max(addr_known, data_arrival) + 1
        if not speculative:
            for store in older_stores:
                if store.finish + 1 > event.finish:
                    event.finish = store.finish + 1

    def _time_load(
        self,
        op: PlacedOp,
        event: MemEvent,
        ready: int,
        extra_wait: int,
        older_stores: list[MemEvent],
        ctx: InvocationContext,
    ) -> int | None:
        """Assign timing to a load; returns a violating store pos or None.

        Conservative mode preserves *all* load-store orderings: the load
        may not execute until every older store has executed (its data is
        in the reservation buffer).  Speculative mode: the load waits only
        for the store the Store-Sets unit predicts; an older aliasing store
        whose address resolves *after* the load issued is a memory-order
        violation.  A store whose address was known in time forwards its
        data without a violation (a normal LSQ forward).
        """
        ready = max(ready, extra_wait)
        if not ctx.speculative:
            for store in older_stores:
                if store.finish > ready:
                    ready = store.finish
        else:
            predicted_pos = ctx.predicted_store_pos.get(op.mem_index)
            if predicted_pos is not None:
                for store in older_stores:
                    if store.pos == predicted_pos and store.finish > ready:
                        ready = store.finish

        event.start = ready
        event.addr_known = ready
        violation: int | None = None
        alias: MemEvent | None = None
        for store in reversed(older_stores):
            if store.addr == event.addr:
                alias = store
                break
        if alias is not None:
            if ctx.speculative and alias.addr_known > ready:
                violation = alias.pos
                event.finish = alias.finish + 1
            elif alias.finish > ready:
                event.finish = alias.finish + 1   # in-flight forward
            else:
                event.finish = ready + 1          # buffered forward
        else:
            event.finish = ready + 1 + ctx.dcache_access(event.addr)
        return violation


#: Lazily bound ``repro.fabric.memo.execute_memoized`` (that module needs
#: this one's ``MemEvent``/``InvocationResult``, so a top-level import in
#: either direction would be circular).
_execute_memoized = None


def pe_busy(op: PlacedOp) -> int:
    """Cycles per invocation the op's PE stays busy (pipelining bound)."""
    from repro.isa.opcodes import FU_PIPELINED, OpClass

    if op.opclass in (OpClass.LOAD, OpClass.STORE):
        return 1
    return 1 if FU_PIPELINED[op.opclass] else op.latency
