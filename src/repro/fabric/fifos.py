"""Live-in / live-out FIFO occupancy model.

Separate FIFO entries represent separate trace invocations (paper
Section 3.2), so the FIFO depth bounds how many invocations may be in
flight — the pipelining backstop the fabric engine enforces.
"""

from __future__ import annotations


class FifoModel:
    """Bounded in-flight window keyed by invocation completion times."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError("FIFO depth must be positive")
        self.depth = depth
        self._complete_ring: list[int] = [0] * depth
        self._head = 0
        self._count = 0
        self.pushes = 0

    def admit_ready_cycle(self) -> int:
        """Earliest cycle a new invocation may enter (an entry is free)."""
        if self._count < self.depth:
            return 0
        return self._complete_ring[self._head] + 1

    def push(self, complete_cycle: int) -> None:
        self._complete_ring[self._head] = complete_cycle
        self._head = (self._head + 1) % self.depth
        if self._count < self.depth:
            self._count += 1
        self.pushes += 1

    @property
    def occupancy(self) -> int:
        return self._count
