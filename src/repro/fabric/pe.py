"""Processing elements of the fabric.

Each PE holds one functional unit (of some pool kind), a set of pass
registers, and input multiplexers (paper Figure 4).  Input-port capacity is
heterogeneous: first-stripe PEs can receive two live-ins per invocation,
deeper PEs only one (via the global bus) — the resource heterogeneity the
resource-aware mapper must respect (paper Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import FU_PIPELINED, OpClass
from repro.ooo.fus import POOL_OF


@dataclass(frozen=True)
class PE:
    """One processing element of the fabric grid."""

    stripe: int
    index: int            # position within the stripe
    pool: str             # functional-unit kind ("int_alu", "ldst", ...)
    input_ports: int      # live-in operands deliverable per invocation

    @property
    def pe_id(self) -> tuple[int, int]:
        return (self.stripe, self.index)

    def can_execute(self, opclass: OpClass) -> bool:
        """True if this PE's functional unit covers ``opclass``."""
        return POOL_OF[opclass] == self.pool

    def occupancy(self, opclass: OpClass, latency: int) -> int:
        """Cycles per invocation this PE is busy executing ``opclass``.

        Pipelined units are busy one cycle; unpipelined dividers block for
        their full latency; LDST PEs are busy one cycle because the load
        reservation buffer holds in-flight loads (paper Section 3.2).
        """
        if opclass in (OpClass.LOAD, OpClass.STORE):
            return 1
        return 1 if FU_PIPELINED[opclass] else latency
