"""Functional (value-carrying) execution of fabric configurations.

The timing engine in ``repro.fabric.fabric`` answers *when*; this module
answers *what*: it evaluates a mapped trace's dataflow — live-ins from the
input FIFOs, operands over the configured routes, loads and buffered
stores against a memory image — and produces the invocation's live-out
values, branch results, and store set.

Its purpose is verification: because the reproduction's pipelines are
trace-driven, a mapping bug (wrong operand route, wrong producer, dropped
live-out) would otherwise never corrupt an architectural result.  The
``verify_against_oracle`` helper replays a trace occurrence on the
configuration and cross-checks every architectural effect against the
functional executor's ground truth; the test suite runs it over every hot
trace of every benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.engine import fastpath_enabled
from repro.fabric.compiled import functional_plan_of
from repro.fabric.configuration import Configuration, PlacedOp
from repro.isa.executor import Memory
from repro.isa.instructions import DynamicInstruction
from repro.isa.opcodes import Opcode


class FabricExecutionError(Exception):
    """Raised when a configuration cannot be functionally evaluated."""


@dataclass
class FunctionalResult:
    """Architectural effects of one functionally evaluated invocation."""

    values: dict[int, float | int | None] = field(default_factory=dict)
    live_outs: dict[str, float | int] = field(default_factory=dict)
    branch_results: list[bool] = field(default_factory=list)
    stores: list[tuple[int, float | int]] = field(default_factory=list)
    loads: list[tuple[int, float | int]] = field(default_factory=list)


_COMMUTATIVE_BINOPS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SLT: lambda a, b: 1 if a < b else 0,
    Opcode.SLE: lambda a, b: 1 if a <= b else 0,
    Opcode.SEQ: lambda a, b: 1 if a == b else 0,
    Opcode.MIN: min,
    Opcode.MAX: max,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: lambda a, b: 0 if b == 0 else int(a / b),
    Opcode.REM: lambda a, b: 0 if b == 0 else a % int(b),
    Opcode.SHL: lambda a, b: a << int(b),
    Opcode.SHR: lambda a, b: a >> int(b),
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: 0.0 if b == 0 else a / b,
    Opcode.FMIN: min,
    Opcode.FMAX: max,
    Opcode.FSLT: lambda a, b: 1 if a < b else 0,
    Opcode.FSLE: lambda a, b: 1 if a <= b else 0,
}

_UNARY = {
    Opcode.ABS: abs,
    Opcode.FABS: abs,
    Opcode.FNEG: lambda a: -a,
    Opcode.MOV: lambda a: a,
    Opcode.FMOV: lambda a: a,
    Opcode.FSQRT: lambda a: math.sqrt(a) if a > 0 else 0.0,
    Opcode.CVTIF: float,
    Opcode.CVTFI: int,
}

_BRANCH = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: a < b,
    Opcode.BGE: lambda a, b: a >= b,
}


class FunctionalFabric:
    """Evaluate configurations over values (not cycles)."""

    def execute(
        self,
        configuration: Configuration,
        live_in_values: dict[str, float | int],
        memory: Memory,
        dyn_instances: list[DynamicInstruction] | None = None,
        commit: bool = True,
    ) -> FunctionalResult:
        """Run one invocation.

        ``dyn_instances`` (the trace occurrence, parallel by position)
        supplies immediates — the configuration carries routes and
        opcodes; immediates live in the static instructions, exactly as a
        real configuration's constant fields would.  Stores are buffered
        and drained to ``memory`` at the end (commit), but loads see the
        invocation's own earlier stores through the buffer, preserving
        intra-trace memory semantics.
        """
        if fastpath_enabled():
            plan = functional_plan_of(configuration)
            if plan is not None:
                return self._execute_plan(
                    plan, live_in_values, memory, dyn_instances, commit
                )
        statics = {}
        if dyn_instances is not None:
            statics = {pos: dyn_instances[pos].static
                       for pos in range(len(dyn_instances))}

        result = FunctionalResult()
        store_buffer: dict[int, float | int] = {}

        for op in configuration.placements:
            operands = self._gather(op, configuration, live_in_values, result)
            static = statics.get(op.pos)
            imm = static.imm if static is not None else None
            value = self._evaluate(
                op, operands, imm, memory, store_buffer, result
            )
            result.values[op.pos] = value

        for reg, pos in configuration.live_outs.items():
            if result.values.get(pos) is None:
                raise FabricExecutionError(
                    f"live-out {reg} producer {pos} yielded no value"
                )
            result.live_outs[reg] = result.values[pos]

        # Commit: drain the store buffer to memory in order of occurrence
        # (the buffer preserved program order per address).  With
        # ``commit=False`` the caller inspects ``result.stores`` instead —
        # the co-simulator does this to avoid double-applying stores.
        if commit:
            for addr, value in result.stores:
                memory.store(addr, value)
        return result

    # ------------------------------------------------------------------
    def _execute_plan(self, plan, live_ins, memory, dyn_instances, commit):
        """Plan-driven twin of :meth:`execute` (see repro.fabric.compiled).

        Opcode classification, store operand roles, and the load float/int
        cast were resolved at compile time; values, immediates, and error
        conditions are evaluated exactly as the interpreted path does.
        """
        from repro.fabric.compiled import (
            F_BINOP, F_BRANCH, F_IMM, F_LOAD, F_STORE, F_UNARY,
        )

        result = FunctionalResult()
        values = result.values
        store_buffer: dict[int, float | int] = {}
        n_dyn = len(dyn_instances) if dyn_instances is not None else 0

        for pos, gather, kind, fn, aux in plan.steps:
            operands = []
            for is_livein, key in gather:
                if is_livein:
                    if key not in live_ins:
                        raise FabricExecutionError(
                            f"op {pos}: live-in {key} not supplied"
                        )
                    operands.append(live_ins[key])
                else:
                    value = values.get(key)
                    if value is None:
                        raise FabricExecutionError(
                            f"op {pos}: producer {key} has no value"
                        )
                    operands.append(value)
            imm = dyn_instances[pos].static.imm if pos < n_dyn else None

            if kind == F_BINOP:
                a = operands[0]
                b = operands[1] if len(operands) > 1 else imm
                if b is None:
                    raise FabricExecutionError(
                        f"op {pos} ({aux}) missing second operand"
                    )
                value = fn(a, b)
            elif kind == F_UNARY:
                value = fn(operands[0])
            elif kind == F_IMM:
                value = imm
            elif kind == F_LOAD:
                addr = int(operands[0]) + int(imm or 0)
                if addr in store_buffer:
                    loaded = store_buffer[addr]
                else:
                    loaded = memory.load(addr)
                result.loads.append((addr, loaded))
                value = float(loaded) if aux else int(loaded)
            elif kind == F_STORE:
                base_idx, value_idx = aux
                if base_idx is None:
                    raise FabricExecutionError(f"store {pos} has no base")
                addr = int(operands[base_idx]) + int(imm or 0)
                data = operands[value_idx] if value_idx is not None else 0
                store_buffer[addr] = data
                result.stores.append((addr, data))
                value = None
            else:  # F_BRANCH
                a = operands[0] if operands else 0
                b = operands[1] if len(operands) > 1 else 0
                result.branch_results.append(bool(fn(a, b)))
                value = None
            values[pos] = value

        for reg, pos in plan.liveouts:
            value = values.get(pos)
            if value is None:
                raise FabricExecutionError(
                    f"live-out {reg} producer {pos} yielded no value"
                )
            result.live_outs[reg] = value

        if commit:
            for addr, value in result.stores:
                memory.store(addr, value)
        return result

    # ------------------------------------------------------------------
    def _gather(self, op, configuration, live_ins, result):
        values = []
        for src in op.sources:
            if src.kind == "livein":
                if src.reg not in live_ins:
                    raise FabricExecutionError(
                        f"op {op.pos}: live-in {src.reg} not supplied"
                    )
                values.append(live_ins[src.reg])
            else:
                value = result.values.get(src.producer_pos)
                if value is None:
                    raise FabricExecutionError(
                        f"op {op.pos}: producer {src.producer_pos} has no value"
                    )
                values.append(value)
        return values

    # ------------------------------------------------------------------
    def _evaluate(self, op: PlacedOp, operands, imm, memory, store_buffer,
                  result):
        opcode = op.opcode

        if opcode in (Opcode.LI, Opcode.FLI):
            return imm

        if opcode in (Opcode.LW, Opcode.FLW):
            base = operands[0]
            addr = int(base) + int(imm or 0)
            if addr in store_buffer:
                value = store_buffer[addr]
            else:
                value = memory.load(addr)
            result.loads.append((addr, value))
            return float(value) if opcode is Opcode.FLW else int(value)

        if opcode in (Opcode.SW, Opcode.FSW):
            # Roles: base first, value second (r0 operands were dropped by
            # the mapper; reconstruct from roles).
            roles = op.source_roles or ("base", "value")[: len(operands)]
            base = None
            data = 0
            for value, role in zip(operands, roles):
                if role == "base":
                    base = value
                elif role == "value":
                    data = value
            if base is None:
                raise FabricExecutionError(f"store {op.pos} has no base")
            addr = int(base) + int(imm or 0)
            store_buffer[addr] = data
            result.stores.append((addr, data))
            return None

        if opcode in _BRANCH:
            a = operands[0] if operands else 0
            b = operands[1] if len(operands) > 1 else 0
            taken = _BRANCH[opcode](a, b)
            result.branch_results.append(bool(taken))
            return None

        if opcode in _UNARY:
            return _UNARY[opcode](operands[0])

        if opcode in _COMMUTATIVE_BINOPS:
            a = operands[0]
            b = operands[1] if len(operands) > 1 else imm
            if b is None:
                raise FabricExecutionError(
                    f"op {op.pos} ({opcode.value}) missing second operand"
                )
            return _COMMUTATIVE_BINOPS[opcode](a, b)

        raise FabricExecutionError(f"unsupported opcode {opcode}")


class CoSimulator:
    """Lock-step verification of mappings against architectural truth.

    Replays a benchmark's dynamic trace while maintaining architectural
    register and memory state.  At each chosen trace occurrence it first
    evaluates the occurrence's *configuration* on the fabric functionally
    (reading live-ins from the current register file and loads from the
    current memory), then steps the oracle instructions — and asserts that
    every live-out value and every store value agree.  A routing or
    placement bug in the mapper shows up here as a value divergence.
    """

    def __init__(self, program, memory: Memory) -> None:
        from repro.isa.executor import FunctionalExecutor
        from repro.isa.registers import ArchRegisterFile

        self.program = program
        self.memory = memory
        self.registers = ArchRegisterFile()
        self._executor = FunctionalExecutor()
        self.verified_invocations = 0
        self.mismatches: list[str] = []

    def _step(self, dyn: DynamicInstruction) -> None:
        self._executor._step(
            self.program, dyn.static, self.registers, self.memory, dyn.pc
        )

    def run(
        self,
        trace: list[DynamicInstruction],
        occurrences: dict[int, tuple[list[DynamicInstruction], Configuration]],
        stop_on_mismatch: bool = True,
    ) -> int:
        """Replay ``trace``; verify each occurrence in ``occurrences``
        (keyed by start index).  Returns the number of verified
        invocations; mismatches are recorded (and raised by default)."""
        fabric = FunctionalFabric()
        index = 0
        while index < len(trace):
            pending = occurrences.get(index)
            if pending is None:
                self._step(trace[index])
                index += 1
                continue
            segment, configuration = pending
            live_ins = {
                reg: self.registers.read(reg)
                for reg in configuration.live_ins
            }
            result = fabric.execute(
                configuration, live_ins, self.memory, segment, commit=False
            )
            # Ground truth: step the oracle over the same instructions.
            for dyn in segment:
                self._step(dyn)
            self._check(result, configuration, segment)
            self.verified_invocations += 1
            if self.mismatches and stop_on_mismatch:
                raise FabricExecutionError(self.mismatches[0])
            index += len(segment)
        return self.verified_invocations

    def _check(self, result, configuration, segment) -> None:
        for reg, value in result.live_outs.items():
            oracle = self.registers.read(reg)
            if not _close(value, oracle):
                self.mismatches.append(
                    f"live-out {reg}: fabric {value!r} != oracle {oracle!r} "
                    f"(trace at pc 0x{segment[0].pc:x})"
                )
        final_store: dict[int, float | int] = {}
        for addr, value in result.stores:
            final_store[addr] = value  # last store per address wins
        for addr, value in final_store.items():
            oracle = self.memory.load(addr)
            if not _close(value, oracle):
                self.mismatches.append(
                    f"store @0x{addr:x}: fabric {value!r} != oracle "
                    f"{oracle!r}"
                )
        oracle_branches = [bool(d.taken) for d in segment if d.is_branch]
        if result.branch_results != oracle_branches:
            self.mismatches.append(
                f"branch results {result.branch_results} != "
                f"{oracle_branches}"
            )


def _close(a, b) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        return math.isclose(float(a), float(b), rel_tol=1e-12, abs_tol=1e-12)
    return a == b


def verify_against_oracle(
    configuration: Configuration,
    segment: list[DynamicInstruction],
    live_in_values: dict[str, float | int],
    memory: Memory,
) -> FunctionalResult:
    """Execute functionally and cross-check against the oracle segment.

    Checks, per position: branch outcomes, load/store effective addresses,
    and (via the returned result) live-out values.  Raises
    ``FabricExecutionError`` on any mismatch.
    """
    fabric = FunctionalFabric()
    result = fabric.execute(configuration, live_in_values, memory, segment)

    oracle_branches = [bool(d.taken) for d in segment if d.is_branch]
    # The mapper only embeds *placed* branches; compare pairwise.
    if result.branch_results != oracle_branches:
        raise FabricExecutionError(
            f"branch results {result.branch_results} != oracle "
            f"{oracle_branches}"
        )
    oracle_mem = [(d.addr, d.is_store) for d in segment if d.is_memory]
    fabric_mem = ([(a, False) for a, _ in result.loads]
                  + [(a, True) for a, _ in result.stores])
    if sorted(a for a, s in oracle_mem if s) != sorted(
            a for a, _ in result.stores):
        raise FabricExecutionError("store address set diverges from oracle")
    if sorted(a for a, s in oracle_mem if not s) != sorted(
            a for a, _ in result.loads):
        raise FabricExecutionError("load address set diverges from oracle")
    return result
