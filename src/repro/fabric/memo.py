"""Invocation-timing memoization (the ``REPRO_MEMO`` engine tier).

DynaSpAM's premise is that fabric configurations are heavily reused — the
same trace is invoked thousands of times between reconfigurations — yet
the timing engine re-walks the whole dataflow schedule on every
invocation.  The walk is a pure function of the configuration plus a
small set of dynamic inputs, so this module caches its outcome per
configuration and *replays* it on re-invocation.

**Why replay is sound.**  Every cycle computed by ``SpatialFabric``'s
timing walk (interpreted or plan-driven) is a max/add chain anchored at
the invocation's ``start`` cycle: shifting all absolute inputs by a
constant shifts all outputs by the same constant (translation
equivariance), and every branch taken inside the walk — which store
aliases which load, whether a speculation violation fires — depends only
on *differences* of those quantities.  Two invocations with the same
start-relative inputs therefore produce the same start-relative timeline.

**The memo key** captures exactly the dynamic inputs that can change the
outcome:

* the speculation mode;
* each live-in register's arrival, relative to ``start`` and clamped at
  ``-global_bus_latency`` (an earlier arrival cannot influence timing);
* each memory op's store-set / host-store wait (``extra_mem_wait``),
  start-relative and clamped at zero;
* the intra-trace Store-Sets predictions (``predicted_store_pos``);
* the load→older-store alias pattern induced by this occurrence's
  effective addresses (address *values* don't matter, equality does);
* the D-cache latency of every load that reaches the cache (no aliasing
  older store), probed in position order while building the key.

The D-cache probe is the real access — it moves the cache's replacement
state and ticks the miss counters exactly like the engine walk would.
On a miss the engine then runs with a *replaying* ``dcache_access`` that
feeds back the probed latencies, so the cache is touched exactly once
per load either way.  On a hit, :func:`_replay` rebases the cached
timeline by ``start`` and applies the same per-invocation fabric state
updates the engines apply (FIFO ring, pipelining anchor, occupancy and
stripe statistics).

**Fallback sentinel.**  Mirroring the compiled tier's unsupported-opcode
path (``Configuration._functional_plan = False``), a configuration whose
key cannot be built — e.g. a hand-made ``InvocationContext`` missing an
address — is marked ``_memo_unsupported`` and permanently bypasses the
memo; the engine walk then owns the invocation, including its error
behavior.

Entries live on the configuration object (``_invocation_memo``) and die
with it; the per-configuration dict is cleared wholesale at
:data:`INVOCATION_MEMO_CAP` entries, mirroring the predicted-key memo's
bounded-memory contract.
"""

from __future__ import annotations

from dataclasses import replace

from repro.fabric.compiled import timing_plan_of

#: Entries kept per configuration before a wholesale clear.  Steady-state
#: working sets are a handful of keys (live-in arrival patterns settle,
#: D-cache latencies repeat block-periodically); the cap only guards
#: pathological phase-changing inputs.
INVOCATION_MEMO_CAP = 1 << 9

#: Adaptive bail-out.  A configuration's first MEMO_PROBE_WARMUP
#: invocations bypass the memo entirely — no key is built, the engine
#: walk runs untouched — because early occurrences rarely repeat
#: (D-cache warm-up, drifting pipelined starts) even for configurations
#: that settle into heavy reuse, and key construction is the whole cost
#: of a miss.  The next MEMO_PROBE_WINDOW invocations are probed for
#: real: unless at least MEMO_PROBE_MIN_HITS of them replay, the
#: configuration is marked cold and permanently reverts to the engine
#: walk, which is behaviorally identical.  The 50% in-window bar
#: approximates the measured break-even point: a hit saves roughly the
#: walk-minus-replay delta, which is on the order of the key-build cost
#: itself.
MEMO_PROBE_WARMUP = 16
MEMO_PROBE_WINDOW = 16
MEMO_PROBE_MIN_HITS = 8


class MemoEntry:
    """One cached invocation timeline, stored start-relative."""

    __slots__ = (
        "complete_rel", "finish_rel", "liveout_rel", "mem_rel",
        "violations", "structural_ii", "fu_ops", "datapath_transfers",
        "fifo_ops",
    )

    def __init__(self, result, start: int) -> None:
        self.complete_rel = result.complete - start
        self.finish_rel = tuple(
            (pos, t - start) for pos, t in result.finish_times.items()
        )
        self.liveout_rel = tuple(
            (reg, t - start) for reg, t in result.liveout_ready.items()
        )
        self.mem_rel = tuple(
            (e.pos, e.mem_index, e.kind,
             e.start - start, e.addr_known - start, e.finish - start)
            for e in result.mem_events
        )
        self.violations = tuple(result.violations)
        self.structural_ii = result.structural_ii
        self.fu_ops = result.fu_ops
        self.datapath_transfers = result.datapath_transfers
        self.fifo_ops = result.fifo_ops


def _memo_layout_of(configuration):
    """Static shape the key builder walks: live-in registers in first-use
    order and memory ops as ``(mem_index, is_store)`` in position order."""
    layout = getattr(configuration, "_memo_layout", None)
    if layout is None:
        live_regs: list[str] = []
        seen: set[str] = set()
        mem_ops: list[tuple[int, bool]] = []
        for op in configuration.placements:
            for src in op.sources:
                if src.kind != "inst" and src.reg not in seen:
                    seen.add(src.reg)
                    live_regs.append(src.reg)
            if op.is_store:
                mem_ops.append((op.mem_index, True))
            elif op.is_load:
                mem_ops.append((op.mem_index, False))
        # The all-zero extra-wait tuple is by far the common case (no
        # aliasing in-flight host stores); precomputing it lets the key
        # builder skip the per-op clamp loop entirely.
        layout = ((0,) * len(mem_ops), tuple(live_regs), tuple(mem_ops))
        configuration._memo_layout = layout
    return layout


def _invocation_key(layout, ctx, start: int, bus_latency: int):
    """The dynamic-input key; probes the D-cache for no-alias loads."""
    zero_waits, live_regs, mem_ops = layout
    live_in = ctx.live_in_ready
    floor = -bus_latency
    live_rel = tuple(
        rel if (rel := live_in.get(reg, start) - start) > floor else floor
        for reg in live_regs
    )
    extra_wait = ctx.extra_mem_wait
    if extra_wait:
        extra_rel = tuple(
            rel if (rel := extra_wait.get(m, start) - start) > 0 else 0
            for m, _ in mem_ops
        )
    else:
        extra_rel = zero_waits
    addrs = ctx.mem_addrs
    store_addrs: list[int] = []
    alias_pattern: list[int] = []
    latencies: list[int] = []
    dcache_access = ctx.dcache_access
    for mem_index, is_store in mem_ops:
        addr = addrs[mem_index]
        if is_store:
            store_addrs.append(addr)
        else:
            # The engines' alias search: youngest older store, by address
            # equality — recorded by *store ordinal*, not address value.
            alias = -1
            for j in range(len(store_addrs) - 1, -1, -1):
                if store_addrs[j] == addr:
                    alias = j
                    break
            alias_pattern.append(alias)
            if alias < 0:
                latencies.append(dcache_access(addr))
    predicted = ctx.predicted_store_pos
    return (
        ctx.speculative,
        live_rel,
        extra_rel,
        tuple(sorted(predicted.items())) if predicted else (),
        tuple(alias_pattern),
        tuple(latencies),
    )


def _latency_replayer(latencies, real_access):
    """A ``dcache_access`` that feeds back the key probe's latencies.

    The probe already performed the real accesses in position order; the
    engine walk consumes them in the same order.  Falling through to the
    real access is unreachable by construction but preserves behavior if
    an engine ever probed more than the key did.
    """
    pop = iter(latencies).__next__

    def access(addr: int) -> int:
        try:
            return pop()
        except StopIteration:  # pragma: no cover - defensive
            return real_access(addr)

    return access


def execute_memoized(fabric, configuration, ctx):
    """Memo-tier front end of ``SpatialFabric.execute``.

    Computes the invocation's ``start`` (the same admission logic both
    engine walks apply), builds the dynamic-input key, and either replays
    the cached timeline rebased to ``start`` or runs the underlying
    engine and caches its outcome.
    """
    if getattr(configuration, "_memo_unsupported", False) or getattr(
            configuration, "_memo_cold", False):
        return fabric._execute_engine(configuration, ctx)

    probes = getattr(configuration, "_memo_probes", 0)
    if probes < MEMO_PROBE_WARMUP:
        configuration._memo_probes = probes + 1
        return fabric._execute_engine(configuration, ctx)

    start = ctx.start_lower_bound
    admit = fabric.fifo.admit_ready_cycle()
    if admit > start:
        start = admit
    if fabric.invocations_on_current:
        pipelined = (fabric.last_invocation_start
                     + timing_plan_of(configuration).structural_ii)
        if pipelined > start:
            start = pipelined

    try:
        key = _invocation_key(
            _memo_layout_of(configuration), ctx, start,
            fabric.config.global_bus_latency,
        )
    except (KeyError, TypeError, AttributeError):
        # Unsupported context shape: mark and fall back for good, letting
        # the engine walk reproduce the error behavior (the D-cache state
        # the partial probe moved matches the walk's own partial progress).
        configuration._memo_unsupported = True
        if fabric.bus is not None:
            fabric.bus.emit(
                "fabric.memo_unsupported",
                fabric=fabric.fabric_id,
                key=getattr(configuration, "trace_key", None),
            )
        return fabric._execute_engine(configuration, ctx)

    memo = getattr(configuration, "_invocation_memo", None)
    if memo is None:
        memo = {}
        configuration._invocation_memo = memo
        configuration._memo_window_hits = 0
    entry = memo.get(key)
    stats = ctx.stats
    if probes < MEMO_PROBE_WARMUP + MEMO_PROBE_WINDOW:
        configuration._memo_probes = probes + 1
        if entry is not None:
            configuration._memo_window_hits += 1
        if (probes + 1 == MEMO_PROBE_WARMUP + MEMO_PROBE_WINDOW
                and configuration._memo_window_hits < MEMO_PROBE_MIN_HITS):
            # The dynamic inputs aren't repeating for this configuration;
            # stop paying the key-build cost on every invocation.  The
            # decision depends only on the key stream, so it falls the
            # same way under every engine-tier combination.
            configuration._memo_cold = True
            configuration._invocation_memo = {}
            if fabric.bus is not None:
                fabric.bus.emit(
                    "fabric.memo_bailout",
                    fabric=fabric.fabric_id,
                    key=configuration.trace_key,
                    window_hits=configuration._memo_window_hits,
                )
    if entry is not None:
        if stats is not None:
            stats.invocation_memo_hits += 1
        if fabric.bus is not None:
            fabric.bus.emit(
                "fabric.memo_hit",
                fabric=fabric.fabric_id,
                key=configuration.trace_key,
            )
        return _replay(fabric, entry, ctx, start)

    if stats is not None:
        stats.invocation_memo_misses += 1
    if fabric.bus is not None:
        fabric.bus.emit(
            "fabric.memo_miss",
            fabric=fabric.fabric_id,
            key=configuration.trace_key,
        )
    latencies = key[5]
    run_ctx = ctx
    if latencies:
        run_ctx = replace(
            ctx,
            dcache_access=_latency_replayer(latencies, ctx.dcache_access),
        )
    result = fabric._execute_engine(configuration, run_ctx)
    if len(memo) >= INVOCATION_MEMO_CAP:
        memo.clear()
    memo[key] = MemoEntry(result, start)
    return result


def _replay(fabric, entry: MemoEntry, ctx, start: int):
    """Rebase a cached timeline to ``start`` and apply state updates.

    Mirrors the tail of both engine walks exactly: FIFO push, pipelining
    anchor, live-out snapshot, invocation and stripe-occupancy counters.
    Addresses are re-read from this occurrence's context — timing is
    shared across occurrences, effective addresses are not.
    """
    # Local import: repro.fabric.fabric imports this module lazily, so a
    # top-level import here would be circular.
    from repro.fabric.fabric import InvocationResult, MemEvent

    complete = start + entry.complete_rel
    finish = {pos: start + rel for pos, rel in entry.finish_rel}
    liveout_ready = {reg: start + rel for reg, rel in entry.liveout_rel}
    addrs = ctx.mem_addrs
    mem_events = [
        MemEvent(pos, mem_index, addrs[mem_index], kind,
                 start + s, start + a, start + f)
        for pos, mem_index, kind, s, a, f in entry.mem_rel
    ]

    if fabric.invocations_on_current:
        occupancy = start - fabric.last_invocation_start
    else:
        occupancy = complete - start
    fabric.fifo.push(complete)
    fabric.last_invocation_start = start
    fabric.last_liveout_times = dict(liveout_ready)
    fabric.invocations_on_current += 1
    fabric.total_invocations += 1
    for stripe, placed in enumerate(fabric._current_stripe_placed):
        if placed:
            fabric.stripe_placed_invocations[stripe] += placed
            fabric.stripe_invocations[stripe] += 1
            fabric.filled_stripe_invocations += 1
    fabric.placed_pe_invocations += entry.fu_ops

    return InvocationResult(
        start=start,
        complete=complete,
        finish_times=finish,
        liveout_ready=liveout_ready,
        mem_events=mem_events,
        violations=list(entry.violations),
        structural_ii=entry.structural_ii,
        fu_ops=entry.fu_ops,
        datapath_transfers=entry.datapath_transfers,
        fifo_ops=entry.fifo_ops,
        occupancy_cycles=max(1, occupancy),
    )
