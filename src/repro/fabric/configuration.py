"""Trace configurations: the output of the dynamic mapper.

A ``Configuration`` records where every trace instruction was placed, how
its operands are routed, the trace's live-ins/live-outs, its embedded
(predicted) branch outcomes, and the simplified memory-instruction list the
paper keeps "consisting of only their PC, type, and their relative
ordering" (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode, OpClass, latency_of


@dataclass(frozen=True)
class OperandSource:
    """Where a placed operand's value comes from.

    ``kind`` is one of:
      * ``"inst"``   — another placed instruction (``producer_pos`` set);
      * ``"livein"`` — a trace live-in register (``reg`` set), delivered
        through the live-in FIFOs / global bus.
    """

    kind: str
    producer_pos: int | None = None
    reg: str | None = None
    hops: int = 0  # stripe crossings from the producer (>=1 for "inst")


@dataclass
class PlacedOp:
    """One trace instruction placed on a PE."""

    pos: int               # position within the trace (0-based)
    opcode: Opcode
    opclass: OpClass
    stripe: int
    pe_index: int
    pool: str
    sources: tuple[OperandSource, ...]
    #: Role of each source, parallel to ``sources``: "base" / "value" for
    #: memory operands, "src" otherwise.  A store's address resolves when
    #: its base operand arrives, independently of its (often later) data.
    source_roles: tuple[str, ...] = ()
    dest_reg: str | None = None
    pc: int = -1
    is_liveout: bool = False
    predicted_taken: bool | None = None   # branches only
    mem_index: int | None = None          # order among the trace's memory ops

    @property
    def latency(self) -> int:
        return latency_of(self.opcode)

    @property
    def is_load(self) -> bool:
        return self.opclass is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opclass is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.opclass is OpClass.BRANCH


@dataclass
class Configuration:
    """A complete mapping of one hot trace onto the fabric."""

    trace_key: tuple            # (start_pc, branch outcome tuple)
    placements: list[PlacedOp]
    live_ins: tuple[str, ...]
    live_outs: dict[str, int]   # arch register -> producing position
    branch_outcomes: tuple[bool, ...]
    mem_op_pcs: tuple[int, ...]          # simplified memory list (PC order)
    mem_op_kinds: tuple[str, ...]        # "load" / "store", parallel to pcs
    stripes_used: int = 0
    datapath_channels_used: int = 0
    mapping_cycles: int = 0              # cycles the mapping phase took

    _by_pos: dict[int, PlacedOp] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.placements.sort(key=lambda op: op.pos)
        self._by_pos = {op.pos: op for op in self.placements}
        if not self.stripes_used and self.placements:
            self.stripes_used = 1 + max(op.stripe for op in self.placements)

    def op_at(self, pos: int) -> PlacedOp:
        return self._by_pos[pos]

    @property
    def length(self) -> int:
        return len(self.placements)

    @property
    def pes_used(self) -> int:
        return len(self.placements)

    @property
    def num_branches(self) -> int:
        return len(self.branch_outcomes)

    def validate(self) -> None:
        """Check structural invariants of the mapping.

        Raises ``ValueError`` when the mapping violates the fabric's
        acyclic-forward dataflow or references unknown producers — the
        property-based mapper tests call this on every generated mapping.
        """
        for op in self.placements:
            for src in op.sources:
                if src.kind == "inst":
                    if src.producer_pos not in self._by_pos:
                        raise ValueError(
                            f"op {op.pos}: unknown producer {src.producer_pos}"
                        )
                    producer = self._by_pos[src.producer_pos]
                    if producer.stripe >= op.stripe:
                        raise ValueError(
                            f"op {op.pos} (stripe {op.stripe}) consumes from "
                            f"op {producer.pos} (stripe {producer.stripe}): "
                            "dataflow must move strictly forward"
                        )
                    if src.hops != op.stripe - producer.stripe:
                        raise ValueError(
                            f"op {op.pos}: recorded hops {src.hops} != "
                            f"{op.stripe - producer.stripe}"
                        )
                elif src.kind == "livein":
                    if src.reg not in self.live_ins:
                        raise ValueError(
                            f"op {op.pos}: live-in {src.reg} not declared"
                        )
                else:
                    raise ValueError(f"op {op.pos}: bad source kind {src.kind!r}")
        for reg, pos in self.live_outs.items():
            if pos not in self._by_pos:
                raise ValueError(f"live-out {reg}: unknown producer {pos}")
