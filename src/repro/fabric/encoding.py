"""Binary encoding of fabric configurations.

The configuration cache stores configurations in 16-byte blocks (Table 4).
This module defines the bit-level encoding of a mapped trace — per-PE
opcode and input-mux selects, pass-register routes, live-in/live-out FIFO
assignments, the simplified memory-instruction list, and the embedded
branch outcomes — so the framework can account how many blocks a
configuration occupies and the energy model can charge reconfiguration
traffic by actual size.

The encoding is a real serialization: ``encode``/``decode`` round-trip the
fields the fabric needs at execution time.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.fabric.configuration import Configuration, OperandSource, PlacedOp
from repro.isa.opcodes import Opcode, OpClass

CONFIG_BLOCK_BYTES = 16

_OPCODES = list(Opcode)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}
_POOLS = ("int_alu", "int_muldiv", "fp_alu", "fp_muldiv", "ldst")
_POOL_INDEX = {name: i for i, name in enumerate(_POOLS)}
_KINDS = ("inst", "livein")
_ROLES = ("src", "base", "value")

_HEADER = struct.Struct("<IHHHHHH")      # anchor pc, counts
_PLACED = struct.Struct("<BBBBBBHH")     # opcode, stripe, pe, pool/dest,
                                         # dest/nsrc, flags, pc>>2, pos
_SOURCE = struct.Struct("<BBH")          # kind|role, hops, payload
_LIVE = struct.Struct("<BH")             # register index, payload


def _reg_to_index(reg: str) -> int:
    """Registers encode as 0-31 (int) / 32-63 (fp)."""
    bank = 0 if reg.startswith("r") else 32
    return bank + int(reg[1:])


def _index_to_reg(index: int) -> str:
    if index < 32:
        return f"r{index}"
    return f"f{index - 32}"


@dataclass(frozen=True)
class EncodedConfiguration:
    """A serialized configuration plus its cache-block footprint."""

    data: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.data)

    @property
    def blocks(self) -> int:
        return -(-len(self.data) // CONFIG_BLOCK_BYTES)


def encode(configuration: Configuration) -> EncodedConfiguration:
    """Serialize a configuration to its cache image."""
    anchor_pc, outcomes, length = configuration.trace_key
    parts = [
        _HEADER.pack(
            anchor_pc,
            length,
            len(configuration.placements),
            len(configuration.live_ins),
            len(configuration.live_outs),
            len(configuration.mem_op_pcs),
            sum(1 << i for i, taken in enumerate(outcomes) if taken)
            | (len(outcomes) << 8),
        )
    ]
    for op in configuration.placements:
        flags = 0
        if op.predicted_taken is not None:
            flags |= 0x1 | (0x2 if op.predicted_taken else 0)
        if op.mem_index is not None:
            flags |= 0x4 | (op.mem_index << 3)
        dest = _reg_to_index(op.dest_reg) if op.dest_reg else 0xFF
        parts.append(_PLACED.pack(
            _OPCODE_INDEX[op.opcode],
            op.stripe,
            op.pe_index,
            (_POOL_INDEX[op.pool] << 4) | (dest >> 4),
            ((dest & 0xF) << 4) | len(op.sources),
            flags & 0xFF,
            op.pc >> 2,
            op.pos,
        ))
        roles = op.source_roles or ("src",) * len(op.sources)
        for src, role in zip(op.sources, roles):
            kind = _KINDS.index(src.kind) | (_ROLES.index(role) << 4)
            if src.kind == "inst":
                payload = src.producer_pos
            else:
                payload = _reg_to_index(src.reg)
            parts.append(_SOURCE.pack(kind, src.hops, payload))
        if op.mem_index is not None and flags >> 3 > 0x1F:
            raise ValueError("mem_index too large for the encoding")
    for reg in configuration.live_ins:
        parts.append(_LIVE.pack(_reg_to_index(reg), 0))
    for reg, pos in configuration.live_outs.items():
        parts.append(_LIVE.pack(_reg_to_index(reg), pos))
    for pc, kind in zip(configuration.mem_op_pcs, configuration.mem_op_kinds):
        parts.append(_LIVE.pack(0 if kind == "load" else 1, pc >> 2))
    return EncodedConfiguration(b"".join(parts))


def decode(encoded: EncodedConfiguration) -> Configuration:
    """Rebuild a configuration from its cache image."""
    data = encoded.data
    offset = _HEADER.size
    (anchor_pc, length, num_placed, num_liveins, num_liveouts, num_mem,
     outcome_bits) = _HEADER.unpack_from(data)
    num_outcomes = outcome_bits >> 8
    outcomes = tuple(
        bool(outcome_bits & (1 << i)) for i in range(num_outcomes)
    )

    placements = []
    for _ in range(num_placed):
        (op_index, stripe, pe_index, pool_dest_hi, dest_lo_nsrc, flags,
         pc4, pos) = _PLACED.unpack_from(data, offset)
        offset += _PLACED.size
        pool = _POOLS[pool_dest_hi >> 4]
        dest = ((pool_dest_hi & 0xF) << 4) | (dest_lo_nsrc >> 4)
        nsrc = dest_lo_nsrc & 0xF
        sources = []
        roles = []
        for _ in range(nsrc):
            kind_role, hops, payload = _SOURCE.unpack_from(data, offset)
            offset += _SOURCE.size
            kind = _KINDS[kind_role & 0xF]
            roles.append(_ROLES[kind_role >> 4])
            if kind == "inst":
                sources.append(OperandSource("inst", producer_pos=payload,
                                             hops=hops))
            else:
                sources.append(OperandSource(
                    "livein", reg=_index_to_reg(payload), hops=hops))
        opcode = _OPCODES[op_index]
        predicted = bool(flags & 0x2) if flags & 0x1 else None
        mem_index = (flags >> 3) if flags & 0x4 else None
        placements.append(PlacedOp(
            pos=pos,
            opcode=opcode,
            opclass=opcode_class(opcode),
            stripe=stripe,
            pe_index=pe_index,
            pool=pool,
            sources=tuple(sources),
            source_roles=tuple(roles),
            dest_reg=None if dest == 0xFF else _index_to_reg(dest),
            pc=pc4 << 2,
            predicted_taken=predicted,
            mem_index=mem_index,
        ))

    live_ins = []
    for _ in range(num_liveins):
        reg_index, _pad = _LIVE.unpack_from(data, offset)
        offset += _LIVE.size
        live_ins.append(_index_to_reg(reg_index))
    live_outs = {}
    for _ in range(num_liveouts):
        reg_index, pos = _LIVE.unpack_from(data, offset)
        offset += _LIVE.size
        live_outs[_index_to_reg(reg_index)] = pos
    mem_pcs = []
    mem_kinds = []
    for _ in range(num_mem):
        kind, pc4 = _LIVE.unpack_from(data, offset)
        offset += _LIVE.size
        mem_pcs.append(pc4 << 2)
        mem_kinds.append("load" if kind == 0 else "store")

    return Configuration(
        trace_key=(anchor_pc, outcomes, length),
        placements=placements,
        live_ins=tuple(live_ins),
        live_outs=live_outs,
        branch_outcomes=outcomes,
        mem_op_pcs=tuple(mem_pcs),
        mem_op_kinds=tuple(mem_kinds),
    )


def opcode_class(opcode: Opcode) -> OpClass:
    from repro.isa.opcodes import opclass_of

    return opclass_of(opcode)


def configuration_blocks(configuration: Configuration) -> int:
    """Cache blocks a configuration occupies (Table 4: 16-byte blocks)."""
    return encode(configuration).blocks
