"""Pre-lowered (compiled) evaluators for fabric configurations.

A ``Configuration`` is immutable once the mapper produces it, yet the
interpreted evaluators re-derive the same facts on every invocation:
``SpatialFabric.execute`` recomputes the structural initiation interval,
re-walks each op's operand sources (re-reading roles, re-counting hops),
and re-extracts live-outs; ``FunctionalFabric.execute`` re-classifies
every opcode through a chain of dict-membership tests.  Steady state runs
millions of invocations over a handful of configurations — the same
insight DynaSpAM itself applies to instruction schedules applies here:
lower the reused structure once, then execute the lowered form.

Two plans, both cached on the configuration object and keyed by identity:

* :class:`TimingPlan` — for the cycle engine: topological op steps with
  pre-split producer/live-in gather lists, per-op latency and mem kind,
  the structural II, constant datapath-transfer and FIFO-op totals, and
  the live-out extraction list.
* :class:`FunctionalPlan` — for the value engine: per-op gather indices
  and a resolved evaluator kind (immediate / load / store / branch /
  unary / binop) with its operator function.

``ConfigCache.insert`` pre-compiles the timing plan so offloading starts
hot; both evaluators also compile lazily on first use.  Plan use is gated
on :func:`repro.engine.fastpath_enabled` — with the fast path off, the
interpreted loops in ``repro.fabric.fabric`` / ``repro.fabric.functional``
remain the reference semantics, and the identity sweep holds the two
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric.configuration import Configuration, PlacedOp
from repro.isa.opcodes import FU_PIPELINED, OpClass, latency_of

# Timing-step kinds.
T_ALU = 0
T_LOAD = 1
T_STORE = 2

# Functional evaluator kinds.
F_IMM = 0
F_LOAD = 1
F_STORE = 2
F_BRANCH = 3
F_UNARY = 4
F_BINOP = 5


@dataclass(frozen=True)
class TimingPlan:
    """Everything ``SpatialFabric.execute`` needs that never changes."""

    structural_ii: int
    #: Per placed op, in topological (position) order:
    #: ``(pos, kind, latency, mem_index, op, inst_srcs, live_srcs)`` with
    #: ``inst_srcs = ((producer_pos, arrival_add, is_base), ...)`` and
    #: ``live_srcs = ((reg, is_base), ...)``.
    steps: tuple
    datapath_transfers: int   # sum of hops over all producer routes
    fifo_ops: int             # live-in gathers + live-out drains
    liveouts: tuple           # ((reg, producer_pos), ...)


@dataclass(frozen=True)
class FunctionalPlan:
    """Everything ``FunctionalFabric.execute`` needs that never changes."""

    #: Per placed op: ``(pos, gather, kind, fn, aux)`` with
    #: ``gather = ((is_livein, reg_or_producer_pos), ...)``; ``aux`` is
    #: the load's is-float flag, the store's (base_idx, value_idx), or
    #: the branch's operand count.
    steps: tuple
    liveouts: tuple           # ((reg, producer_pos), ...)


def _pe_busy(op: PlacedOp) -> int:
    if op.opclass in (OpClass.LOAD, OpClass.STORE):
        return 1
    return 1 if FU_PIPELINED[op.opclass] else latency_of(op.opcode)


def compile_timing_plan(configuration: Configuration) -> TimingPlan:
    """Lower a configuration for the cycle engine and cache it."""
    structural_ii = max(
        (_pe_busy(op) for op in configuration.placements), default=1
    )
    steps = []
    datapath_transfers = 0
    gather_fifo_ops = 0
    for op in configuration.placements:
        inst_srcs = []
        live_srcs = []
        roles = op.source_roles or ("src",) * len(op.sources)
        for src, role in zip(op.sources, roles):
            is_base = role == "base"
            if src.kind == "inst":
                add = src.hops - 1 if src.hops > 1 else 0
                inst_srcs.append((src.producer_pos, add, is_base))
                datapath_transfers += src.hops
            else:
                live_srcs.append((src.reg, is_base))
                gather_fifo_ops += 1
        if op.is_load:
            kind = T_LOAD
        elif op.is_store:
            kind = T_STORE
        else:
            kind = T_ALU
        steps.append((op.pos, kind, latency_of(op.opcode), op.mem_index,
                      op, tuple(inst_srcs), tuple(live_srcs)))
    liveouts = tuple(configuration.live_outs.items())
    plan = TimingPlan(
        structural_ii=structural_ii,
        steps=tuple(steps),
        datapath_transfers=datapath_transfers,
        fifo_ops=gather_fifo_ops + len(liveouts),
        liveouts=liveouts,
    )
    configuration._timing_plan = plan
    return plan


def timing_plan_of(configuration: Configuration) -> TimingPlan:
    """Return the configuration's timing plan, compiling on first use."""
    plan = getattr(configuration, "_timing_plan", None)
    if plan is None:
        plan = compile_timing_plan(configuration)
    return plan


def compile_functional_plan(
    configuration: Configuration,
) -> FunctionalPlan | None:
    """Lower a configuration for the value engine and cache it.

    Returns ``None`` (cached as ``False``) when any opcode falls outside
    the compiled evaluator's repertoire — the interpreted path then owns
    the invocation, including its error behavior.
    """
    # Imported here: functional.py imports the ISA executor stack, which
    # the pure timing path never needs.
    from repro.fabric.functional import _BRANCH, _COMMUTATIVE_BINOPS, _UNARY
    from repro.isa.opcodes import Opcode

    steps = []
    for op in configuration.placements:
        gather = []
        for src in op.sources:
            if src.kind == "livein":
                gather.append((True, src.reg))
            else:
                gather.append((False, src.producer_pos))
        opcode = op.opcode
        fn = None
        aux = None
        if opcode in (Opcode.LI, Opcode.FLI):
            kind = F_IMM
        elif opcode in (Opcode.LW, Opcode.FLW):
            kind = F_LOAD
            aux = opcode is Opcode.FLW
        elif opcode in (Opcode.SW, Opcode.FSW):
            kind = F_STORE
            roles = op.source_roles or ("base", "value")[: len(op.sources)]
            base_idx = None
            value_idx = None
            # Truncate to the operand count, matching the interpreter's
            # zip(operands, roles); last matching role wins, as there.
            for index, role in enumerate(roles[: len(op.sources)]):
                if role == "base":
                    base_idx = index
                elif role == "value":
                    value_idx = index
            aux = (base_idx, value_idx)
        elif opcode in _BRANCH:
            kind = F_BRANCH
            fn = _BRANCH[opcode]
            aux = len(op.sources)
        elif opcode in _UNARY:
            kind = F_UNARY
            fn = _UNARY[opcode]
        elif opcode in _COMMUTATIVE_BINOPS:
            kind = F_BINOP
            fn = _COMMUTATIVE_BINOPS[opcode]
            aux = opcode.value  # for the missing-operand error message
        else:
            configuration._functional_plan = False
            return None
        steps.append((op.pos, tuple(gather), kind, fn, aux))
    plan = FunctionalPlan(
        steps=tuple(steps),
        liveouts=tuple(configuration.live_outs.items()),
    )
    configuration._functional_plan = plan
    return plan


def functional_plan_of(configuration: Configuration) -> FunctionalPlan | None:
    """The configuration's functional plan, or None if uncompilable."""
    plan = getattr(configuration, "_functional_plan", None)
    if plan is None:
        return compile_functional_plan(configuration)
    if plan is False:
        return None
    return plan


@dataclass(frozen=True)
class OffloadPlan:
    """Per-configuration constants for ``repro.core.offload``."""

    #: ``(mem_index, pos, pc)`` of every placed store, in position order.
    store_positions: tuple
    #: Placed load ops, in position order.
    loads: tuple
    #: ``mem_index`` of every placed store.
    store_mem_indices: tuple
    #: ``(PipelineStats attr name, count)`` per pool with placed ops —
    #: replaces the per-op f-string/getattr/setattr loop at commit.
    pool_counters: tuple


def compile_offload_plan(configuration: Configuration) -> OffloadPlan:
    """Lower the offload engine's per-configuration loops and cache it."""
    store_positions = []
    loads = []
    store_mem_indices = []
    pool_counts: dict[str, int] = {}
    for op in configuration.placements:
        if op.is_store:
            store_positions.append((op.mem_index, op.pos, op.pc))
            store_mem_indices.append(op.mem_index)
        elif op.is_load:
            loads.append(op)
        pool_counts[op.pool] = pool_counts.get(op.pool, 0) + 1
    plan = OffloadPlan(
        store_positions=tuple(store_positions),
        loads=tuple(loads),
        store_mem_indices=tuple(store_mem_indices),
        pool_counters=tuple(
            (f"fabric_{pool}_ops", count)
            for pool, count in pool_counts.items()
        ),
    )
    configuration._offload_plan = plan
    return plan


def offload_plan_of(configuration: Configuration) -> OffloadPlan:
    """The configuration's offload plan, compiling on first use."""
    plan = getattr(configuration, "_offload_plan", None)
    if plan is None:
        plan = compile_offload_plan(configuration)
    return plan
