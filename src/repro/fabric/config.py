"""Fabric geometry configuration (the fabric rows of Table 4)."""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_stripe_pools() -> dict[str, int]:
    # "same execution units as OOO per strip" (Table 4).
    return {
        "int_alu": 4,
        "int_muldiv": 1,
        "fp_alu": 4,
        "fp_muldiv": 1,
        "ldst": 2,
    }


@dataclass
class FabricConfig:
    """Geometry and timing parameters of one spatial fabric.

    ``per_stripe_pools`` optionally overrides ``stripe_pools`` with a
    different pool mix per stripe — Figure 5's comparison fabrics (CCA's
    triangle of shrinking rows, for instance) are heterogeneous in depth.
    """

    num_stripes: int = 16
    stripe_pools: dict[str, int] = field(default_factory=_default_stripe_pools)
    per_stripe_pools: tuple[dict[str, int], ...] | None = None
    pass_regs_per_fu: int = 3
    fifo_depth: int = 8              # "8-entry buffers"
    livein_fifos: int = 16
    liveout_fifos: int = 16
    global_bus_latency: int = 1      # live-in delivery / inter-invocation forward
    stripe0_input_ports: int = 2     # first-stripe PEs take two live-ins
    deep_input_ports: int = 1        # deeper PEs receive one live-in via the bus
    reconfig_cycles_per_stripe: int = 2
    load_reservation_entries: int = 8

    def __post_init__(self) -> None:
        if self.num_stripes < 1:
            raise ValueError("fabric needs at least one stripe")
        if self.fifo_depth < 1:
            raise ValueError("FIFOs need at least one entry")
        if (self.per_stripe_pools is not None
                and len(self.per_stripe_pools) != self.num_stripes):
            raise ValueError(
                "per_stripe_pools must list one pool mix per stripe"
            )

    def pools_for(self, stripe: int) -> dict[str, int]:
        """Pool mix of one stripe."""
        if self.per_stripe_pools is not None:
            return self.per_stripe_pools[stripe]
        return self.stripe_pools

    def pes_in_stripe(self, stripe: int) -> int:
        return sum(self.pools_for(stripe).values())

    def channels_in_stripe(self, stripe: int) -> int:
        """Pass-register (routing channel) capacity of one stripe."""
        return self.pass_regs_per_fu * self.pes_in_stripe(stripe)

    @property
    def pes_per_stripe(self) -> int:
        """PE count of a (homogeneous) stripe; max across heterogeneous."""
        if self.per_stripe_pools is not None:
            return max(sum(pools.values()) for pools in self.per_stripe_pools)
        return sum(self.stripe_pools.values())

    @property
    def pass_regs_per_stripe(self) -> int:
        return self.pass_regs_per_fu * self.pes_per_stripe

    def reconfig_latency(self, stripes_used: int) -> int:
        """Cycles to load a configuration touching ``stripes_used`` stripes."""
        return self.reconfig_cycles_per_stripe * max(1, stripes_used)


def cca_like(num_rows: int = 4, top_width: int = 6) -> FabricConfig:
    """A CCA-style comparison fabric (Figure 5a).

    A triangle of integer rows shrinking with depth, inputs only at the
    top row, and *no pass registers*: a value is consumable only by the
    row directly below its producer ("data used in one row cannot be
    reused in the same row", and CCA has no multi-row bypass paths).
    CCA executes integer subgraphs only — no FP units, no memory ports.
    """
    rows = []
    for row in range(num_rows):
        width = max(1, top_width - row)
        rows.append({
            "int_alu": width,
            "int_muldiv": 1,
            "fp_alu": 1,     # minimum one PE per pool keeps the
            "fp_muldiv": 1,  # one-to-one FU mapping well defined; CCA
            "ldst": 1,       # itself would reject these op classes
        })
    return FabricConfig(
        num_stripes=num_rows,
        per_stripe_pools=tuple(rows),
        pass_regs_per_fu=0,
        stripe0_input_ports=2,
        deep_input_ports=1,
    )
