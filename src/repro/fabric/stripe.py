"""Stripes: rows of PEs sharing an interconnect and pass-register file."""

from __future__ import annotations

from repro.fabric.config import FabricConfig
from repro.fabric.pe import PE


class Stripe:
    """One fabric stripe: an array of PEs plus pass registers."""

    def __init__(self, index: int, config: FabricConfig) -> None:
        self.index = index
        ports = (
            config.stripe0_input_ports if index == 0 else config.deep_input_ports
        )
        self.pes: list[PE] = []
        pe_index = 0
        for pool, count in config.pools_for(index).items():
            for _ in range(count):
                self.pes.append(PE(index, pe_index, pool, ports))
                pe_index += 1
        self.pass_registers = config.channels_in_stripe(index)

    def pes_of_pool(self, pool: str) -> list[PE]:
        return [pe for pe in self.pes if pe.pool == pool]

    def __len__(self) -> int:
        return len(self.pes)

    def __iter__(self):
        return iter(self.pes)


def build_stripes(config: FabricConfig) -> list[Stripe]:
    """Construct the full stripe array for a fabric."""
    return [Stripe(i, config) for i in range(config.num_stripes)]
