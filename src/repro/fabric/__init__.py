"""Reconfigurable spatial fabric substrate.

A stripe-organized, acyclically connected fabric (paper Section 3.2 and
Figure 4): each stripe holds the same functional-unit mix as the host OOO
pipeline, values flow forward through direct wires and pass registers, and
live-ins/live-outs move through FIFOs on a global bus.  ``SpatialFabric``
is the dataflow timing engine that executes mapped trace configurations,
including pipelined back-to-back invocations.
"""

from repro.fabric.config import cca_like, FabricConfig
from repro.fabric.pe import PE
from repro.fabric.stripe import Stripe
from repro.fabric.configuration import Configuration, OperandSource, PlacedOp
from repro.fabric.encoding import configuration_blocks, decode, encode
from repro.fabric.fifos import FifoModel
from repro.fabric.fabric import InvocationContext, InvocationResult, SpatialFabric
from repro.fabric.functional import CoSimulator, FunctionalFabric

__all__ = [
    "cca_like",
    "Configuration",
    "configuration_blocks",
    "CoSimulator",
    "decode",
    "encode",
    "FabricConfig",
    "FifoModel",
    "FunctionalFabric",
    "InvocationContext",
    "InvocationResult",
    "OperandSource",
    "PE",
    "PlacedOp",
    "SpatialFabric",
    "Stripe",
]
