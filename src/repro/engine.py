"""Engine selection: the compiled hot path vs the interpreted model.

The repository carries two implementations of its innermost loops:

* the *interpreted* engine — ``repro.ooo.pipeline.OOOPipeline.process``
  and the plan-free branches of ``SpatialFabric.execute`` /
  ``FunctionalFabric.execute`` — written for readability and used as the
  reference model;
* the *fast path* — ``repro.ooo.fastpath.FastOOOPipeline`` plus the
  pre-lowered evaluators of ``repro.fabric.compiled`` — bit-identical by
  construction and enforced so by the identity sweep
  (``tests/engine/test_fastpath_identity.py`` and the CI
  ``fastpath-identity`` job).

The fast path is on by default.  ``REPRO_FASTPATH=0`` (or
:func:`set_fastpath`) selects the interpreted engine — the A side of
every identity comparison and of ``repro perfbench --engine both``.

Because both engines produce byte-identical reports, engine choice is
deliberately *not* part of the run-cache identity
(``repro.harness.runner.RunKey``): a cached result serves both engines.
Comparisons that must time or diff real executions therefore bypass the
caches (the identity sweep simulates directly; ``perfbench`` never
touches the run cache; the CI identity job uses disjoint cache dirs).
"""

from __future__ import annotations

import os


def _env_default() -> bool:
    return os.environ.get("REPRO_FASTPATH", "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


#: Process-wide engine switch.  Read through :func:`fastpath_enabled`.
_FASTPATH: bool = _env_default()


def fastpath_enabled() -> bool:
    """True when new pipelines/fabrics should use the compiled hot path."""
    return _FASTPATH


def set_fastpath(enabled: bool) -> bool:
    """Select the engine for subsequently constructed simulators.

    Returns the previous setting.  Components capture the engine at
    construction time (``make_pipeline``) or probe it per invocation
    (fabric evaluators); flipping the flag never changes a simulation
    already in flight.
    """
    global _FASTPATH
    previous = _FASTPATH
    _FASTPATH = bool(enabled)
    return previous


class use_fastpath:
    """Context manager scoping an engine choice (used by tests/benchmarks)."""

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self._previous: bool | None = None

    def __enter__(self) -> "use_fastpath":
        self._previous = set_fastpath(self.enabled)
        return self

    def __exit__(self, *exc) -> None:
        set_fastpath(self._previous)
