"""Engine selection: the compiled hot path, the invocation memo, and the
interpreted model.

The repository carries three orthogonal engine tiers for its innermost
loops:

* the *interpreted* engine — ``repro.ooo.pipeline.OOOPipeline.process``
  and the plan-free branches of ``SpatialFabric.execute`` /
  ``FunctionalFabric.execute`` — written for readability and used as the
  reference model;
* the *fast path* — ``repro.ooo.fastpath.FastOOOPipeline`` plus the
  pre-lowered evaluators of ``repro.fabric.compiled`` — bit-identical by
  construction and enforced so by the identity sweep
  (``tests/engine/test_fastpath_identity.py`` and the CI
  ``fastpath-identity`` job);
* the *invocation memo* — ``repro.fabric.memo`` plus the batched
  super-step of ``repro.core.framework`` — replays cached invocation
  timelines (with cycle-offset rebasing) when a configuration is
  re-invoked under a matching dynamic-input key, instead of re-walking
  the fabric timing engine.

Both accelerated tiers are on by default and composable:
``REPRO_FASTPATH=0`` (or :func:`set_fastpath`) selects the interpreted
walks, ``REPRO_MEMO=0`` (or :func:`set_memo`) disables memoization and
batching.  ``REPRO_FASTPATH=0 REPRO_MEMO=0`` is the pure reference model
— the A side of every identity comparison and of
``repro perfbench --engine both``.

Because every tier combination produces identical *simulated* results,
engine choice is deliberately *not* part of the run-cache identity
(``repro.harness.runner.RunKey``): a cached result serves every tier.
Comparisons that must time or diff real executions therefore bypass the
caches (the identity sweep simulates directly; ``perfbench`` never
touches the run cache; the CI identity job uses disjoint cache dirs).

Identity is byte-exact up to the simulator-internal observability
counters named in :data:`ENGINE_TIER_COUNTERS` (a memo necessarily
counts its own hits) and the event types in :data:`ENGINE_TIER_EVENTS`
(emitted only when the corresponding tier runs).  Identity gates zero or
filter exactly those before comparing; every architectural or
energy-relevant number must match bit-for-bit.
"""

from __future__ import annotations

import os


def _env_default() -> bool:
    return os.environ.get("REPRO_FASTPATH", "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


def _memo_env_default() -> bool:
    return os.environ.get("REPRO_MEMO", "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


#: ``PipelineStats`` fields that legitimately differ across engine tiers:
#: simulator-internal observability counters with no energy cost and no
#: influence on any simulated number.  Identity comparisons (the
#: ``tests/engine`` sweep, ``scripts/check_report_identity.py``) zero
#: these on both sides before demanding byte equality.
ENGINE_TIER_COUNTERS = frozenset({
    "invocation_memo_hits",
    "invocation_memo_misses",
    "batched_invocations",
    "predict_memo_hits",
    "predict_memo_misses",
})

#: Event-bus types emitted only by an accelerated tier.  Traced-stream
#: identity comparisons filter these (and renumber ``seq``) before
#: comparing across tier settings; within one tier setting the full
#: stream is still byte-identical.
ENGINE_TIER_EVENTS = frozenset({
    "fabric.memo_hit",
    "fabric.memo_miss",
    "fabric.memo_bailout",
    "fabric.memo_unsupported",
    "offload.batch",
})


#: Process-wide engine switch.  Read through :func:`fastpath_enabled`.
_FASTPATH: bool = _env_default()

#: Process-wide memo-tier switch.  Read through :func:`memo_enabled`.
_MEMO: bool = _memo_env_default()


def fastpath_enabled() -> bool:
    """True when new pipelines/fabrics should use the compiled hot path."""
    return _FASTPATH


def set_fastpath(enabled: bool) -> bool:
    """Select the engine for subsequently constructed simulators.

    Returns the previous setting.  Components capture the engine at
    construction time (``make_pipeline``) or probe it per invocation
    (fabric evaluators); flipping the flag never changes a simulation
    already in flight.
    """
    global _FASTPATH
    previous = _FASTPATH
    _FASTPATH = bool(enabled)
    return previous


class use_fastpath:
    """Context manager scoping an engine choice (used by tests/benchmarks)."""

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self._previous: bool | None = None

    def __enter__(self) -> "use_fastpath":
        self._previous = set_fastpath(self.enabled)
        return self

    def __exit__(self, *exc) -> None:
        set_fastpath(self._previous)


def memo_enabled() -> bool:
    """True when fabrics should memoize (and batch) invocation timing."""
    return _MEMO


def set_memo(enabled: bool) -> bool:
    """Select the memo tier for subsequent invocations.

    Returns the previous setting.  Like the fast path, the flag is probed
    per invocation/anchor; flipping it mid-run simply stops (or starts)
    consulting the memo from the next invocation on — cached entries are
    keyed on invocation inputs only and never go stale.
    """
    global _MEMO
    previous = _MEMO
    _MEMO = bool(enabled)
    return previous


class use_memo:
    """Context manager scoping the memo tier (used by tests/benchmarks)."""

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self._previous: bool | None = None

    def __enter__(self) -> "use_memo":
        self._previous = set_memo(self.enabled)
        return self

    def __exit__(self, *exc) -> None:
        set_memo(self._previous)
