"""Top-level command line interface.

Usage::

    python -m repro list                          # available benchmarks
    python -m repro run KM [--scale 0.5] [--mode accelerate]
                           [--no-speculation] [--fabrics 2]
                           [--trace-length 32] [--json]
    python -m repro bench [--scale 1.0] [--jobs 4] [--no-cache]
                          [--output BENCH_speedup.json]
    python -m repro harness fig8 [--scale 1.0] [--jobs 4]  # = repro.harness

``run`` simulates one benchmark on the baseline core and the DynaSpAM
machine and reports speedup, coverage, trace statistics, and the energy
ledger — as a human-readable summary or a JSON document for scripting.
``bench`` times the full Figure 8 sweep and writes a machine-readable
speedup/timing report so the performance trajectory is tracked PR over PR.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import DynaSpAM, DynaSpAMConfig
from repro.energy import EnergyModel
from repro.ooo.pipeline import OOOPipeline
from repro.workloads import ALL_ABBREVS, BENCHMARKS, generate_trace


def cmd_list(_args) -> int:
    print(f"{'abbrev':>7}  {'name':<22} {'domain':<20} kernel")
    for abbrev in ALL_ABBREVS:
        bench = BENCHMARKS[abbrev]
        print(f"{abbrev:>7}  {bench.name:<22} {bench.domain:<20} "
              f"{bench.kernel}")
    return 0


def cmd_run(args) -> int:
    if args.benchmark not in BENCHMARKS:
        print(f"unknown benchmark {args.benchmark!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    run = generate_trace(args.benchmark, args.scale)
    baseline = OOOPipeline().run_trace(run.trace)
    machine = DynaSpAM(
        ds_config=DynaSpAMConfig(
            mode=args.mode,
            speculation=not args.no_speculation,
            trace_length=args.trace_length,
            num_fabrics=args.fabrics,
        )
    )
    result = machine.run(run.trace, run.program)
    model = EnergyModel()
    base_energy = model.breakdown(baseline.stats)
    dyna_energy = model.breakdown(result.stats)

    report = {
        "benchmark": args.benchmark,
        "scale": args.scale,
        "mode": args.mode,
        "speculation": not args.no_speculation,
        "dynamic_instructions": run.dynamic_count,
        "baseline_cycles": baseline.cycles,
        "dynaspam_cycles": result.cycles,
        "speedup": baseline.cycles / result.cycles if result.cycles else 0.0,
        "coverage": result.coverage,
        "mapped_traces": result.mapped_traces,
        "offloaded_traces": result.offloaded_traces,
        "fabric_invocations": result.stats.fabric_invocations,
        "mean_configuration_lifetime": result.mean_lifetime,
        "squashes": result.squashes,
        "reconfigurations": result.reconfigurations,
        "energy_reduction": dyna_energy.reduction_vs(base_energy),
        "energy_components_normalized": dyna_energy.normalized_to(base_energy),
    }
    if args.json:
        print(json.dumps(report, indent=2))
        return 0

    cov = result.coverage
    print(f"{args.benchmark}: {run.dynamic_count} dynamic instructions "
          f"at scale {args.scale}")
    print(f"  baseline  {baseline.cycles:>9} cycles (IPC {baseline.ipc:.2f})")
    print(f"  DynaSpAM  {result.cycles:>9} cycles "
          f"(speedup {report['speedup']:.2f}x)")
    print(f"  coverage  host {cov['host']:.1%} | mapping "
          f"{cov['mapping']:.1%} | fabric {cov['fabric']:.1%}")
    print(f"  traces    {result.mapped_traces} mapped, "
          f"{result.offloaded_traces} offloaded, "
          f"{result.stats.fabric_invocations} invocations, "
          f"lifetime {result.mean_lifetime:.0f}")
    print(f"  energy    {report['energy_reduction']:.1%} reduction")
    return 0


def cmd_bench(args) -> int:
    """Timed Figure 8 sweep -> machine-readable speedup/timing report."""
    import repro.harness.diskcache as diskcache
    from repro.harness import figure8_performance
    from repro.harness.profiling import PROFILER

    if args.no_cache:
        diskcache.configure(enabled=False)
    started = time.perf_counter()
    result = figure8_performance(args.scale, jobs=args.jobs)
    wall_clock = time.perf_counter() - started

    cache_stats = diskcache.shared_stats()
    report = {
        "experiment": "fig8",
        "scale": args.scale,
        "jobs": args.jobs,
        "disk_cache_enabled": diskcache.is_enabled(),
        "wall_clock_seconds": wall_clock,
        "geomean": {
            series: result.series_geomean(series)
            for series in ("mapping", "no_spec", "spec")
        },
        "per_benchmark": result.speedups,
        "cache": {
            "disk": cache_stats,
            "memory_hits": PROFILER.counters.get("run_cache_memory_hits", 0),
            "predict_memo_hits": PROFILER.counters.get(
                "predict_memo_hits", 0),
            "predict_memo_misses": PROFILER.counters.get(
                "predict_memo_misses", 0),
        },
        "profile": PROFILER.snapshot(),
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"geomean speedup (spec) {report['geomean']['spec']:.2f}x | "
          f"wall clock {wall_clock:.2f}s | report -> {args.output}")
    if args.profile:
        from repro.harness.__main__ import print_profile

        print_profile()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available benchmarks")

    run_parser = sub.add_parser("run", help="simulate one benchmark")
    run_parser.add_argument("benchmark")
    run_parser.add_argument("--scale", type=float, default=1.0)
    run_parser.add_argument("--mode", default="accelerate",
                            choices=["baseline", "mapping_only", "accelerate"])
    run_parser.add_argument("--no-speculation", action="store_true")
    run_parser.add_argument("--fabrics", type=int, default=1)
    run_parser.add_argument("--trace-length", type=int, default=32)
    run_parser.add_argument("--json", action="store_true")

    from repro.harness.__main__ import add_cache_arguments

    bench_parser = sub.add_parser(
        "bench", help="timed Figure 8 sweep with a JSON report")
    bench_parser.add_argument("--scale", type=float, default=1.0)
    bench_parser.add_argument("--output", default="BENCH_speedup.json")
    add_cache_arguments(bench_parser)

    harness_parser = sub.add_parser("harness",
                                    help="regenerate evaluation artifacts")
    harness_parser.add_argument("experiment")
    harness_parser.add_argument("--scale", type=float, default=1.0)
    add_cache_arguments(harness_parser)

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "bench":
        return cmd_bench(args)
    from repro.harness.__main__ import main as harness_main

    forwarded = [args.experiment, "--scale", str(args.scale)]
    if args.jobs is not None:
        forwarded += ["--jobs", str(args.jobs)]
    if args.no_cache:
        forwarded.append("--no-cache")
    if args.profile:
        forwarded.append("--profile")
    return harness_main(forwarded)


if __name__ == "__main__":
    sys.exit(main())
