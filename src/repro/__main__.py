"""Top-level command line interface.

Usage::

    python -m repro list [--programs DIR]         # available benchmarks
    python -m repro ingest PROG.spam [--passes lvn,dce,licm]
                                     [--json] [--emit-ir]
    python -m repro run KM [--scale 0.5] [--mode accelerate]
                           [--no-speculation] [--fabrics 2]
                           [--trace-length 32] [--json]
                           [--trace-out km.trace.json]
    python -m repro explain KM [--scale 0.5] [--top 10]
                               [--trace-id 0x1a4:TNT:32]
    python -m repro why KM [--scale 0.5] [--mode accelerate] [--json]
    python -m repro study --programs corpus [--passes none]
                          [--passes lvn,dce] [--only bfs_frontier,dot]
                          [--json] [--output STUDY.json]
    python -m repro analyze KM [--scale 0.5] [--baseline host]
    python -m repro diff A.json B.json [--json] [--force]
    python -m repro bench [--scale 1.0] [--jobs 4] [--no-cache] [--cold]
                          [--progress]
                          [--output BENCH_speedup.json] [--dashboard DIR]
    python -m repro serve [--port 8763] [--workers 2] [--queue-depth 64]
    python -m repro submit KM [--scale 0.5] [--wait] [--port 8763]
    python -m repro watch JOB_ID [--port 8763] [--interval 0.2]
    python -m repro harness fig8 [--scale 1.0] [--jobs 4]  # = repro.harness

``ingest`` runs a ``.spam`` program through the ``repro.lang`` frontend
(parse, check, optional optimization passes, lowering to the simulator
ISA) and differentially tests the lowered program against the reference
interpreter before registering it as a benchmark.
``run`` simulates one benchmark on the baseline core and the DynaSpAM
machine and reports speedup, coverage, trace statistics, and the energy
ledger — as a human-readable summary or a JSON document for scripting.
``run --program PROG.spam`` does the same for an ingested frontend
program (its content-hash abbreviation keys the run caches, so editing
the source can never replay a stale result).
``run --trace-out`` additionally records the lifecycle event stream and
exports it as Chrome trace-event JSON (load it in https://ui.perfetto.dev
or chrome://tracing); the simulated numbers are bit-identical either way.
``explain`` replays the same event stream into per-trace lifetime
reports: when each trace was detected, went hot, got mapped, turned
ready, and how often it offloaded or squashed.
``why`` folds the event stream into decision records — every trace
candidate's terminal fate (offloaded, unmappable, never hot, ...) plus
a lost-cycles attribution joining the fates against the cycle-accounting
buckets; nonzero exit if fate conservation is violated.
``study`` runs every ``.spam`` corpus program under each ``--passes``
pipeline (default: none, lvn+dce, licm) with decision records on and
reports the detection/mapping/squash deltas side by side.
``analyze`` prints the top-down cycle-accounting breakdown — every
simulated cycle charged to exactly one bucket — side by side for the
host, mapping-only, and accelerated runs, with a conservation check
(nonzero exit if any bucket leaks) and the fabric-utilization summary.
``diff`` compares two report JSON files (``run --json`` or ``bench``
documents) and attributes each per-benchmark cycle delta to bucket
deltas; it refuses mismatched report schema versions unless ``--force``
and warns when the code fingerprints differ.
``bench`` times the full Figure 8 sweep and writes a machine-readable
speedup/timing report so the performance trajectory is tracked PR over PR
(``--cold`` bypasses the caches so the timing measures real simulation).
``serve`` starts the simulation-as-a-service HTTP server and ``submit``
sends it a job; ``submit --wait`` prints the same JSON ``run --json``
does, resolved through the server's queue and caches.
``watch`` follows a submitted job's live progress (the
``/v1/jobs/{id}/progress`` endpoint) until it is terminal.

Host-runtime telemetry (``repro.obs.runtime``) is wired here: setting
``REPRO_LOG=runs.jsonl`` streams structured span/heartbeat records for
any command, ``bench --progress`` / ``study --progress`` print live
heartbeats, and ``run --trace-out`` adds a second wall-clock process to
the exported Chrome trace.  With none of those enabled the telemetry
path is never allocated and every report stays byte-identical.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def _fail(message: str) -> int:
    """One-line diagnostic on stderr + conventional usage-error exit code."""
    print(f"repro: error: {message}", file=sys.stderr)
    return 2


def _validate_run_args(args) -> str | None:
    """Canonical benchmark on success, ``None`` after printing an error."""
    from repro.service.errors import InvalidJob
    from repro.service.jobs import validate_benchmark, validate_scale

    try:
        benchmark = validate_benchmark(args.benchmark)
        validate_scale(args.scale)
    except InvalidJob as exc:
        _fail(str(exc))
        return None
    return benchmark


def _parse_passes(spec: str | None) -> tuple[str, ...]:
    """``--passes lvn,dce`` -> ``("lvn", "dce")``; raises ``ValueError``."""
    if not spec:
        return ()
    from repro.lang import parse_pass_spec

    return tuple(parse_pass_spec(spec))


def cmd_list(args) -> int:
    from repro.workloads import ALL_ABBREVS, BENCHMARKS

    programs = None
    if args.programs:
        from repro.lang import LangError
        from repro.workloads.suite import discover_programs

        try:
            programs = discover_programs(args.programs,
                                         _parse_passes(args.passes))
        except (LangError, ValueError, OSError) as exc:
            return _fail(str(exc))

    print(f"{'abbrev':>7}  {'name':<22} {'domain':<20} kernel")
    for abbrev in ALL_ABBREVS:
        bench = BENCHMARKS[abbrev]
        print(f"{abbrev:>7}  {bench.name:<22} {bench.domain:<20} "
              f"{bench.kernel}")
    if programs is not None:
        print()
        print(f"programs under {args.programs}:")
        print(f"  {'name':<14} abbrev")
        for bench in programs:
            print(f"  {bench.name:<14} {bench.abbrev}")
    return 0


def cmd_ingest(args) -> int:
    """Parse, check, optimize, lower, and differentially test one program."""
    import pathlib

    from repro.lang import (
        LangError,
        check_module,
        execute_lowered,
        format_module,
        interpret,
        load_file,
        lower_module,
        output_of,
        run_passes,
    )
    from repro.obs.runtime import TRACER
    from repro.workloads.suite import register_program

    try:
        passes = _parse_passes(args.passes)
        with TRACER.span("ingest.parse", program=args.program):
            module = load_file(args.program)
            before = interpret(module)
        if passes:
            with TRACER.span("ingest.passes", pipeline=",".join(passes)):
                module = run_passes(module, list(passes))
                check_module(module, allow_reserved=True)
        ref = interpret(module)
        if ref.output != before.output:
            return _fail(f"{args.program}: passes changed program output")
        with TRACER.span("ingest.lower", program=args.program):
            lowered = lower_module(
                module, name=pathlib.Path(args.program).stem
            )
            result = execute_lowered(lowered)
        got = output_of(result)
        if got != ref.output:
            return _fail(
                f"{args.program}: lowered output {got} diverges from "
                f"interpreter output {ref.output}")
        bench = register_program(args.program, passes)
    except (LangError, ValueError, OSError) as exc:
        return _fail(str(exc))
    if args.emit_ir:
        # Keep stdout pure IR so it can be piped back into `repro ingest`.
        print(format_module(module), end="")
        return 0
    summary = {
        "program": args.program,
        "passes": list(passes),
        "abbrev": bench.abbrev,
        "functions": len(module.functions),
        "interpreter": {
            "output": ref.output,
            "dynamic_count": ref.dynamic_count,
            "unoptimized_dynamic_count": before.dynamic_count,
            "heap_words": ref.heap_words,
        },
        "lowered": {
            "static_size": lowered.static_size,
            "dynamic_count": result.dynamic_count,
            "registers_used": len(lowered.var_regs),
            "spill_slots": len(lowered.spill_slots),
        },
        "output_matches_interpreter": True,
    }
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"{args.program}: ok "
          f"(passes: {','.join(passes) if passes else 'none'})")
    print(f"  registered  {bench.abbrev}")
    print(f"  interpreter {ref.dynamic_count} dynamic instructions "
          f"({before.dynamic_count} before passes), "
          f"{len(ref.output)} words printed")
    print(f"  lowered     {lowered.static_size} static / "
          f"{result.dynamic_count} dynamic ISA instructions, "
          f"{len(lowered.var_regs)} registers, "
          f"{len(lowered.spill_slots)} spill slots")
    print("  outputs     interpreter == simulated (differential check ok)")
    return 0


def cmd_run(args) -> int:
    from repro.harness.runner import simulation_report

    sink = None
    if args.trace_out:
        from repro.obs import MemorySink

        sink = MemorySink()
    if args.program is not None:
        if args.benchmark is not None:
            return _fail("pass a benchmark abbreviation or --program, "
                         "not both")
        if args.scale != 1.0:
            return _fail("--scale does not apply to --program runs "
                         "(ingested programs have one fixed problem size)")
        from repro.harness.runner import program_simulation_report
        from repro.lang import LangError

        try:
            report = program_simulation_report(
                args.program,
                _parse_passes(args.passes),
                mode=args.mode,
                speculation=not args.no_speculation,
                trace_length=args.trace_length,
                num_fabrics=args.fabrics,
                sink=sink,
                decisions=args.decisions,
            )
        except (LangError, ValueError, OSError) as exc:
            return _fail(str(exc))
        benchmark = report["benchmark"]
    else:
        if args.benchmark is None:
            return _fail("missing benchmark (name one, or use "
                         "--program PROG.spam)")
        if args.passes:
            return _fail("--passes applies only to --program runs")
        benchmark = _validate_run_args(args)
        if benchmark is None:
            return 2
        report = simulation_report(
            benchmark,
            args.scale,
            mode=args.mode,
            speculation=not args.no_speculation,
            trace_length=args.trace_length,
            num_fabrics=args.fabrics,
            sink=sink,
            decisions=args.decisions,
        )
    if sink is not None:
        from repro.obs import write_chrome_trace
        from repro.obs.runtime import TRACER

        # main() force-enables the tracer for --trace-out, so the host
        # wall-clock spans recorded so far become the pid-2 process next
        # to the simulated-cycle tracks.
        host_spans = TRACER.records()
        count = write_chrome_trace(
            sink.events, args.trace_out,
            end_cycle=report["dynaspam_cycles"],
            host_spans=host_spans,
        )
        # Keep --json stdout pure (a JSON document and nothing else).
        print(f"trace: {count} events -> {args.trace_out} "
              f"({len(host_spans)} host wall-clock spans; "
              f"load in https://ui.perfetto.dev)", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0

    cov = report["coverage"]
    print(f"{benchmark}: {report['dynamic_instructions']} dynamic "
          f"instructions at scale {args.scale}")
    print(f"  baseline  {report['baseline_cycles']:>9} cycles "
          f"(IPC {report['baseline_ipc']:.2f})")
    print(f"  DynaSpAM  {report['dynaspam_cycles']:>9} cycles "
          f"(speedup {report['speedup']:.2f}x)")
    print(f"  coverage  host {cov['host']:.1%} | mapping "
          f"{cov['mapping']:.1%} | fabric {cov['fabric']:.1%}")
    print(f"  traces    {report['mapped_traces']} mapped, "
          f"{report['offloaded_traces']} offloaded, "
          f"{report['fabric_invocations']} invocations, "
          f"lifetime {report['mean_configuration_lifetime']:.0f}")
    print(f"  energy    {report['energy_reduction']:.1%} reduction")
    if args.decisions:
        fates = report["decisions"]["trace_fates"]["counts"]
        summary = " | ".join(
            f"{fate} {count}" for fate, count in fates.items() if count
        )
        print(f"  fates     {summary or 'no trace candidates'}")
    return 0


def cmd_explain(args) -> int:
    """Per-trace lifetime report: detected -> hot -> mapped -> offloaded."""
    from repro.harness.runner import run_dynaspam
    from repro.obs import (
        MemorySink,
        build_lifetime_report,
        render_lifetime_report,
        render_trace_detail,
    )

    benchmark = _validate_run_args(args)
    if benchmark is None:
        return 2
    sink = MemorySink()
    run_dynaspam(
        benchmark,
        args.scale,
        mode=args.mode,
        speculation=not args.no_speculation,
        trace_length=args.trace_length,
        num_fabrics=args.fabrics,
        sink=sink,
    )
    report = build_lifetime_report(sink.events)
    if args.trace_id:
        detail = render_trace_detail(report, sink.events, args.trace_id)
        if detail is None:
            known = ", ".join(
                t.trace_id for t in report.ranked()[:8]
            ) or "none"
            return _fail(
                f"no trace {args.trace_id!r} in this run (try: {known})"
            )
        print(detail)
        return 0
    print(f"{benchmark} @ scale {args.scale}")
    print(render_lifetime_report(report, top=args.top))
    return 0


def cmd_why(args) -> int:
    """Trace-fate attribution: why did each candidate (not) accelerate?"""
    from repro.harness.runner import simulation_report
    from repro.obs.decisions import render_why

    benchmark = _validate_run_args(args)
    if benchmark is None:
        return 2
    report = simulation_report(
        benchmark,
        args.scale,
        mode=args.mode,
        speculation=not args.no_speculation,
        trace_length=args.trace_length,
        num_fabrics=args.fabrics,
        decisions=True,
    )
    decisions = report["decisions"]
    if args.json:
        print(json.dumps({
            "schema_version": report["schema_version"],
            "code_fingerprint": report["code_fingerprint"],
            "benchmark": benchmark,
            "scale": args.scale,
            "mode": args.mode,
            "speculation": not args.no_speculation,
            "speedup": report["speedup"],
            "decisions": decisions,
        }, indent=2))
    else:
        print(render_why(
            benchmark,
            decisions,
            decisions["attribution"],
            report["cycle_accounting"]["dynaspam"],
        ))
    if not decisions["trace_fates"]["conserved"]:
        print("repro: error: trace fates are not conserved "
              "(some identity has no or multiple terminal records)",
              file=sys.stderr)
        return 1
    return 0


def cmd_study(args) -> int:
    """Corpus x pass-pipeline sweep with decision records per cell."""
    from repro.harness.study import (
        DEFAULT_PIPELINES,
        parse_pipeline,
        render_study,
        study_programs,
    )
    from repro.lang import LangError

    pipelines = DEFAULT_PIPELINES
    if args.passes:
        try:
            pipelines = tuple(parse_pipeline(spec) for spec in args.passes)
        except (LangError, ValueError) as exc:
            return _fail(str(exc))
    only = None
    if args.only:
        only = tuple(
            stem.strip() for stem in args.only.split(",") if stem.strip()
        )
    tracker = None
    if args.progress:
        from repro.obs import progress as obs_progress

        # study_programs sets the real total (programs x pipelines) once
        # it has globbed the corpus.
        tracker = obs_progress.ProgressTracker(0, label="study")
        tracker.add_listener(obs_progress.stderr_listener())
        tracker.add_listener(obs_progress.log_listener())
    try:
        study = study_programs(
            args.programs, pipelines, only=only, tracker=tracker
        )
    except (LangError, ValueError, OSError) as exc:
        return _fail(str(exc))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(study, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        print(json.dumps(study, indent=2))
    else:
        print(render_study(study))
        if args.output:
            print(f"report -> {args.output}")
    return 0 if study["conserved"] else 1


def cmd_analyze(args) -> int:
    """Top-down cycle breakdown per mode + conservation + fabric stats."""
    from repro.harness.runner import run_baseline, run_dynaspam
    from repro.obs.accounting import (
        bucket_breakdown,
        render_breakdown,
        render_conservation,
        render_utilization,
    )

    benchmark = _validate_run_args(args)
    if benchmark is None:
        return 2
    base = run_baseline(benchmark, args.scale)
    mapping = run_dynaspam(
        benchmark, args.scale, mode="mapping_only",
        trace_length=args.trace_length, num_fabrics=args.fabrics,
    )
    spec = run_dynaspam(
        benchmark, args.scale,
        trace_length=args.trace_length, num_fabrics=args.fabrics,
    )
    columns = {
        "host": bucket_breakdown(base.stats.as_dict()),
        "mapping": bucket_breakdown(mapping.stats.as_dict()),
        "spec": bucket_breakdown(spec.stats.as_dict()),
    }
    print(f"{benchmark} @ scale {args.scale}: cycle accounting "
          f"(baseline column: {args.baseline})")
    baseline_column = "host" if args.baseline == "host" else "mapping"
    print(render_breakdown(columns, baseline=baseline_column))
    print()
    print(render_conservation(columns))
    print()
    print(render_utilization(spec.fabric_utilization))
    if not all(c["conserved"] for c in columns.values()):
        print("repro: error: cycle accounting is not conserved",
              file=sys.stderr)
        return 1
    return 0


def cmd_diff(args) -> int:
    """Attribute the cycle delta between two report JSON files."""
    from repro.obs.diffing import (
        DiffError,
        diff_reports,
        load_report,
        render_diff,
    )

    try:
        report_a = load_report(args.report_a)
        report_b = load_report(args.report_b)
        diff = diff_reports(report_a, report_b, force=args.force)
    except DiffError as exc:
        return _fail(str(exc))
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(render_diff(diff, label_a=args.report_a,
                          label_b=args.report_b))
    return 0


def cmd_bench(args) -> int:
    """Timed Figure 8 sweep -> machine-readable speedup/timing report."""
    import repro.harness.diskcache as diskcache
    from repro.harness import (
        figure8_accounting,
        figure8_performance,
        speedup_warnings,
    )
    from repro.harness.__main__ import apply_cache_arguments
    from repro.harness.profiling import PROFILER
    from repro.harness.runner import report_provenance

    apply_cache_arguments(args)
    if args.cold:
        # A cold benchmark measures simulation, not cache replay: no
        # disk layer, and the in-process run/trace caches start empty.
        from repro.harness.runner import clear_run_cache
        from repro.workloads.suite import clear_trace_cache

        diskcache.configure(enabled=False)
        clear_run_cache()
        clear_trace_cache()
    tracker = None
    if args.progress:
        from repro.harness.experiments import figure8_specs
        from repro.obs import progress as obs_progress

        # execute_runs dedups by spec key, so the total counts unique runs.
        total = len({spec.key for spec in figure8_specs(args.scale)})
        tracker = obs_progress.ProgressTracker(total, label="bench")
        tracker.add_listener(obs_progress.stderr_listener())
        tracker.add_listener(obs_progress.log_listener())
        obs_progress.activate(tracker)
    PROFILER.reset()
    started = time.perf_counter()
    try:
        result = figure8_performance(args.scale, jobs=args.jobs)
    finally:
        if tracker is not None:
            obs_progress.deactivate()
    wall_clock = time.perf_counter() - started

    cache_stats = diskcache.shared_stats()
    memory_hits = PROFILER.counters.get("run_cache_memory_hits", 0)
    disk_hits = sum(ns.get("hits", 0) for ns in cache_stats.values())
    runs_simulated = PROFILER.counters.get("runs_simulated", 0)
    served = memory_hits + disk_hits
    profile = PROFILER.snapshot()
    # Cache/profile counters are frozen above: the accounting pass below
    # re-reads the sweep's runs from the in-process cache (zero extra
    # simulation) and must not leak its cache hits into the timing report.
    accounting, fabric_utilization = figure8_accounting(args.scale)
    warnings = speedup_warnings(result)
    decisions = None
    if args.decisions:
        # Like the accounting pass, decisions run strictly after the
        # timing sweep and its counters are frozen: each benchmark gets
        # one traced re-simulation folded into a DecisionSink, so the
        # timed numbers (and "tracing": False) are untouched.
        from repro.harness.runner import simulation_report
        from repro.workloads import ALL_ABBREVS

        decisions = {}
        for abbrev in ALL_ABBREVS:
            traced = simulation_report(abbrev, args.scale, decisions=True)
            decisions[abbrev] = traced["decisions"]
    programs = None
    if args.programs:
        # Ingested-program rows run serially in-process: the corpus is
        # small, and each run resolves through the same layered caches.
        import pathlib

        from repro.harness.runner import program_simulation_report
        from repro.lang import LangError

        programs = {}
        try:
            paths = sorted(pathlib.Path(args.programs).glob("*.spam"))
            if not paths:
                return _fail(f"no .spam programs under {args.programs}")
            for path in paths:
                prog_report = program_simulation_report(str(path))
                programs[path.stem] = {
                    "abbrev": prog_report["program"]["abbrev"],
                    "dynamic_instructions":
                        prog_report["dynamic_instructions"],
                    "baseline_cycles": prog_report["baseline_cycles"],
                    "dynaspam_cycles": prog_report["dynaspam_cycles"],
                    "speedup": prog_report["speedup"],
                    "coverage": prog_report["coverage"],
                }
        except (LangError, ValueError, OSError) as exc:
            return _fail(str(exc))
    report = {
        **report_provenance(),
        "experiment": "fig8",
        "scale": args.scale,
        "jobs": args.jobs,
        "cold": bool(args.cold),
        # The benchmark path never attaches an event sink; regression
        # gating asserts this stays false so timings are never polluted
        # by tracing overhead (scripts/check_bench_regression.py).
        "tracing": False,
        "disk_cache_enabled": diskcache.is_enabled(),
        "wall_clock_seconds": wall_clock,
        "geomean": {
            series: result.series_geomean(series)
            for series in ("mapping", "no_spec", "spec")
        },
        "per_benchmark": result.speedups,
        # One warning per series whose geomean dipped below 1.0x (also
        # echoed on stderr below).
        "warnings": warnings,
        # Per-benchmark cycle accounting and accelerated-run fabric
        # occupancy — derived from the sweep's own stats, the inputs of
        # `repro diff` and the --dashboard renderer.
        "accounting": accounting,
        "fabric_utilization": fabric_utilization,
        "cache": {
            "disk": cache_stats,
            "memory_hits": memory_hits,
            "runs_simulated": runs_simulated,
            "hit_ratio": served / max(1, served + runs_simulated),
            "predict_memo_hits": PROFILER.counters.get(
                "predict_memo_hits", 0),
            "predict_memo_misses": PROFILER.counters.get(
                "predict_memo_misses", 0),
        },
        "profile": profile,
    }
    if programs is not None:
        report["programs"] = programs
    if decisions is not None:
        report["decisions"] = decisions
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"geomean speedup (spec) {report['geomean']['spec']:.2f}x | "
          f"wall clock {wall_clock:.2f}s | "
          f"cache hit ratio {report['cache']['hit_ratio']:.0%}"
          f"{' (cold)' if args.cold else ''} | report -> {args.output}")
    for warning in warnings:
        print(f"repro: warning: {warning}", file=sys.stderr)
    if args.dashboard:
        from repro.obs.dashboard import write_dashboard

        path = write_dashboard(report, args.dashboard)
        print(f"dashboard -> {path}")
    if args.profile:
        from repro.harness.__main__ import print_profile

        print_profile()
    return 0


def cmd_perfbench(args) -> int:
    """Simulator-throughput measurement -> JSON report + regression gate
    input (instr/sec and invocations/sec per kernel x mode x engine)."""
    from repro.harness.perfbench import (
        ENGINES,
        MODES,
        compare_perfbench,
        perfbench_report,
        render_perfbench,
        render_perfbench_compare,
    )

    if args.compare:
        from repro.obs.diffing import DiffError, load_report

        baseline_path, candidate_path = args.compare
        try:
            baseline = load_report(baseline_path)
            candidate = load_report(candidate_path)
            comparison = compare_perfbench(
                baseline, candidate, force=args.force
            )
        except DiffError as exc:
            return _fail(str(exc))
        if args.json:
            print(json.dumps(comparison, indent=2))
        else:
            print(render_perfbench_compare(comparison))
        return 0

    kernels = None
    if args.kernels:
        from repro.workloads import ALL_ABBREVS

        kernels = [k.strip().upper() for k in args.kernels.split(",") if k.strip()]
        unknown = [k for k in kernels if k not in ALL_ABBREVS]
        if unknown:
            return _fail(f"unknown kernels: {', '.join(unknown)} "
                         f"(available: {', '.join(ALL_ABBREVS)})")
    engines = ENGINES if args.engine == "both" else (args.engine,)
    report = perfbench_report(
        scale=args.scale,
        kernels=kernels,
        modes=MODES,
        engines=engines,
        repeat=args.repeat,
        profile=args.profile,
    )
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    print(render_perfbench(report))
    print(f"report -> {args.output}")
    if args.profile:
        print("hot functions (cumulative):")
        for entry in report["profile"]["top"]:
            print(f"  {entry['cumtime']:>8.3f}s  {entry['calls']:>9} calls  "
                  f"{entry['function']}")
    return 0


def cmd_serve(args) -> int:
    from repro.service.server import run_server

    if args.workers is not None and args.workers < 1:
        return _fail(f"invalid --workers {args.workers}: must be >= 1")
    if args.queue_depth < 1:
        return _fail(f"invalid --queue-depth {args.queue_depth}: "
                     "must be >= 1")
    return run_server(
        args.host,
        args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        sim_jobs=args.jobs or 1,
        pool=args.pool,
    )


def cmd_route(args) -> int:
    from repro.service.router import run_router

    if args.replicas < 1:
        return _fail(f"invalid --replicas {args.replicas}: must be >= 1")
    if args.workers is not None and args.workers < 1:
        return _fail(f"invalid --workers {args.workers}: must be >= 1")
    return run_router(
        args.host,
        args.port,
        replicas=args.replicas,
        workers=args.workers,
        queue_depth=args.queue_depth,
        sim_jobs=args.jobs or 1,
        pool=args.pool,
        vnodes=args.vnodes,
    )


def cmd_loadtest(args) -> int:
    from repro.service.client import ServiceUnreachable
    from repro.service.loadtest import MIXES, run_loadtest, summarize

    if args.rate <= 0:
        return _fail(f"invalid --rate {args.rate}: must be > 0")
    if args.mix not in MIXES:
        return _fail(f"unknown --mix {args.mix}")
    try:
        report = run_loadtest(
            args.host,
            args.port,
            rate=args.rate,
            duration=args.duration,
            total=args.jobs,
            mix=args.mix,
            scale=args.scale,
            seed=args.seed,
            timeout=args.timeout,
        )
    except ServiceUnreachable as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    if args.output:
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
        print(f"loadtest report -> {args.output}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(summarize(report))
    return 0


def cmd_submit(args) -> int:
    from repro.service.client import (
        JobFailed,
        ServerBusy,
        ServiceClient,
        ServiceUnreachable,
    )

    benchmark = _validate_run_args(args)
    if benchmark is None:
        return 2
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        job = client.submit(
            benchmark,
            scale=args.scale,
            mode=args.mode,
            speculation=not args.no_speculation,
            trace_length=args.trace_length,
            fabrics=args.fabrics,
        )
        if not args.wait:
            print(json.dumps({"job": job}, indent=2))
            return 0
        final = client.wait(job["id"], timeout=args.timeout)
    except ServerBusy as exc:
        print(f"repro: server busy: {exc} (retry after {exc.retry_after}s)",
              file=sys.stderr)
        return 1
    except ServiceUnreachable as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    except JobFailed as exc:
        print(f"repro: job failed: {exc}", file=sys.stderr)
        return 1
    except TimeoutError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(final["result"], indent=2))
    return 0


def cmd_watch(args) -> int:
    """Follow a submitted job's live progress until it is terminal."""
    from repro.obs.progress import render_heartbeat
    from repro.service.client import (
        JobFailed,
        ServiceClient,
        ServiceUnreachable,
    )
    from repro.service.errors import UnknownJob

    client = ServiceClient(args.host, args.port, timeout=args.timeout)

    def on_progress(doc) -> None:
        state = doc.get("state", "?")
        beat = doc.get("heartbeat") or {}
        if beat.get("label"):
            line = render_heartbeat(beat)
        else:
            line = beat.get("phase") or "waiting"
        # Progress lines go to stderr; stdout stays a single JSON doc.
        print(f"{state:>8}  {line}", file=sys.stderr, flush=True)

    try:
        final = client.watch(
            args.job_id,
            timeout=args.timeout,
            poll_interval=args.interval,
            on_progress=on_progress,
        )
    except UnknownJob as exc:
        return _fail(str(exc))
    except JobFailed as exc:
        print(f"repro: job failed: {exc}", file=sys.stderr)
        return 1
    except ServiceUnreachable as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    except TimeoutError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(final, indent=2))
    return 0


def _add_run_knobs(parser: argparse.ArgumentParser,
                   optional_benchmark: bool = False) -> None:
    if optional_benchmark:
        parser.add_argument("benchmark", nargs="?", default=None)
    else:
        parser.add_argument("benchmark")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--mode", default="accelerate",
                        choices=["baseline", "mapping_only", "accelerate"])
    parser.add_argument("--no-speculation", action="store_true")
    parser.add_argument("--fabrics", type=int, default=1)
    parser.add_argument("--trace-length", type=int, default=32)


def main(argv=None) -> int:
    from repro.harness.__main__ import add_cache_arguments
    from repro.service.server import DEFAULT_PORT

    parser = argparse.ArgumentParser(prog="python -m repro")
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list available benchmarks")
    list_parser.add_argument(
        "--programs", metavar="DIR", default=None,
        help="register and list the .spam programs under DIR instead of "
             "the built-in kernels")
    list_parser.add_argument(
        "--passes", default=None, metavar="lvn,dce,licm",
        help="optimization pipeline folded into each program's "
             "registered abbreviation")

    ingest_parser = sub.add_parser(
        "ingest",
        help="parse, check, optimize, and lower one .spam program")
    ingest_parser.add_argument("program", metavar="PROG.spam")
    ingest_parser.add_argument(
        "--passes", default=None, metavar="lvn,dce,licm",
        help="comma-separated optimization pipeline to run first")
    ingest_parser.add_argument("--json", action="store_true")
    ingest_parser.add_argument(
        "--emit-ir", action="store_true",
        help="print the (optimized) IR instead of the summary")

    run_parser = sub.add_parser(
        "run", help="simulate one benchmark or ingested program")
    _add_run_knobs(run_parser, optional_benchmark=True)
    run_parser.add_argument(
        "--program", metavar="PROG.spam", default=None,
        help="simulate a frontend program instead of a built-in kernel")
    run_parser.add_argument(
        "--passes", default=None, metavar="lvn,dce,licm",
        help="optimization pipeline for --program")
    run_parser.add_argument("--json", action="store_true")
    run_parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="record lifecycle events and export Chrome trace-event "
             "JSON (Perfetto-loadable) to PATH")
    run_parser.add_argument(
        "--decisions", action="store_true",
        help="fold the event stream into decision records (adds a "
             "'decisions' block to --json and a fate summary line)")

    explain_parser = sub.add_parser(
        "explain", help="per-trace lifetime report for one benchmark")
    _add_run_knobs(explain_parser)
    explain_parser.add_argument(
        "--top", type=int, default=10,
        help="number of traces to list (0 = all)")
    explain_parser.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="full event timeline for one trace (id as printed in the "
             "table, e.g. 0x1a4:TNT:32)")

    why_parser = sub.add_parser(
        "why",
        help="trace-fate attribution: why candidates did (not) accelerate")
    _add_run_knobs(why_parser)
    why_parser.add_argument("--json", action="store_true")

    study_parser = sub.add_parser(
        "study",
        help="pass-impact study over a .spam corpus (decision records "
             "per program x pipeline)")
    study_parser.add_argument(
        "--programs", metavar="DIR", required=True,
        help="directory of .spam programs to study")
    study_parser.add_argument(
        "--passes", action="append", default=None, metavar="lvn,dce",
        help="one pass pipeline per flag ('none' = unoptimized; "
             "default: none, lvn+dce, licm)")
    study_parser.add_argument(
        "--only", default=None, metavar="bfs_frontier,dot",
        help="comma-separated program stems to include")
    study_parser.add_argument("--json", action="store_true")
    study_parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the study report JSON to PATH")
    study_parser.add_argument(
        "--progress", action="store_true",
        help="print a live heartbeat per study cell to stderr "
             "(done/total, instr/s, ETA)")

    analyze_parser = sub.add_parser(
        "analyze",
        help="top-down cycle-accounting breakdown for one benchmark")
    analyze_parser.add_argument("benchmark")
    analyze_parser.add_argument("--scale", type=float, default=1.0)
    analyze_parser.add_argument("--fabrics", type=int, default=1)
    analyze_parser.add_argument("--trace-length", type=int, default=32)
    analyze_parser.add_argument(
        "--baseline", default="host", choices=["host", "mapping"],
        help="column the delta columns are computed against")

    diff_parser = sub.add_parser(
        "diff", help="attribute the cycle delta between two report files")
    diff_parser.add_argument("report_a", metavar="A.json")
    diff_parser.add_argument("report_b", metavar="B.json")
    diff_parser.add_argument("--json", action="store_true",
                             help="machine-readable attribution document")
    diff_parser.add_argument(
        "--force", action="store_true",
        help="compare even across report schema versions")

    bench_parser = sub.add_parser(
        "bench", help="timed Figure 8 sweep with a JSON report")
    bench_parser.add_argument("--scale", type=float, default=1.0)
    bench_parser.add_argument("--output", default="BENCH_speedup.json")
    bench_parser.add_argument(
        "--cold", action="store_true",
        help="bypass the run/disk caches so timing measures simulation")
    bench_parser.add_argument(
        "--programs", metavar="DIR", default=None,
        help="also benchmark every .spam program under DIR "
             "(adds a 'programs' block to the report)")
    bench_parser.add_argument(
        "--dashboard", metavar="DIR", default=None,
        help="also render the report as a self-contained HTML dashboard "
             "(DIR/index.html)")
    bench_parser.add_argument(
        "--decisions", action="store_true",
        help="after the timed sweep, fold per-benchmark decision records "
             "into the report (one traced re-simulation per kernel; the "
             "timed numbers stay untraced)")
    bench_parser.add_argument(
        "--progress", action="store_true",
        help="print a live heartbeat per finished run to stderr "
             "(done/total, instr/s, ETA)")
    add_cache_arguments(bench_parser)

    perfbench_parser = sub.add_parser(
        "perfbench",
        help="measure simulator throughput (instr/sec) per engine")
    perfbench_parser.add_argument("--scale", type=float, default=0.1)
    perfbench_parser.add_argument(
        "--kernels", default=None, metavar="KM,NW,...",
        help="comma-separated kernel subset (default: all)")
    perfbench_parser.add_argument(
        "--engine", default="both", choices=["both", "fast", "interpreted"])
    perfbench_parser.add_argument(
        "--repeat", type=int, default=1,
        help="repetitions per cell; the fastest is kept")
    perfbench_parser.add_argument("--output", default="PERFBENCH.json")
    perfbench_parser.add_argument("--json", action="store_true")
    perfbench_parser.add_argument(
        "--profile", action="store_true",
        help="cProfile one fast-engine pass; top-10 cumulative functions "
             "go into the report")
    perfbench_parser.add_argument(
        "--compare", nargs=2, metavar=("BASELINE.json", "CANDIDATE.json"),
        default=None,
        help="compare two saved perfbench reports (per-cell instr/sec "
             "ratio + geomean) instead of measuring")
    perfbench_parser.add_argument(
        "--force", action="store_true",
        help="with --compare: proceed despite a schema-version mismatch")

    serve_parser = sub.add_parser(
        "serve", help="start the simulation job server")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                              help="listen port (0 picks a free port)")
    serve_parser.add_argument("--workers", type=int, default=None,
                              help="simulation workers (default: min(cpu, 8),"
                                   " capped by REPRO_MAX_JOBS)")
    serve_parser.add_argument("--pool", default="process",
                              choices=["process", "thread"],
                              help="worker pool backend (process = one "
                                   "forked simulator per worker)")
    serve_parser.add_argument("--queue-depth", type=int, default=64,
                              help="max open (queued + running) jobs")
    serve_parser.add_argument("--jobs", type=int, default=None, metavar="N",
                              help="process fan-out per batch "
                                   "(default: in-worker serial)")

    route_parser = sub.add_parser(
        "route",
        help="front N spawned serve replicas with a consistent-hash router")
    route_parser.add_argument("--host", default="127.0.0.1")
    route_parser.add_argument("--port", type=int, default=8764,
                              help="router listen port (0 picks a free port)")
    route_parser.add_argument("--replicas", type=int, default=2,
                              help="repro serve replicas to spawn")
    route_parser.add_argument("--workers", type=int, default=None,
                              help="workers per replica (default: "
                                   "min(cpu, 8) capped by REPRO_MAX_JOBS)")
    route_parser.add_argument("--pool", default="process",
                              choices=["process", "thread"],
                              help="worker pool backend per replica")
    route_parser.add_argument("--queue-depth", type=int, default=64,
                              help="max open jobs per replica")
    route_parser.add_argument("--jobs", type=int, default=None, metavar="N",
                              help="process fan-out per batch inside each "
                                   "replica worker")
    route_parser.add_argument("--vnodes", type=int, default=128,
                              help="virtual nodes per replica on the "
                                   "consistent-hash ring")

    loadtest_parser = sub.add_parser(
        "loadtest",
        help="open-loop arrival-rate load generator with a JSON SLO report")
    loadtest_parser.add_argument("--host", default="127.0.0.1")
    loadtest_parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                                 help="service or router port to drive")
    loadtest_parser.add_argument("--rate", type=float, default=2.0,
                                 help="target arrival rate (jobs/sec)")
    loadtest_parser.add_argument("--duration", type=float, default=5.0,
                                 help="arrival window in seconds")
    loadtest_parser.add_argument("--jobs", type=int, default=None,
                                 metavar="N",
                                 help="total jobs (overrides rate*duration)")
    loadtest_parser.add_argument("--mix", default="cold-heavy",
                                 choices=["cold-heavy", "duplicate-heavy",
                                          "mixed"],
                                 help="traffic mix")
    loadtest_parser.add_argument("--scale", type=float, default=0.05,
                                 help="base benchmark scale per job")
    loadtest_parser.add_argument("--seed", type=int, default=0,
                                 help="schedule jitter seed")
    loadtest_parser.add_argument("--timeout", type=float, default=300.0,
                                 help="per-job completion deadline")
    loadtest_parser.add_argument("--output", default=None, metavar="PATH",
                                 help="write the JSON report to PATH")
    loadtest_parser.add_argument("--json", action="store_true",
                                 help="print the full report JSON instead "
                                      "of the one-line summary")

    submit_parser = sub.add_parser(
        "submit", help="submit one benchmark job to a running server")
    _add_run_knobs(submit_parser)
    submit_parser.add_argument("--host", default="127.0.0.1")
    submit_parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    submit_parser.add_argument("--wait", action="store_true",
                               help="poll to completion and print the "
                                    "run report JSON")
    submit_parser.add_argument("--timeout", type=float, default=600.0,
                               help="submit/wait deadline in seconds")

    watch_parser = sub.add_parser(
        "watch",
        help="stream live progress for a submitted job until terminal")
    watch_parser.add_argument("job_id", metavar="JOB_ID")
    watch_parser.add_argument("--host", default="127.0.0.1")
    watch_parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    watch_parser.add_argument("--interval", type=float, default=0.2,
                              help="poll interval in seconds")
    watch_parser.add_argument("--timeout", type=float, default=600.0,
                              help="give up after this many seconds")

    harness_parser = sub.add_parser("harness",
                                    help="regenerate evaluation artifacts")
    harness_parser.add_argument("experiment")
    harness_parser.add_argument("--scale", type=float, default=1.0)
    add_cache_arguments(harness_parser)

    args = parser.parse_args(argv)
    from repro.obs.runtime import (
        TRACER,
        init_runtime_telemetry,
        shutdown_runtime_telemetry,
    )

    # --trace-out and --progress need spans/heartbeats even without a
    # REPRO_LOG destination; everything else turns on by environment only.
    forced = bool(getattr(args, "trace_out", None)
                  or getattr(args, "progress", False))
    run_id = init_runtime_telemetry(
        args.command, force=forced,
        argv=list(argv) if argv is not None else sys.argv[1:],
    )
    try:
        if run_id is None:
            return _dispatch(args)
        with TRACER.span(f"cli.{args.command}"):
            return _dispatch(args)
    finally:
        if run_id is not None:
            # One CLI invocation == one run: return the process-wide
            # tracer to its disabled default so repeated in-process
            # main() calls (tests) never accumulate spans across runs.
            TRACER.disable()
            TRACER.reset()
            TRACER.run_id = None
        shutdown_runtime_telemetry()


def _dispatch(args) -> int:
    if args.command == "list":
        return cmd_list(args)
    if args.command == "ingest":
        return cmd_ingest(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "explain":
        return cmd_explain(args)
    if args.command == "why":
        return cmd_why(args)
    if args.command == "study":
        return cmd_study(args)
    if args.command == "analyze":
        return cmd_analyze(args)
    if args.command == "diff":
        return cmd_diff(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "perfbench":
        return cmd_perfbench(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "route":
        return cmd_route(args)
    if args.command == "loadtest":
        return cmd_loadtest(args)
    if args.command == "submit":
        return cmd_submit(args)
    if args.command == "watch":
        return cmd_watch(args)
    from repro.harness.__main__ import main as harness_main

    forwarded = [args.experiment, "--scale", str(args.scale)]
    if args.jobs is not None:
        forwarded += ["--jobs", str(args.jobs)]
    if args.no_cache:
        forwarded.append("--no-cache")
    if args.profile:
        forwarded.append("--profile")
    return harness_main(forwarded)


if __name__ == "__main__":
    sys.exit(main())
