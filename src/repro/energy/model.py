"""Component-level energy accounting (the paper's Figure 9).

``EnergyModel.breakdown`` converts a ``PipelineStats`` record into energy
per Figure 9 component: Fetch, Rename, InstSchedule, Execution, Datapath,
Memory, ROB, Fabric, and ConfigCache.  Offloaded instructions never touch
the front-end/scheduling/bypass structures — that is where DynaSpAM's
energy win comes from; the fabric adds back its own (cheaper) functional
units, wires, FIFOs, leakage of ungated PEs, and reconfiguration cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.constants import EnergyConstants
from repro.ooo.stats import PipelineStats

#: Figure 9's component order.
FIGURE9_COMPONENTS = (
    "fetch",
    "rename",
    "inst_schedule",
    "execution",
    "datapath",
    "memory",
    "rob",
    "fabric",
    "config_cache",
)


@dataclass
class EnergyBreakdown:
    """Energy (pJ) per Figure 9 component."""

    components: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def reduction_vs(self, baseline: "EnergyBreakdown") -> float:
        """Fractional energy reduction relative to ``baseline``."""
        if baseline.total == 0:
            return 0.0
        return 1.0 - self.total / baseline.total

    def normalized_to(self, baseline: "EnergyBreakdown") -> dict[str, float]:
        """Per-component energy as a fraction of the baseline total."""
        denom = baseline.total or 1.0
        return {name: value / denom for name, value in self.components.items()}


class EnergyModel:
    """Event-count to energy conversion."""

    def __init__(self, constants: EnergyConstants | None = None) -> None:
        self.constants = constants or EnergyConstants()

    def breakdown(self, stats: PipelineStats) -> EnergyBreakdown:
        c = self.constants
        components = {
            "fetch": (
                stats.fetches * c.fetch_decode
                + stats.wrongpath_fetches * c.fetch_decode
                + stats.predictor_lookups * c.predictor_lookup
                + stats.btb_misses * c.btb_miss_refill
                + stats.icache_misses * c.icache_miss
            ),
            "rename": stats.renames * c.rename,
            "inst_schedule": (
                stats.dispatches * c.dispatch
                + stats.wakeups * c.wakeup
                + stats.selections * c.select
            ),
            "execution": (
                stats.int_alu_ops * c.int_alu
                + stats.int_mul_ops * c.int_mul
                + stats.int_div_ops * c.int_div
                + stats.fp_alu_ops * c.fp_alu
                + stats.fp_mul_ops * c.fp_mul
                + stats.fp_div_ops * c.fp_div
            ),
            "datapath": (
                stats.regfile_reads * c.regfile_read
                + stats.regfile_writes * c.regfile_write
                + stats.bypass_transfers * c.bypass
            ),
            "memory": (
                stats.dcache_accesses * c.dcache_access
                + stats.l2_accesses * c.l2_access
                + stats.l2_misses * c.dram_access
                + stats.store_forwards * c.store_forward
                + (stats.loads + stats.stores) * c.storesets_access
            ),
            "rob": stats.rob_writes * c.rob_write + stats.commits * c.commit,
            "fabric": (
                stats.fabric_int_alu_ops * c.int_alu
                + stats.fabric_int_muldiv_ops * c.int_mul
                + stats.fabric_fp_alu_ops * c.fp_alu
                + stats.fabric_fp_muldiv_ops * c.fp_mul
                + stats.fabric_ldst_ops * c.int_alu  # address generation
                + stats.fabric_datapath_transfers * c.fabric_pass_register
                + stats.fabric_fifo_ops * c.fabric_fifo
                + stats.fabric_active_pe_cycles * c.fabric_static_per_pe_cycle
                + stats.fabric_configurations * c.fabric_reconfiguration
            ),
            "config_cache": (
                stats.config_cache_reads * c.config_cache_read
                + stats.config_cache_writes * c.config_cache_write
            ),
        }
        return EnergyBreakdown(components)

    def total(self, stats: PipelineStats) -> float:
        return self.breakdown(stats).total
