"""Fabric area model (Table 6).

Module areas come from the paper's own Table 6 (OpenSparc T1 components
synthesized at 32 nm with Synopsys Design Compiler); the fabric-area
calculator composes them per the Table 4 geometry.  With 8 stripes the
composition lands at the paper's reported ~2.9 mm².
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.cacti import SramModel
from repro.fabric.config import FabricConfig

#: Paper Table 6, µm² at 32 nm.
MODULE_AREAS_UM2: dict[str, float] = {
    "sparc_exu_alu": 4660.0,
    "sparc_mul_top": 47752.0,
    "sparc_exu_div": 11227.0,
    "fpu_add": 34370.0,
    "fpu_mul": 62488.0,
    "fpu_div": 13769.0,
    "data_path": 4717.0,
    "fifo": 848.0,
}

#: The paper's headline fabric area (8 stripes).
PAPER_FABRIC_MM2 = 2.9
#: The paper's configuration cache area from CACTI.
PAPER_CONFIG_CACHE_MM2 = 0.003
#: Reference point the paper quotes: a 2-core AMD Bulldozer at this node.
BULLDOZER_2CORE_MM2 = 30.0


@dataclass
class FabricAreaModel:
    """Compose Table 6 modules into a fabric area estimate."""

    config: FabricConfig = field(default_factory=FabricConfig)
    modules: dict[str, float] = field(
        default_factory=lambda: dict(MODULE_AREAS_UM2)
    )

    def stripe_area_um2(self, stripe: int = 0) -> float:
        """One stripe: its execution-unit mix plus datapath blocks."""
        m = self.modules
        pools = self.config.pools_for(stripe)
        area = 0.0
        area += pools["int_alu"] * m["sparc_exu_alu"]
        area += pools["int_muldiv"] * (m["sparc_mul_top"] + m["sparc_exu_div"])
        area += pools["fp_alu"] * m["fpu_add"]
        area += pools["fp_muldiv"] * (m["fpu_mul"] + m["fpu_div"])
        # LDST units are address-generation datapaths (ALU-class logic).
        area += pools["ldst"] * m["sparc_exu_alu"]
        # One datapath block (pass registers + multiplexers) per PE.
        area += self.config.pes_in_stripe(stripe) * m["data_path"]
        return area

    def fifo_area_um2(self) -> float:
        count = self.config.livein_fifos + self.config.liveout_fifos
        return count * self.modules["fifo"]

    def fabric_area_mm2(self, num_stripes: int | None = None) -> float:
        stripes = num_stripes if num_stripes is not None else self.config.num_stripes
        if self.config.per_stripe_pools is not None:
            total = sum(
                self.stripe_area_um2(s)
                for s in range(min(stripes, self.config.num_stripes))
            )
        else:
            total = stripes * self.stripe_area_um2()
        total += self.fifo_area_um2()
        return total / 1e6

    def config_cache_area_mm2(self) -> float:
        return SramModel(entries=16, block_bytes=16).area_mm2

    def total_area_mm2(self, num_stripes: int | None = None) -> float:
        return self.fabric_area_mm2(num_stripes) + self.config_cache_area_mm2()
