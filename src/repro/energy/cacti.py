"""Small analytical SRAM model (CACTI stand-in).

The paper sizes the configuration cache with CACTI and reports 0.003 mm²;
this model reproduces that order of magnitude from bit count alone, with a
fixed per-bit cell area plus peripheral overhead, and derives access
energies with a simple capacitance-proportional rule.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Effective area per SRAM bit at a 32 nm-class node, including
#: decoder/sense-amp overhead amortized over the array (µm²/bit).
BIT_AREA_UM2 = 1.1
#: Fixed peripheral overhead (µm²).
PERIPHERAL_UM2 = 180.0
#: Dynamic read energy per bit line touched (pJ).
READ_ENERGY_PER_BYTE = 0.45
WRITE_ENERGY_PER_BYTE = 0.6


@dataclass(frozen=True)
class SramModel:
    """One small SRAM array (e.g. the configuration cache)."""

    entries: int = 16
    block_bytes: int = 16

    @property
    def total_bits(self) -> int:
        return self.entries * self.block_bytes * 8

    @property
    def area_um2(self) -> float:
        return self.total_bits * BIT_AREA_UM2 + PERIPHERAL_UM2

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6

    @property
    def read_energy_pj(self) -> float:
        return self.block_bytes * READ_ENERGY_PER_BYTE

    @property
    def write_energy_pj(self) -> float:
        return self.block_bytes * WRITE_ENERGY_PER_BYTE
