"""Energy and area models (McPAT / CACTI / Design Compiler stand-ins).

``repro.energy.model`` multiplies the pipeline's event counters by
per-event energies to produce the Figure 9 component breakdown;
``repro.energy.cacti`` is a small analytical SRAM model for the
configuration cache; ``repro.energy.area`` reproduces Table 6 from the
paper's own OpenSparc T1 module areas.
"""

from repro.energy.constants import EnergyConstants
from repro.energy.model import EnergyBreakdown, EnergyModel, FIGURE9_COMPONENTS
from repro.energy.cacti import SramModel
from repro.energy.area import (
    FabricAreaModel,
    MODULE_AREAS_UM2,
    PAPER_FABRIC_MM2,
)

__all__ = [
    "EnergyBreakdown",
    "EnergyConstants",
    "EnergyModel",
    "FabricAreaModel",
    "FIGURE9_COMPONENTS",
    "MODULE_AREAS_UM2",
    "PAPER_FABRIC_MM2",
    "SramModel",
]
