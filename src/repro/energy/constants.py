"""Per-event energies (pJ) at 32 nm-class ratios.

Absolute values are plausible-scale constants, not calibrated silicon
numbers; what Figure 9 depends on is their *ratios* — a fetch+decode event
costs several ALU ops, an L2 access dwarfs an L1 access, FP units cost
multiples of integer ALUs, and fabric datapath hops are far cheaper than
register-file/bypass traffic.  All constants live in one dataclass so
ablation studies can perturb them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyConstants:
    """Event energies in picojoules."""

    # Front end.
    fetch_decode: float = 32.0       # I-cache read + decode, per instruction
    predictor_lookup: float = 4.0
    btb_miss_refill: float = 6.0
    icache_miss: float = 80.0

    # Rename.
    rename: float = 14.0             # map-table read/write + free list, per inst

    # Instruction scheduling (RS wakeup/select + dispatch).
    dispatch: float = 8.0
    wakeup: float = 5.0              # per source tag broadcast match
    select: float = 7.0              # per issued instruction

    # Execution units.
    int_alu: float = 8.0
    int_mul: float = 26.0
    int_div: float = 42.0
    fp_alu: float = 22.0
    fp_mul: float = 36.0
    fp_div: float = 52.0

    # Datapath: register file and bypass network.
    regfile_read: float = 7.0
    regfile_write: float = 9.0
    bypass: float = 5.0

    # Memory system.
    dcache_access: float = 28.0
    l2_access: float = 90.0
    dram_access: float = 320.0
    store_forward: float = 10.0
    storesets_access: float = 2.0

    # Commit.
    rob_write: float = 7.0
    commit: float = 4.0

    # Fabric (per event).  Spatial execution has no per-op fetch/rename/
    # scheduling cost; operands move over short configured wires.
    fabric_pass_register: float = 9.0   # pass-register latch + mux hop
    fabric_fifo: float = 10.0           # live-in/out FIFO push or pop
    fabric_static_per_pe_cycle: float = 0.9   # ungated PE leakage
    fabric_reconfiguration: float = 800.0     # load one configuration

    # Configuration cache (CACTI-style small SRAM).
    config_cache_read: float = 9.0
    config_cache_write: float = 12.0
