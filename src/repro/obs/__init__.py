"""Observability: structured lifecycle events, trace reports, exporters.

Zero overhead when disabled — every instrumented component holds
``bus = None`` by default and guards each emission with a single pointer
comparison.  Pass any :class:`EventSink` to ``DynaSpAM(sink=...)`` (or the
harness/CLI equivalents) to record the full lifecycle stream.

Two clocks live side by side here: the *simulated* instrumentation above
counts cycles, while :mod:`repro.obs.runtime` (wall-clock span tracer),
:mod:`repro.obs.logging` (JSONL structured log), and
:mod:`repro.obs.progress` (live heartbeats) observe the *host* process —
see ``docs/observability.md``.
"""

from repro.obs.events import (
    EVENT_TYPES,
    AggregateSink,
    Event,
    EventBus,
    EventSink,
    JsonlSink,
    MemorySink,
    NullSink,
    TeeSink,
)
from repro.obs.lifetime import (
    LifetimeReport,
    TraceLifetime,
    build_lifetime_report,
    format_trace_id,
    render_lifetime_report,
    render_trace_detail,
)
from repro.obs.chrometrace import build_chrome_trace, write_chrome_trace
from repro.obs.decisions import (
    TRACE_FATES,
    DecisionSink,
    attribute_lost_cycles,
    decisions_from_events,
    render_why,
)
from repro.obs.accounting import (
    BUCKET_FIELDS,
    BUCKETS,
    bucket_breakdown,
    check_conservation,
    render_breakdown,
    render_conservation,
    render_utilization,
)
from repro.obs.diffing import (
    DiffError,
    diff_reports,
    load_report,
    render_diff,
)
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.logging import RuntimeLog, log_record, open_log
from repro.obs.progress import ProgressTracker, render_heartbeat
from repro.obs.runtime import (
    TRACER,
    SpanRecord,
    SpanTracer,
    SpanWatchdog,
    init_runtime_telemetry,
    shutdown_runtime_telemetry,
)

__all__ = [
    "EVENT_TYPES",
    "AggregateSink",
    "Event",
    "EventBus",
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "TeeSink",
    "LifetimeReport",
    "TraceLifetime",
    "build_lifetime_report",
    "format_trace_id",
    "render_lifetime_report",
    "render_trace_detail",
    "build_chrome_trace",
    "write_chrome_trace",
    "TRACE_FATES",
    "DecisionSink",
    "attribute_lost_cycles",
    "decisions_from_events",
    "render_why",
    "BUCKET_FIELDS",
    "BUCKETS",
    "bucket_breakdown",
    "check_conservation",
    "render_breakdown",
    "render_conservation",
    "render_utilization",
    "DiffError",
    "diff_reports",
    "load_report",
    "render_diff",
    "render_dashboard",
    "write_dashboard",
    "RuntimeLog",
    "log_record",
    "open_log",
    "ProgressTracker",
    "render_heartbeat",
    "TRACER",
    "SpanRecord",
    "SpanTracer",
    "SpanWatchdog",
    "init_runtime_telemetry",
    "shutdown_runtime_telemetry",
]
