"""Observability: structured lifecycle events, trace reports, exporters.

Zero overhead when disabled — every instrumented component holds
``bus = None`` by default and guards each emission with a single pointer
comparison.  Pass any :class:`EventSink` to ``DynaSpAM(sink=...)`` (or the
harness/CLI equivalents) to record the full lifecycle stream.
"""

from repro.obs.events import (
    EVENT_TYPES,
    AggregateSink,
    Event,
    EventBus,
    EventSink,
    JsonlSink,
    MemorySink,
    NullSink,
    TeeSink,
)
from repro.obs.lifetime import (
    LifetimeReport,
    TraceLifetime,
    build_lifetime_report,
    format_trace_id,
    render_lifetime_report,
    render_trace_detail,
)
from repro.obs.chrometrace import build_chrome_trace, write_chrome_trace
from repro.obs.decisions import (
    TRACE_FATES,
    DecisionSink,
    attribute_lost_cycles,
    decisions_from_events,
    render_why,
)
from repro.obs.accounting import (
    BUCKET_FIELDS,
    BUCKETS,
    bucket_breakdown,
    check_conservation,
    render_breakdown,
    render_conservation,
    render_utilization,
)
from repro.obs.diffing import (
    DiffError,
    diff_reports,
    load_report,
    render_diff,
)
from repro.obs.dashboard import render_dashboard, write_dashboard

__all__ = [
    "EVENT_TYPES",
    "AggregateSink",
    "Event",
    "EventBus",
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "TeeSink",
    "LifetimeReport",
    "TraceLifetime",
    "build_lifetime_report",
    "format_trace_id",
    "render_lifetime_report",
    "render_trace_detail",
    "build_chrome_trace",
    "write_chrome_trace",
    "TRACE_FATES",
    "DecisionSink",
    "attribute_lost_cycles",
    "decisions_from_events",
    "render_why",
    "BUCKET_FIELDS",
    "BUCKETS",
    "bucket_breakdown",
    "check_conservation",
    "render_breakdown",
    "render_conservation",
    "render_utilization",
    "DiffError",
    "diff_reports",
    "load_report",
    "render_diff",
    "render_dashboard",
    "write_dashboard",
]
