"""Prometheus text exposition (format 0.0.4) for the service snapshot.

Pure renderer: takes the JSON snapshot dict ``ServiceMetrics.snapshot``
already produces and lays it out as ``# HELP``/``# TYPE``-annotated
families.  Keeping it here (not in ``repro.service``) means anything that
has a snapshot-shaped dict — tests, offline tooling — can render it
without a running server.

Exposed families::

    repro_uptime_seconds                  gauge
    repro_jobs_total{outcome=...}         counter
    repro_jobs_in_flight                  gauge (single-flight leases)
    repro_queue_jobs{state=...}           gauge
    repro_queue_capacity                  gauge
    repro_queue_draining                  gauge (0/1)
    repro_workers_total                   gauge (pool size)
    repro_workers_busy                    gauge (batches executing)
    repro_worker_batches_total            counter
    repro_worker_batch_seconds            histogram (+ _sum, _count)
    repro_job_latency_seconds             histogram (+ _sum, _count)
    repro_job_latency_window_seconds{q=}  gauge (ring percentiles)
    repro_queue_wait_window_seconds{q=}   gauge (submit-to-start wait)
    repro_span_duration_seconds{span=}    histogram (host wall-clock spans)
    repro_cache_hits_total{layer=...}     counter
    repro_runs_simulated_total            counter
    repro_lifecycle_events_total{event=}  counter (simulated lifecycle)
    repro_cycle_bucket_cycles_total{bucket=}  counter (cycle accounting)
    repro_fabric_utilization{stat=...}    gauge (invocation-weighted)
    repro_engine_memo_total{result=...}   counter (invocation memo tier)
    repro_engine_batched_invocations_total  counter (super-step batching)
    repro_trace_fate_total{fate=,reason=} counter (terminal trace fates)
"""

from __future__ import annotations

from repro.obs.accounting import BUCKETS
from repro.obs.decisions import TRACE_FATES

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _fmt(value) -> str:
    if value is None:
        return "0"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


class _Writer:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, value, labels: dict | None = None) -> None:
        label_str = ""
        if labels:
            inner = ",".join(
                f'{key}="{_escape(str(val))}"'
                for key, val in labels.items()
            )
            label_str = "{" + inner + "}"
        self.lines.append(f"{name}{label_str} {_fmt(value)}")

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(snapshot: dict) -> str:
    """Render a ``ServiceMetrics.snapshot`` dict as text exposition 0.0.4."""
    w = _Writer()

    w.family("repro_uptime_seconds", "gauge",
             "Seconds since the service started.")
    w.sample("repro_uptime_seconds", snapshot.get("uptime_seconds", 0.0))

    jobs = snapshot.get("jobs", {})
    w.family("repro_jobs_total", "counter",
             "Jobs by terminal/admission outcome.")
    for outcome in ("submitted", "rejected", "completed", "failed",
                    "coalesced"):
        w.sample("repro_jobs_total", jobs.get(outcome, 0),
                 {"outcome": outcome})

    w.family("repro_jobs_in_flight", "gauge",
             "Deduplicated executions currently running (flight leases).")
    w.sample("repro_jobs_in_flight", snapshot.get("flights_in_flight", 0))

    queue = snapshot.get("queue", {})
    w.family("repro_queue_jobs", "gauge", "Jobs by queue state.")
    for state in ("queued", "running", "open", "retained"):
        w.sample("repro_queue_jobs", queue.get(state, 0), {"state": state})
    w.family("repro_queue_capacity", "gauge",
             "Admission limit on open (queued + running) jobs.")
    w.sample("repro_queue_capacity", queue.get("capacity", 0))
    w.family("repro_queue_draining", "gauge",
             "1 while the queue refuses new jobs during shutdown.")
    w.sample("repro_queue_draining", queue.get("draining", False))

    workers = snapshot.get("workers", {})
    w.family("repro_workers_total", "gauge",
             "Configured simulation workers in the pool.")
    w.sample("repro_workers_total", workers.get("total", 0))
    w.family("repro_workers_busy", "gauge",
             "Workers currently executing a batch.")
    w.sample("repro_workers_busy", workers.get("busy", 0))
    w.family("repro_worker_batches_total", "counter",
             "Batches the worker pool has completed.")
    w.sample("repro_worker_batches_total", workers.get("batches_total", 0))
    batch_hist = workers.get("batch_seconds") or {}
    w.family("repro_worker_batch_seconds", "histogram",
             "Wall-clock duration of worker-pool batches "
             "(zero-filled while the pool is idle).")
    cumulative = 0
    for upper, count in batch_hist.get("buckets", []):
        cumulative += count
        le = "+Inf" if upper is None else _fmt(float(upper))
        w.sample("repro_worker_batch_seconds_bucket", cumulative, {"le": le})
    if not batch_hist.get("buckets"):
        w.sample("repro_worker_batch_seconds_bucket", 0, {"le": "+Inf"})
    w.sample("repro_worker_batch_seconds_sum", batch_hist.get("sum", 0.0))
    w.sample("repro_worker_batch_seconds_count", batch_hist.get("count", 0))

    histogram = snapshot.get("latency_histogram")
    if histogram:
        w.family("repro_job_latency_seconds", "histogram",
                 "Submit-to-completion job latency.")
        cumulative = 0
        for upper, count in histogram.get("buckets", []):
            cumulative += count
            le = "+Inf" if upper is None else _fmt(float(upper))
            w.sample("repro_job_latency_seconds_bucket", cumulative,
                     {"le": le})
        w.sample("repro_job_latency_seconds_sum", histogram.get("sum", 0.0))
        w.sample("repro_job_latency_seconds_count",
                 histogram.get("count", 0))

    window = snapshot.get("latency_seconds", {})
    w.family("repro_job_latency_window_seconds", "gauge",
             "Exact percentiles over the bounded latency ring.")
    for quantile in ("p50", "p90", "p99", "max"):
        w.sample("repro_job_latency_window_seconds",
                 window.get(quantile, 0.0), {"q": quantile})

    wait = snapshot.get("queue_wait_seconds", {})
    w.family("repro_queue_wait_window_seconds", "gauge",
             "Exact submit-to-start wait percentiles (monotonic clock) "
             "over the bounded ring.")
    for quantile in ("p50", "p90", "p99", "max"):
        w.sample("repro_queue_wait_window_seconds",
                 wait.get(quantile, 0.0), {"q": quantile})

    spans = snapshot.get("spans", {})
    if spans:
        w.family("repro_span_duration_seconds", "histogram",
                 "Host-runtime wall-clock span durations by span name "
                 "(repro.obs.runtime taxonomy).")
        for name in sorted(spans):
            histogram = spans[name] or {}
            cumulative = 0
            for upper, count in histogram.get("buckets", []):
                cumulative += count
                le = "+Inf" if upper is None else _fmt(float(upper))
                w.sample("repro_span_duration_seconds_bucket", cumulative,
                         {"span": name, "le": le})
            w.sample("repro_span_duration_seconds_sum",
                     histogram.get("sum", 0.0), {"span": name})
            w.sample("repro_span_duration_seconds_count",
                     histogram.get("count", 0), {"span": name})

    cache = snapshot.get("cache", {})
    w.family("repro_cache_hits_total", "counter",
             "Run-cache hits by layer (memory dict vs content-addressed "
             "disk).")
    w.sample("repro_cache_hits_total", cache.get("run_memory_hits", 0),
             {"layer": "memory"})
    disk_hits = sum(
        ns.get("hits", 0) for ns in cache.get("disk", {}).values()
    )
    w.sample("repro_cache_hits_total", disk_hits, {"layer": "disk"})
    w.family("repro_runs_simulated_total", "counter",
             "Runs resolved by fresh simulation (cache misses).")
    w.sample("repro_runs_simulated_total", cache.get("runs_simulated", 0))

    lifecycle = snapshot.get("lifecycle", {})
    w.family("repro_lifecycle_events_total", "counter",
             "Simulated DynaSpAM lifecycle totals across completed jobs.")
    for event in ("traces_mapped", "traces_offloaded",
                  "fabric_invocations", "reconfigurations",
                  "instructions_offloaded", "squashes_branch",
                  "squashes_memory"):
        w.sample("repro_lifecycle_events_total", lifecycle.get(event, 0),
                 {"event": event})

    buckets = snapshot.get("cycle_buckets", {})
    w.family("repro_cycle_bucket_cycles_total", "counter",
             "Simulated cycles by accounting bucket (accelerated runs) "
             "across completed jobs; buckets partition each run's total.")
    for bucket in BUCKETS:
        w.sample("repro_cycle_bucket_cycles_total", buckets.get(bucket, 0),
                 {"bucket": bucket})

    memo = snapshot.get("engine_memo", {})
    w.family("repro_engine_memo_total", "counter",
             "Invocation-timing memo probes across completed jobs "
             "(simulator-internal; zero when REPRO_MEMO=0).")
    w.sample("repro_engine_memo_total", memo.get("hits", 0),
             {"result": "hit"})
    w.sample("repro_engine_memo_total", memo.get("misses", 0),
             {"result": "miss"})
    w.family("repro_engine_batched_invocations_total", "counter",
             "Invocations replayed inside a batched super-step beyond "
             "each batch's anchor invocation.")
    w.sample("repro_engine_batched_invocations_total",
             memo.get("batched_invocations", 0))

    fates = snapshot.get("trace_fates", {})
    w.family("repro_trace_fate_total", "counter",
             "Terminal trace fates across completed jobs that ran with "
             "decision records; reason is set only for unmappable traces "
             "(mapper failure enum).")
    seen_fates = set()
    for key in sorted(fates):
        fate, _, reason = key.partition("|")
        w.sample("repro_trace_fate_total", fates[key],
                 {"fate": fate, "reason": reason})
        seen_fates.add(fate)
    for fate in TRACE_FATES:
        if fate not in seen_fates:
            w.sample("repro_trace_fate_total", 0, {"fate": fate, "reason": ""})

    fabric = snapshot.get("fabric_utilization", {})
    w.family("repro_fabric_utilization", "gauge",
             "Invocation-weighted fabric occupancy across completed jobs.")
    for stat in ("placed_pe_ratio", "stripe_fill"):
        w.sample("repro_fabric_utilization", fabric.get(stat, 0.0),
                 {"stat": stat})
    w.family("repro_fabric_invocations_observed_total", "counter",
             "Fabric invocations contributing to the utilization gauges.")
    w.sample("repro_fabric_invocations_observed_total",
             fabric.get("invocations_observed", 0))

    return w.render()
