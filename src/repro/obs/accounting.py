"""Top-down cycle accounting: exclusive, conserved buckets per run.

The timing pipeline charges every advance of its commit point to exactly
one bucket (see ``OOOPipeline._alloc_commit``): front-end stalls accrue as
*credits* when the fetch barrier rises (drain, mapping, squash causes,
I-cache/BTB bubbles) and are realized when the commit stream actually gaps;
fat fabric invocations charge their commit gap to the offload bucket; the
remainder — healthy commit throughput — is host execution.  Because the
charges partition the commit timeline, ``sum(buckets) == total_cycles``
holds exactly on every run, which is what makes bucket deltas between two
runs a complete attribution of their cycle delta (``repro diff``).

Everything here is a pure function of a ``PipelineStats`` dict — the
breakdown reads counters, never live events, so it stays legal under
``--require-null-sink`` bench gating.
"""

from __future__ import annotations

from repro.harness.reporting import format_table

#: Bucket name -> the ``PipelineStats`` field charged to it.  Order is the
#: presentation order of every table and stacked bar.
BUCKET_FIELDS: dict[str, str] = {
    "host": "cycles_host",
    "frontend": "cycles_frontend",
    "drain": "cycles_drain",
    "mapping": "cycles_mapping",
    "offload": "cycles_offload",
    "squash_branch": "cycles_squash_branch",
    "squash_memory": "cycles_squash_memory",
}

BUCKETS: tuple[str, ...] = tuple(BUCKET_FIELDS)

#: One-line meaning per bucket (the docs table and dashboard legend).
BUCKET_HELP: dict[str, str] = {
    "host": "healthy host execution and commit throughput",
    "frontend": "I-cache miss and BTB-miss fetch bubbles",
    "drain": "back-end drain before a mapping phase",
    "mapping": "mapper occupying the issue unit after the drain",
    "offload": "commit waiting on fabric invocations",
    "squash_branch": "branch mispredict redirects and branch squashes",
    "squash_memory": "memory-order violation squash recovery",
}


def bucket_breakdown(stats: dict) -> dict:
    """Partition one run's cycles into the accounting buckets.

    ``stats`` is a ``PipelineStats.as_dict()`` (or the ``stats`` /
    ``baseline_stats`` block of a ``repro run --json`` report).  Returns::

        {"total_cycles": N,
         "buckets": {bucket: cycles, ...},      # all seven, always
         "residual": N - sum(buckets),          # 0 on a conserved run
         "conserved": bool}
    """
    total = int(stats.get("cycles", 0))
    buckets = {
        name: int(stats.get(field, 0)) for name, field in BUCKET_FIELDS.items()
    }
    residual = total - sum(buckets.values())
    return {
        "total_cycles": total,
        "buckets": buckets,
        "residual": residual,
        "conserved": residual == 0 and all(v >= 0 for v in buckets.values()),
    }


def check_conservation(stats: dict) -> list[str]:
    """Conservation violations for one stats dict (empty = clean)."""
    breakdown = bucket_breakdown(stats)
    problems = []
    for name, value in breakdown["buckets"].items():
        if value < 0:
            problems.append(f"bucket {name} is negative ({value})")
    if breakdown["residual"]:
        problems.append(
            f"buckets sum to {breakdown['total_cycles'] - breakdown['residual']}"
            f" but the run took {breakdown['total_cycles']} cycles "
            f"(residual {breakdown['residual']})"
        )
    return problems


def render_breakdown(
    columns: dict[str, dict], baseline: str | None = None
) -> str:
    """Render bucket breakdowns side by side, one column per mode.

    ``columns`` maps a column title (e.g. ``"host"``, ``"spec"``) to a
    ``bucket_breakdown`` result.  With ``baseline`` naming one column, a
    delta column attributes the cycle difference of every *other* column
    against it.
    """
    titles = list(columns)
    headers = ["bucket"]
    for title in titles:
        headers += [f"{title} cyc", "%"]
    compare = [t for t in titles if baseline and t != baseline]
    for title in compare:
        headers.append(f"d({title}-{baseline})")

    rows: list[list] = []
    for bucket in BUCKETS:
        row: list = [bucket]
        for title in titles:
            b = columns[title]
            total = b["total_cycles"] or 1
            value = b["buckets"][bucket]
            row += [value, f"{100.0 * value / total:.1f}"]
        for title in compare:
            delta = (columns[title]["buckets"][bucket]
                     - columns[baseline]["buckets"][bucket])
            row.append(f"{delta:+d}")
        rows.append(row)
    total_row: list = ["TOTAL"]
    for title in titles:
        total_row += [columns[title]["total_cycles"], "100.0"]
    for title in compare:
        delta = (columns[title]["total_cycles"]
                 - columns[baseline]["total_cycles"])
        total_row.append(f"{delta:+d}")
    rows.append(total_row)
    return format_table(headers, rows)


def render_conservation(columns: dict[str, dict]) -> str:
    """One conservation-check line per column (PASS/FAIL)."""
    lines = []
    for title, breakdown in columns.items():
        state = "PASS" if breakdown["conserved"] else "FAIL"
        lines.append(
            f"conservation [{title}]: sum(buckets) == "
            f"{breakdown['total_cycles'] - breakdown['residual']} vs "
            f"total {breakdown['total_cycles']} "
            f"(residual {breakdown['residual']}) {state}"
        )
    return "\n".join(lines)


def render_utilization(util: dict) -> str:
    """Render a fabric-utilization summary (``repro analyze`` tail)."""
    if not util or not util.get("total_invocations"):
        return "fabric: no invocations (nothing offloaded)"
    lines = [
        f"fabric: {util['total_invocations']} invocations | "
        f"placed-PE ratio {util['placed_pe_ratio']:.1%} | "
        f"stripe fill {util['stripe_fill']:.1%}"
    ]
    reuse = util.get("reuse_distance") or {}
    if reuse.get("count"):
        lines.append(
            f"config reuse distance: mean {reuse['mean']:.1f} "
            f"reconfigs, max {reuse['max']} ({reuse['count']} reloads)"
        )
    per_stripe = util.get("per_stripe") or []
    if per_stripe:
        cells = []
        for entry in per_stripe:
            cells.append(f"{entry['occupancy']:.0%}".rjust(4))
        lines.append("per-stripe occupancy: " + " ".join(cells))
    return "\n".join(lines)
