"""Chrome trace-event JSON export (Perfetto / chrome://tracing).

Lays the recorded lifecycle event stream out on five tracks so the whole
DynaSpAM run can be scrubbed visually:

=====  ====================  ==============================================
tid    track                 contents
=====  ====================  ==============================================
1      pipeline phase        host / mapping / offload spans (``ph: X``)
2      front-end stalls      drain-to-empty stall spans
3      fabric mapping        per-trace mapping spans with stripe sub-slices
4      fat instructions      dispatch→commit/squash spans, paired by seq
5      lifecycle             instant markers (T-Cache, config cache, fabric)
=====  ====================  ==============================================

The unit of ``ts`` is the simulated *cycle* (declared via
``displayTimeUnit``); durations are cycles too.  One JSON object with a
``traceEvents`` array is produced — the format both Perfetto and
chrome://tracing load directly.

When host-runtime telemetry is on (``repro run --trace-out`` enables
it), a **second process** (pid 2, "host runtime (wall clock)") carries
the wall-clock spans from :mod:`repro.obs.runtime`: one thread track
per (process, thread) pair — the main process plus any ``worker-<pid>``
pool processes — with ``ts``/``dur`` in microseconds relative to the
earliest host span.  The simulated tracks are bit-identical whether or
not host spans are attached.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.events import Event
from repro.obs.lifetime import format_trace_id

PID = 1
HOST_PID = 2
TID_PHASE = 1
TID_STALL = 2
TID_MAPPING = 3
TID_FAT = 4
TID_LIFECYCLE = 5

_TRACK_NAMES = {
    TID_PHASE: "pipeline phase",
    TID_STALL: "front-end stalls",
    TID_MAPPING: "fabric mapping",
    TID_FAT: "fat instructions",
    TID_LIFECYCLE: "lifecycle",
}

#: Lifecycle event types rendered as instant markers on tid 5.
_INSTANT_TYPES = {
    "tcache.detect",
    "tcache.hot",
    "tcache.clear",
    "ccache.insert",
    "ccache.ready",
    "ccache.evict",
    "fabric.reconfig",
    "map.abort",
    "offload.defer",
}


def _span(name: str, tid: int, ts: int, dur: int, args: dict) -> dict:
    return {
        "name": name, "ph": "X", "pid": PID, "tid": tid,
        "ts": ts, "dur": max(dur, 1), "args": args,
    }


def _instant(name: str, tid: int, ts: int, args: dict) -> dict:
    return {
        "name": name, "ph": "i", "pid": PID, "tid": tid,
        "ts": ts, "s": "t", "args": args,
    }


def _jsonable_args(data: dict) -> dict:
    args = {}
    for key, value in data.items():
        if key == "key" and isinstance(value, tuple):
            args["trace"] = format_trace_id(value)
        elif isinstance(value, (tuple, set, frozenset)):
            args[key] = list(value)
        else:
            args[key] = value
    return args


def _host_track_events(host_spans) -> list[dict]:
    """Wall-clock span records -> pid-2 trace events (one tid per
    (process, thread) pair; ts/dur in µs from the earliest span)."""
    records = [
        span if isinstance(span, dict) else span.as_dict()
        for span in host_spans
    ]
    if not records:
        return []
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": HOST_PID, "tid": 0,
        "args": {"name": "host runtime (wall clock)"},
    }]
    tracks: dict[tuple[str, str], int] = {}
    for record in records:
        key = (record.get("process", "main"), record.get("thread", "?"))
        if key not in tracks:
            tracks[key] = len(tracks) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": HOST_PID,
                "tid": tracks[key], "args": {"name": f"{key[0]} / {key[1]}"},
            })
    base = min(record["start"] for record in records)
    spans = []
    for record in records:
        key = (record.get("process", "main"), record.get("thread", "?"))
        args = dict(record.get("attrs") or {})
        args["depth"] = record.get("depth", 0)
        args["duration_seconds"] = record["duration"]
        spans.append({
            "name": record["name"], "ph": "X", "pid": HOST_PID,
            "tid": tracks[key],
            "ts": round((record["start"] - base) * 1e6),
            "dur": max(round(record["duration"] * 1e6), 1),
            "args": args,
        })
    # Per track: by start time, parents (longer, shallower) before the
    # children they enclose.
    spans.sort(key=lambda e: (e["tid"], e["ts"], -e["dur"]))
    return events + spans


def build_chrome_trace(
    events: Iterable[Event],
    end_cycle: int | None = None,
    host_spans: Iterable | None = None,
) -> dict:
    """Convert a recorded event stream into a Chrome trace-event dict.

    ``host_spans`` (optional) is an iterable of
    :class:`repro.obs.runtime.SpanRecord` objects or their ``as_dict``
    forms; when non-empty they become the pid-2 wall-clock process.
    """
    trace_events: list[dict] = [
        {
            "name": "process_name", "ph": "M", "pid": PID, "tid": 0,
            "args": {"name": "dynaspam"},
        }
    ]
    for tid, name in _TRACK_NAMES.items():
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": PID, "tid": tid,
            "args": {"name": name},
        })

    phase_open: tuple[str, int] | None = None   # (phase name, start cycle)
    mapping_open: dict | None = None            # map.start context
    mapping_stripes: list[dict] = []
    fat_open: dict[int, Event] = {}             # seq -> offload.dispatch
    last_cycle = 0

    def close_phase(at: int) -> None:
        nonlocal phase_open
        if phase_open is None:
            return
        name, start = phase_open
        trace_events.append(_span(
            name, TID_PHASE, start, at - start, {"phase": name}
        ))
        phase_open = None

    def close_mapping(at: int, status: str, extra: dict) -> None:
        nonlocal mapping_open, mapping_stripes
        if mapping_open is None:
            return
        key = mapping_open["key"]
        args = {
            "trace": format_trace_id(key),
            "instructions": mapping_open.get("instructions"),
            "status": status,
        }
        args.update(extra)
        trace_events.append(_span(
            f"map {format_trace_id(key)}", TID_MAPPING,
            mapping_open["cycle"], at - mapping_open["cycle"], args,
        ))
        trace_events.extend(mapping_stripes)
        mapping_open = None
        mapping_stripes = []

    for event in events:
        kind = event.type
        data = event.data
        cycle = event.cycle
        if cycle > last_cycle:
            last_cycle = cycle

        if kind == "pipeline.phase":
            close_phase(cycle)
            phase_open = (data["phase"], cycle)
        elif kind == "pipeline.drain":
            trace_events.append(_span(
                "drain", TID_STALL, cycle, data.get("stall", 0),
                {"until": data.get("until"), "stall": data.get("stall")},
            ))
        elif kind == "map.start":
            close_mapping(cycle, "interrupted", {})
            mapping_open = {"cycle": cycle, **data}
        elif kind == "map.stripe" and mapping_open is not None:
            # Stripes have no pipeline cycle of their own; lay them out at
            # map.start + cumulative issue-unit offset so relative mapping
            # effort per stripe is visible.
            base = mapping_open["cycle"] + data.get("offset", 0)
            mapping_stripes.append(_span(
                f"stripe {data.get('stripe')}", TID_MAPPING, base, 1,
                {"selected": data.get("selected"),
                 "remaining": data.get("remaining")},
            ))
        elif kind == "map.done":
            close_mapping(
                max(cycle, (mapping_open or {}).get("cycle", cycle)),
                "mapped",
                {"mapping_cycles": data.get("mapping_cycles"),
                 "placements": data.get("placements")},
            )
        elif kind == "map.fail":
            close_mapping(cycle, "failed", {"reason": data.get("reason")})
            trace_events.append(_instant(
                f"map fail {format_trace_id(data['key'])}", TID_MAPPING,
                cycle, {"reason": data.get("reason")},
            ))
        elif kind == "offload.dispatch":
            fat_open[data["seq"]] = event
        elif kind in ("offload.commit", "offload.squash"):
            dispatch = fat_open.pop(data.get("seq"), None)
            start = dispatch.cycle if dispatch is not None else cycle
            name = f"fat {format_trace_id(data['key'])}"
            args = _jsonable_args(data)
            if dispatch is not None:
                args.setdefault(
                    "instructions", dispatch.data.get("instructions")
                )
            if kind == "offload.squash":
                args["outcome"] = f"squash:{data.get('cause')}"
                if dispatch is None:
                    # Branch mispredictions squash before dispatch; mark
                    # them as instants rather than zero-length spans.
                    trace_events.append(_instant(
                        name + " squash", TID_FAT, cycle, args
                    ))
                    continue
            else:
                args["outcome"] = "commit"
            trace_events.append(_span(
                name, TID_FAT, start, cycle - start, args
            ))
        elif kind in _INSTANT_TYPES:
            label = kind
            if "key" in data and isinstance(data["key"], tuple):
                label = f"{kind} {format_trace_id(data['key'])}"
            trace_events.append(_instant(
                label, TID_LIFECYCLE, cycle, _jsonable_args(data)
            ))
        # ccache.hit / map.place are too fine-grained for the timeline;
        # they live in the lifetime report instead.

    final = end_cycle if end_cycle is not None else last_cycle
    close_phase(max(final, last_cycle))
    close_mapping(last_cycle, "interrupted", {})
    for dispatch in fat_open.values():
        trace_events.append(_span(
            f"fat {format_trace_id(dispatch.data['key'])} (open)",
            TID_FAT, dispatch.cycle, 1,
            _jsonable_args(dispatch.data),
        ))

    # Chrome's importer tolerates unsorted events but Perfetto's track
    # builder is simpler with per-track monotonic timestamps.
    metadata = [e for e in trace_events if e["ph"] == "M"]
    timed = [e for e in trace_events if e["ph"] != "M"]
    timed.sort(key=lambda e: (e["tid"], e["ts"], e.get("dur", 0)))
    return {
        "traceEvents": (
            metadata + timed + _host_track_events(host_spans or ())
        ),
        "displayTimeUnit": "ns",
        "otherData": {"time_unit": "simulated cycle"},
    }


def write_chrome_trace(
    events: Iterable[Event],
    path,
    end_cycle: int | None = None,
    host_spans: Iterable | None = None,
) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    trace = build_chrome_trace(
        events, end_cycle=end_cycle, host_spans=host_spans
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1)
        handle.write("\n")
    return len(trace["traceEvents"])
