"""Live progress heartbeats for long host-side runs.

A :class:`ProgressTracker` counts work units (benchmark runs, study
cells, batch requests) and derives rate and ETA from a monotonic clock.
Every :meth:`advance` produces a *heartbeat* — a plain dict — and fans
it out to listeners: the stderr renderer behind ``repro bench
--progress`` / ``repro study --progress``, the JSONL log, and the
service's per-job progress documents behind ``GET
/v1/jobs/{id}/progress``.

The harness publishes through a module-level *active tracker* slot
(:func:`activate` / :func:`advance_active`) so deep layers like
``harness.parallel`` never need a ``progress=`` parameter threaded
through every signature — and pay only a ``None`` check when progress
is off.
"""

from __future__ import annotations

import sys
import threading
import time


class ProgressTracker:
    """Done/total accounting with instructions-per-second and ETA."""

    def __init__(self, total: int, label: str = "run") -> None:
        self.total = max(0, int(total))
        self.label = label
        self.done = 0
        self.instructions = 0
        self.started = time.monotonic()
        self._lock = threading.Lock()
        self._listeners: list = []

    def add_listener(self, listener) -> None:
        """``listener(heartbeat_dict)`` fires on every advance."""
        self._listeners.append(listener)

    def advance(self, units: int = 1, instructions: int = 0,
                detail: str | None = None) -> dict:
        """Record finished work and emit a heartbeat to all listeners."""
        with self._lock:
            self.done += units
            self.instructions += instructions
        beat = self.heartbeat(detail)
        for listener in self._listeners:
            try:
                listener(beat)
            except Exception:  # noqa: BLE001 — progress must never raise
                pass
        return beat

    def heartbeat(self, detail: str | None = None) -> dict:
        """The current progress snapshot as a serializable dict."""
        with self._lock:
            done, instructions = self.done, self.instructions
        elapsed = max(time.monotonic() - self.started, 1e-9)
        rate = done / elapsed
        remaining = max(self.total - done, 0)
        beat = {
            "label": self.label,
            "done": done,
            "total": self.total,
            "fraction": round(done / self.total, 4) if self.total else 1.0,
            "elapsed_seconds": round(elapsed, 3),
            "instructions": instructions,
            "instructions_per_second": round(instructions / elapsed, 1),
            "eta_seconds": round(remaining / rate, 1) if done else None,
        }
        if detail:
            beat["detail"] = detail
        return beat


def render_heartbeat(beat: dict) -> str:
    """One-line human rendering, e.g.
    ``[ 12/44] bench 27% | 1.8M instr/s | ETA 9s | KM``."""
    total = beat.get("total") or 0
    done = beat.get("done", 0)
    width = len(str(total)) if total else 1
    pct = f"{100.0 * beat.get('fraction', 0):3.0f}%"
    parts = [
        f"[{done:>{width}}/{total}] {beat.get('label', 'run')} {pct}",
        f"{_si(beat.get('instructions_per_second', 0))} instr/s",
    ]
    eta = beat.get("eta_seconds")
    if eta is not None:
        parts.append(f"ETA {_duration(eta)}")
    detail = beat.get("detail")
    if detail:
        parts.append(str(detail))
    return " | ".join(parts)


def _si(value: float) -> str:
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    return f"{value:.0f}"


def _duration(seconds: float) -> str:
    seconds = max(0.0, float(seconds))
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{seconds:.0f}s"


def stderr_listener(stream=None, min_interval: float = 0.0):
    """A listener that renders heartbeats to ``stream`` (stderr), rate
    limited to one line per ``min_interval`` seconds (final line always
    prints)."""
    stream = stream or sys.stderr
    last = [float("-inf")]

    def listener(beat: dict) -> None:
        now = time.monotonic()
        final = beat.get("total") and beat.get("done", 0) >= beat["total"]
        if not final and now - last[0] < min_interval:
            return
        last[0] = now
        print(render_heartbeat(beat), file=stream, flush=True)

    return listener


def log_listener():
    """A listener forwarding heartbeats to the runtime JSONL log."""
    from repro.obs.logging import log_record

    def listener(beat: dict) -> None:
        log_record("heartbeat", **beat)

    return listener


#: The active tracker slot published to deep harness layers.
_ACTIVE: ProgressTracker | None = None
_ACTIVE_LOCK = threading.Lock()


def activate(tracker: ProgressTracker) -> None:
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = tracker


def deactivate() -> None:
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = None


def current() -> ProgressTracker | None:
    return _ACTIVE


def advance_active(units: int = 1, instructions: int = 0,
                   detail: str | None = None) -> None:
    """Advance the active tracker, if any (free no-op otherwise)."""
    tracker = _ACTIVE
    if tracker is not None:
        tracker.advance(units, instructions, detail)
