"""Self-contained HTML dashboard for bench reports.

``repro bench --dashboard out/`` renders the report JSON into one static
``index.html`` — no external scripts, stylesheets, or fonts — suitable
for uploading as a CI artifact.  Two charts:

* stacked cycle-accounting bars, one row per (benchmark, series), each
  segment a conserved bucket from ``repro.obs.accounting``;
* a fabric-utilization heatmap, benchmarks x stripes, shaded by
  invocation-weighted occupancy;

plus a host wall-clock panel (per-section seconds from the report's
``profile`` block) and, when present, the trace-fate breakdown.

Everything is derived from the report's stats-based ``accounting`` and
``fabric_utilization`` blocks — no event stream is consumed, so the
dashboard stays legal in ``--require-null-sink``-gated bench runs.

The palette follows the repo-wide dataviz conventions: a fixed
categorical order validated for adjacent-pair colorblind separation in
light and dark mode, a single-hue sequential ramp for the heatmap
(reversed in dark mode so "near zero" recedes into the surface), text in
ink tokens rather than series colors, and a full table view backing both
charts.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.obs.accounting import BUCKETS

#: Categorical slot per bucket, in fixed order (light, dark).  The order
#: is the CVD-safety mechanism for adjacent stacked segments — append new
#: buckets at the end, never reshuffle.
BUCKET_COLORS: dict[str, tuple[str, str]] = {
    "host": ("#2a78d6", "#3987e5"),
    "frontend": ("#eb6834", "#d95926"),
    "drain": ("#1baf7a", "#199e70"),
    "mapping": ("#eda100", "#c98500"),
    "offload": ("#e87ba4", "#d55181"),
    "squash_branch": ("#008300", "#008300"),
    "squash_memory": ("#4a3aa7", "#9085e9"),
}

#: Categorical slot per terminal trace fate (light, dark), in the
#: precedence order of ``repro.obs.decisions.TRACE_FATES`` — same
#: append-only contract as BUCKET_COLORS.
FATE_COLORS: dict[str, tuple[str, str]] = {
    "offloaded": ("#2a78d6", "#3987e5"),
    "ready_never_offloaded": ("#1baf7a", "#199e70"),
    "mapped_never_ready": ("#eda100", "#c98500"),
    "unmappable": ("#eb6834", "#d95926"),
    "map_aborted": ("#e87ba4", "#d55181"),
    "hot_never_mapped": ("#4a3aa7", "#9085e9"),
    "never_hot": ("#898781", "#898781"),
}

#: Single-hue sequential ramp (blue 100 -> 700) for the occupancy heatmap.
SEQUENTIAL_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

SERIES_ORDER = ("baseline", "mapping", "no_spec", "spec")
SERIES_LABEL = {
    "baseline": "host",
    "mapping": "mapping only",
    "no_spec": "accel w/o spec",
    "spec": "accel w/ spec",
    "dynaspam": "dynaspam",
}

_BAR_H = 16          # bar thickness (<= 24px per the mark spec)
_ROW_H = 22          # bar + air
_GAP = 2             # surface gap between touching segments
_LEFT = 150          # label gutter
_PLOT_W = 640        # plot width at the widest bar
_LABEL_W = 80        # room for the value at the bar tip


def _style() -> str:
    light_vars = "\n".join(
        f"      --bucket-{name}: {light};"
        for name, (light, _) in BUCKET_COLORS.items()
    ) + "\n" + "\n".join(
        f"      --fate-{name}: {light};"
        for name, (light, _) in FATE_COLORS.items()
    )
    dark_vars = "\n".join(
        f"      --bucket-{name}: {dark};"
        for name, (_, dark) in BUCKET_COLORS.items()
    ) + "\n" + "\n".join(
        f"      --fate-{name}: {dark};"
        for name, (_, dark) in FATE_COLORS.items()
    )
    light_ramp = "\n".join(
        f"      .q{i} {{ fill: {hex_}; }}"
        for i, hex_ in enumerate(SEQUENTIAL_RAMP)
    )
    dark_ramp = "\n".join(
        f"      .q{i} {{ fill: {hex_}; }}"
        for i, hex_ in enumerate(reversed(SEQUENTIAL_RAMP))
    )
    return f"""
  <style>
    :root {{
      color-scheme: light dark;
      --surface-1: #fcfcfb;
      --page: #f9f9f7;
      --text-primary: #0b0b0b;
      --text-secondary: #52514e;
      --text-muted: #898781;
      --hairline: #e1e0d9;
      --warning-ink: #8a5a00;
{light_vars}
    }}
{light_ramp}
    @media (prefers-color-scheme: dark) {{
      :root {{
        --surface-1: #1a1a19;
        --page: #0d0d0d;
        --text-primary: #ffffff;
        --text-secondary: #c3c2b7;
        --text-muted: #898781;
        --hairline: #2c2c2a;
        --warning-ink: #fab219;
{dark_vars}
      }}
{dark_ramp}
    }}
    body {{
      margin: 0; padding: 24px 32px 48px;
      background: var(--page); color: var(--text-primary);
      font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
    }}
    h1 {{ font-size: 20px; margin: 0 0 4px; }}
    h2 {{ font-size: 15px; margin: 32px 0 8px; }}
    .sub {{ color: var(--text-secondary); margin: 0 0 16px; }}
    .tiles {{ display: flex; gap: 16px; flex-wrap: wrap; margin: 16px 0; }}
    .tile {{
      background: var(--surface-1); border: 1px solid var(--hairline);
      border-radius: 8px; padding: 10px 16px; min-width: 130px;
    }}
    .tile .label {{ color: var(--text-secondary); font-size: 12px; }}
    .tile .value {{ font-size: 26px; font-weight: 600; }}
    .warn {{ color: var(--warning-ink); margin: 4px 0; }}
    .card {{
      background: var(--surface-1); border: 1px solid var(--hairline);
      border-radius: 8px; padding: 16px; overflow-x: auto;
    }}
    .legend {{
      display: flex; gap: 14px; flex-wrap: wrap; margin: 0 0 10px;
      color: var(--text-secondary); font-size: 12px;
    }}
    .legend .swatch {{
      display: inline-block; width: 10px; height: 10px;
      border-radius: 2px; margin-right: 4px; vertical-align: -1px;
    }}
    svg text {{
      font: 11px system-ui, -apple-system, "Segoe UI", sans-serif;
      fill: var(--text-secondary);
    }}
    svg text.value {{ fill: var(--text-muted); }}
    svg text.bench {{ fill: var(--text-primary); font-weight: 600; }}
    table {{ border-collapse: collapse; font-size: 12px; }}
    th, td {{
      padding: 3px 10px; text-align: right;
      font-variant-numeric: tabular-nums;
    }}
    th {{ color: var(--text-secondary); font-weight: 600; }}
    td:first-child, th:first-child,
    td:nth-child(2), th:nth-child(2) {{ text-align: left; }}
    tbody tr {{ border-top: 1px solid var(--hairline); }}
    .fail {{ color: var(--warning-ink); font-weight: 600; }}
  </style>"""


def _legend() -> str:
    items = "".join(
        f'<span><span class="swatch" '
        f'style="background: var(--bucket-{name})"></span>'
        f"{html.escape(name)}</span>"
        for name in BUCKETS
    )
    return f'<div class="legend">{items}</div>'


def _series_rows(accounting: dict) -> list[tuple[str, str, dict]]:
    """(benchmark, series, breakdown) rows in presentation order."""
    rows = []
    for benchmark, by_series in accounting.items():
        for series in SERIES_ORDER:
            if series in by_series:
                rows.append((benchmark, series, by_series[series]))
        for series in by_series:            # unknown series still render
            if series not in SERIES_ORDER:
                rows.append((benchmark, series, by_series[series]))
    return rows


def _stacked_bars(accounting: dict) -> str:
    rows = _series_rows(accounting)
    if not rows:
        return "<p class='sub'>no accounting data in this report</p>"
    max_cycles = max(r[2].get("total_cycles", 0) for r in rows) or 1
    benches = list(dict.fromkeys(r[0] for r in rows))
    height = len(rows) * _ROW_H + len(benches) * 18 + 8
    parts = [
        f'<svg role="img" width="{_LEFT + _PLOT_W + _LABEL_W}" '
        f'height="{height}" '
        f'aria-label="Stacked cycle-accounting bars per benchmark">'
    ]
    y = 4
    last_bench = None
    for benchmark, series, breakdown in rows:
        if benchmark != last_bench:
            y += 14
            parts.append(
                f'<text class="bench" x="0" y="{y}">'
                f"{html.escape(benchmark)}</text>"
            )
            y += 4
            last_bench = benchmark
        total = breakdown.get("total_cycles", 0)
        label = SERIES_LABEL.get(series, series)
        parts.append(
            f'<text x="{_LEFT - 8}" y="{y + _BAR_H - 4}" '
            f'text-anchor="end">{html.escape(label)}</text>'
        )
        x = float(_LEFT)
        buckets = breakdown.get("buckets", {})
        segments = [(n, buckets.get(n, 0)) for n in BUCKETS
                    if buckets.get(n, 0) > 0]
        for index, (name, cycles) in enumerate(segments):
            width = cycles / max_cycles * _PLOT_W
            draw_w = max(width - (_GAP if index < len(segments) - 1 else 0),
                         0.5)
            # Rounded data-end on the last segment only; square elsewhere.
            radius = 4 if index == len(segments) - 1 else 0
            share = cycles / total if total else 0.0
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{draw_w:.1f}" '
                f'height="{_BAR_H}" rx="{radius}" '
                f'fill="var(--bucket-{name})">'
                f"<title>{html.escape(benchmark)} {html.escape(label)} — "
                f"{html.escape(name)}: {cycles:,} cycles "
                f"({share:.1%})</title></rect>"
            )
            x += width
        parts.append(
            f'<text class="value" x="{_LEFT + total / max_cycles * _PLOT_W + 6:.1f}" '
            f'y="{y + _BAR_H - 4}">{total:,}</text>'
        )
        y += _ROW_H
    parts.append("</svg>")
    return "".join(parts)


def _heatmap(utilization: dict) -> str:
    benches = [b for b, util in utilization.items()
               if util and util.get("per_stripe")]
    if not benches:
        return "<p class='sub'>no fabric-utilization data in this report</p>"
    num_stripes = max(
        len(utilization[b]["per_stripe"]) for b in benches)
    cell, gap = 26, 2
    width = _LEFT + num_stripes * (cell + gap) + 140
    height = 22 + len(benches) * (cell + gap) + 8
    steps = len(SEQUENTIAL_RAMP)
    parts = [
        f'<svg role="img" width="{width}" height="{height}" '
        f'aria-label="Per-stripe fabric occupancy heatmap">'
    ]
    for stripe in range(num_stripes):
        parts.append(
            f'<text x="{_LEFT + stripe * (cell + gap) + cell / 2:.0f}" '
            f'y="12" text-anchor="middle">{stripe}</text>'
        )
    parts.append(
        f'<text x="{_LEFT + num_stripes * (cell + gap) + 8}" y="12">'
        "placed-PE / fill</text>"
    )
    y = 22
    for benchmark in benches:
        util = utilization[benchmark]
        parts.append(
            f'<text class="bench" x="0" y="{y + cell - 9}">'
            f"{html.escape(benchmark)}</text>"
        )
        for entry in util["per_stripe"]:
            occ = entry.get("occupancy", 0.0)
            quantile = min(int(occ * steps), steps - 1)
            x = _LEFT + entry["stripe"] * (cell + gap)
            parts.append(
                f'<rect class="q{quantile}" x="{x}" y="{y}" '
                f'width="{cell}" height="{cell}" rx="3">'
                f"<title>{html.escape(benchmark)} stripe "
                f"{entry['stripe']}: occupancy {occ:.1%} "
                f"({entry['placed_pe_invocations']:,} placed-PE "
                f"invocations)</title></rect>"
            )
        parts.append(
            f'<text class="value" '
            f'x="{_LEFT + num_stripes * (cell + gap) + 8}" '
            f'y="{y + cell - 9}">'
            f"{util.get('placed_pe_ratio', 0.0):.1%} / "
            f"{util.get('stripe_fill', 0.0):.1%}</text>"
        )
        y += cell + gap
    parts.append("</svg>")
    return "".join(parts)


def _accounting_table(accounting: dict) -> str:
    heads = "".join(
        f"<th>{html.escape(n)}</th>" for n in BUCKETS)
    rows = []
    for benchmark, series, breakdown in _series_rows(accounting):
        buckets = breakdown.get("buckets", {})
        cells = "".join(
            f"<td>{buckets.get(n, 0):,}</td>" for n in BUCKETS)
        conserved = breakdown.get("conserved", False)
        verdict = ("ok" if conserved
                   else f'<span class="fail">residual '
                        f"{breakdown.get('residual', '?')}</span>")
        rows.append(
            f"<tr><td>{html.escape(benchmark)}</td>"
            f"<td>{html.escape(SERIES_LABEL.get(series, series))}</td>"
            f"<td>{breakdown.get('total_cycles', 0):,}</td>"
            f"{cells}<td>{verdict}</td></tr>"
        )
    return (
        "<table><thead><tr><th>benchmark</th><th>series</th>"
        f"<th>cycles</th>{heads}<th>conserved</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _utilization_table(utilization: dict) -> str:
    rows = []
    for benchmark, util in utilization.items():
        if not util:
            continue
        reuse = util.get("reuse_distance", {})
        mean = reuse.get("mean")
        rows.append(
            f"<tr><td>{html.escape(benchmark)}</td>"
            f"<td></td>"
            f"<td>{util.get('total_invocations', 0):,}</td>"
            f"<td>{util.get('reconfigurations', 0):,}</td>"
            f"<td>{util.get('placed_pe_ratio', 0.0):.1%}</td>"
            f"<td>{util.get('stripe_fill', 0.0):.1%}</td>"
            f"<td>{reuse.get('count', 0):,}</td>"
            f"<td>{'—' if mean is None else f'{mean:.1f}'}</td></tr>"
        )
    if not rows:
        return ""
    return (
        "<table><thead><tr><th>benchmark</th><th></th>"
        "<th>invocations</th><th>reconfigs</th><th>placed-PE ratio</th>"
        "<th>stripe fill</th><th>reloads</th><th>mean reuse dist</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def _fate_legend() -> str:
    items = "".join(
        f'<span><span class="swatch" '
        f'style="background: var(--fate-{name})"></span>'
        f"{html.escape(name)}</span>"
        for name in FATE_COLORS
    )
    return f'<div class="legend">{items}</div>'


def _fate_bars(decisions: dict) -> str:
    """Stacked per-benchmark trace-fate bars (identity counts)."""
    rows = [
        (benchmark, block["trace_fates"])
        for benchmark, block in decisions.items()
        if block.get("trace_fates", {}).get("identities")
    ]
    if not rows:
        return "<p class='sub'>no decision records in this report</p>"
    max_identities = max(fates["identities"] for _, fates in rows) or 1
    height = len(rows) * _ROW_H + 8
    parts = [
        f'<svg role="img" width="{_LEFT + _PLOT_W + _LABEL_W}" '
        f'height="{height}" '
        f'aria-label="Trace-fate breakdown per benchmark">'
    ]
    y = 4
    for benchmark, fates in rows:
        total = fates["identities"]
        parts.append(
            f'<text class="bench" x="0" y="{y + _BAR_H - 4}">'
            f"{html.escape(benchmark)}</text>"
        )
        x = float(_LEFT)
        segments = [(n, fates["counts"].get(n, 0)) for n in FATE_COLORS
                    if fates["counts"].get(n, 0) > 0]
        for index, (name, count) in enumerate(segments):
            width = count / max_identities * _PLOT_W
            draw_w = max(width - (_GAP if index < len(segments) - 1 else 0),
                         0.5)
            radius = 4 if index == len(segments) - 1 else 0
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{draw_w:.1f}" '
                f'height="{_BAR_H}" rx="{radius}" '
                f'fill="var(--fate-{name})">'
                f"<title>{html.escape(benchmark)} — {html.escape(name)}: "
                f"{count} traces ({count / total:.1%})</title></rect>"
            )
            x += width
        parts.append(
            f'<text class="value" '
            f'x="{_LEFT + total / max_identities * _PLOT_W + 6:.1f}" '
            f'y="{y + _BAR_H - 4}">{total}</text>'
        )
        y += _ROW_H
    parts.append("</svg>")
    return "".join(parts)


def _fate_table(decisions: dict) -> str:
    heads = "".join(f"<th>{html.escape(n)}</th>" for n in FATE_COLORS)
    rows = []
    for benchmark, block in decisions.items():
        fates = block.get("trace_fates", {})
        counts = fates.get("counts", {})
        windows = block.get("windows", {})
        cells = "".join(
            f"<td>{counts.get(n, 0):,}</td>" for n in FATE_COLORS)
        verdict = ("ok" if fates.get("conserved", False)
                   else '<span class="fail">leak</span>')
        rows.append(
            f"<tr><td>{html.escape(benchmark)}</td>"
            f"<td>{windows.get('total', 0):,}</td>"
            f"<td>{fates.get('identities', 0):,}</td>"
            f"{cells}<td>{verdict}</td></tr>"
        )
    return (
        "<table><thead><tr><th>benchmark</th><th>windows</th>"
        f"<th>identities</th>{heads}<th>conserved</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _wallclock_section(report: dict) -> str:
    """Host wall-clock summary from the report's existing ``profile`` /
    ``wall_clock_seconds`` / ``cache`` blocks (pure rendering — the
    bench report itself is unchanged by this panel)."""
    profile = report.get("profile") or {}
    sections = profile.get("sections_seconds") or {}
    if not sections:
        return ""
    wall = float(report.get("wall_clock_seconds", 0.0) or 0.0)
    cache = report.get("cache") or {}
    widest = max(sections.values()) or 1.0
    rows = sorted(sections.items(), key=lambda kv: -kv[1])
    height = len(rows) * _ROW_H + 8
    parts = [
        f'<svg role="img" width="{_LEFT + _PLOT_W + _LABEL_W}" '
        f'height="{height}" '
        f'aria-label="Host wall-clock seconds per harness section">'
    ]
    y = 4
    for name, seconds in rows:
        parts.append(
            f'<text x="{_LEFT - 8}" y="{y + _BAR_H - 4}" '
            f'text-anchor="end">{html.escape(name)}</text>'
        )
        width = max(seconds / widest * _PLOT_W, 0.5)
        share = seconds / wall if wall else 0.0
        parts.append(
            f'<rect x="{_LEFT}" y="{y}" width="{width:.1f}" '
            f'height="{_BAR_H}" rx="4" fill="var(--bucket-host)">'
            f"<title>{html.escape(name)}: {seconds:.3f}s "
            f"({share:.1%} of wall clock)</title></rect>"
        )
        parts.append(
            f'<text class="value" x="{_LEFT + width + 6:.1f}" '
            f'y="{y + _BAR_H - 4}">{seconds:.3f}s</text>'
        )
        y += _ROW_H
    parts.append("</svg>")
    hit_ratio = cache.get("hit_ratio")
    ratio_note = (
        f" · cache hit ratio {hit_ratio:.0%}" if hit_ratio is not None
        else ""
    )
    return f"""
  <h2>Host wall clock</h2>
  <p class="sub">Wall-clock seconds per harness section (host process,
  monotonic clock) against a total of
  {wall:.2f}s{html.escape(ratio_note)}. Sections overlap the sweep and
  each other, so they need not sum to the total.</p>
  <div class="card">
    {''.join(parts)}
  </div>
"""


def _fates_section(decisions: dict | None) -> str:
    if not decisions:
        return ""
    return f"""
  <h2>Trace fates</h2>
  <p class="sub">Terminal decision record per trace identity (from the
  post-sweep decisions pass); bars are identity counts on a shared
  scale. Every identity lands in exactly one fate.</p>
  <div class="card">
    {_fate_legend()}
    {_fate_bars(decisions)}
  </div>
  <div class="card" style="margin-top: 16px">
    {_fate_table(decisions)}
  </div>
"""


def render_dashboard(report: dict) -> str:
    """The complete ``index.html`` document for one bench report."""
    geomean = report.get("geomean", {})
    tiles = "".join(
        f'<div class="tile"><div class="label">geomean '
        f"{html.escape(SERIES_LABEL.get(series, series))}</div>"
        f'<div class="value">{geomean[series]:.2f}×</div></div>'
        for series in ("spec", "no_spec", "mapping") if series in geomean
    )
    warnings = "".join(
        f'<p class="warn">⚠ {html.escape(w)}</p>'
        for w in report.get("warnings", [])
    )
    fingerprint = (report.get("code_fingerprint") or "")[:12] or "unknown"
    sub = (
        f"fig8 sweep @ scale {report.get('scale', '?')} · "
        f"schema v{report.get('schema_version', '?')} · "
        f"code {fingerprint} · wall clock "
        f"{report.get('wall_clock_seconds', 0.0):.2f}s"
    )
    accounting = report.get("accounting", {})
    utilization = report.get("fabric_utilization", {})
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
  <meta charset="utf-8">
  <meta name="viewport" content="width=device-width, initial-scale=1">
  <title>DynaSpAM bench dashboard</title>
{_style()}
</head>
<body>
  <h1>DynaSpAM bench dashboard</h1>
  <p class="sub">{html.escape(sub)}</p>
  {warnings}
  <div class="tiles">{tiles}</div>

  <h2>Cycle accounting</h2>
  <p class="sub">Every simulated cycle charged to exactly one bucket;
  bars are absolute cycles on a shared scale. Hover a segment for exact
  numbers; the table below carries every value.</p>
  <div class="card">
    {_legend()}
    {_stacked_bars(accounting)}
  </div>

  <h2>Fabric utilization</h2>
  <p class="sub">Invocation-weighted occupancy per stripe (accelerated
  runs, darker = fuller). The right column is whole-fabric placed-PE
  ratio / stripe fill.</p>
  <div class="card">
    {_heatmap(utilization)}
  </div>

{_wallclock_section(report)}
{_fates_section(report.get("decisions"))}
  <h2>Table view</h2>
  <div class="card">
    {_accounting_table(accounting)}
  </div>
  <div class="card" style="margin-top: 16px">
    {_utilization_table(utilization)}
  </div>
</body>
</html>
"""


def write_dashboard(report: dict, out_dir) -> Path:
    """Render ``report`` into ``out_dir/index.html`` and return its path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "index.html"
    path.write_text(render_dashboard(report))
    return path
