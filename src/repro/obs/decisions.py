"""Decision records: one terminal fate for every trace-window candidate.

The event bus already narrates the DynaSpAM lifecycle; this module folds
that narration into *decision records* that answer "why": every window
the builder closes produces exactly one ``tcache.window`` terminal record
(close reason + hotness outcome), every trace identity lands in exactly
one terminal fate (the :data:`TRACE_FATES` lattice), every invocation is
committed, squashed (branch vs memory, with the offending branch PC or
load/store pair), deferred, or batched, and the memo tier's bail-out and
fallback causes are counted.  Conservation is by construction — the fold
assigns fates through an exclusive precedence chain — and re-checked in
``as_dict()`` so a report can carry ``conserved: false`` instead of
silently miscounting.

:class:`DecisionSink` is a streaming fold (O(#identities) memory, no
event retention) that plugs anywhere an ``EventSink`` does; it powers
``repro why``, ``repro study``, the ``decisions`` report block
(``simulation_report(..., decisions=True)``), the dashboard fate panel,
and the service's ``repro_trace_fate_total`` Prometheus family.

:func:`attribute_lost_cycles` joins the fold against the cycle-accounting
buckets (PR 4): each non-host bucket is paired with the decision records
that explain it, giving the lost-cycles attribution behind ``repro why``.
Decisions are strictly opt-in; a plain run never constructs any of this
(the report stays byte-identical, the ``--require-null-sink`` bench gate
stays meaningful).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.mapper import MAP_FAIL_REASONS
from repro.core.tcache import WINDOW_CLOSE_REASONS
from repro.obs.events import Event

__all__ = [
    "TRACE_FATES",
    "MAP_FAIL_REASONS",
    "WINDOW_CLOSE_REASONS",
    "DecisionSink",
    "decisions_from_events",
    "attribute_lost_cycles",
    "render_why",
]

#: Closed vocabulary of terminal trace fates, in precedence order: a trace
#: identity gets the *first* fate whose condition holds, so every identity
#: lands in exactly one.
TRACE_FATES: dict[str, str] = {
    "offloaded": "at least one invocation committed on the fabric",
    "ready_never_offloaded": "crossed the ready threshold but every "
                             "occurrence squashed, deferred, or never "
                             "re-dispatched",
    "mapped_never_ready": "a configuration was built but the predicted-"
                          "again counter never crossed the ready threshold",
    "unmappable": "every mapping attempt failed (see unmappable_reasons)",
    "map_aborted": "hot, but each mapping phase aborted on a divergent "
                   "actual path before the mapper ran",
    "hot_never_mapped": "crossed the hot threshold but no mapping phase "
                        "completed (e.g. cleared or run ended first)",
    "never_hot": "detected but never crossed the hot threshold",
}


class _TraceDecision:
    """Streaming per-identity accumulator (one per trace key)."""

    __slots__ = (
        "windows", "hot", "map_attempts", "map_aborts", "mapped",
        "map_fail_reason", "ready", "commits", "squash_branch",
        "squash_memory", "defers",
    )

    def __init__(self) -> None:
        self.windows = 0
        self.hot = False
        self.map_attempts = 0
        self.map_aborts = 0
        self.mapped = False
        self.map_fail_reason: str | None = None
        self.ready = False
        self.commits = 0
        self.squash_branch = 0
        self.squash_memory = 0
        self.defers = 0

    @property
    def fate(self) -> str:
        if self.commits:
            return "offloaded"
        if self.ready:
            return "ready_never_offloaded"
        if self.mapped:
            return "mapped_never_ready"
        if self.map_fail_reason is not None:
            return "unmappable"
        if self.map_aborts:
            return "map_aborted"
        if self.hot:
            return "hot_never_mapped"
        return "never_hot"


class DecisionSink:
    """Event sink folding the lifecycle stream into decision records.

    Keeps no events: state is one :class:`_TraceDecision` per identity
    plus flat counters, so it is safe on arbitrarily long runs.  Unknown
    event types are ignored (the sink can ride a :class:`TeeSink` next to
    any other consumer).
    """

    enabled = True

    def __init__(self) -> None:
        self.windows_total = 0
        self.windows_by_reason: dict[str, int] = {}
        self._traces: dict[tuple, _TraceDecision] = {}
        # Invocation outcomes (whole-run, not per identity).
        self.committed = 0
        self.squashed_branch = 0
        self.squashed_memory = 0
        self.deferred = 0
        self.squash_branch_pcs: dict[int, int] = {}
        self.squash_memory_pairs: dict[tuple, int] = {}
        # Engine-tier observability (legitimately differs across tiers;
        # identity gates scrub these names — see ENGINE_TIER_COUNTERS).
        self.invocation_memo_hits = 0
        self.invocation_memo_misses = 0
        self.batched_invocations = 0
        self.memo_bailouts = 0
        self.memo_unsupported = 0

    # ------------------------------------------------------------------
    def _trace(self, key: tuple) -> _TraceDecision:
        record = self._traces.get(key)
        if record is None:
            record = _TraceDecision()
            self._traces[key] = record
        return record

    def emit(self, event: Event) -> None:
        etype = event.type
        data = event.data
        if etype == "tcache.window":
            self.windows_total += 1
            reason = data.get("reason")
            self.windows_by_reason[reason] = (
                self.windows_by_reason.get(reason, 0) + 1
            )
            record = self._trace(data["key"])
            record.windows += 1
            if data.get("hot"):
                record.hot = True
        elif etype == "tcache.hot":
            self._trace(data["key"]).hot = True
        elif etype == "map.start":
            self._trace(data["key"]).map_attempts += 1
        elif etype == "map.abort":
            self._trace(data["key"]).map_aborts += 1
        elif etype == "map.fail":
            self._trace(data["key"]).map_fail_reason = data.get("reason")
        elif etype == "map.done":
            self._trace(data["key"]).mapped = True
        elif etype == "ccache.ready":
            self._trace(data["key"]).ready = True
        elif etype == "offload.commit":
            self.committed += 1
            self._trace(data["key"]).commits += 1
        elif etype == "offload.squash":
            record = self._trace(data["key"])
            if data.get("cause") == "memory":
                self.squashed_memory += 1
                record.squash_memory += 1
                pair = (data.get("load_pc"), data.get("store_pc"))
                self.squash_memory_pairs[pair] = (
                    self.squash_memory_pairs.get(pair, 0) + 1
                )
            else:
                self.squashed_branch += 1
                record.squash_branch += 1
                pc = data.get("branch_pc")
                self.squash_branch_pcs[pc] = (
                    self.squash_branch_pcs.get(pc, 0) + 1
                )
        elif etype == "offload.defer":
            self.deferred += 1
            self._trace(data["key"]).defers += 1
        elif etype == "offload.batch":
            self.batched_invocations += data.get("invocations", 1) - 1
        elif etype == "fabric.memo_hit":
            self.invocation_memo_hits += 1
        elif etype == "fabric.memo_miss":
            self.invocation_memo_misses += 1
        elif etype == "fabric.memo_bailout":
            self.memo_bailouts += 1
        elif etype == "fabric.memo_unsupported":
            self.memo_unsupported += 1

    # ------------------------------------------------------------------
    def fate_counts(self) -> dict[str, int]:
        """Identity count per fate (all fates present, zero-filled)."""
        counts = dict.fromkeys(TRACE_FATES, 0)
        for record in self._traces.values():
            counts[record.fate] += 1
        return counts

    def as_dict(self) -> dict:
        """The ``decisions`` report block (JSON-ready)."""
        counts = self.fate_counts()
        unmappable: dict[str, int] = {}
        for record in self._traces.values():
            if record.fate == "unmappable":
                reason = record.map_fail_reason
                unmappable[reason] = unmappable.get(reason, 0) + 1
        return {
            "windows": {
                "total": self.windows_total,
                "by_reason": dict(
                    sorted(self.windows_by_reason.items(),
                           key=lambda kv: str(kv[0]))
                ),
            },
            "trace_fates": {
                "identities": len(self._traces),
                "counts": counts,
                "unmappable_reasons": dict(sorted(unmappable.items())),
                "conserved": sum(counts.values()) == len(self._traces),
            },
            "mapping": {
                "attempts": sum(
                    r.map_attempts for r in self._traces.values()
                ),
                "aborts": sum(
                    r.map_aborts for r in self._traces.values()
                ),
            },
            "invocations": {
                "committed": self.committed,
                "squashed_branch": self.squashed_branch,
                "squashed_memory": self.squashed_memory,
                "deferred": self.deferred,
                "squash_branch_pcs": _top_pcs(self.squash_branch_pcs),
                "squash_memory_pairs": _top_pairs(self.squash_memory_pairs),
            },
            "engine_tier": {
                "invocation_memo_hits": self.invocation_memo_hits,
                "invocation_memo_misses": self.invocation_memo_misses,
                "batched_invocations": self.batched_invocations,
                "memo_bailouts": self.memo_bailouts,
                "memo_unsupported": self.memo_unsupported,
            },
        }

    def trace_fates(self) -> dict[tuple, str]:
        """Identity -> fate (tests and the study harness)."""
        return {key: rec.fate for key, rec in self._traces.items()}


def _top_pcs(counter: dict, limit: int = 8) -> list[dict]:
    ranked = sorted(counter.items(), key=lambda kv: (-kv[1], str(kv[0])))
    return [
        {"pc": (hex(pc) if isinstance(pc, int) else pc), "count": count}
        for pc, count in ranked[:limit]
    ]


def _top_pairs(counter: dict, limit: int = 8) -> list[dict]:
    ranked = sorted(counter.items(), key=lambda kv: (-kv[1], str(kv[0])))
    out = []
    for (load_pc, store_pc), count in ranked[:limit]:
        out.append({
            "load_pc": hex(load_pc) if isinstance(load_pc, int) else load_pc,
            "store_pc": hex(store_pc) if isinstance(store_pc, int) else store_pc,
            "count": count,
        })
    return out


def decisions_from_events(events: Iterable[Event]) -> DecisionSink:
    """Fold an already-captured event stream (e.g. a ``MemorySink``)."""
    sink = DecisionSink()
    for event in events:
        sink.emit(event)
    return sink


# ----------------------------------------------------------------------
#: Non-host bucket -> how the attribution explains it from decisions and
#: stats (documentation; the logic lives in attribute_lost_cycles).
ATTRIBUTION_HELP: dict[str, str] = {
    "frontend": "I-cache and BTB miss bubbles (stats counters)",
    "drain": "back-end drains, one per mapping phase (map.start records)",
    "mapping": "mapping phases (map.start records)",
    "offload": "committed fabric invocations",
    "squash_branch": "branch-squashed invocations + host mispredicts",
    "squash_memory": "memory-order squashed invocations",
}


def attribute_lost_cycles(decisions: dict, stats: dict,
                          breakdown: dict) -> dict:
    """Join decision records against the cycle-accounting buckets.

    ``decisions`` is a :meth:`DecisionSink.as_dict` block, ``stats`` a
    ``PipelineStats`` dict, ``breakdown`` its ``bucket_breakdown``.  Every
    non-host bucket is *attributed* when it is either empty or explained
    by at least one named decision/stat record; the returned fraction is
    cycle-weighted (attributed non-host cycles / non-host cycles).
    """
    buckets = breakdown["buckets"]
    # Mapping phases: every map.start is one drain + one mapper occupancy
    # (aborts bail before the drain, so they charge nothing).
    map_attempts = decisions["mapping"]["attempts"]
    invocations = decisions["invocations"]
    explainers = {
        "frontend": (int(stats.get("icache_misses", 0))
                     + int(stats.get("btb_misses", 0))),
        "drain": map_attempts,
        "mapping": map_attempts,
        "offload": invocations["committed"],
        "squash_branch": (invocations["squashed_branch"]
                          + int(stats.get("branch_mispredicts", 0))),
        "squash_memory": (invocations["squashed_memory"]
                          + int(stats.get("memory_violations", 0))),
    }
    entries = []
    non_host = 0
    attributed = 0
    for bucket, cycles in buckets.items():
        if bucket == "host":
            continue
        non_host += cycles
        count = explainers[bucket]
        ok = cycles == 0 or count > 0
        if ok:
            attributed += cycles
        entries.append({
            "bucket": bucket,
            "cycles": cycles,
            "records": count,
            "attributed": ok,
        })
    return {
        "non_host_cycles": non_host,
        "attributed_cycles": attributed,
        "attributed_fraction": (
            attributed / non_host if non_host else 1.0
        ),
        "entries": entries,
    }


# ----------------------------------------------------------------------
def render_why(benchmark: str, decisions: dict, attribution: dict,
               breakdown: dict) -> str:
    """Human rendering of one benchmark's fate table + lost-cycles join."""
    from repro.harness.reporting import format_table

    windows = decisions["windows"]
    fates = decisions["trace_fates"]
    lines = [
        f"why {benchmark}: {windows['total']} trace-window candidates, "
        f"{fates['identities']} identities"
    ]
    reasons = ", ".join(
        f"{reason}={count}"
        for reason, count in windows["by_reason"].items()
    )
    if reasons:
        lines.append(f"window close reasons: {reasons}")

    rows = []
    total_identities = fates["identities"] or 1
    for fate, count in fates["counts"].items():
        if not count:
            continue
        note = ""
        if fate == "unmappable" and fates["unmappable_reasons"]:
            note = ", ".join(
                f"{r}={c}" for r, c in fates["unmappable_reasons"].items()
            )
        rows.append(
            [fate, count, f"{100.0 * count / total_identities:.1f}", note]
        )
    lines.append("")
    lines.append(
        format_table(["fate", "traces", "%", "detail"], rows,
                     title="trace fates")
    )

    inv = decisions["invocations"]
    lines.append("")
    lines.append(
        f"invocations: {inv['committed']} committed | "
        f"{inv['squashed_branch']} branch-squashed | "
        f"{inv['squashed_memory']} memory-squashed | "
        f"{inv['deferred']} deferred"
    )
    for entry in inv["squash_branch_pcs"]:
        lines.append(
            f"  squashing branch {entry['pc']}: {entry['count']}x"
        )
    for entry in inv["squash_memory_pairs"]:
        lines.append(
            f"  violating pair load {entry['load_pc']} / "
            f"store {entry['store_pc']}: {entry['count']}x"
        )

    rows = []
    for entry in attribution["entries"]:
        rows.append([
            entry["bucket"],
            entry["cycles"],
            entry["records"],
            "yes" if entry["attributed"] else "NO",
        ])
    lines.append("")
    lines.append(
        format_table(
            ["bucket", "cycles", "records", "attributed"], rows,
            title=(
                f"lost-cycles attribution "
                f"({attribution['non_host_cycles']} non-host cycles, "
                f"{attribution['attributed_fraction']:.1%} attributed; "
                f"host {breakdown['buckets']['host']} of "
                f"{breakdown['total_cycles']})"
            ),
        )
    )
    state = "PASS" if fates["conserved"] else "FAIL"
    lines.append(
        f"conservation: {sum(fates['counts'].values())} fates vs "
        f"{fates['identities']} identities {state}"
    )
    return "\n".join(lines)
