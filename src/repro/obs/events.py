"""Structured event bus for the DynaSpAM lifecycle.

Every stage of the paper's trace lifecycle — detection in the T-Cache,
mapping on the issue unit, caching of the configuration, offloading as a
fat atomic instruction, and the occasional squash — emits a typed event
through an :class:`EventBus` into an :class:`EventSink`.  The registry
(:data:`EVENT_TYPES`) is the single source of truth for the taxonomy; the
bus rejects unregistered types so instrumentation and documentation can
never drift apart silently.

Tracing is strictly opt-in and must never perturb the simulation:

* components hold ``bus = None`` by default and guard every emission with
  a single ``is not None`` check — the disabled path costs one pointer
  comparison per site and allocates nothing;
* emission only *reads* simulator state; sinks never call back into it.

Sinks:

:class:`NullSink`
    Swallows everything (the explicit "tracing off" object).
:class:`MemorySink`
    Bounded in-memory ring of :class:`Event` records (analysis, tests,
    the ``repro explain`` and ``--trace-out`` pipelines).
:class:`JsonlSink`
    One JSON object per line to a file or file-like object.
:class:`AggregateSink`
    Counts per event type only — O(#types) memory, for telemetry.
:class:`TeeSink`
    Fans one stream out to several sinks.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Protocol, runtime_checkable

#: The event taxonomy: every type the bus will accept, with the meaning
#: documented where the "no dead events" test can enforce coverage.
EVENT_TYPES: dict[str, str] = {
    # T-Cache (repro.core.tcache)
    "tcache.window": "a trace-window candidate closed (terminal decision "
                     "record: close reason + hotness outcome)",
    "tcache.detect": "a new trace identity entered the T-Cache",
    "tcache.hot": "a trace identity crossed the hot threshold",
    "tcache.clear": "periodic T-Cache clear demoted all hot traces",
    # Mapping (repro.core.mapper / naive_mapper, scored by core.priority)
    "map.start": "a mapping phase began for a hot trace",
    "map.place": "one instruction was placed onto a PE",
    "map.stripe": "the scheduling frontier advanced one stripe",
    "map.fail": "the trace could not be mapped (closed-enum reason + "
                "human detail attached)",
    "map.abort": "a mapping phase was abandoned before the drain: the "
                 "actual path diverged from the predicted hot key",
    "map.done": "a configuration was built",
    # Configuration cache (repro.core.config_cache)
    "ccache.hit": "a fetch-stage probe hit a cached entry",
    "ccache.insert": "a mapping result (or unmappable marker) was stored",
    "ccache.ready": "an entry's counter crossed the ready threshold",
    "ccache.evict": "LRU replacement evicted an entry",
    # Fabric (repro.fabric.fabric via repro.core.multifabric)
    "fabric.reconfig": "a spatial fabric was reconfigured for a trace",
    # Engine tiers (repro.fabric.memo; filtered by cross-tier identity
    # comparisons — see repro.engine.ENGINE_TIER_EVENTS)
    "fabric.memo_hit": "an invocation replayed a memoized timeline",
    "fabric.memo_miss": "an invocation timing walk populated the memo",
    "fabric.memo_bailout": "a configuration's probe window fell below the "
                           "hit floor; memoization permanently disabled",
    "fabric.memo_unsupported": "an invocation context could not be keyed; "
                               "fell back to the engine walk",
    # Offload (repro.core.offload + framework squash detection)
    "offload.dispatch": "a fat atomic invocation was dispatched",
    "offload.commit": "a fat atomic invocation committed",
    "offload.squash": "an invocation squashed (cause=branch|memory)",
    "offload.defer": "a ready trace could not acquire a fabric "
                     "(reconfiguration hysteresis); host path continued",
    "offload.batch": "consecutive same-key invocations batched into one "
                     "super-step (memo tier)",
    # Host pipeline (repro.ooo.pipeline)
    "pipeline.drain": "the back end drained before a mapping phase",
    "pipeline.phase": "the execution phase changed (host|mapping|offload)",
}


@dataclass(slots=True)
class Event:
    """One emitted lifecycle event."""

    seq: int                 #: emission order, assigned by the bus
    type: str                #: a key of :data:`EVENT_TYPES`
    cycle: int               #: simulated cycle stamp
    data: dict[str, Any]     #: type-specific payload (read-only snapshot)

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "type": self.type,
            "cycle": self.cycle,
            **self.data,
        }


@runtime_checkable
class EventSink(Protocol):
    """Receiver of emitted events.

    ``enabled`` lets cooperating code skip expensive payload construction;
    the bus itself always forwards to ``emit``.
    """

    enabled: bool

    def emit(self, event: Event) -> None:  # pragma: no cover - protocol
        ...


class NullSink:
    """The explicit "tracing off" sink: swallows everything."""

    enabled = False

    def emit(self, event: Event) -> None:
        pass


class MemorySink:
    """Bounded in-memory ring of events (newest kept when full)."""

    enabled = True

    def __init__(self, capacity: int | None = 1 << 20) -> None:
        self.events: deque[Event] = deque(maxlen=capacity)
        self.dropped = 0
        self._capacity = capacity

    def emit(self, event: Event) -> None:
        if (
            self._capacity is not None
            and len(self.events) == self._capacity
        ):
            self.dropped += 1
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class JsonlSink:
    """One JSON object per line to ``path`` or an open file-like object."""

    enabled = True

    def __init__(self, target) -> None:
        if hasattr(target, "write"):
            self._fh = target
            self._owns = False
        else:
            self._fh = open(target, "w", encoding="utf-8")
            self._owns = True
        self.count = 0

    def emit(self, event: Event) -> None:
        self._fh.write(json.dumps(event.as_dict(), default=_jsonable))
        self._fh.write("\n")
        self.count += 1

    def close(self) -> None:
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _jsonable(value):
    """JSON fallback: tuples (trace keys) become lists, objects strings."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


class AggregateSink:
    """Per-type counters only; constant memory regardless of volume."""

    enabled = True

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.last_cycle: int = 0
        self.total = 0

    def emit(self, event: Event) -> None:
        self.counts[event.type] = self.counts.get(event.type, 0) + 1
        self.last_cycle = event.cycle
        self.total += 1


class TeeSink:
    """Fan one event stream out to several sinks."""

    enabled = True

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks = tuple(sinks)

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)


class EventBus:
    """Stamps, numbers, validates, and forwards events to one sink.

    The ``clock`` callable supplies the cycle stamp when the emitter does
    not pass an explicit ``cycle`` (components like the T-Cache have no
    cycle notion of their own; the framework wires in the pipeline's
    front-end clock).
    """

    __slots__ = ("sink", "clock", "_seq")

    def __init__(
        self, sink: EventSink, clock: Callable[[], int] | None = None
    ) -> None:
        self.sink = sink
        self.clock = clock or (lambda: 0)
        self._seq = 0

    def emit(self, type: str, cycle: int | None = None, **data) -> None:
        if type not in EVENT_TYPES:
            raise ValueError(f"unregistered event type {type!r}")
        if cycle is None:
            cycle = self.clock()
        self.sink.emit(Event(self._seq, type, cycle, data))
        self._seq += 1

    @property
    def emitted(self) -> int:
        return self._seq
