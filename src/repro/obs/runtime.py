"""Wall-clock span tracer for the host runtime.

Everything else under ``repro.obs`` observes the *simulated* machine in
simulated cycles.  This module observes the *host* process in wall-clock
seconds: how long the CLI spent parsing a program, simulating a
benchmark, reading the disk cache, or fanning out over a worker pool.

Design rules, mirroring the event bus (`repro.obs.events`):

* **Off by default, near-zero overhead when off.**  The module-level
  :data:`TRACER` starts disabled; ``TRACER.span(...)`` then yields a
  shared no-op and records nothing.  No report field, no output byte
  changes until telemetry is explicitly enabled.
* **Monotonic durations.**  Span durations come from
  ``time.perf_counter()``; the wall-clock epoch (``time.time()``) is
  captured once per tracer so spans can still be placed on a calendar
  timeline for display.
* **Thread-safe, process-mergeable.**  Each thread keeps its own open
  span stack (spans therefore nest without overlap per thread);
  finished spans land in one lock-guarded buffer.  Subprocess workers
  run their own tracer and ship finished spans back through
  ``harness.parallel`` as plain dicts via :meth:`SpanTracer.snapshot`
  / :meth:`SpanTracer.merge`.
* **Correlated.**  Every finished span carries the tracer's ``run_id``
  plus any contextual bindings (``job_id``, ``run_key``, benchmark…)
  pushed by :meth:`SpanTracer.bind`.

Span names form a small fixed taxonomy (``cli.*``, ``ingest.*``,
``sim.*``, ``cache.*``, ``pool.*``, ``service.*``) so that Prometheus
histograms keyed by span name stay low-cardinality; anything
per-request (benchmark, job id) goes in attributes instead.
"""

from __future__ import annotations

import functools
import os
import sys
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Environment knob for the slow-span watchdog threshold (seconds).
ENV_SLOW_SPAN = "REPRO_SLOW_SPAN_SECONDS"

#: Safety valve: a tracer stops buffering past this many finished spans
#: (drops are counted, never silent in the snapshot).
MAX_BUFFERED_SPANS = 1 << 16


def new_run_id() -> str:
    """A short unique id correlating every span of one CLI/service run."""
    return f"run-{uuid.uuid4().hex[:12]}"


@dataclass(slots=True)
class SpanRecord:
    """One finished wall-clock span."""

    name: str                 #: taxonomy name, e.g. ``sim.execute_spec``
    start: float              #: seconds since the tracer's monotonic epoch
    duration: float           #: seconds (monotonic)
    wall_start: float         #: epoch seconds (display only, skew-prone)
    thread: str               #: thread name at open
    depth: int                #: nesting depth within the thread (0 = root)
    process: str = "main"     #: ``main`` or ``worker-<pid>`` after merge
    attrs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "wall_start": self.wall_start,
            "thread": self.thread,
            "depth": self.depth,
            "process": self.process,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SpanRecord":
        return cls(
            name=doc["name"],
            start=doc["start"],
            duration=doc["duration"],
            wall_start=doc["wall_start"],
            thread=doc["thread"],
            depth=doc["depth"],
            process=doc.get("process", "main"),
            attrs=dict(doc.get("attrs", ())),
        )


class _OpenSpan:
    """Book-keeping for a span that has not closed yet (watchdog food)."""

    __slots__ = ("name", "started", "wall_start", "depth", "attrs", "warned")

    def __init__(self, name, started, wall_start, depth, attrs):
        self.name = name
        self.started = started
        self.wall_start = wall_start
        self.depth = depth
        self.attrs = attrs
        self.warned = False


class SpanTracer:
    """Wall-clock span recorder with per-thread nesting.

    ``span()`` is a context manager; ``traced()`` wraps a function.  Both
    are no-ops while ``enabled`` is False, which is the default — the
    cost of an unenabled call site is one attribute check.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.run_id: str | None = None
        #: Monotonic/wall epoch pair: ``start`` fields are relative to
        #: ``epoch`` so records from one process share a timeline.
        self.epoch = time.perf_counter()
        self.epoch_wall = time.time()
        self.dropped = 0
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._local = threading.local()
        #: thread ident -> (thread name, open-span stack).  Registered
        #: lazily per thread; read by the watchdog.
        self._active: dict[int, tuple[str, list]] = {}
        self._listeners: list = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self, run_id: str | None = None) -> str:
        """Turn recording on (idempotent) and return the run id."""
        if self.run_id is None or run_id is not None:
            self.run_id = run_id or new_run_id()
        self.enabled = True
        return self.run_id

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop buffered spans and bindings (tests; between bench repeats)."""
        with self._lock:
            self._records.clear()
            self._active.clear()
            self.dropped = 0
        self._local = threading.local()

    def add_listener(self, listener) -> None:
        """``listener(record)`` fires once per finished span (any thread)."""
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Context bindings (run/job correlation)
    # ------------------------------------------------------------------
    def _context_stack(self) -> list:
        stack = getattr(self._local, "context", None)
        if stack is None:
            stack = self._local.context = []
        return stack

    @contextmanager
    def bind(self, **ctx):
        """Attach key/values (``job_id=…``, ``run_key=…``) to every span
        opened in this thread while the block is active."""
        if not self.enabled:
            yield
            return
        stack = self._context_stack()
        stack.append({k: v for k, v in ctx.items() if v is not None})
        try:
            yield
        finally:
            stack.pop()

    def context(self) -> dict:
        """The merged thread-local bindings, innermost last."""
        merged: dict = {}
        for frame in self._context_stack():
            merged.update(frame)
        return merged

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _span_stack(self) -> list:
        stack = getattr(self._local, "spans", None)
        if stack is None:
            stack = self._local.spans = []
            thread = threading.current_thread()
            with self._lock:
                self._active[thread.ident] = (thread.name, stack)
        return stack

    @contextmanager
    def span(self, name: str, **attrs):
        """Record ``name`` around the block.  Yields the open span (or
        ``None`` when disabled) so callers may add attrs mid-flight via
        ``open_span.attrs[...] = ...``."""
        if not self.enabled:
            yield None
            return
        stack = self._span_stack()
        open_span = _OpenSpan(
            name=name,
            started=time.perf_counter(),
            wall_start=time.time(),
            depth=len(stack),
            attrs={k: v for k, v in attrs.items() if v is not None},
        )
        stack.append(open_span)
        try:
            yield open_span
        finally:
            stack.pop()
            self._finish(open_span)

    def traced(self, name: str, **attrs):
        """Decorator form of :meth:`span`."""

        def decorate(fn):
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(name, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def _finish(self, open_span: _OpenSpan) -> None:
        duration = time.perf_counter() - open_span.started
        merged = self.context()
        merged.update(open_span.attrs)
        if self.run_id is not None:
            merged.setdefault("run_id", self.run_id)
        record = SpanRecord(
            name=open_span.name,
            start=open_span.started - self.epoch,
            duration=duration,
            wall_start=open_span.wall_start,
            thread=threading.current_thread().name,
            depth=open_span.depth,
            attrs=merged,
        )
        with self._lock:
            if len(self._records) < MAX_BUFFERED_SPANS:
                self._records.append(record)
            else:
                self.dropped += 1
        self._notify(record)

    def _notify(self, record: SpanRecord) -> None:
        for listener in self._listeners:
            try:
                listener(record)
            except Exception:  # noqa: BLE001 — telemetry must never raise
                pass

    # ------------------------------------------------------------------
    # Introspection / merging
    # ------------------------------------------------------------------
    def records(self) -> list[SpanRecord]:
        """Finished spans so far (copy; chronological by close time)."""
        with self._lock:
            return list(self._records)

    def snapshot(self) -> dict:
        """Serializable form for shipping across a process boundary."""
        with self._lock:
            return {
                "run_id": self.run_id,
                "dropped": self.dropped,
                "spans": [record.as_dict() for record in self._records],
            }

    def merge(self, snapshot: dict | None, process: str) -> int:
        """Fold a worker tracer's :meth:`snapshot` into this buffer.

        Worker records keep their own relative timeline but are tagged
        with ``process`` so exports can give each worker its own track.
        Listeners fire for each merged span (so the JSONL log and the
        Prometheus histograms see worker spans too).  Returns the number
        of spans merged.
        """
        if not snapshot or not snapshot.get("spans"):
            return 0
        merged = 0
        for doc in snapshot["spans"]:
            record = SpanRecord.from_dict(doc)
            record.process = process
            if self.run_id is not None:
                record.attrs.setdefault("run_id", self.run_id)
            with self._lock:
                if len(self._records) < MAX_BUFFERED_SPANS:
                    self._records.append(record)
                else:
                    self.dropped += 1
            self._notify(record)
            merged += 1
        self.dropped += int(snapshot.get("dropped", 0))
        return merged

    def active_spans(self) -> list[dict]:
        """Open spans across all threads, oldest first (watchdog view)."""
        with self._lock:
            active = list(self._active.items())
        now = time.perf_counter()
        out = []
        for _ident, (thread_name, stack) in active:
            # Snapshot the list; the owning thread may push/pop meanwhile.
            for span in list(stack):
                out.append({
                    "name": span.name,
                    "thread": thread_name,
                    "elapsed": now - span.started,
                    "depth": span.depth,
                    "span": span,
                })
        out.sort(key=lambda item: -item["elapsed"])
        return out


class SpanWatchdog:
    """Daemon thread that flags spans open longer than a threshold.

    Each offending span is warned about once, with the full open-span
    stack of its thread, via ``on_warn(message, details)``.  The default
    sink writes to stderr and the runtime JSONL log (when attached).
    """

    def __init__(
        self,
        tracer: SpanTracer,
        threshold: float,
        *,
        poll_interval: float | None = None,
        on_warn=None,
    ) -> None:
        if threshold <= 0:
            raise ValueError("watchdog threshold must be > 0 seconds")
        self.tracer = tracer
        self.threshold = threshold
        self.poll_interval = poll_interval or min(1.0, threshold / 2)
        self.on_warn = on_warn or self._default_warn
        self.warnings = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-span-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def check_once(self) -> int:
        """One poll pass (also used directly by tests): warn on every
        open span past the threshold not yet warned about."""
        fired = 0
        active = self.tracer.active_spans()
        stacks: dict[str, list[str]] = {}
        for item in active:
            stacks.setdefault(item["thread"], []).append(
                (item["depth"], item["name"])
            )
        for item in active:
            span = item["span"]
            if item["elapsed"] < self.threshold or span.warned:
                continue
            span.warned = True
            stack = [name for _d, name in sorted(stacks[item["thread"]])]
            details = {
                "span": item["name"],
                "thread": item["thread"],
                "elapsed_seconds": round(item["elapsed"], 3),
                "threshold_seconds": self.threshold,
                "stack": stack,
            }
            message = (
                f"slow span: {item['name']} open "
                f"{item['elapsed']:.1f}s (> {self.threshold:g}s) "
                f"in {item['thread']}; stack: {' > '.join(stack)}"
            )
            self.warnings += 1
            try:
                self.on_warn(message, details)
            except Exception:  # noqa: BLE001
                pass
            fired += 1
        return fired

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            self.check_once()

    @staticmethod
    def _default_warn(message: str, details: dict) -> None:
        print(f"repro: warning: {message}", file=sys.stderr)
        from repro.obs.logging import log_record

        log_record("warning", **details)


#: The process-wide tracer.  Disabled until :func:`init_runtime_telemetry`
#: (or a test) enables it; subprocess workers enable their own copy when
#: the parent says so (see ``harness.parallel``).
TRACER = SpanTracer()

#: The watchdog started by :func:`init_runtime_telemetry`, if any.
_WATCHDOG: SpanWatchdog | None = None


def worker_telemetry() -> dict:
    """The parent-side config shipped to pool workers."""
    return {"enabled": TRACER.enabled, "run_id": TRACER.run_id}


def begin_worker(telemetry: dict | None) -> None:
    """Reinitialize :data:`TRACER` inside a forked pool worker.

    A fork inherits the parent's buffered spans *and* its listeners
    (JSONL log, Prometheus hook) — both must go: buffered spans would be
    double-counted on merge, and listener side effects belong to the
    parent, which replays merged worker spans through its own listeners.
    """
    TRACER.reset()
    TRACER._listeners.clear()
    TRACER.enabled = False
    TRACER.run_id = None
    if telemetry and telemetry.get("enabled"):
        TRACER.enable(telemetry.get("run_id"))


def slow_span_threshold() -> float | None:
    """The configured watchdog threshold in seconds, or None."""
    raw = os.environ.get(ENV_SLOW_SPAN, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def init_runtime_telemetry(
    command: str,
    *,
    force: bool = False,
    log_path: str | None = None,
    argv: list[str] | None = None,
) -> str | None:
    """CLI entry hook: enable the tracer when telemetry is requested.

    Telemetry turns on when ``REPRO_LOG`` is set (structured JSONL log),
    when the caller forces it (``--trace-out``/``--progress`` want spans
    even without a log), or when a slow-span threshold is configured.
    Returns the run id when enabled, else None — and in the None case
    nothing was allocated, keeping the disabled path free.
    """
    global _WATCHDOG
    log_path = log_path if log_path is not None else os.environ.get("REPRO_LOG")
    threshold = slow_span_threshold()
    if not (force or log_path or threshold is not None):
        return None
    run_id = TRACER.enable()
    if log_path:
        from repro.obs.logging import attach_log, open_log

        log = open_log(log_path)
        attach_log(TRACER, log)
        log.write("start", run_id=run_id, command=command,
                  argv=list(argv or ()), pid=os.getpid())
    if threshold is not None and _WATCHDOG is None:
        _WATCHDOG = SpanWatchdog(TRACER, threshold)
        _WATCHDOG.start()
    return run_id


def shutdown_runtime_telemetry() -> None:
    """Stop the watchdog and flush/close the JSONL log (CLI exit)."""
    global _WATCHDOG
    if _WATCHDOG is not None:
        _WATCHDOG.stop()
        _WATCHDOG = None
    from repro.obs.logging import close_log, detach_log

    detach_log(TRACER)
    close_log()
