"""Run-comparison engine: attribute cycle deltas between two reports.

``repro diff A.json B.json`` consumes two JSON reports — either two
``repro run --json`` documents or two ``repro bench`` reports — and
explains each per-benchmark cycle delta as a sum of accounting-bucket
deltas.  Because both sides' buckets are conserved partitions of their
total cycles (``repro.obs.accounting``), the named buckets attribute the
whole delta whenever the schemas match; any residual (e.g. a bucket one
side lacks) is reported explicitly instead of silently absorbed.

Cross-version hygiene: reports carry ``schema_version`` and the repo's
``code_fingerprint``.  Differing schema versions are refused (the buckets
may not mean the same thing); differing fingerprints produce a warning —
that comparison is the tool's whole point, but the reader should know the
two runs came from different code.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.accounting import BUCKETS


class DiffError(ValueError):
    """The two reports cannot be meaningfully compared."""


def load_report(path) -> dict:
    try:
        report = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise DiffError(f"cannot read report {path}: {exc}") from exc
    if not isinstance(report, dict):
        raise DiffError(f"{path} is not a JSON report object")
    return report


def report_kind(report: dict) -> str:
    """``"bench"`` (fig8 sweep) or ``"run"`` (single benchmark)."""
    if "per_benchmark" in report:
        return "bench"
    if "benchmark" in report:
        return "run"
    raise DiffError(
        "unrecognized report shape: expected a `repro run --json` or "
        "`repro bench` document"
    )


def check_compatibility(a: dict, b: dict, force: bool = False) -> list[str]:
    """Refuse or warn on cross-version comparisons; returns warnings."""
    warnings: list[str] = []
    ver_a = a.get("schema_version")
    ver_b = b.get("schema_version")
    if ver_a != ver_b:
        message = (
            f"schema versions differ ({ver_a} vs {ver_b}): bucket "
            "definitions may not line up"
        )
        if not force:
            raise DiffError(message + " (pass --force to compare anyway)")
        warnings.append(message)
    elif ver_a is None:
        message = ("reports carry no schema_version: produced before "
                   "cycle accounting existed")
        if not force:
            raise DiffError(message + " (pass --force to compare anyway)")
        warnings.append(message)
    fp_a = a.get("code_fingerprint")
    fp_b = b.get("code_fingerprint")
    if fp_a and fp_b and fp_a != fp_b:
        warnings.append(
            f"code fingerprints differ ({fp_a[:12]} vs {fp_b[:12]}): "
            "comparing runs from different code versions"
        )
    if report_kind(a) != report_kind(b):
        raise DiffError(
            f"cannot compare a {report_kind(a)} report against a "
            f"{report_kind(b)} report"
        )
    return warnings


def _entry(benchmark: str, series: str,
           acct_a: dict, acct_b: dict,
           speedup_a: float | None, speedup_b: float | None) -> dict:
    """Attribution record for one (benchmark, series) pair."""
    buckets_a = acct_a.get("buckets", {})
    buckets_b = acct_b.get("buckets", {})
    cycles_a = int(acct_a.get("total_cycles", 0))
    cycles_b = int(acct_b.get("total_cycles", 0))
    delta = cycles_b - cycles_a
    bucket_deltas = {
        name: int(buckets_b.get(name, 0)) - int(buckets_a.get(name, 0))
        for name in BUCKETS
    }
    attributed = sum(bucket_deltas.values())
    residual = delta - attributed
    return {
        "benchmark": benchmark,
        "series": series,
        "cycles_a": cycles_a,
        "cycles_b": cycles_b,
        "delta_cycles": delta,
        "speedup_a": speedup_a,
        "speedup_b": speedup_b,
        "bucket_deltas": bucket_deltas,
        "residual": residual,
        "attributed_fraction": (
            1.0 if delta == residual == 0
            else 1.0 - abs(residual) / max(1, abs(delta))
        ),
    }


def _diff_run_reports(a: dict, b: dict) -> list[dict]:
    if a.get("benchmark") != b.get("benchmark"):
        raise DiffError(
            f"reports describe different benchmarks "
            f"({a.get('benchmark')} vs {b.get('benchmark')})"
        )
    entries = []
    for series in ("baseline", "dynaspam"):
        acct_a = (a.get("cycle_accounting") or {}).get(series)
        acct_b = (b.get("cycle_accounting") or {}).get(series)
        if acct_a is None or acct_b is None:
            continue
        entries.append(_entry(
            a["benchmark"], series, acct_a, acct_b,
            a.get("speedup") if series == "dynaspam" else 1.0,
            b.get("speedup") if series == "dynaspam" else 1.0,
        ))
    if not entries:
        raise DiffError(
            "reports carry no cycle_accounting block: regenerate them "
            "with this version's `repro run --json`"
        )
    return entries


def _diff_bench_reports(a: dict, b: dict) -> list[dict]:
    acct_a = a.get("accounting") or {}
    acct_b = b.get("accounting") or {}
    if not acct_a or not acct_b:
        raise DiffError(
            "bench reports carry no accounting block: regenerate them "
            "with this version's `repro bench`"
        )
    entries = []
    for benchmark in acct_a:
        if benchmark not in acct_b:
            continue
        for series in acct_a[benchmark]:
            if series not in acct_b[benchmark]:
                continue
            speed_a = (a.get("per_benchmark", {}).get(benchmark, {})
                       .get(series))
            speed_b = (b.get("per_benchmark", {}).get(benchmark, {})
                       .get(series))
            entries.append(_entry(
                benchmark, series,
                acct_a[benchmark][series], acct_b[benchmark][series],
                speed_a, speed_b,
            ))
    if not entries:
        raise DiffError("the two bench reports share no benchmark/series")
    return entries


def diff_reports(a: dict, b: dict, force: bool = False) -> dict:
    """Full machine-readable diff of two loaded reports."""
    warnings = check_compatibility(a, b, force=force)
    kind = report_kind(a)
    if kind == "run":
        entries = _diff_run_reports(a, b)
    else:
        entries = _diff_bench_reports(a, b)
        for series, geo_a in (a.get("geomean") or {}).items():
            geo_b = (b.get("geomean") or {}).get(series)
            if geo_b is not None and abs(geo_b - geo_a) > 1e-12:
                warnings.append(
                    f"geomean[{series}] moved {geo_a:.4f}x -> {geo_b:.4f}x"
                )
    return {
        "kind": kind,
        "schema_version": a.get("schema_version"),
        "fingerprint_a": a.get("code_fingerprint"),
        "fingerprint_b": b.get("code_fingerprint"),
        "warnings": warnings,
        "entries": entries,
    }


def render_diff(diff: dict, label_a: str = "A", label_b: str = "B") -> str:
    """Human-readable attribution, one block per (benchmark, series)."""
    lines = [f"repro diff: {label_a} vs {label_b} ({diff['kind']} reports)"]
    for warning in diff["warnings"]:
        lines.append(f"warning: {warning}")
    for entry in diff["entries"]:
        speed = ""
        if entry["speedup_a"] is not None and entry["speedup_b"] is not None:
            speed = (f", speedup {entry['speedup_a']:.2f}x -> "
                     f"{entry['speedup_b']:.2f}x")
        lines.append(
            f"\n{entry['benchmark']} [{entry['series']}]: "
            f"{entry['cycles_a']} -> {entry['cycles_b']} cycles "
            f"({entry['delta_cycles']:+d}{speed})"
        )
        moved = sorted(
            ((name, delta) for name, delta in entry["bucket_deltas"].items()
             if delta),
            key=lambda item: -abs(item[1]),
        )
        if moved:
            lines.append("  " + " | ".join(
                f"{name} {delta:+d}" for name, delta in moved))
        else:
            lines.append("  no bucket moved")
        lines.append(
            f"  residual {entry['residual']:+d} "
            f"({entry['attributed_fraction']:.1%} of the delta attributed "
            "to named buckets)"
        )
    return "\n".join(lines)
