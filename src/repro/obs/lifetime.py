"""Per-trace lifetime reports built from the lifecycle event stream.

The paper's story is a *lifecycle*: a trace is detected in the T-Cache,
goes hot, is mapped by the resource-aware scheduler, its configuration is
cached and eventually marked ready, invocations offload as fat atomic
instructions, and some of them squash.  This module folds a recorded
event stream (``repro.obs.events.MemorySink``) into one record per trace
identity so ``repro explain`` can answer "why did trace X never reach
offload?" with cycle stamps instead of print-debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.events import Event


def format_trace_id(key) -> str:
    """Stable human-readable id for a trace key ``(pc, outcomes, length)``.

    Example: ``0x1a4:TNT:32`` — anchor PC, branch-outcome string (``-``
    when the trace embeds no branches), length cap.
    """
    pc, outcomes, length = key
    taken = "".join("T" if o else "N" for o in outcomes) or "-"
    return f"0x{pc:x}:{taken}:{length}"


@dataclass
class TraceLifetime:
    """Milestones and tallies of one trace identity."""

    key: tuple
    trace_id: str
    length: int
    detected: int | None = None       # first tcache.detect cycle
    hot: int | None = None            # crossed the hot threshold
    map_started: int | None = None
    mapped: int | None = None         # map.done cycle
    map_failed: str | None = None     # failure reason (unmappable)
    mapping_cycles: int | None = None
    placements: int | None = None
    ready: int | None = None          # ccache counter crossed threshold
    first_offload: int | None = None
    last_offload: int | None = None
    offloads: int = 0                 # committed invocations
    offloaded_instructions: int = 0
    branch_squashes: int = 0
    memory_squashes: int = 0
    predictions: int = 0              # fetch-stage config-cache hits
    evicted: int | None = None        # lost its config-cache entry
    reconfigurations: int = 0
    # Engine-tier activity (present only when the memo tier ran; see
    # repro.engine.ENGINE_TIER_EVENTS).
    memo_hits: int = 0                # invocations replayed from the memo
    memo_misses: int = 0              # timing walks that populated it
    memo_bailouts: int = 0            # cold bail-outs (memo disabled)
    memo_unsupported: int = 0         # unkeyable contexts (engine fallback)
    batches: int = 0                  # batched super-steps
    batched_invocations: int = 0      # extra invocations riding them

    @property
    def squashes(self) -> int:
        return self.branch_squashes + self.memory_squashes

    @property
    def fate(self) -> str:
        """The furthest lifecycle stage this trace reached."""
        if self.offloads:
            return "offloaded"
        if self.map_failed is not None:
            return "unmappable"
        if self.mapped is not None:
            return "mapped"
        if self.hot is not None:
            return "hot"
        return "detected"

    def timeline(self) -> list[tuple[int, str]]:
        """Ordered ``(cycle, milestone)`` pairs for the detail view."""
        marks = [
            (self.detected, "detected"),
            (self.hot, "hot"),
            (self.map_started, "mapping started"),
            (self.mapped, "mapped"),
            (self.ready, "ready"),
            (self.first_offload, "first offload"),
            (self.last_offload, "last offload"),
            (self.evicted, "evicted"),
        ]
        return [(c, label) for c, label in marks if c is not None]


@dataclass
class LifetimeReport:
    """All trace lifetimes of one run plus run-wide occupancy stats."""

    lifetimes: dict[tuple, TraceLifetime] = field(default_factory=dict)
    events: int = 0
    peak_ccache_occupancy: int = 0
    tcache_clears: int = 0
    drain_cycles: int = 0

    def ranked(self) -> list[TraceLifetime]:
        """Most consequential first: offloads, then predictions, then age."""
        return sorted(
            self.lifetimes.values(),
            key=lambda t: (
                -t.offloads,
                -t.predictions,
                t.detected if t.detected is not None else 1 << 60,
            ),
        )

    def counts(self) -> dict[str, int]:
        fates = {"detected": 0, "hot": 0, "mapped": 0,
                 "unmappable": 0, "offloaded": 0}
        for trace in self.lifetimes.values():
            fates[trace.fate] += 1
        return fates


def _lifetime(report: LifetimeReport, key) -> TraceLifetime:
    trace = report.lifetimes.get(key)
    if trace is None:
        trace = TraceLifetime(
            key=key, trace_id=format_trace_id(key), length=key[2]
        )
        report.lifetimes[key] = trace
    return trace


def build_lifetime_report(events: Iterable[Event]) -> LifetimeReport:
    """Fold an event stream into per-trace lifetimes (single pass)."""
    report = LifetimeReport()
    open_mapping: TraceLifetime | None = None
    for event in events:
        report.events += 1
        kind = event.type
        data = event.data
        if kind == "tcache.detect":
            trace = _lifetime(report, data["key"])
            if trace.detected is None:
                trace.detected = event.cycle
        elif kind == "tcache.hot":
            trace = _lifetime(report, data["key"])
            if trace.hot is None:
                trace.hot = event.cycle
        elif kind == "tcache.clear":
            report.tcache_clears += 1
        elif kind == "map.start":
            trace = _lifetime(report, data["key"])
            if trace.map_started is None:
                trace.map_started = event.cycle
            open_mapping = trace
        elif kind == "map.done":
            trace = _lifetime(report, data["key"])
            trace.mapped = event.cycle
            trace.mapping_cycles = data.get("mapping_cycles")
            trace.placements = data.get("placements")
            open_mapping = None
        elif kind == "map.fail":
            trace = _lifetime(report, data["key"])
            trace.map_failed = data.get("reason", "unknown")
            open_mapping = None
        elif kind == "ccache.hit":
            _lifetime(report, data["key"]).predictions += 1
        elif kind == "ccache.insert":
            occupancy = data.get("occupancy", 0)
            if occupancy > report.peak_ccache_occupancy:
                report.peak_ccache_occupancy = occupancy
        elif kind == "ccache.ready":
            trace = _lifetime(report, data["key"])
            if trace.ready is None:
                trace.ready = event.cycle
        elif kind == "ccache.evict":
            _lifetime(report, data["key"]).evicted = event.cycle
        elif kind == "fabric.reconfig":
            _lifetime(report, data["key"]).reconfigurations += 1
        elif kind == "offload.commit":
            trace = _lifetime(report, data["key"])
            trace.offloads += 1
            trace.offloaded_instructions += data.get("instructions", 0)
            if trace.first_offload is None:
                trace.first_offload = event.cycle
            trace.last_offload = event.cycle
        elif kind == "offload.squash":
            trace = _lifetime(report, data["key"])
            if data.get("cause") == "memory":
                trace.memory_squashes += 1
            else:
                trace.branch_squashes += 1
        elif kind == "offload.batch":
            trace = _lifetime(report, data["key"])
            trace.batches += 1
            trace.batched_invocations += data.get("invocations", 1) - 1
        elif kind == "fabric.memo_hit":
            _lifetime(report, data["key"]).memo_hits += 1
        elif kind == "fabric.memo_miss":
            _lifetime(report, data["key"]).memo_misses += 1
        elif kind == "fabric.memo_bailout":
            _lifetime(report, data["key"]).memo_bailouts += 1
        elif kind == "fabric.memo_unsupported":
            key = data.get("key")
            if key is not None:
                _lifetime(report, key).memo_unsupported += 1
        elif kind == "pipeline.drain":
            report.drain_cycles += data.get("stall", 0)
    # A mapping interrupted by end-of-stream stays "started"; nothing to do.
    del open_mapping
    return report


def _stamp(value: int | None) -> str:
    return "-" if value is None else str(value)


def render_lifetime_report(report: LifetimeReport, top: int = 10) -> str:
    """The ``repro explain`` table: one line per trace, ranked."""
    fates = report.counts()
    lines = [
        (
            f"{len(report.lifetimes)} traces detected | "
            f"hot-not-mapped {fates['hot']} | mapped {fates['mapped']} | "
            f"offloaded {fates['offloaded']} | "
            f"unmappable {fates['unmappable']}"
        ),
        (
            f"peak config-cache occupancy {report.peak_ccache_occupancy} | "
            f"t-cache clears {report.tcache_clears} | "
            f"drain stall {report.drain_cycles} cycles | "
            f"{report.events} events"
        ),
        "",
        f"{'trace':<18} {'len':>4} {'detect':>8} {'hot':>8} {'mapped':>8} "
        f"{'ready':>8} {'offloads':>8} {'insts':>8} {'sq(b/m)':>8} "
        f"{'evict':>8}  fate",
    ]
    for trace in report.ranked()[: top if top else None]:
        lines.append(
            f"{trace.trace_id:<18} {trace.length:>4} "
            f"{_stamp(trace.detected):>8} {_stamp(trace.hot):>8} "
            f"{_stamp(trace.mapped):>8} {_stamp(trace.ready):>8} "
            f"{trace.offloads:>8} {trace.offloaded_instructions:>8} "
            f"{trace.branch_squashes:>4}/{trace.memory_squashes:<3} "
            f"{_stamp(trace.evicted):>8}  {trace.fate}"
        )
    # Engine-tier section: memo/batching activity per trace (only when the
    # memo tier actually ran).  Indented so table-parsing consumers that
    # key on the 0x prefix keep seeing exactly one row per trace above.
    engine_rows = [
        trace for trace in report.ranked()[: top if top else None]
        if (trace.memo_hits or trace.memo_misses or trace.memo_bailouts
            or trace.memo_unsupported or trace.batches)
    ]
    if engine_rows:
        lines.append("")
        lines.append(
            f"  engine tier: {'trace':<16} {'hits':>6} {'misses':>6} "
            f"{'bailout':>7} {'unsup':>6} {'batches':>7} {'batched':>7}"
        )
        for trace in engine_rows:
            lines.append(
                f"  {'':<13}{trace.trace_id:<16} {trace.memo_hits:>6} "
                f"{trace.memo_misses:>6} {trace.memo_bailouts:>7} "
                f"{trace.memo_unsupported:>6} {trace.batches:>7} "
                f"{trace.batched_invocations:>7}"
            )
    return "\n".join(lines)


def render_trace_detail(
    report: LifetimeReport, events: Iterable[Event], trace_id: str
) -> str | None:
    """Detail view for one trace: milestones, then its raw events.

    Returns None when ``trace_id`` matches no trace in the report.
    """
    target = None
    for trace in report.lifetimes.values():
        if trace.trace_id == trace_id:
            target = trace
            break
    if target is None:
        return None
    lines = [
        f"trace {target.trace_id} (length {target.length}) — {target.fate}",
        f"  offloads {target.offloads} "
        f"({target.offloaded_instructions} instructions), "
        f"predictions {target.predictions}, "
        f"squashes {target.branch_squashes} branch / "
        f"{target.memory_squashes} memory, "
        f"reconfigurations {target.reconfigurations}",
    ]
    if (target.memo_hits or target.memo_misses or target.memo_bailouts
            or target.memo_unsupported or target.batches):
        lines.append(
            f"  engine tier: memo {target.memo_hits} hits / "
            f"{target.memo_misses} misses, "
            f"{target.memo_bailouts} bail-outs, "
            f"{target.memo_unsupported} unsupported, "
            f"{target.batches} super-steps "
            f"(+{target.batched_invocations} batched invocations)"
        )
    if target.map_failed is not None:
        lines.append(f"  unmappable: {target.map_failed}")
    if target.mapping_cycles is not None:
        lines.append(
            f"  mapping took {target.mapping_cycles} issue-unit cycles "
            f"for {target.placements} placements"
        )
    lines.append("  timeline:")
    for cycle, label in target.timeline():
        lines.append(f"    cycle {cycle:>10}  {label}")
    lines.append("  events:")
    shown = 0
    for event in events:
        if event.data.get("key") != target.key:
            continue
        extras = {
            k: v for k, v in event.data.items() if k != "key"
        }
        detail = " ".join(f"{k}={v}" for k, v in extras.items())
        lines.append(
            f"    cycle {event.cycle:>10}  {event.type:<16} {detail}".rstrip()
        )
        shown += 1
        if shown >= 200:
            lines.append("    ... (truncated at 200 events)")
            break
    return "\n".join(lines)
