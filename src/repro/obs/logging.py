"""Structured JSONL logging for host-runtime telemetry.

One line per record, appended to the file named by ``REPRO_LOG`` (or an
explicit path).  Nothing in this module runs unless a log has been
opened — call sites go through :func:`log_record`, which is a single
``None`` check when logging is off, matching the event-bus contract of
zero overhead when disabled.

Record kinds and their schema (all lines share ``ts`` — epoch seconds —
and ``kind``):

====================  ==================================================
kind                  fields
====================  ==================================================
``start``             ``run_id``, ``command``, ``argv``, ``pid``
``span``              :meth:`SpanRecord.as_dict` fields — ``name``,
                      ``start``, ``duration``, ``wall_start``,
                      ``thread``, ``depth``, ``process``, ``attrs``
                      (attrs always carries ``run_id``; ``job_id`` and
                      ``run_key`` when the span came via the service)
``heartbeat``         progress fields (``label``, ``done``, ``total``,
                      ``fraction``, ``instructions_per_second``,
                      ``eta_seconds``…)
``warning``           slow-span watchdog: ``span``, ``thread``,
                      ``elapsed_seconds``, ``threshold_seconds``,
                      ``stack``
``event``             free-form one-off marks (``name`` + payload)
====================  ==================================================
"""

from __future__ import annotations

import json
import threading
import time


class RuntimeLog:
    """Thread-safe append-only JSONL writer."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")  # noqa: SIM115

    def write(self, kind: str, **fields) -> None:
        line = json.dumps(
            {"ts": time.time(), "kind": kind, **fields},
            default=str, separators=(",", ":"), sort_keys=False,
        )
        with self._lock:
            if self._file.closed:
                return
            self._file.write(line + "\n")
            self._file.flush()

    def span(self, record) -> None:
        self.write("span", **record.as_dict())

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


#: The process-wide log, None while logging is off.
_LOG: RuntimeLog | None = None


def open_log(path: str) -> RuntimeLog:
    """Open (or return the already-open) process-wide JSONL log."""
    global _LOG
    if _LOG is None or _LOG.path != path or _LOG._file.closed:
        _LOG = RuntimeLog(path)
    return _LOG


def current_log() -> RuntimeLog | None:
    return _LOG


def log_record(kind: str, **fields) -> None:
    """Write one record if a log is open; free no-op otherwise."""
    if _LOG is not None:
        _LOG.write(kind, **fields)


def close_log() -> None:
    global _LOG
    if _LOG is not None:
        _LOG.close()
        _LOG = None


def attach_log(tracer, log: RuntimeLog) -> None:
    """Subscribe ``log`` to ``tracer`` so every finished span becomes a
    JSONL line (idempotent per tracer/log pair)."""
    listener = getattr(log, "_span_listener", None)
    if listener is None:
        listener = log._span_listener = log.span
    if listener not in tracer._listeners:
        tracer.add_listener(listener)


def detach_log(tracer, log: RuntimeLog | None = None) -> None:
    """Unsubscribe ``log`` (default: the process-wide log) from
    ``tracer`` — the counterpart of :func:`attach_log`, so repeated
    open/close cycles never accumulate dead listeners."""
    log = log if log is not None else _LOG
    if log is None:
        return
    listener = getattr(log, "_span_listener", None)
    if listener is not None:
        tracer.remove_listener(listener)
