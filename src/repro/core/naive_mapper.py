"""Naive in-order baseline mapper (CCA [10] / DIF [14] style).

Places trace instructions in strict program order: each instruction goes to
the first (shallowest) stripe that has a free PE of the right kind and can
deliver its operands, without any resource-aware prioritization — the
behaviour Section 2.2 shows failing on Figure 2's examples.  Used by the
ablation benchmark comparing mapping quality against the resource-aware
scheduler.
"""

from __future__ import annotations

from repro.core.mapper import analyze_trace, MappingFailure
from repro.core.priority import priority_gen, PRIORITY_INFEASIBLE
from repro.core.tables import MappingTables, pos_token
from repro.fabric.config import FabricConfig
from repro.fabric.configuration import Configuration, OperandSource, PlacedOp
from repro.fabric.stripe import build_stripes
from repro.isa.instructions import DynamicInstruction


class NaiveMapper:
    """Strict program-order, first-fit mapping."""

    def __init__(
        self, fabric_config: FabricConfig | None = None, bus=None
    ) -> None:
        self.fabric_config = fabric_config or FabricConfig()
        self.attempts = 0
        self.failures = 0
        #: Optional ``repro.obs.EventBus`` (None = tracing disabled).
        self.bus = bus

    def map_trace(
        self, insts: list[DynamicInstruction], trace_key: tuple
    ) -> Configuration | None:
        self.attempts += 1
        if self.bus is not None:
            self.bus.emit(
                "map.start", key=trace_key, instructions=len(insts)
            )
        try:
            configuration = self._map(insts, trace_key)
        except MappingFailure as exc:
            self.failures += 1
            if self.bus is not None:
                self.bus.emit(
                    "map.fail",
                    key=trace_key,
                    reason=exc.reason,
                    detail=str(exc),
                )
            return None
        if self.bus is not None:
            self.bus.emit(
                "map.done",
                key=trace_key,
                mapping_cycles=configuration.mapping_cycles,
                placements=len(configuration.placements),
                live_ins=len(configuration.live_ins),
                live_outs=len(configuration.live_outs),
            )
        return configuration

    def _map(self, insts, trace_key) -> Configuration:
        fcfg = self.fabric_config
        ops, live_ins, last_def, branch_outcomes = analyze_trace(insts)
        if len(live_ins) > fcfg.livein_fifos:
            raise MappingFailure(
                "too_many_live_ins",
                f"{len(live_ins)} live-ins > {fcfg.livein_fifos} FIFOs",
            )
        if len(last_def) > fcfg.liveout_fifos:
            raise MappingFailure(
                "too_many_live_outs",
                f"{len(last_def)} live-outs > {fcfg.liveout_fifos} FIFOs",
            )

        stripes = build_stripes(fcfg)
        tables = MappingTables(
            fcfg.num_stripes,
            [fcfg.channels_in_stripe(s) for s in range(fcfg.num_stripes)],
        )
        placed: dict[int, PlacedOp] = {}
        free_pes = {
            (s.index, pe.index): pe for s in stripes for pe in s.pes
        }
        consumers: dict[int, list[int]] = {}
        for op in ops:
            for token in op.operand_tokens:
                if token[0] == "pos":
                    consumers.setdefault(token[1], []).append(op.pos)
        # Propagation bookkeeping: the hardware propagates potential
        # live-outs identically; only the placement *policy* differs.
        highest_propagated = 0

        for op in ops:
            min_stripe = 0
            for token in op.operand_tokens:
                if token[0] == "pos":
                    min_stripe = max(min_stripe, placed[token[1]].stripe + 1)
            placed_ok = False
            for stripe_index in range(min_stripe, fcfg.num_stripes):
                # Keep propagation in step with how deep placement has gone.
                while highest_propagated < stripe_index:
                    live = self._live_tokens(placed, ops, consumers, last_def)
                    tables.propagate(highest_propagated, live)
                    highest_propagated += 1
                for pe in stripes[stripe_index]:
                    if (stripe_index, pe.index) not in free_pes:
                        continue
                    if pe.pool != op.pool:
                        continue
                    plan = priority_gen(
                        pe, op.operand_tokens, tables, stripe_index
                    )
                    if plan.score == PRIORITY_INFEASIBLE:
                        continue
                    sources = []
                    for operand in plan.operands:
                        token = operand.token
                        if operand.action == "livein":
                            sources.append(
                                OperandSource("livein", reg=token[1])
                            )
                        else:
                            if operand.action == "route":
                                tables.allocate_route(token, stripe_index)
                            producer_pos = token[1]
                            hops = stripe_index - placed[producer_pos].stripe
                            sources.append(
                                OperandSource(
                                    "inst",
                                    producer_pos=producer_pos,
                                    hops=hops,
                                )
                            )
                            tables.note_use(token, stripe_index)
                    dyn = op.dyn
                    placed[op.pos] = PlacedOp(
                        pos=op.pos,
                        opcode=dyn.opcode,
                        opclass=dyn.opclass,
                        stripe=stripe_index,
                        pe_index=pe.index,
                        pool=pe.pool,
                        sources=tuple(sources),
                        source_roles=tuple(op.operand_roles),
                        dest_reg=dyn.dest,
                        pc=dyn.pc,
                        predicted_taken=bool(dyn.taken) if dyn.is_branch else None,
                        mem_index=op.mem_index,
                    )
                    if dyn.dest is not None and dyn.dest != "r0":
                        tables.define(pos_token(op.pos), stripe_index)
                    del free_pes[(stripe_index, pe.index)]
                    placed_ok = True
                    break
                if placed_ok:
                    break
            if not placed_ok:
                raise MappingFailure(
                    "no_feasible_pe", f"no feasible PE for op {op.pos}"
                )

        live_outs = {reg: pos for reg, pos in last_def.items() if pos in placed}
        mem_pcs, mem_kinds = [], []
        for op in ops:
            if op.mem_index is not None:
                mem_pcs.append(op.dyn.pc)
                mem_kinds.append("load" if op.dyn.is_load else "store")
        configuration = Configuration(
            trace_key=trace_key,
            placements=list(placed.values()),
            live_ins=live_ins,
            live_outs=live_outs,
            branch_outcomes=branch_outcomes,
            mem_op_pcs=tuple(mem_pcs),
            mem_op_kinds=tuple(mem_kinds),
            datapath_channels_used=tables.total_channels_allocated,
            mapping_cycles=len(ops),  # one instruction per cycle, in order
        )
        configuration.validate()
        return configuration

    @staticmethod
    def _live_tokens(placed, ops, consumers, last_def):
        final_defs = set(last_def.values())
        live = set()
        placed_positions = set(placed)
        for pos in placed_positions:
            if placed[pos].dest_reg is None:
                continue
            pending = any(
                c not in placed_positions for c in consumers.get(pos, ())
            )
            if pending or pos in final_defs:
                live.add(pos_token(pos))
        return live
