"""Resource-aware dynamic mapping (paper Algorithms 1 and 3).

The mapper replays, stripe by stripe, what the augmented issue unit does
during the mapping phase:

1. The *scheduling frontier* is the stripe currently being filled; its PEs
   are mapped one-to-one onto the host's functional units (they have the
   same pool mix, Table 4).
2. Ready instructions are those whose in-trace producers are all placed in
   earlier stripes — exactly the instructions the reservation station would
   wake up, since a producer issues one scheduling step before its consumer
   can.
3. For every (PE, ready instruction) pair, ``PriorityGen`` (Algorithm 2)
   scores feasibility and routing cost; the host ``PriorityEncoder``
   selects per PE, breaking ties oldest-first.
4. ``UpdateTables`` (Algorithm 3) allocates routes and updates the
   ReuseSet/OverallUsage state; on frontier advance, still-live values are
   propagated forward as potential live-outs.

The mapper also accounts the cycles the mapping phase occupies the issue
unit: each scheduling step costs ``ceil(selected / issue width)`` cycles
plus a pause while unpipelined units finish (Section 4.1, Special Issues).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.priority import (
    priority_gen,
    score_name,
    PlacementPlan,
    PRIORITY_INFEASIBLE,
)
from repro.core.tables import MappingTables, livein_token, pos_token, Token
from repro.fabric.config import FabricConfig
from repro.fabric.configuration import Configuration, OperandSource, PlacedOp
from repro.isa.instructions import DynamicInstruction
from repro.isa.opcodes import FU_PIPELINED, OpClass, latency_of
from repro.ooo.config import CoreConfig
from repro.ooo.fus import POOL_OF
from repro.ooo.rs import PriorityEncoder

#: Op classes that vanish when a trace is linearized (no PE needed).
TRANSPARENT = (OpClass.JUMP, OpClass.NOP)


@dataclass
class _TraceOp:
    """Pre-analyzed trace instruction."""

    pos: int
    dyn: DynamicInstruction
    operand_tokens: list[Token]
    operand_roles: list[str]
    pool: str
    mem_index: int | None

    @property
    def seq(self) -> int:  # host priority rule: oldest (trace order) first
        return self.pos


def analyze_trace(insts: list[DynamicInstruction]):
    """Build intra-trace dependence structure.

    Returns (ops, live_ins, live_out_defs, branch_outcomes) where
    ``live_out_defs`` maps each architectural register to the position of
    its final definition inside the trace.
    """
    last_def: dict[str, int] = {}
    ops: list[_TraceOp] = []
    live_ins: list[str] = []
    seen_live_ins: set[str] = set()
    mem_index = 0
    for pos, dyn in enumerate(insts):
        static = dyn.static
        if static.opclass in TRANSPARENT:
            continue
        tokens: list[Token] = []
        roles: list[str] = []
        for src_index, reg in enumerate(static.srcs):
            if reg == "r0":
                continue  # hardwired zero: no operand to deliver
            if static.is_memory:
                roles.append("base" if src_index == 0 else "value")
            else:
                roles.append("src")
            if reg in last_def:
                tokens.append(pos_token(last_def[reg]))
            else:
                tokens.append(livein_token(reg))
                if reg not in seen_live_ins:
                    seen_live_ins.add(reg)
                    live_ins.append(reg)
        this_mem = None
        if static.is_memory:
            this_mem = mem_index
            mem_index += 1
        ops.append(
            _TraceOp(pos, dyn, tokens, roles, POOL_OF[static.opclass], this_mem)
        )
        if static.dest is not None and static.dest != "r0":
            last_def[static.dest] = pos
    branch_outcomes = tuple(
        bool(d.taken) for d in insts if d.is_branch
    )
    return ops, tuple(live_ins), dict(last_def), branch_outcomes


#: Closed vocabulary of mapping-failure reasons.  ``map.fail`` events and
#: decision records aggregate on these codes (bounded label cardinality);
#: the human-readable message travels separately as ``detail``.
MAP_FAIL_REASONS: dict[str, str] = {
    "too_many_live_ins": "trace needs more live-in FIFOs than the fabric has",
    "too_many_live_outs": "trace defines more live-outs than the fabric "
                          "can drain",
    "out_of_stripes": "the scheduling frontier ran past the last stripe",
    "deadlock": "no unplaced instruction was ready on any stripe",
    "no_feasible_pe": "an instruction fit no PE in the current stripe",
}


class MappingFailure(Exception):
    """Raised internally when a trace cannot be mapped.

    ``reason`` must come from :data:`MAP_FAIL_REASONS`; ``detail`` is the
    free-form human message (what ``str(exc)`` returns).
    """

    def __init__(self, reason: str, detail: str | None = None) -> None:
        if reason not in MAP_FAIL_REASONS:
            raise ValueError(f"unregistered mapping-failure reason {reason!r}")
        super().__init__(detail if detail is not None else reason)
        self.reason = reason
        self.detail = detail if detail is not None else reason


class ResourceAwareMapper:
    """The DynaSpAM mapper: OOO select logic + fabric priority scores."""

    def __init__(
        self,
        fabric_config: FabricConfig | None = None,
        core_config: CoreConfig | None = None,
        use_priority_scores: bool = True,
        bus=None,
    ) -> None:
        self.fabric_config = fabric_config or FabricConfig()
        self.core_config = core_config or CoreConfig()
        self.encoder = PriorityEncoder()
        #: Ablation knob: with False, selection keeps the feasibility check
        #: but ignores the Table 2 routing preferences (pure host
        #: oldest-first among feasible instructions).
        self.use_priority_scores = use_priority_scores
        self.attempts = 0
        self.failures = 0
        #: Optional ``repro.obs.EventBus`` (None = tracing disabled).
        self.bus = bus

    # ------------------------------------------------------------------
    def map_trace(
        self, insts: list[DynamicInstruction], trace_key: tuple
    ) -> Configuration | None:
        """Map a trace; returns None if no feasible mapping exists."""
        self.attempts += 1
        if self.bus is not None:
            self.bus.emit(
                "map.start", key=trace_key, instructions=len(insts)
            )
        try:
            configuration = self._map(insts, trace_key)
        except MappingFailure as exc:
            self.failures += 1
            if self.bus is not None:
                self.bus.emit(
                    "map.fail",
                    key=trace_key,
                    reason=exc.reason,
                    detail=str(exc),
                )
            return None
        if self.bus is not None:
            self.bus.emit(
                "map.done",
                key=trace_key,
                mapping_cycles=configuration.mapping_cycles,
                placements=len(configuration.placements),
                live_ins=len(configuration.live_ins),
                live_outs=len(configuration.live_outs),
            )
        return configuration

    # ------------------------------------------------------------------
    def _map(self, insts, trace_key) -> Configuration:
        fcfg = self.fabric_config
        ops, live_ins, last_def, branch_outcomes = analyze_trace(insts)

        if len(live_ins) > fcfg.livein_fifos:
            raise MappingFailure(
                "too_many_live_ins",
                f"{len(live_ins)} live-ins > {fcfg.livein_fifos} FIFOs",
            )
        if len(last_def) > fcfg.liveout_fifos:
            raise MappingFailure(
                "too_many_live_outs",
                f"{len(last_def)} live-outs > {fcfg.liveout_fifos} FIFOs",
            )

        from repro.fabric.stripe import build_stripes

        stripes = build_stripes(fcfg)
        tables = MappingTables(
            fcfg.num_stripes,
            [fcfg.channels_in_stripe(s) for s in range(fcfg.num_stripes)],
        )
        placed: dict[int, PlacedOp] = {}
        unplaced = {op.pos: op for op in ops}
        consumers: dict[int, list[int]] = {}
        for op in ops:
            for token in op.operand_tokens:
                if token[0] == "pos":
                    consumers.setdefault(token[1], []).append(op.pos)

        mapping_cycles = 0
        frontier = 0
        while unplaced:
            if frontier >= fcfg.num_stripes:
                raise MappingFailure(
                    "out_of_stripes",
                    f"frontier passed stripe {fcfg.num_stripes - 1} with "
                    f"{len(unplaced)} ops unplaced",
                )
            selected = self._fill_stripe(
                stripes[frontier], frontier, unplaced, placed, tables
            )
            if selected:
                mapping_cycles += self._step_cycles(selected)
            elif not self._any_ready(unplaced, placed):
                raise MappingFailure(
                    "deadlock", "deadlock: no instruction is ready"
                )
            # Advance the frontier: propagate still-live values forward.
            live_tokens = self._live_tokens(
                placed, unplaced, consumers, last_def
            )
            tables.propagate(frontier, live_tokens)
            if self.bus is not None:
                self.bus.emit(
                    "map.stripe",
                    stripe=frontier,
                    selected=len(selected),
                    offset=mapping_cycles,
                    remaining=len(unplaced),
                )
            frontier += 1
            mapping_cycles += 1  # frontier advance

        live_outs = {reg: pos for reg, pos in last_def.items() if pos in placed}
        mem_pcs = []
        mem_kinds = []
        for op in ops:
            if op.mem_index is not None:
                mem_pcs.append(op.dyn.pc)
                mem_kinds.append("load" if op.dyn.is_load else "store")

        configuration = Configuration(
            trace_key=trace_key,
            placements=list(placed.values()),
            live_ins=live_ins,
            live_outs=live_outs,
            branch_outcomes=branch_outcomes,
            mem_op_pcs=tuple(mem_pcs),
            mem_op_kinds=tuple(mem_kinds),
            datapath_channels_used=tables.total_channels_allocated,
            mapping_cycles=mapping_cycles,
        )
        configuration.validate()
        return configuration

    # ------------------------------------------------------------------
    def _fill_stripe(self, stripe, frontier, unplaced, placed, tables):
        """One scheduling step: select instructions for the frontier PEs."""
        ready = [
            op
            for op in unplaced.values()
            if all(
                token[0] != "pos" or token[1] in placed
                for token in op.operand_tokens
            )
        ]
        selected: list[_TraceOp] = []
        plans: dict[int, PlacementPlan] = {}
        used_pes: set[int] = set()
        for pe in stripe:
            candidates = [op for op in ready if op.pool == pe.pool]
            if not candidates:
                continue

            def score(op, _pe=pe):
                plan = priority_gen(_pe, op.operand_tokens, tables, frontier)
                plans[op.pos] = plan
                if not self.use_priority_scores:
                    return 0 if plan.score >= 0 else -1
                return plan.score

            choice = self.encoder.select(candidates, score=score)
            if choice is None:
                continue
            plan = plans[choice.pos]
            self._place(choice, pe, frontier, plan, placed, tables)
            used_pes.add(pe.index)
            del unplaced[choice.pos]
            ready.remove(choice)
            selected.append(choice)
            if self.bus is not None:
                self.bus.emit(
                    "map.place",
                    pos=choice.pos,
                    pc=choice.dyn.pc,
                    stripe=frontier,
                    pe=pe.index,
                    pool=pe.pool,
                    score=score_name(plan.score),
                )
        return selected

    # ------------------------------------------------------------------
    def _place(self, op, pe, frontier, plan, placed, tables) -> None:
        """Commit a selection: UpdateTables (Algorithm 3) + record."""
        sources = []
        for operand in plan.operands:
            token = operand.token
            if operand.action == "livein":
                sources.append(OperandSource("livein", reg=token[1]))
            else:
                if operand.action == "route":
                    tables.allocate_route(token, frontier)
                producer_pos = token[1]
                hops = frontier - placed[producer_pos].stripe
                sources.append(
                    OperandSource("inst", producer_pos=producer_pos, hops=hops)
                )
                tables.note_use(token, frontier)

        dyn = op.dyn
        placed[op.pos] = PlacedOp(
            pos=op.pos,
            opcode=dyn.opcode,
            opclass=dyn.opclass,
            stripe=frontier,
            pe_index=pe.index,
            pool=pe.pool,
            sources=tuple(sources),
            source_roles=tuple(op.operand_roles),
            dest_reg=dyn.dest,
            pc=dyn.pc,
            predicted_taken=bool(dyn.taken) if dyn.is_branch else None,
            mem_index=op.mem_index,
        )
        if dyn.dest is not None and dyn.dest != "r0":
            tables.define(pos_token(op.pos), frontier)

    # ------------------------------------------------------------------
    @staticmethod
    def _any_ready(unplaced, placed) -> bool:
        return any(
            all(t[0] != "pos" or t[1] in placed for t in op.operand_tokens)
            for op in unplaced.values()
        )

    def _step_cycles(self, selected) -> int:
        """Issue-unit cycles one scheduling step occupies (Section 4.1)."""
        width = self.core_config.issue_width
        cycles = math.ceil(len(selected) / width)
        # Pause until unpipelined units finish before the frontier advances.
        stall = 0
        for op in selected:
            opclass = op.dyn.opclass
            if not FU_PIPELINED[opclass]:
                stall = max(stall, latency_of(op.dyn.opcode) - 1)
        return cycles + stall

    # ------------------------------------------------------------------
    def _live_tokens(self, placed, unplaced, consumers, last_def):
        """Tokens worth propagating: still-needed values and potential
        live-outs (final definitions of architectural registers)."""
        live: set[Token] = set()
        final_defs = set(last_def.values())
        for pos, placement in placed.items():
            if placement.dest_reg is None:
                continue
            has_pending_consumer = any(
                c in unplaced for c in consumers.get(pos, ())
            )
            if has_pending_consumer or pos in final_defs:
                live.add(pos_token(pos))
        return live
