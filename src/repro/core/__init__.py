"""DynaSpAM core: trace detection, dynamic mapping, and trace offloading.

This package implements the paper's contribution:

* ``tcache`` — the T-Cache that detects hot traces from committed branches;
* ``tables`` — the mapping status tables (ProdTable, ReuseSet,
  OverallUsage, LiveOutTable, LastUsedLocation);
* ``priority`` — PriorityGen, Algorithm 2;
* ``mapper`` — the resource-aware scheduler, Algorithms 1 and 3;
* ``naive_mapper`` — the CCA/DIF-style in-order baseline mapper;
* ``config_cache`` — the configuration cache with saturating counters;
* ``siderob`` — the side reorder buffer (ROB') for fat atomic traces;
* ``multifabric`` — LRU management of 1..N on-chip fabrics;
* ``offload`` — fat-atomic-instruction execution with squash/replay;
* ``framework`` — the full DynaSpAM machine wired around the host OOO.
"""

from repro.core.tcache import TCache, TraceWindowBuilder, TraceWindow
from repro.core.config_cache import ConfigCache
from repro.core.mapper import ResourceAwareMapper
from repro.core.naive_mapper import NaiveMapper
from repro.core.multifabric import FabricPool
from repro.core.framework import DynaSpAM, DynaSpAMConfig, DynaSpAMResult
from repro.core.tuning import evaluate_mix, FabricTuner, TunedMix

__all__ = [
    "ConfigCache",
    "DynaSpAM",
    "DynaSpAMConfig",
    "DynaSpAMResult",
    "evaluate_mix",
    "FabricPool",
    "FabricTuner",
    "NaiveMapper",
    "ResourceAwareMapper",
    "TCache",
    "TraceWindow",
    "TraceWindowBuilder",
    "TunedMix",
]
