"""Trace offloading: fat atomic invocations, squash, and replay.

Executes one predicted hot-trace occurrence on the fabric.  The invocation
occupies a single main-ROB entry pointing at a ROB' entry; live-ins come
from the rename stage (the host register scoreboard plus forwarded
live-outs of the previous invocation), memory operations interact with the
host store queue and the Store-Sets unit, and live-outs broadcast back into
the host bypass network at completion (paper Sections 3.1-3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.siderob import SideROB
from repro.engine import fastpath_enabled
from repro.fabric.compiled import offload_plan_of
from repro.fabric.configuration import Configuration
from repro.fabric.fabric import InvocationContext, SpatialFabric
from repro.ooo.lsq import StoreRecord
from repro.ooo.pipeline import OOOPipeline

#: Cycles from invocation dispatch until a divergent embedded branch is
#: detected in ROB' and the squash broadcast reaches the front end.
TRACE_SQUASH_DETECT = 4


@dataclass
class OffloadOutcome:
    """Result of one offload attempt."""

    success: bool
    consumed: int = 0
    complete: int = 0
    violation: tuple[int, int] | None = None   # (load pc, store pc)
    squash_reason: str | None = None


@dataclass
class OffloadEngine:
    """Runs invocations against the host pipeline's shared state."""

    pipeline: OOOPipeline
    speculation: bool = True
    siderob: SideROB = field(default_factory=SideROB)
    #: Optional ``repro.obs.EventBus`` (None = tracing disabled).
    bus: object | None = None

    def offload(
        self,
        fabric: SpatialFabric,
        configuration: Configuration,
        segment,
        fabric_ready: int,
    ) -> OffloadOutcome:
        """Execute ``segment`` (one trace occurrence) on ``fabric``."""
        pipeline = self.pipeline
        stats = pipeline.stats
        # Per-configuration constants (store positions, placed loads, pool
        # counts) lowered once and reused across invocations.
        plan = offload_plan_of(configuration) if fastpath_enabled() else None

        seq, dispatch = pipeline.macro_dispatch()
        entry = self.siderob.allocate(seq, configuration.trace_key)
        if self.bus is not None:
            self.bus.emit(
                "offload.dispatch",
                cycle=dispatch,
                seq=seq,
                key=configuration.trace_key,
                instructions=len(segment),
                live_ins=len(configuration.live_ins),
                siderob_occupancy=self.siderob.occupancy,
            )

        live_in_ready = {
            reg: pipeline.regs.ready_cycle(reg)
            for reg in configuration.live_ins
        }
        # The rename stage renames the trace's live-ins and live-outs and
        # reads the ready live-in values out to the input FIFOs (paper
        # Section 3.1, "Trace Offloading").
        stats.renames += len(configuration.live_ins) + len(configuration.live_outs)
        stats.regfile_reads += len(configuration.live_ins)

        # Memory context: addresses of this occurrence, intra-trace
        # Store-Sets predictions, and waits against in-flight host stores.
        # Offload only runs when the occurrence's key matched the
        # configuration's, so the segment's *static* layout (which
        # positions are memory ops / branches) is a per-configuration
        # constant — memoized on the first occurrence.
        branch_positions = None
        if plan is not None:
            mem_positions, branch_positions = self._segment_layout(
                configuration, segment
            )
            mem_addrs = {
                m: segment[i].addr for m, i in enumerate(mem_positions)
            }
        else:
            mem_addrs: dict[int, int] = {}
            index = 0
            for dyn in segment:
                if dyn.is_memory:
                    mem_addrs[index] = dyn.addr
                    index += 1
        predicted_store_pos, extra_wait, host_alias = self._memory_context(
            configuration, mem_addrs, seq, dispatch, plan
        )

        l2 = pipeline.l2
        l1d = pipeline.dcache
        l1d_latency = pipeline.config.l1d_latency

        def dcache_access(addr: int) -> int:
            stats.dcache_accesses += 1
            before_l2 = l2.hits + l2.misses
            latency = l1d.access(addr)
            if latency > l1d_latency:
                stats.dcache_misses += 1
            stats.l2_accesses += l2.hits + l2.misses - before_l2
            return latency

        ctx = InvocationContext(
            start_lower_bound=max(dispatch + 1, fabric_ready),
            live_in_ready=live_in_ready,
            mem_addrs=mem_addrs,
            dcache_access=dcache_access,
            speculative=self.speculation,
            extra_mem_wait=extra_wait,
            predicted_store_pos=predicted_store_pos,
            stats=stats,
        )
        result = fabric.execute(configuration, ctx)

        # ---- violation checks ----------------------------------------
        violation = self._find_violation(
            configuration, result, host_alias
        )
        if violation is not None:
            load_pc, store_pc, detect = violation
            stats.memory_violations += 1
            stats.fabric_squashes += 1
            if self.speculation:
                pipeline.storesets.train_violation(load_pc, store_pc)
            self.siderob.squash(entry, detect)
            pipeline.stall_fetch_until(
                detect + pipeline.config.violation_squash_penalty,
                cause="squash_memory",
            )
            if self.bus is not None:
                self.bus.emit(
                    "offload.squash",
                    cycle=detect,
                    seq=seq,
                    key=configuration.trace_key,
                    cause="memory",
                    load_pc=load_pc,
                    store_pc=store_pc,
                )
            return OffloadOutcome(
                success=False,
                violation=(load_pc, store_pc),
                squash_reason="memory",
            )

        # ---- success: commit the fat instruction ---------------------
        commit = pipeline.macro_commit(result.complete)
        store_events = [e for e in result.mem_events if e.kind == "store"]
        self.siderob.mark_complete(
            entry,
            result.complete,
            result.liveout_ready,
            configuration.branch_outcomes,
            [(e.addr, None) for e in store_events],
        )
        self.siderob.commit(entry, commit)

        for reg, cycle in result.liveout_ready.items():
            pipeline.set_live_out(reg, cycle, seq)
            stats.regfile_writes += 1

        # Buffered stores drain to the memory system at commit and become
        # visible to younger host loads through the store queue.
        for event in store_events:
            pipeline.sq.push(
                StoreRecord(
                    seq=seq,
                    pc=configuration.mem_op_pcs[event.mem_index],
                    addr=event.addr,
                    addr_ready=event.addr_known,
                    data_ready=event.finish,
                    commit=commit,
                )
            )
            dcache_access(event.addr)
        stats.stores += len(store_events)
        stats.loads += len(result.mem_events) - len(store_events)

        # ROB' verified the embedded branch outcomes; train the host
        # predictor with them so global history stays coherent.
        if branch_positions is not None:
            predict = pipeline.bpred.predict_and_update
            for i in branch_positions:
                dyn = segment[i]
                predict(dyn.pc, bool(dyn.taken))
            stats.predictor_lookups += len(branch_positions)
        else:
            for dyn in segment:
                if dyn.is_branch:
                    stats.predictor_lookups += 1
                    pipeline.bpred.predict_and_update(dyn.pc, bool(dyn.taken))

        stats.offloaded_instructions += len(segment)
        stats.fabric_invocations += 1
        stats.fabric_fu_ops += result.fu_ops
        stats.fabric_datapath_transfers += result.datapath_transfers
        stats.fabric_fifo_ops += result.fifo_ops
        stats.fabric_active_pe_cycles += (
            len(configuration.placements) * result.occupancy_cycles
        )
        if plan is not None:
            for counter, count in plan.pool_counters:
                setattr(stats, counter, getattr(stats, counter) + count)
        else:
            for op in configuration.placements:
                counter = f"fabric_{op.pool}_ops"
                setattr(stats, counter, getattr(stats, counter) + 1)
        stats.instructions += len(segment)

        if self.bus is not None:
            self.bus.emit(
                "offload.commit",
                cycle=commit,
                seq=seq,
                key=configuration.trace_key,
                instructions=len(segment),
                complete=result.complete,
            )
        return OffloadOutcome(
            success=True, consumed=len(segment), complete=result.complete
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _segment_layout(configuration, segment):
        """(memory positions, branch positions) of this configuration's
        segments.  Valid for every occurrence: the trace key (start PC +
        embedded branch outcomes + length) pins the static instruction
        sequence, and offload only runs on key-matching occurrences."""
        layout = getattr(configuration, "_segment_layout", None)
        if layout is None:
            layout = (
                tuple(i for i, dyn in enumerate(segment) if dyn.is_memory),
                tuple(i for i, dyn in enumerate(segment) if dyn.is_branch),
            )
            configuration._segment_layout = layout
        return layout

    # ------------------------------------------------------------------
    def _memory_context(self, configuration, mem_addrs, seq, dispatch,
                        plan=None):
        """Build Store-Sets predictions and host-store waits per mem op."""
        storesets = self.pipeline.storesets
        sq = self.pipeline.sq
        predicted_store_pos: dict[int, int] = {}
        extra_wait: dict[int, int] = {}
        host_alias: dict[int, StoreRecord] = {}

        if plan is not None:
            store_positions = plan.store_positions  # (mem_index, pos, pc)
            loads = plan.loads
        else:
            store_positions = []
            for op in configuration.placements:
                if op.is_store:
                    store_positions.append((op.mem_index, op.pos, op.pc))
            loads = [op for op in configuration.placements if op.is_load]

        if self.speculation:
            # Intra-trace predictions depend only on the configuration's
            # static layout and the predictor's *learned* sets, which only
            # change on violation training — cached per configuration and
            # validated against the predictor's generation stamp.
            cached = getattr(configuration, "_predicted_store_cache", None)
            if cached is not None and cached[0] == storesets.generation:
                predicted_store_pos = cached[1]
            else:
                for op in loads:
                    # Wait for the latest older store whose PC shares this
                    # load's store set.
                    best_pos = None
                    for (sm, pos, pc) in store_positions:
                        if pos < op.pos and storesets.same_set(op.pc, pc):
                            if best_pos is None or pos > best_pos:
                                best_pos = pos
                    if best_pos is not None:
                        predicted_store_pos[op.mem_index] = best_pos
                configuration._predicted_store_cache = (
                    storesets.generation, predicted_store_pos
                )
            for op in loads:
                m = op.mem_index
                # Host-store interaction: aliasing in-flight store.
                alias = sq.youngest_alias(mem_addrs[m], seq)
                if alias is not None:
                    host_alias[m] = alias
                    if storesets.same_set(op.pc, alias.pc):
                        extra_wait[m] = max(
                            extra_wait.get(m, 0), alias.data_ready
                        )
        else:
            for op in loads:
                m = op.mem_index
                # Conservative inter-invocation ordering goes through the
                # store buffer: all in-flight stores there have resolved
                # addresses (they executed), so a load orders only behind
                # *aliasing* buffered stores and forwards their data.
                # Intra-trace ordering (where addresses resolve as the
                # dataflow fires) is fully conservative in the fabric.
                alias = sq.youngest_alias(mem_addrs[m], seq)
                if alias is not None:
                    extra_wait[m] = max(
                        extra_wait.get(m, 0), alias.data_ready
                    )
        if not self.speculation:
            # Conservative: stores order behind older buffered stores so
            # the memory system sees store-store program order.
            older = sq.youngest_older(seq)
            if older is not None:
                for (m, _pos, _pc) in store_positions:
                    extra_wait[m] = max(
                        extra_wait.get(m, 0), older.addr_ready
                    )
        return predicted_store_pos, extra_wait, host_alias

    # ------------------------------------------------------------------
    def _find_violation(self, configuration, result, host_alias):
        """First memory-order violation, or None.

        Intra-trace violations come from the fabric engine; host-vs-fabric
        violations occur when a fabric load started before an aliasing
        in-flight host store had executed.
        """
        if result.violations:
            # Built only on the (rare) violation path — the common commit
            # path never needs the position index.
            events_by_pos = {e.pos: e for e in result.mem_events}
            for load_pos, store_pos in result.violations:
                load_op = configuration.op_at(load_pos)
                store_op = configuration.op_at(store_pos)
                # Detected when the store's address finally resolves.
                detect = events_by_pos[store_pos].addr_known
                return load_op.pc, store_op.pc, detect
        for event in result.mem_events:
            if event.kind != "load":
                continue
            alias = host_alias.get(event.mem_index)
            if alias is not None and event.start < alias.addr_ready:
                load_pc = configuration.mem_op_pcs[event.mem_index]
                return load_pc, alias.pc, alias.addr_ready
        return None
