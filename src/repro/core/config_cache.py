"""Configuration cache (paper Section 3.1, Table 4).

16 entries, each holding a mapped configuration and a 3-bit saturating
counter; the counter increments every time the fetch stage predicts the
trace again, and once it crosses the threshold (4) the entry becomes
*ready* and offloading begins.  Counters are periodically cleared so
infrequent traces do not occupy the fabric.  Traces that failed to map are
remembered as unmappable so the pipeline does not re-drain for them.

Deviation from the paper: the paper's cache is direct mapped by a hardware
index; a software hash makes conflict pairs arbitrary and causes mapping
ping-pong that the authors' PC-based indexing would not.  We model the same
16-entry capacity with LRU replacement instead, which preserves the
intended behaviour (capacity pressure evicts cold traces, hot traces stay).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import fastpath_enabled
from repro.fabric.compiled import compile_timing_plan
from repro.fabric.configuration import Configuration


@dataclass
class ConfigEntry:
    key: tuple
    configuration: Configuration | None   # None = known unmappable
    counter: int = 0
    ready: bool = False
    offload_count: int = 0


@dataclass
class ConfigCache:
    """16-entry LRU configuration store with saturating counters."""

    entries: int = 16
    counter_bits: int = 3
    ready_threshold: int = 4
    clear_interval: int = 200_000

    _store: dict[tuple, ConfigEntry] = field(default_factory=dict)
    _since_clear: int = 0
    reads: int = 0
    writes: int = 0
    evictions: int = 0
    mapped_keys: set = field(default_factory=set)
    unmappable_keys: set = field(default_factory=set)
    #: Optional ``repro.obs.EventBus`` (None = tracing disabled).
    bus: object | None = field(default=None, repr=False, compare=False)

    def lookup(self, key: tuple) -> ConfigEntry | None:
        """Probe the cache (a fetch-stage read).  Hits refresh LRU order."""
        self.reads += 1
        entry = self._store.get(key)
        if entry is not None:
            # dict preserves insertion order: re-insert to mark recency.
            del self._store[key]
            self._store[key] = entry
            if self.bus is not None:
                self.bus.emit(
                    "ccache.hit",
                    key=key,
                    counter=entry.counter,
                    ready=entry.ready,
                    mappable=entry.configuration is not None,
                )
        return entry

    def insert(self, key: tuple, configuration: Configuration | None) -> ConfigEntry:
        """Store a mapping result (or an unmappable marker)."""
        self.writes += 1
        if key not in self._store and len(self._store) >= self.entries:
            victim = next(iter(self._store))
            victim_entry = self._store[victim]
            del self._store[victim]
            self.evictions += 1
            if self.bus is not None:
                self.bus.emit(
                    "ccache.evict",
                    key=victim,
                    offload_count=victim_entry.offload_count,
                    occupancy=len(self._store),
                )
        entry = ConfigEntry(key=key, configuration=configuration)
        if configuration is None:
            self.unmappable_keys.add(key)
        else:
            self.mapped_keys.add(key)
            # Pre-lower the fabric evaluator at insert so the first
            # offload of this configuration already runs the compiled
            # plan (repro.fabric.compiled); insert is off the hot path.
            # The placements guard keeps stub configurations (tests,
            # external callers) insertable without being compilable.
            if fastpath_enabled() and hasattr(configuration, "placements"):
                compile_timing_plan(configuration)
        self._store[key] = entry
        if self.bus is not None:
            self.bus.emit(
                "ccache.insert",
                key=key,
                mappable=configuration is not None,
                occupancy=len(self._store),
            )
        return entry

    def predicted_again(self, entry: ConfigEntry) -> bool:
        """Bump an entry's counter; True once the entry becomes ready."""
        if entry.configuration is None:
            return False
        counter_max = (1 << self.counter_bits) - 1
        if entry.counter < counter_max:
            entry.counter += 1
        if entry.counter >= self.ready_threshold and not entry.ready:
            entry.ready = True
            if self.bus is not None:
                self.bus.emit(
                    "ccache.ready", key=entry.key, counter=entry.counter
                )
        return entry.ready

    def tick(self, instructions: int = 1) -> None:
        """Advance the periodic counter-clearing clock."""
        self._since_clear += instructions
        if self._since_clear >= self.clear_interval:
            self._since_clear = 0
            for entry in self._store.values():
                entry.counter = 0

    @property
    def mapped_trace_count(self) -> int:
        return len(self.mapped_keys)

    @property
    def occupancy(self) -> int:
        return len(self._store)
