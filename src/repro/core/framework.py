"""The DynaSpAM machine: detection → mapping → offloading around the host.

``DynaSpAM.run`` consumes a benchmark's dynamic trace exactly like the
baseline ``OOOPipeline`` does, but at every trace anchor (the instruction
after a committed branch) the fetch stage:

1. walks the static program under speculative branch predictions to form
   the predicted trace key (anchor PC, outcomes, length);
2. probes the configuration cache — a *ready* entry triggers offloading as
   a fat atomic instruction (or a squash if the prediction was wrong);
   a mapped-but-not-ready entry bumps its saturating counter;
3. otherwise consults the T-Cache — a hot trace triggers the mapping
   phase: drain the back end, run the resource-aware mapper while the
   trace instructions execute on the host, and store the configuration.

Modes: ``baseline`` (host only), ``mapping_only`` (Figure 8's mapping
series), ``accelerate`` (full DynaSpAM, with or without memory
speculation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config_cache import ConfigCache
from repro.core.mapper import ResourceAwareMapper
from repro.core.multifabric import FabricPool
from repro.core.naive_mapper import NaiveMapper
from repro.core.offload import OffloadEngine, TRACE_SQUASH_DETECT
from repro.core.tcache import TCache, TraceWindowBuilder
from repro.engine import memo_enabled
from repro.fabric.config import FabricConfig
from repro.isa.instructions import DynamicInstruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.ooo.config import CoreConfig
from repro.ooo.fastpath import make_pipeline
from repro.ooo.pipeline import OOOPipeline, PipelineResult
from repro.ooo.stats import PipelineStats


@dataclass
class DynaSpAMConfig:
    """Knobs of the DynaSpAM subsystem."""

    mode: str = "accelerate"        # "baseline" | "mapping_only" | "accelerate"
    speculation: bool = True        # memory speculation on the fabric
    trace_length: int = 32          # Figure 7 sweeps 16..40
    max_branches: int = 3
    #: Future-work feature: end cap-split traces at their last branch so
    #: the next trace anchors immediately (no dead zone).
    smart_trace_selection: bool = False
    #: Memoize predicted trace keys on (anchor PC, predictor history),
    #: invalidated through predictor table stamps.  Results are identical
    #: either way; the flag exists for A/B testing and diagnostics.
    predict_memo: bool = True
    num_fabrics: int = 1
    mapper: str = "resource_aware"  # | "naive" (ablation)
    tcache_entries: int = 256
    hot_threshold: int = 3
    tcache_clear_interval: int = 2_500
    ready_threshold: int = 4
    config_cache_entries: int = 16
    config_clear_interval: int = 600
    reconfig_hysteresis: int = 150  # cycles a fresh configuration is protected

    def __post_init__(self) -> None:
        if self.mode not in ("baseline", "mapping_only", "accelerate"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.mapper not in ("resource_aware", "naive"):
            raise ValueError(f"unknown mapper {self.mapper!r}")


@dataclass
class DynaSpAMResult:
    """Run outcome: host pipeline result plus DynaSpAM accounting."""

    pipeline: PipelineResult
    host_instructions: int
    mapping_instructions: int
    offloaded_instructions: int
    mapped_traces: int
    offloaded_traces: int
    lifetimes: list[int] = field(default_factory=list)
    squashes: int = 0
    reconfigurations: int = 0
    #: Pool-wide occupancy summary (``FabricPool.utilization``): placed-PE
    #: ratio, per-stripe occupancy, configuration reuse distance.
    fabric_utilization: dict = field(default_factory=dict)

    @property
    def stats(self) -> PipelineStats:
        return self.pipeline.stats

    @property
    def cycles(self) -> int:
        return self.pipeline.cycles

    @property
    def total_instructions(self) -> int:
        return (
            self.host_instructions
            + self.mapping_instructions
            + self.offloaded_instructions
        )

    @property
    def coverage(self) -> dict[str, float]:
        """Fraction of dynamic instructions per execution venue (Fig 7)."""
        total = self.total_instructions or 1
        return {
            "host": self.host_instructions / total,
            "mapping": self.mapping_instructions / total,
            "fabric": self.offloaded_instructions / total,
        }

    @property
    def mean_lifetime(self) -> float:
        """Average configuration lifetime in invocations (Table 5)."""
        if not self.lifetimes:
            return 0.0
        return sum(self.lifetimes) / len(self.lifetimes)


class DynaSpAM:
    """One DynaSpAM-augmented core."""

    def __init__(
        self,
        core_config: CoreConfig | None = None,
        fabric_config: FabricConfig | None = None,
        ds_config: DynaSpAMConfig | None = None,
        sink=None,
    ) -> None:
        self.config = ds_config or DynaSpAMConfig()
        cfg = self.config
        self.pipeline = make_pipeline(core_config)
        # Event tracing (repro.obs): one bus stamps every lifecycle event
        # with the pipeline's front-end clock.  ``sink=None`` (the default)
        # leaves every component's ``bus`` None — the disabled path is a
        # single pointer comparison per site and cannot perturb timing.
        self.bus = None
        if sink is not None:
            from repro.obs.events import EventBus

            pipeline = self.pipeline
            self.bus = EventBus(
                sink,
                clock=lambda: max(
                    pipeline.next_fetch_cycle, pipeline.fetch_barrier
                ),
            )
            self.pipeline.bus = self.bus
        self.fabric_config = fabric_config or FabricConfig()
        self.builder = TraceWindowBuilder(cfg.trace_length, cfg.max_branches)
        self.tcache = TCache(
            entries=cfg.tcache_entries,
            hot_threshold=cfg.hot_threshold,
            clear_interval=cfg.tcache_clear_interval,
            bus=self.bus,
        )
        self.ccache = ConfigCache(
            entries=cfg.config_cache_entries,
            ready_threshold=cfg.ready_threshold,
            clear_interval=cfg.config_clear_interval,
            bus=self.bus,
        )
        if cfg.mapper == "naive":
            self.mapper = NaiveMapper(self.fabric_config, bus=self.bus)
        else:
            self.mapper = ResourceAwareMapper(
                self.fabric_config, self.pipeline.config, bus=self.bus
            )
        self.pool = FabricPool(
            cfg.num_fabrics, self.fabric_config, bus=self.bus
        )
        self.offloader = OffloadEngine(
            pipeline=self.pipeline, speculation=cfg.speculation, bus=self.bus
        )

        self._host_instructions = 0
        self._mapping_instructions = 0
        self._offloaded_keys: set = set()
        self._squashes = 0
        self.program: Program | None = None
        #: (anchor_pc, history) -> (predicted key, predictor stamp deps).
        self._predict_memo: dict[tuple[int, int], tuple] = {}
        #: Anchor work already performed by a batched super-step that the
        #: run loop must consume instead of redoing: ``(index, predicted
        #: key, ccache entry | _NO_ENTRY)``.  The batch loop probes the
        #: next anchor to decide whether to continue; when it stops, that
        #: probe (predictor walk, config-cache lookup, their counters and
        #: events) has already happened and must not be repeated.
        self._pending_anchor: tuple | None = None

    # ------------------------------------------------------------------
    def run(self, trace: list[DynamicInstruction], program: Program) -> DynaSpAMResult:
        """Simulate the full dynamic trace."""
        self.program = program
        cfg = self.config
        if cfg.smart_trace_selection:
            self.builder.program = program  # enables static lookahead
        self.pipeline.note_phase("host")
        self._pending_anchor = None
        active = cfg.mode != "baseline"
        i = 0
        n = len(trace)
        while i < n:
            if active and self.builder.at_anchor:
                advanced = self._at_anchor(trace, i)
                if advanced is not None:
                    i = advanced
                    continue
            self._host_step(trace[i])
            i += 1
        return self._finish()

    # ------------------------------------------------------------------
    def _host_step(self, dyn: DynamicInstruction, mapping_phase: bool = False) -> None:
        self.pipeline.process(dyn)
        if mapping_phase:
            self._mapping_instructions += 1
            self.pipeline.stats.mapping_instructions += 1
        else:
            self._host_instructions += 1
        window = self.builder.feed(dyn)
        if window is not None:
            self.tcache.observe(window)
        self.ccache.tick(1)

    # ------------------------------------------------------------------
    #: Sentinel: a pending anchor that carries no config-cache lookup.
    _NO_ENTRY = object()

    def _at_anchor(self, trace, i) -> int | None:
        """Handle a trace anchor; returns the next index if it consumed
        instructions (offload or mapping phase), else None."""
        pending = self._pending_anchor
        entry = self._NO_ENTRY
        if pending is not None:
            self._pending_anchor = None
            if pending[0] == i:
                predicted, entry = pending[1], pending[2]
            else:  # pragma: no cover - stale handoff, recompute
                predicted = self._predict_key(trace[i].pc)
        else:
            predicted = self._predict_key(trace[i].pc)
        if predicted is None:
            return None
        if entry is self._NO_ENTRY:
            entry = self.ccache.lookup(predicted)
            self.pipeline.stats.config_cache_reads += 1
        return self._dispatch_anchor(trace, i, predicted, entry)

    def _dispatch_anchor(self, trace, i, predicted, entry) -> int | None:
        """Post-lookup anchor handling (shared with the batch loop)."""
        cfg = self.config
        if entry is not None and entry.configuration is not None:
            if entry.ready and cfg.mode == "accelerate":
                return self._attempt_offload(trace, i, entry, predicted)
            self.ccache.predicted_again(entry)
            return None
        if entry is not None:
            return None  # known unmappable

        if self.tcache.is_hot(predicted) and cfg.mode in (
            "mapping_only",
            "accelerate",
        ):
            return self._mapping_phase(trace, i, predicted)
        return None

    # ------------------------------------------------------------------
    def _attempt_offload(self, trace, i, entry, predicted) -> int | None:
        consumed = self._offload_occurrence(trace, i, entry, predicted)
        if consumed is None:
            return None
        i += consumed
        if not memo_enabled():
            return i
        # Batched super-step (memo tier): keep offloading while the very
        # next anchor predicts the same ready configuration.  Every
        # per-invocation interaction with the host (predictor probe and
        # training, config-cache lookup and tick, fabric-pool LRU, store
        # queue, stats, events) happens exactly as in the unbatched loop;
        # the batch only skips re-entering the run loop between
        # occurrences, and each invocation replays the same memoized
        # timeline whenever its dynamic-input key repeats.
        stats = self.pipeline.stats
        n = len(trace)
        batched = 0
        while i < n and self.builder.at_anchor:
            predicted_next = self._predict_key(trace[i].pc)
            if predicted_next is None:
                self._pending_anchor = (i, None, self._NO_ENTRY)
                break
            entry_next = self.ccache.lookup(predicted_next)
            stats.config_cache_reads += 1
            if (predicted_next != predicted
                    or entry_next is not entry
                    or entry_next is None
                    or entry_next.configuration is None
                    or not entry_next.ready):
                # Streak over: hand the probe's results to the run loop so
                # the general dispatch handles this anchor exactly once.
                self._pending_anchor = (i, predicted_next, entry_next)
                break
            consumed = self._offload_occurrence(trace, i, entry, predicted)
            if consumed is None:
                # Squash or hysteresis mid-streak: the run loop would host-
                # step this instruction next; do exactly that and stop.
                self._emit_batch(predicted, batched)
                self._host_step(trace[i])
                return i + 1
            batched += 1
            stats.batched_invocations += 1
            i += consumed
        self._emit_batch(predicted, batched)
        return i

    def _emit_batch(self, key, batched: int) -> None:
        if batched and self.bus is not None:
            self.bus.emit("offload.batch", key=key, invocations=batched + 1)

    def _offload_occurrence(self, trace, i, entry, predicted) -> int | None:
        """One offload attempt at anchor ``i``; returns instructions
        consumed, or None if the occurrence ran (or will run) on the
        host.  Exactly the pre-batching ``_attempt_offload`` body."""
        stats = self.pipeline.stats
        segment = self._segment_fast(trace, i, entry.configuration, predicted)
        if segment is None:
            segment = self._actual_segment(trace, i)
            actual_key = self._segment_key(segment)
            if actual_key != predicted:
                # Embedded branch outcome mismatch: the invocation squashes
                # in ROB' and the correct path re-executes on the host.
                stats.fabric_squashes += 1
                self._squashes += 1
                # The divergent branch re-executes (and pays its mispredict
                # penalty) on the host path; the fat entry's squash itself
                # only costs the ROB' detection bubble.
                seq, dispatch = self.pipeline.macro_dispatch()
                self.pipeline.stall_fetch_until(
                    dispatch + TRACE_SQUASH_DETECT, cause="squash_branch"
                )
                if self.bus is not None:
                    self.bus.emit(
                        "offload.squash",
                        cycle=dispatch + TRACE_SQUASH_DETECT,
                        seq=seq,
                        key=predicted,
                        cause="branch",
                        branch_pc=self._divergent_branch_pc(
                            segment, predicted
                        ),
                    )
                return None
            self._note_occurrence_probe(entry.configuration, segment)
        acquired = self.pool.acquire(
            entry.configuration,
            max(self.pipeline.next_fetch_cycle, self.pipeline.fetch_barrier),
            reconfig_hysteresis=self.config.reconfig_hysteresis,
        )
        if acquired is None:
            if self.bus is not None:
                self.bus.emit("offload.defer", key=predicted)
            return None  # every fabric is protected: run on the host
        fabric, ready = acquired
        self.pipeline.note_phase("offload")
        outcome = self.offloader.offload(
            fabric, entry.configuration, segment, ready
        )
        self.pipeline.note_phase("host")
        if not outcome.success:
            self._squashes += 1
            return None  # replay the segment on the host
        entry.offload_count += 1
        self._offloaded_keys.add(entry.key)
        self.ccache.tick(len(segment))
        self.builder.resume_after(segment)
        return len(segment)

    # ------------------------------------------------------------------
    @staticmethod
    def _divergent_branch_pc(segment, predicted) -> int | None:
        """PC of the first embedded branch whose outcome diverged from the
        predicted key's outcome tuple (None for a length-only mismatch).
        Only called under a bus guard — never on the untraced path."""
        outcomes = predicted[1]
        index = 0
        for dyn in segment:
            if not dyn.is_branch:
                continue
            if index >= len(outcomes) or bool(dyn.taken) != outcomes[index]:
                return dyn.pc
            index += 1
        return None

    @staticmethod
    def _note_occurrence_probe(configuration, segment) -> None:
        """Record a key-matched occurrence's branch layout so later
        occurrences validate by spot-check instead of a full re-walk."""
        if getattr(configuration, "_occurrence_probe", None) is not None:
            return
        configuration._occurrence_probe = (
            len(segment),
            tuple(
                (offset, dyn.pc, bool(dyn.taken))
                for offset, dyn in enumerate(segment)
                if dyn.is_branch
            ),
        )

    def _segment_fast(self, trace, i, configuration, predicted):
        """Key-matched occurrence at ``i`` as a plain slice, or None.

        Sound because the trace key pins the whole instruction sequence:
        with the anchor PC equal (``predicted[0]`` *is* ``trace[i].pc``)
        and every embedded branch showing the same PC and outcome as a
        previously key-matched occurrence, the committed stream between
        branches is straight-line static code — the general walk would
        reproduce the identical segment and key.  Any mismatch (including
        a truncated trace tail) falls back to the full walk, which owns
        squash detection.
        """
        if not memo_enabled():
            return None
        probe = getattr(configuration, "_occurrence_probe", None)
        if probe is None:
            return None
        length, branches = probe
        if i + length > len(trace):
            return None
        for offset, pc, taken in branches:
            dyn = trace[i + offset]
            if dyn.pc != pc or bool(dyn.taken) is not taken:
                return None
        return trace[i:i + length]

    # ------------------------------------------------------------------
    def _mapping_phase(self, trace, i, predicted) -> int | None:
        segment = self._actual_segment(trace, i)
        actual_key = self._segment_key(segment)
        if actual_key != predicted:
            if self.bus is not None:
                self.bus.emit(
                    "map.abort", key=predicted, actual=actual_key
                )
            return None  # a mispredicted branch aborts the mapping process
        stats = self.pipeline.stats
        self.pipeline.note_phase("mapping")
        drained = self.pipeline.drain()
        configuration = self.mapper.map_trace(segment, actual_key)
        self.ccache.insert(actual_key, configuration)
        stats.config_cache_writes += 1
        if configuration is not None:
            # Mapping rides the issue unit while the trace instructions
            # execute on the host; fetch resumes once mapping finishes.
            self.pipeline.stall_fetch_until(
                drained + configuration.mapping_cycles, cause="mapping"
            )
        for dyn in segment:
            self._host_step(dyn, mapping_phase=True)
        self.pipeline.note_phase("host")
        return i + len(segment)

    # ------------------------------------------------------------------
    #: Memo entries kept before a wholesale clear bounds memory on long
    #: phase-changing workloads; steady-state working sets are far smaller.
    _PREDICT_MEMO_CAP = 1 << 15

    def _predict_key(self, pc: int) -> tuple | None:
        """Predicted trace key at ``pc``, memoized on (PC, history).

        A memo entry is valid while the predictor-table indices its walk
        read are unmodified (checked through ``BranchPredictor.update_stamp``
        — training a constituent branch invalidates the entry).
        """
        bpred = self.pipeline.bpred
        history = bpred.history
        if not self.config.predict_memo:
            return self._walk_predict_key(pc, history)[0]
        stats = self.pipeline.stats
        entry = self._predict_memo.get((pc, history))
        if entry is not None:
            key, deps = entry
            stamps = bpred.update_stamp
            for index, stamp in deps:
                if stamps[index] != stamp:
                    break
            else:
                stats.predict_memo_hits += 1
                return key
        stats.predict_memo_misses += 1
        key, deps = self._walk_predict_key(pc, history)
        memo = self._predict_memo
        if len(memo) >= self._PREDICT_MEMO_CAP:
            memo.clear()
        memo[(pc, history)] = (key, deps)
        return key

    def _walk_predict_key(self, pc: int, history: int) -> tuple:
        """Front-end walk of the static program under predicted branches.

        Hops branch-to-branch over the program's precomputed
        ``StaticSegment`` summaries instead of probing ``by_pc`` per
        instruction.  Returns ``(key_or_None, stamp_deps)`` where
        ``stamp_deps`` names the predictor-table state the walk read.
        """
        program = self.program
        bpred = self.pipeline.bpred
        cfg = self.config
        trace_length = cfg.trace_length
        deps: list[tuple[int, int]] = []
        outcomes: list[bool] = []
        length = 0
        cursor = pc
        while length < trace_length:
            seg = program.segment_from(cursor)
            remaining = trace_length - length
            if seg.halts:
                if seg.count >= remaining:
                    length = trace_length  # cap reached before the HALT
                    break
                return None, tuple(deps)
            if seg.count > remaining or seg.branch_pc is None:
                length = trace_length  # cap splits the block mid-run
                break
            length += seg.count
            taken, dep = bpred.peek_with_deps(seg.branch_pc, history)
            deps.extend(dep)
            history = bpred.shift_history(history, taken)
            outcomes.append(taken)
            if len(outcomes) >= cfg.max_branches:
                break
            cursor = seg.taken_pc if taken else seg.fall_pc
            if (cfg.smart_trace_selection
                    and program.distance_to_next_branch(
                        cursor, trace_length + 1)
                    > trace_length - length):
                break  # next block cannot fit: end the trace here
        return (pc, tuple(outcomes), length), tuple(deps)

    def _actual_segment(self, trace, i) -> list[DynamicInstruction]:
        """The oracle-path trace occurrence starting at index ``i``."""
        cfg = self.config
        segment: list[DynamicInstruction] = []
        branches = 0
        for j in range(i, min(i + cfg.trace_length, len(trace))):
            dyn = trace[j]
            if dyn.opcode is Opcode.HALT:
                break
            segment.append(dyn)
            if dyn.is_branch:
                branches += 1
                if branches >= cfg.max_branches:
                    break
                if (cfg.smart_trace_selection
                        and self.builder.distance_to_next_branch(dyn.next_pc)
                        > cfg.trace_length - len(segment)):
                    break
        return segment

    @staticmethod
    def _segment_key(segment) -> tuple | None:
        if not segment:
            return None
        outcomes = tuple(bool(d.taken) for d in segment if d.is_branch)
        return (segment[0].pc, outcomes, len(segment))

    # ------------------------------------------------------------------
    def _finish(self) -> DynaSpAMResult:
        self.pipeline.stats.fabric_configurations = self.pool.reconfigurations
        pipeline_result = self.pipeline.finish()
        return DynaSpAMResult(
            pipeline=pipeline_result,
            host_instructions=self._host_instructions,
            mapping_instructions=self._mapping_instructions,
            offloaded_instructions=self.pipeline.stats.offloaded_instructions,
            mapped_traces=self.ccache.mapped_trace_count,
            offloaded_traces=len(self._offloaded_keys),
            lifetimes=self.pool.lifetimes(),
            squashes=self._squashes,
            reconfigurations=self.pool.reconfigurations,
            fabric_utilization=self.pool.utilization(),
        )
