"""Side reorder buffer (ROB′) for fat atomic trace invocations.

An offloaded trace occupies a single main-ROB entry whose index field
points at a ROB′ entry holding the invocation's renamed live-out values,
branch results, and buffered stores (paper Section 3.2).  The entry commits
only when every live-out and branch result has drained from the output
FIFOs; a branch mis-speculation or memory-order violation squashes it and
broadcasts the squash to all pipeline stages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SideEntryState(enum.Enum):
    PENDING = "pending"
    COMPLETE = "complete"
    COMMITTED = "committed"
    SQUASHED = "squashed"


@dataclass
class SideROBEntry:
    """One trace invocation's architectural side effects."""

    seq: int                         # main-ROB sequence number
    trace_key: tuple
    live_outs: dict[str, int] = field(default_factory=dict)   # reg -> ready cycle
    branch_results: list[bool] = field(default_factory=list)
    buffered_stores: list[tuple[int, float | int | None]] = field(
        default_factory=list
    )                                # (address, value-if-tracked)
    state: SideEntryState = SideEntryState.PENDING
    complete_cycle: int = 0
    commit_cycle: int = 0

    @property
    def can_commit(self) -> bool:
        return self.state is SideEntryState.COMPLETE


class SideROB:
    """The ROB′ structure plus commit/squash bookkeeping."""

    def __init__(self, entries: int = 16) -> None:
        self.capacity = entries
        self._entries: list[SideROBEntry] = []
        self.committed = 0
        self.squashed = 0
        #: High-water occupancy mark (telemetry; ``repro explain``).
        self.peak_occupancy = 0

    def allocate(self, seq: int, trace_key: tuple) -> SideROBEntry:
        if len(self._entries) >= self.capacity:
            raise RuntimeError("ROB' full")
        entry = SideROBEntry(seq=seq, trace_key=trace_key)
        self._entries.append(entry)
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        return entry

    def mark_complete(
        self,
        entry: SideROBEntry,
        cycle: int,
        live_outs: dict[str, int],
        branch_results,
        stores,
    ) -> None:
        entry.live_outs = dict(live_outs)
        entry.branch_results = list(branch_results)
        entry.buffered_stores = list(stores)
        entry.complete_cycle = cycle
        entry.state = SideEntryState.COMPLETE

    def commit(self, entry: SideROBEntry, cycle: int) -> None:
        if not entry.can_commit:
            raise RuntimeError("cannot commit an incomplete ROB' entry")
        entry.state = SideEntryState.COMMITTED
        entry.commit_cycle = cycle
        self.committed += 1
        self._entries.remove(entry)

    def squash(self, entry: SideROBEntry, cycle: int) -> None:
        entry.state = SideEntryState.SQUASHED
        entry.commit_cycle = cycle
        self.squashed += 1
        if entry in self._entries:
            self._entries.remove(entry)

    @property
    def occupancy(self) -> int:
        return len(self._entries)
