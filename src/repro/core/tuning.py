"""Workload-driven fabric tuning (the paper's stated future work).

"In future work, research will be done to adjust the number of functional
units according to instruction type distributions of the benchmarks"
(Section 5.2, Area).  ``FabricTuner`` implements that study: given one or
more workload profiles, it proposes a per-stripe functional-unit mix that
tracks the observed instruction distribution under a PE budget, and
``evaluate_mix`` measures what a proposed geometry does to performance and
area.

Constraint inherited from Algorithm 1: the host issue unit maps its
functional units one-to-one onto the frontier stripe's PEs, so every pool
keeps at least one PE per stripe (otherwise traces containing that class
could never map).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.framework import DynaSpAM, DynaSpAMConfig
from repro.energy.area import FabricAreaModel
from repro.fabric.config import FabricConfig
from repro.ooo.fastpath import make_pipeline
from repro.ooo.fus import POOL_NAMES
from repro.workloads.characterize import pool_demand, WorkloadProfile


@dataclass
class TunedMix:
    """A proposed per-stripe pool sizing."""

    pools: dict[str, int]
    pe_budget: int

    @property
    def total_pes(self) -> int:
        return sum(self.pools.values())


@dataclass
class MixEvaluation:
    """Outcome of simulating a benchmark on a tuned fabric."""

    speedup: float
    fabric_area_mm2: float
    mapped_traces: int
    offloaded_traces: int
    fabric_coverage: float

    @property
    def speedup_per_mm2(self) -> float:
        return self.speedup / self.fabric_area_mm2 if self.fabric_area_mm2 else 0.0


class FabricTuner:
    """Largest-remainder apportionment of PEs to pools by demand."""

    def __init__(self, pe_budget: int = 12) -> None:
        if pe_budget < len(POOL_NAMES):
            raise ValueError(
                f"budget must cover one PE per pool ({len(POOL_NAMES)})"
            )
        self.pe_budget = pe_budget

    def propose(self, profiles: list[WorkloadProfile]) -> TunedMix:
        """Size stripe pools proportionally to aggregate demand."""
        if not profiles:
            raise ValueError("need at least one workload profile")
        demand = {pool: 0.0 for pool in POOL_NAMES}
        for profile in profiles:
            for pool, value in pool_demand(profile).items():
                demand[pool] += value
        total_demand = sum(demand.values()) or 1.0

        # One guaranteed PE per pool; apportion the rest by demand.
        pools = {pool: 1 for pool in POOL_NAMES}
        spare = self.pe_budget - len(POOL_NAMES)
        shares = {
            pool: spare * demand[pool] / total_demand for pool in POOL_NAMES
        }
        for pool in POOL_NAMES:
            take = int(shares[pool])
            pools[pool] += take
            shares[pool] -= take
        leftovers = sorted(shares, key=shares.get, reverse=True)
        remaining = self.pe_budget - sum(pools.values())
        for pool in leftovers[:remaining]:
            pools[pool] += 1
        return TunedMix(pools=pools, pe_budget=self.pe_budget)

    def fabric_config(self, mix: TunedMix,
                      base: FabricConfig | None = None) -> FabricConfig:
        """Instantiate a fabric geometry from a tuned mix."""
        base = base or FabricConfig()
        return FabricConfig(
            num_stripes=base.num_stripes,
            stripe_pools=dict(mix.pools),
            pass_regs_per_fu=base.pass_regs_per_fu,
            fifo_depth=base.fifo_depth,
            livein_fifos=base.livein_fifos,
            liveout_fifos=base.liveout_fifos,
        )


def evaluate_mix(
    trace_result,
    fabric_config: FabricConfig,
    ds_config: DynaSpAMConfig | None = None,
) -> MixEvaluation:
    """Simulate one benchmark on a candidate fabric geometry.

    Note: the one-to-one FU<->PE mapping means a tuned stripe mix also
    implies a matching host issue-port mix; we keep the host fixed (its
    Table 4 configuration) and let the mapper see the tuned stripes, which
    isolates the fabric-side effect.
    """
    baseline = make_pipeline().run_trace(trace_result.trace)
    machine = DynaSpAM(
        fabric_config=fabric_config,
        ds_config=ds_config or DynaSpAMConfig(),
    )
    result = machine.run(trace_result.trace, trace_result.program)
    area = FabricAreaModel(fabric_config).fabric_area_mm2()
    return MixEvaluation(
        speedup=baseline.cycles / result.cycles if result.cycles else 0.0,
        fabric_area_mm2=area,
        mapped_traces=result.mapped_traces,
        offloaded_traces=result.offloaded_traces,
        fabric_coverage=result.coverage["fabric"],
    )
