"""PriorityGen — Algorithm 2 and the Table 2 score levels.

For a (functional unit, ready instruction) pair, the generator consults the
status tables and produces a priority score:

=====  ======================================================================
score  meaning (paper Table 2)
=====  ======================================================================
 3     two operands are live-ins, and the PE has two input ports
 2     both operands come straight from the previous stripe's pass registers
 1     one operand reused, the other needs a newly routed datapath
 0     no reuse, but every operand can be routed (or delivered by the bus)
-1     infeasible: an operand can be neither reused nor routed, or the PE
       lacks input ports for the required live-ins
=====  ======================================================================

Live-in operands are delivered over the global bus into the PE's input
ports; they are never in the ReuseSet (footnote 2), so they count toward
the "routable" tally provided the PE has port capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tables import MappingTables, Token
from repro.fabric.pe import PE

PRIORITY_TWO_LIVEIN = 3
PRIORITY_FULL_REUSE = 2
PRIORITY_PART_REUSE = 1
PRIORITY_ROUTED = 0
PRIORITY_INFEASIBLE = -1

#: Human-readable Table 2 level names (trace events and reports).
PRIORITY_NAMES = {
    PRIORITY_TWO_LIVEIN: "two_livein",
    PRIORITY_FULL_REUSE: "full_reuse",
    PRIORITY_PART_REUSE: "partial_reuse",
    PRIORITY_ROUTED: "routed",
    PRIORITY_INFEASIBLE: "infeasible",
}


def score_name(score: int) -> str:
    """The Table 2 label of a priority score (falls back to the number)."""
    return PRIORITY_NAMES.get(score, str(score))


@dataclass
class OperandPlan:
    """How one operand will be delivered if this placement is chosen."""

    token: Token
    action: str  # "reuse" | "route" | "livein"


@dataclass
class PlacementPlan:
    """Score plus the operand delivery plan for one (PE, inst) pair."""

    score: int
    operands: list[OperandPlan]


def priority_gen(
    pe: PE,
    operand_tokens: list[Token],
    tables: MappingTables,
    frontier: int,
) -> PlacementPlan:
    """Algorithm 2: score placing an instruction with ``operand_tokens``
    onto ``pe`` in the frontier stripe."""
    boundary = frontier  # PEs in stripe s read from boundary s
    can_reuse = 0
    can_route = 0
    need_inputs = 0
    plans: list[OperandPlan] = []

    for token in operand_tokens:
        if token[0] == "livein":
            need_inputs += 1
            plans.append(OperandPlan(token, "livein"))
        elif tables.in_reuse_set(token, boundary):
            can_reuse += 1
            plans.append(OperandPlan(token, "reuse"))
        elif tables.can_route(token, boundary):
            can_route += 1
            plans.append(OperandPlan(token, "route"))
        else:
            return PlacementPlan(PRIORITY_INFEASIBLE, [])

    num_ops = len(operand_tokens)

    if need_inputs == 2:
        if pe.input_ports >= 2:
            return PlacementPlan(PRIORITY_TWO_LIVEIN, plans)
        return PlacementPlan(PRIORITY_INFEASIBLE, [])
    if need_inputs > pe.input_ports:
        return PlacementPlan(PRIORITY_INFEASIBLE, [])

    # Live-ins arrive over the bus: they count as routable deliveries.
    routable = can_route + need_inputs
    if num_ops == can_reuse == 2:
        return PlacementPlan(PRIORITY_FULL_REUSE, plans)
    if num_ops == routable:
        return PlacementPlan(PRIORITY_ROUTED, plans)
    if num_ops == can_reuse + routable:
        return PlacementPlan(PRIORITY_PART_REUSE, plans)
    return PlacementPlan(PRIORITY_INFEASIBLE, [])
