"""Multi-fabric management with LRU reconfiguration (paper Section 5.2).

Table 5 models 1, 2, and 4 on-chip fabrics (and 8 for the BFS case study):
more fabrics keep more configurations resident, lengthening average
configuration lifetime for trace-diverse programs like BFS.
"""

from __future__ import annotations

from repro.fabric.config import FabricConfig
from repro.fabric.configuration import Configuration
from repro.fabric.fabric import SpatialFabric


class FabricPool:
    """A set of fabrics managed with an LRU reconfiguration policy."""

    def __init__(
        self,
        num_fabrics: int = 1,
        fabric_config: FabricConfig | None = None,
        bus=None,
    ) -> None:
        if num_fabrics < 1:
            raise ValueError("need at least one fabric")
        self.fabric_config = fabric_config or FabricConfig()
        self.fabrics = [
            SpatialFabric(self.fabric_config, fabric_id=i, bus=bus)
            for i in range(num_fabrics)
        ]
        self._lru: list[int] = list(range(num_fabrics))
        self.reconfigurations = 0

    def _touch(self, fabric_id: int) -> None:
        self._lru.remove(fabric_id)
        self._lru.append(fabric_id)

    def acquire(
        self,
        configuration: Configuration,
        cycle: int,
        reconfig_hysteresis: int = 0,
    ) -> tuple[SpatialFabric, int] | None:
        """Return (fabric, ready cycle) for an invocation of ``configuration``.

        Reuses a fabric already holding the configuration; otherwise
        reconfigures the least-recently-used fabric.  With a nonzero
        ``reconfig_hysteresis``, a fabric reconfigured within the last that
        many *cycles* is not evicted — the caller runs the trace on the
        host instead (the paper's saturating-counter filtering exists "to
        prevent frequent reconfiguration").  Returns None when every fabric
        is protected.
        """
        key = configuration.trace_key
        for fabric in self.fabrics:
            if fabric.is_configured_for(key):
                self._touch(fabric.fabric_id)
                return fabric, cycle
        victim = None
        for fabric_id in self._lru:
            candidate = self.fabrics[fabric_id]
            if (
                candidate.current_key is None
                or cycle - candidate.configured_at >= reconfig_hysteresis
            ):
                victim = candidate
                break
        if victim is None:
            return None
        ready = victim.configure(configuration, cycle)
        self.reconfigurations += 1
        self._touch(victim.fabric_id)
        return victim, ready

    def lifetimes(self) -> list[int]:
        """Invocations-per-configuration samples across all fabrics."""
        samples: list[int] = []
        for fabric in self.fabrics:
            samples.extend(fabric.flush_lifetime())
        return samples

    @property
    def total_invocations(self) -> int:
        return sum(f.total_invocations for f in self.fabrics)
