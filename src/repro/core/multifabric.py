"""Multi-fabric management with LRU reconfiguration (paper Section 5.2).

Table 5 models 1, 2, and 4 on-chip fabrics (and 8 for the BFS case study):
more fabrics keep more configurations resident, lengthening average
configuration lifetime for trace-diverse programs like BFS.
"""

from __future__ import annotations

from repro.fabric.config import FabricConfig
from repro.fabric.configuration import Configuration
from repro.fabric.fabric import SpatialFabric


class FabricPool:
    """A set of fabrics managed with an LRU reconfiguration policy."""

    def __init__(
        self,
        num_fabrics: int = 1,
        fabric_config: FabricConfig | None = None,
        bus=None,
    ) -> None:
        if num_fabrics < 1:
            raise ValueError("need at least one fabric")
        self.fabric_config = fabric_config or FabricConfig()
        self.fabrics = [
            SpatialFabric(self.fabric_config, fabric_id=i, bus=bus)
            for i in range(num_fabrics)
        ]
        self._lru: list[int] = list(range(num_fabrics))
        self.reconfigurations = 0
        # Configuration reuse distance: reconfigurations between two loads
        # of the same trace key, across the whole pool.  A reload with a
        # short distance is thrash the config cache / more fabrics would
        # have absorbed (repro.obs.accounting surfaces the summary).
        self._load_seq = 0
        self._last_loaded: dict[tuple, int] = {}
        self.reuse_distances: list[int] = []

    def _touch(self, fabric_id: int) -> None:
        self._lru.remove(fabric_id)
        self._lru.append(fabric_id)

    def acquire(
        self,
        configuration: Configuration,
        cycle: int,
        reconfig_hysteresis: int = 0,
    ) -> tuple[SpatialFabric, int] | None:
        """Return (fabric, ready cycle) for an invocation of ``configuration``.

        Reuses a fabric already holding the configuration; otherwise
        reconfigures the least-recently-used fabric.  With a nonzero
        ``reconfig_hysteresis``, a fabric reconfigured within the last that
        many *cycles* is not evicted — the caller runs the trace on the
        host instead (the paper's saturating-counter filtering exists "to
        prevent frequent reconfiguration").  Returns None when every fabric
        is protected.
        """
        key = configuration.trace_key
        for fabric in self.fabrics:
            if fabric.is_configured_for(key):
                self._touch(fabric.fabric_id)
                return fabric, cycle
        victim = None
        for fabric_id in self._lru:
            candidate = self.fabrics[fabric_id]
            if (
                candidate.current_key is None
                or cycle - candidate.configured_at >= reconfig_hysteresis
            ):
                victim = candidate
                break
        if victim is None:
            return None
        ready = victim.configure(configuration, cycle)
        self.reconfigurations += 1
        self._load_seq += 1
        last = self._last_loaded.get(key)
        if last is not None:
            self.reuse_distances.append(self._load_seq - last)
        self._last_loaded[key] = self._load_seq
        self._touch(victim.fabric_id)
        return victim, ready

    def lifetimes(self) -> list[int]:
        """Invocations-per-configuration samples across all fabrics."""
        samples: list[int] = []
        for fabric in self.fabrics:
            samples.extend(fabric.flush_lifetime())
        return samples

    @property
    def total_invocations(self) -> int:
        return sum(f.total_invocations for f in self.fabrics)

    def utilization(self) -> dict:
        """Pool-wide fabric occupancy summary (JSON-ready).

        Every fabric in the pool shares one geometry, so per-stripe counts
        merge by index.  Ratios are invocation-weighted: an invocation of a
        configuration occupying 10 of 192 PEs contributes 10/192 to
        ``placed_pe_ratio`` regardless of how long it ran.
        """
        cfg = self.fabric_config
        invocations = self.total_invocations
        num_stripes = cfg.num_stripes
        placed = [0] * num_stripes
        touched = [0] * num_stripes
        placed_pe_invocations = 0
        filled_stripe_invocations = 0
        for fabric in self.fabrics:
            for stripe in range(num_stripes):
                placed[stripe] += fabric.stripe_placed_invocations[stripe]
                touched[stripe] += fabric.stripe_invocations[stripe]
            placed_pe_invocations += fabric.placed_pe_invocations
            filled_stripe_invocations += fabric.filled_stripe_invocations
        total_pes = sum(cfg.pes_in_stripe(s) for s in range(num_stripes))
        per_stripe = [
            {
                "stripe": stripe,
                "pes": cfg.pes_in_stripe(stripe),
                "placed_pe_invocations": placed[stripe],
                "invocations": touched[stripe],
                "occupancy": (
                    placed[stripe]
                    / (cfg.pes_in_stripe(stripe) * invocations)
                    if invocations else 0.0
                ),
            }
            for stripe in range(num_stripes)
        ]
        reuse: dict = {"count": len(self.reuse_distances)}
        if self.reuse_distances:
            reuse["mean"] = (
                sum(self.reuse_distances) / len(self.reuse_distances))
            reuse["max"] = max(self.reuse_distances)
        return {
            "num_fabrics": len(self.fabrics),
            "num_stripes": num_stripes,
            "total_pes": total_pes,
            "total_invocations": invocations,
            "reconfigurations": self.reconfigurations,
            "placed_pe_ratio": (
                placed_pe_invocations / (total_pes * invocations)
                if invocations else 0.0
            ),
            "stripe_fill": (
                filled_stripe_invocations / (num_stripes * invocations)
                if invocations else 0.0
            ),
            "per_stripe": per_stripe,
            "reuse_distance": reuse,
        }
