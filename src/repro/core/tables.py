"""Mapping status tables (paper Section 4.2, Figure 6).

Values inside a trace are identified by *tokens*: ``("pos", q)`` for the
result of the trace instruction at position ``q``, ``("livein", reg)`` for
a live-in register.  Tokens sidestep the register-renaming ambiguity when a
trace redefines the same architectural register.

* ``ProdTable``    — CAM: token -> producing stripe (the PE location);
* ``ReuseSet``     — per stripe *boundary* b, the tokens whose values reach
  the input interconnect of stripe b (outputs of stripe b-1 are there for
  free through the direct wires; farther values occupy pass registers);
* ``OverallUsage`` — pass-register (datapath channel) occupancy per stripe;
* ``LiveOutTable`` — final definitions of architectural registers (these
  configure the output FIFOs);
* ``LastUsedLocation`` — deepest stripe where each token is consumed, used
  to trim routing propagated for killed potential live-outs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

Token = tuple  # ("pos", int) | ("livein", str)


def pos_token(pos: int) -> Token:
    return ("pos", pos)


def livein_token(reg: str) -> Token:
    return ("livein", reg)


@dataclass
class MappingTables:
    """All status tables for one in-progress mapping.

    ``channels_per_stripe`` accepts a single capacity (homogeneous
    fabrics) or a per-stripe sequence (heterogeneous, e.g. CCA-like
    triangles).
    """

    num_stripes: int
    channels_per_stripe: int | list[int]

    prod_stripe: dict[Token, int] = field(default_factory=dict)  # ProdTable
    reuse: list[set] = field(default_factory=list)               # ReuseSet per boundary
    channels_used: list[int] = field(default_factory=list)       # OverallUsage
    live_out: dict[str, int] = field(default_factory=dict)       # LiveOutTable
    last_used: dict[Token, int] = field(default_factory=dict)    # LastUsedLocation
    total_channels_allocated: int = 0

    def __post_init__(self) -> None:
        # Boundary b feeds stripe b; boundary 0 is the live-in interface.
        self.reuse = [set() for _ in range(self.num_stripes + 1)]
        self.channels_used = [0] * self.num_stripes
        if isinstance(self.channels_per_stripe, int):
            self._capacity = [self.channels_per_stripe] * self.num_stripes
        else:
            self._capacity = list(self.channels_per_stripe)
            if len(self._capacity) != self.num_stripes:
                raise ValueError("need one channel capacity per stripe")

    # ------------------------------------------------------------------
    # ProdTable
    # ------------------------------------------------------------------
    def producer_stripe(self, token: Token) -> int | None:
        return self.prod_stripe.get(token)

    def define(self, token: Token, stripe: int) -> None:
        self.prod_stripe[token] = stripe
        # A producer's output reaches the next boundary through the direct
        # wires at no channel cost (Figure 4 connections 1-3).
        if stripe + 1 <= self.num_stripes:
            self.reuse[stripe + 1].add(token)

    # ------------------------------------------------------------------
    # ReuseSet / OverallUsage
    # ------------------------------------------------------------------
    def in_reuse_set(self, token: Token, boundary: int) -> bool:
        return token in self.reuse[boundary]

    def last_boundary_available(self, token: Token, limit: int) -> int | None:
        """Highest boundary <= ``limit`` where the token's value exists."""
        for boundary in range(limit, 0, -1):
            if token in self.reuse[boundary]:
                return boundary
        return None

    def can_route(self, token: Token, to_boundary: int) -> bool:
        """Can the value be carried (via new pass registers) to
        ``to_boundary``?  Requires a free channel in every stripe between
        its last available boundary and the target."""
        if token not in self.prod_stripe:
            return False
        available = self.last_boundary_available(token, to_boundary)
        if available is None:
            return False
        if available == to_boundary:
            return True
        return all(
            self.channels_used[stripe] < self._capacity[stripe]
            for stripe in range(available, to_boundary)
        )

    def allocate_route(self, token: Token, to_boundary: int) -> int:
        """Allocate pass registers carrying the value to ``to_boundary``
        (Algorithm 3: the new datapath joins the ReuseSet of every stripe
        it crosses).  Returns the number of channels consumed."""
        available = self.last_boundary_available(token, to_boundary)
        if available is None:
            raise ValueError(f"token {token} has no value to route")
        consumed = 0
        for stripe in range(available, to_boundary):
            if self.channels_used[stripe] >= self._capacity[stripe]:
                raise ValueError(f"no channel free in stripe {stripe}")
            self.channels_used[stripe] += 1
            consumed += 1
            self.reuse[stripe + 1].add(token)
        self.total_channels_allocated += consumed
        return consumed

    # ------------------------------------------------------------------
    # Frontier advance: auto-propagation of potential live-outs
    # ------------------------------------------------------------------
    def propagate(self, from_boundary: int, live_tokens) -> None:
        """Carry still-live values one boundary forward, capacity
        permitting (Section 4.2: potential live-outs are automatically
        routed to the next stripe to increase the probability of reuse)."""
        if from_boundary + 1 > self.num_stripes:
            return
        stripe = from_boundary  # the stripe whose pass registers latch
        for token in self.reuse[from_boundary]:
            if token not in live_tokens:
                continue
            if token in self.reuse[from_boundary + 1]:
                continue
            if self.channels_used[stripe] >= self._capacity[stripe]:
                break
            self.channels_used[stripe] += 1
            self.total_channels_allocated += 1
            self.reuse[from_boundary + 1].add(token)

    # ------------------------------------------------------------------
    # LiveOutTable / LastUsedLocation
    # ------------------------------------------------------------------
    def note_use(self, token: Token, stripe: int) -> None:
        previous = self.last_used.get(token, -1)
        if stripe > previous:
            self.last_used[token] = stripe

    def set_live_out(self, reg: str, pos: int) -> None:
        self.live_out[reg] = pos
