"""T-Cache: hot-trace detection from the committed instruction stream.

A trace is anchored at the instruction following a committed conditional
branch (or at program start) and extends through at most three conditional
branches, capped at a preset length (paper Section 3.1: "DynaSpAM only
tracks three branch instructions in the sequence"; Figure 7 sweeps the cap
from 16 to 40).  Its identity is ``(anchor PC, branch-outcome tuple)``.
On every trace close the T-Cache bumps a saturating counter for that
identity; past the threshold the trace is flagged hot.  Counters are
periodically cleared so stale traces do not hold the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import DynamicInstruction
from repro.isa.opcodes import Opcode

#: Closed vocabulary of window-close reasons.  ``tcache.window`` decision
#: records aggregate on these codes.
WINDOW_CLOSE_REASONS: dict[str, str] = {
    "branch_limit": "the window reached its conditional-branch budget",
    "smart_close": "static lookahead closed at a branch because the next "
                   "block could not fit under the length cap",
    "length_cap": "the window hit the trace-length cap",
}


@dataclass
class TraceWindow:
    """A closed candidate trace: a run of committed instructions."""

    anchor_pc: int
    start_seq: int
    instructions: list[DynamicInstruction] = field(default_factory=list)
    #: Conditional branches appended so far (tracked incrementally: the
    #: builder probes this on every committed instruction).
    branches: int = 0
    #: Why the builder closed this window — a :data:`WINDOW_CLOSE_REASONS`
    #: key, set at close time (None while the window is still open).
    close_reason: str | None = None

    @property
    def outcomes(self) -> tuple[bool, ...]:
        return tuple(
            bool(d.taken) for d in self.instructions if d.is_branch
        )

    @property
    def key(self) -> tuple:
        return (self.anchor_pc, self.outcomes, len(self.instructions))

    @property
    def length(self) -> int:
        return len(self.instructions)


class TraceWindowBuilder:
    """Streaming splitter of the committed stream into candidate traces.

    Trace anchors sit immediately after a committed conditional branch (or
    at program start).  A window closes at its third conditional branch or
    at the length cap; if the cap lands mid-block, the instructions until
    the next branch commit belong to no trace (they always execute on the
    host — the effect behind Figure 7's coverage dips for NW and SRAD),
    and the next window anchors after that branch.
    """

    def __init__(
        self,
        max_length: int = 32,
        max_branches: int = 3,
        program=None,
    ) -> None:
        if max_length < 1:
            raise ValueError("trace length cap must be positive")
        self.max_length = max_length
        self.max_branches = max_branches
        #: The paper's future-work "more intelligent instruction
        #: selection": with a program for static lookahead, a window closes
        #: at a branch whenever the following block cannot fit under the
        #: cap — so the next trace anchors immediately (no dead zone).
        self.program = program
        self._window: TraceWindow | None = None
        self._awaiting_branch = False

    def distance_to_next_branch(self, pc: int) -> int:
        """Static instruction count from ``pc`` through the next
        conditional branch (inclusive), following unconditional jumps.
        Returns ``max_length + 1`` if none is reachable within the cap.

        Delegates to the program's precomputed segment table.
        """
        return self.program.distance_to_next_branch(pc, self.max_length + 1)

    def _should_close_at_branch(self, window: TraceWindow,
                                next_pc: int) -> bool:
        """Smart selection: close if the next block cannot fit."""
        if self.program is None:
            return False
        remaining = self.max_length - window.length
        return self.distance_to_next_branch(next_pc) > remaining

    @property
    def at_anchor(self) -> bool:
        """True when the next fed instruction would start a new window."""
        return self._window is None and not self._awaiting_branch

    def feed(self, dyn: DynamicInstruction) -> TraceWindow | None:
        """Add one committed instruction; return a window if one closed."""
        if dyn.opcode is Opcode.HALT:
            # HALT never belongs to a hot trace; discard the open window.
            self._window = None
            self._awaiting_branch = False
            return None
        if self._awaiting_branch:
            if dyn.is_branch:
                self._awaiting_branch = False
            return None
        if self._window is None:
            self._window = TraceWindow(anchor_pc=dyn.pc, start_seq=dyn.seq)
        window = self._window
        window.instructions.append(dyn)
        if dyn.is_branch:
            window.branches += 1
        if window.branches >= self.max_branches:
            self._window = None
            window.close_reason = "branch_limit"
            return window
        if dyn.is_branch and self._should_close_at_branch(window, dyn.next_pc):
            self._window = None
            window.close_reason = "smart_close"
            return window
        if window.length >= self.max_length:
            self._window = None
            self._awaiting_branch = not dyn.is_branch
            window.close_reason = "length_cap"
            return window
        return None

    def resume_after(self, segment: list[DynamicInstruction]) -> None:
        """Realign anchor state after a segment was consumed externally
        (an offloaded invocation bypasses the commit stream)."""
        self._window = None
        self._awaiting_branch = bool(segment) and not segment[-1].is_branch

    def reset(self) -> None:
        self._window = None
        self._awaiting_branch = False


class TCache:
    """Saturating-counter table of trace identities."""

    def __init__(
        self,
        entries: int = 256,
        counter_bits: int = 3,
        hot_threshold: int = 3,
        clear_interval: int = 100_000,
        bus=None,
    ) -> None:
        self.entries = entries
        self.counter_max = (1 << counter_bits) - 1
        self.hot_threshold = hot_threshold
        self.clear_interval = clear_interval
        self._counters: dict[tuple, int] = {}
        self._hot: set[tuple] = set()
        self._since_clear = 0
        self.lookups = 0
        self.insertions = 0
        self.clears = 0
        #: Optional ``repro.obs.EventBus`` (None = tracing disabled).
        self.bus = bus

    def observe(self, window: TraceWindow) -> bool:
        """Record a closed trace; returns True if it is (now) hot."""
        key = window.key
        bus = self.bus
        self.lookups += 1
        count = self._counters.get(key)
        if count is None:
            if len(self._counters) >= self.entries:
                # Direct-mapped-style replacement: evict an arbitrary cold
                # entry (insertion-order first, as a FIFO approximation).
                victim = next(iter(self._counters))
                del self._counters[victim]
                self._hot.discard(victim)
            count = 0
            self.insertions += 1
            if bus is not None:
                bus.emit("tcache.detect", key=key, length=window.length)
        count = min(count + 1, self.counter_max)
        self._counters[key] = count
        if count >= self.hot_threshold and key not in self._hot:
            self._hot.add(key)
            if bus is not None:
                bus.emit("tcache.hot", key=key, count=count)
        self._tick()
        hot = key in self._hot
        if bus is not None:
            # The per-candidate terminal decision record: every window fed
            # into the T-Cache produces exactly one of these.
            bus.emit(
                "tcache.window",
                key=key,
                reason=window.close_reason,
                hot=hot,
            )
        return hot

    def is_hot(self, key: tuple) -> bool:
        return key in self._hot

    def _tick(self) -> None:
        self._since_clear += 1
        if self._since_clear >= self.clear_interval:
            self._since_clear = 0
            self.clears += 1
            if self.bus is not None:
                self.bus.emit(
                    "tcache.clear",
                    entries=len(self._counters),
                    hot=len(self._hot),
                )
            # Periodic clearing resets counters *and* demotes hot flags
            # ("periodically cleared to prevent traces that execute
            # infrequently from occupying the spatial fabric"): a genuinely
            # hot trace re-warms within a few windows, an infrequent one
            # stops triggering mapping phases.
            self._counters = {k: 0 for k in self._counters}
            self._hot.clear()

    @property
    def hot_count(self) -> int:
        return len(self._hot)
