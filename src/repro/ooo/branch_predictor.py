"""Branch direction and target prediction.

A tournament direction predictor (bimodal + gshare with a per-PC chooser),
a direct-mapped BTB for taken-branch targets, and a return-address stack
(unused by the call-free kernel ISA but part of the Table 4 configuration).
The bimodal side learns strongly biased loop branches within a couple of
iterations; the gshare side captures history-correlated patterns; the
chooser favors whichever has been right.  The fetch stage of DynaSpAM also
queries this predictor for the *next three branch outcomes* when deciding
whether a hot trace is about to execute (paper Section 3.1).
"""

from __future__ import annotations

from repro.ooo.config import CoreConfig


class SaturatingCounter:
    """An n-bit saturating counter (default 2-bit)."""

    __slots__ = ("value", "maximum")

    def __init__(self, bits: int = 2, value: int = 0) -> None:
        self.maximum = (1 << bits) - 1
        self.value = value

    def increment(self) -> None:
        if self.value < self.maximum:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1

    @property
    def taken(self) -> bool:
        return self.value > self.maximum // 2


class BranchPredictor:
    """Tournament (bimodal/gshare) + BTB + RAS, trace-driven semantics."""

    def __init__(self, config: CoreConfig | None = None) -> None:
        config = config or CoreConfig()
        self.kind = getattr(config, "predictor_kind", "tournament")
        if self.kind not in ("tournament", "bimodal", "gshare"):
            raise ValueError(f"unknown predictor kind {self.kind!r}")
        self.index_bits = config.predictor_bits
        self.table_size = 1 << self.index_bits
        self.mask = self.table_size - 1
        self.gshare = [1] * self.table_size    # weakly not-taken
        self.bimodal = [1] * self.table_size
        self.chooser = [1] * self.table_size   # <2 favors bimodal
        #: Per-index modification stamp, bumped whenever any of the three
        #: direction tables changes value at that index.  DynaSpAM's
        #: predicted-key memo records the stamps of the indices a cached
        #: walk read; a stamp mismatch invalidates the memo entry.
        self.update_stamp = [0] * self.table_size
        self.history = 0
        self.btb: set[int] = set()
        self.btb_entries = config.btb_entries
        self.ras: list[int] = []
        self.ras_entries = config.ras_entries
        self.lookups = 0
        self.mispredicts = 0
        self.btb_misses = 0

    # ------------------------------------------------------------------
    # Direction prediction
    # ------------------------------------------------------------------
    def _indices(self, pc: int, history: int) -> tuple[int, int]:
        pc_index = (pc >> 2) & self.mask
        gshare_index = pc_index ^ (history & self.mask)
        return pc_index, gshare_index

    def _predict(self, pc: int, history: int) -> bool:
        pc_index, gshare_index = self._indices(pc, history)
        if self.kind == "bimodal":
            return self.bimodal[pc_index] >= 2
        if self.kind == "gshare":
            return self.gshare[gshare_index] >= 2
        if self.chooser[pc_index] >= 2:
            return self.gshare[gshare_index] >= 2
        return self.bimodal[pc_index] >= 2

    def peek(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc`` without updating.

        Used by the T-Cache probe, which must not perturb predictor state.
        """
        return self._predict(pc, self.history)

    def peek_with_history(self, pc: int, history: int) -> bool:
        """Predict under an explicit speculative history (no update).

        The DynaSpAM fetch stage walks the static program several branches
        ahead when probing the configuration cache; each predicted outcome
        shifts the speculative history it uses for the next prediction.
        """
        return self._predict(pc, history)

    def peek_with_deps(
        self, pc: int, history: int
    ) -> tuple[bool, tuple[tuple[int, int], tuple[int, int]]]:
        """Like ``peek_with_history``, also naming the table state read.

        Returns ``(taken, ((index, stamp), (index, stamp)))`` — the PC and
        gshare table indices the prediction depends on, with their current
        ``update_stamp`` values.  A caller may cache the prediction and
        revalidate it later by comparing stamps.
        """
        pc_index, gshare_index = self._indices(pc, history)
        stamps = self.update_stamp
        return self._predict(pc, history), (
            (pc_index, stamps[pc_index]),
            (gshare_index, stamps[gshare_index]),
        )

    def shift_history(self, history: int, taken: bool) -> int:
        """Fold one speculative outcome into a history value."""
        return ((history << 1) | int(taken)) & self.mask

    def peek_path(self, branch_pcs) -> list[bool]:
        """Predict a sequence of upcoming branches without state updates.

        Speculative history is threaded through the sequence, mirroring how
        a real front end predicts several branches ahead.
        """
        history = self.history
        out = []
        for pc in branch_pcs:
            taken = self._predict(pc, history)
            history = ((history << 1) | int(taken)) & self.mask
            out.append(taken)
        return out

    def predict_and_update(self, pc: int, actual_taken: bool) -> bool:
        """Predict the branch at ``pc``, then train on the actual outcome.

        Returns the *prediction* so the caller can detect mispredicts.
        """
        self.lookups += 1
        pc_index, gshare_index = self._indices(pc, self.history)
        bimodal_taken = self.bimodal[pc_index] >= 2
        gshare_taken = self.gshare[gshare_index] >= 2
        if self.kind == "bimodal":
            prediction = bimodal_taken
        elif self.kind == "gshare":
            prediction = gshare_taken
        else:
            use_gshare = self.chooser[pc_index] >= 2
            prediction = gshare_taken if use_gshare else bimodal_taken

        # Train both component tables (stamping indices whose stored value
        # actually changed, so memoized predictions over them invalidate).
        stamps = self.update_stamp
        for table, index in ((self.bimodal, pc_index), (self.gshare, gshare_index)):
            if actual_taken:
                if table[index] < 3:
                    table[index] += 1
                    stamps[index] += 1
            elif table[index] > 0:
                table[index] -= 1
                stamps[index] += 1
        # Train the chooser toward the component that was right.
        if bimodal_taken != gshare_taken:
            if gshare_taken == actual_taken:
                if self.chooser[pc_index] < 3:
                    self.chooser[pc_index] += 1
                    stamps[pc_index] += 1
            elif self.chooser[pc_index] > 0:
                self.chooser[pc_index] -= 1
                stamps[pc_index] += 1

        self.history = ((self.history << 1) | int(actual_taken)) & self.mask
        if prediction != actual_taken:
            self.mispredicts += 1
        return prediction

    # ------------------------------------------------------------------
    # Target prediction
    # ------------------------------------------------------------------
    def btb_lookup(self, pc: int) -> bool:
        """True if the BTB knows the target of the branch at ``pc``."""
        hit = pc in self.btb
        if not hit:
            self.btb_misses += 1
            if len(self.btb) >= self.btb_entries:
                self.btb.pop()
            self.btb.add(pc)
        return hit

    # ------------------------------------------------------------------
    # Return address stack (completeness; the kernel ISA has no calls)
    # ------------------------------------------------------------------
    def ras_push(self, return_pc: int) -> None:
        if len(self.ras) >= self.ras_entries:
            self.ras.pop(0)
        self.ras.append(return_pc)

    def ras_pop(self) -> int | None:
        return self.ras.pop() if self.ras else None

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups
