"""Functional-unit pools and the opclass-to-pool mapping.

Branches and jumps execute on the integer ALUs; multiply and divide share
the single MUL/DIV unit per side; loads and stores share the two LDST units
(paper Table 4).  The same pool structure describes the PEs of one fabric
stripe, which "contains the same execution units as the OOO" — the
one-to-one FU-to-PE mapping at the heart of Algorithm 1 depends on that.

Occupancy is tracked per cycle (not as a single next-free scalar) so that
an instruction reserving a unit at a *future* cycle — a store waiting for
late data, say — does not block older slots that are actually free.
"""

from __future__ import annotations

from repro.isa.opcodes import FU_PIPELINED, OpClass

#: Which pool each operation class executes on.
POOL_OF: dict[OpClass, str] = {
    OpClass.INT_ALU: "int_alu",
    OpClass.INT_MUL: "int_muldiv",
    OpClass.INT_DIV: "int_muldiv",
    OpClass.FP_ALU: "fp_alu",
    OpClass.FP_MUL: "fp_muldiv",
    OpClass.FP_DIV: "fp_muldiv",
    OpClass.LOAD: "ldst",
    OpClass.STORE: "ldst",
    OpClass.BRANCH: "int_alu",
    OpClass.JUMP: "int_alu",
    OpClass.NOP: "int_alu",
}

POOL_NAMES: tuple[str, ...] = ("int_alu", "int_muldiv", "fp_alu", "fp_muldiv", "ldst")


class FunctionalUnitPool:
    """Per-cycle occupancy tracking for every pool."""

    def __init__(self, pool_sizes: dict[str, int]) -> None:
        for name in POOL_NAMES:
            if pool_sizes.get(name, 0) < 1:
                raise ValueError(f"pool {name!r} must have at least one unit")
        self._sizes = {name: pool_sizes[name] for name in POOL_NAMES}
        # Plain dicts probed with .get — a defaultdict would allocate a
        # zero entry for every cycle merely *examined* by earliest_free,
        # growing memory on reads.  The pipeline prunes entries behind its
        # dispatch watermark; the fast path caches direct references to
        # these dicts, so pruning must mutate them in place.
        self._busy: dict[str, dict[int, int]] = {
            name: {} for name in POOL_NAMES
        }
        self._max_claimed = 0

    def _occupancy_span(self, opclass: OpClass, latency: int) -> int:
        """Cycles one op holds a unit: 1 if pipelined, else its latency."""
        return 1 if FU_PIPELINED[opclass] else max(1, latency)

    def earliest_free(
        self, opclass: OpClass, not_before: int, latency: int = 1
    ) -> int:
        """Earliest cycle >= ``not_before`` with a unit free for the op's
        full occupancy span."""
        pool = POOL_OF[opclass]
        size = self._sizes[pool]
        busy = self._busy[pool]
        span = self._occupancy_span(opclass, latency)
        cycle = not_before
        while True:
            if all(busy.get(cycle + k, 0) < size for k in range(span)):
                return cycle
            cycle += 1

    def acquire(self, opclass: OpClass, cycle: int, latency: int) -> None:
        """Claim a unit starting at ``cycle`` for the op's occupancy span."""
        pool = POOL_OF[opclass]
        size = self._sizes[pool]
        busy = self._busy[pool]
        span = self._occupancy_span(opclass, latency)
        for k in range(span):
            if busy.get(cycle + k, 0) >= size:
                raise ValueError(
                    f"pool {pool!r} has no free unit at cycle {cycle + k}"
                )
        for k in range(span):
            c = cycle + k
            busy[c] = busy.get(c, 0) + 1
        end = cycle + span
        if end > self._max_claimed:
            self._max_claimed = end

    def prune_before(self, floor: int) -> None:
        """Drop occupancy entries below ``floor`` (never probed again).

        The caller guarantees every future ``earliest_free``/``acquire``
        starts at or after ``floor``.  Mutates the per-pool dicts in place:
        the fast path holds direct references to them.
        """
        for busy in self._busy.values():
            if busy:
                for cycle in [c for c in busy if c < floor]:
                    del busy[cycle]

    def all_idle_by(self) -> int:
        """Cycle by which every claimed reservation has finished."""
        return self._max_claimed
