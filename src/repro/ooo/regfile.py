"""Register rename/readiness scoreboard.

The timing pass processes instructions in program order, so renaming
reduces to tracking, per architectural register, the completion cycle and
sequence number of its latest producer.  Physical-register capacity is
checked against the in-flight destination count (bounded by the ROB, which
at 192 entries never exceeds the 256 physical registers of Table 4 — the
check exists so misconfigurations fail loudly).
"""

from __future__ import annotations


class RegisterScoreboard:
    """Per-architectural-register readiness tracking."""

    def __init__(self, phys_registers: int, arch_registers: int = 64) -> None:
        if phys_registers <= arch_registers:
            raise ValueError(
                "need more physical than architectural registers to rename"
            )
        self.rename_capacity = phys_registers - arch_registers
        self._ready: dict[str, int] = {}
        self._producer: dict[str, int] = {}
        self.renames = 0

    def ready_cycle(self, reg: str) -> int:
        """Cycle at which ``reg``'s current value is available (0 if from
        architectural state)."""
        return self._ready.get(reg, 0)

    def producer_seq(self, reg: str) -> int | None:
        return self._producer.get(reg)

    def define(self, reg: str, complete_cycle: int, seq: int) -> None:
        """Record a new producer for ``reg`` (a rename + eventual write)."""
        if reg == "r0":
            return
        self.renames += 1
        self._ready[reg] = complete_cycle
        self._producer[reg] = seq

    def max_ready(self, regs) -> int:
        """Latest readiness cycle over a set of registers."""
        latest = 0
        for reg in regs:
            cycle = self._ready.get(reg, 0)
            if cycle > latest:
                latest = cycle
        return latest
