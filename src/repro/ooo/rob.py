"""Reorder-buffer occupancy model.

The timing pass processes instructions in program order, so ROB occupancy
reduces to a ring of the last N commit cycles: a new dispatch must wait for
the instruction N places back to have committed.  The ring also tracks the
youngest in-flight commit time, which `drain` (used when a DynaSpAM mapping
phase starts) needs.
"""

from __future__ import annotations


class ReorderBufferModel:
    """Capacity model of an in-order-commit ROB."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("ROB needs at least one entry")
        self.entries = entries
        self._commit_ring: list[int] = [0] * entries
        self._head = 0
        self._count = 0
        self.last_commit_cycle = 0

    def dispatch_ready_cycle(self) -> int:
        """Earliest cycle a new instruction may dispatch (entry free)."""
        if self._count < self.entries:
            return 0
        # Entry frees the cycle after its occupant commits.
        return self._commit_ring[self._head] + 1

    def push(self, commit_cycle: int) -> None:
        """Record a dispatched instruction's (eventual) commit cycle."""
        self._commit_ring[self._head] = commit_cycle
        self._head = (self._head + 1) % self.entries
        if self._count < self.entries:
            self._count += 1
        if commit_cycle > self.last_commit_cycle:
            self.last_commit_cycle = commit_cycle

    def drain_cycle(self) -> int:
        """Cycle at which everything currently in flight has committed."""
        return self.last_commit_cycle

    @property
    def occupancy(self) -> int:
        return self._count
