"""Load/store queue model: capacity, forwarding, and alias search.

The store queue keeps a bounded window of recent stores with their address
and data timing so later loads can (a) detect aliasing for memory-order
violation checks and (b) forward data.  Word-granularity aliasing matches
the word-granularity ISA.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class StoreRecord:
    """An in-flight (or recently retired) store."""

    seq: int
    pc: int
    addr: int
    addr_ready: int      # cycle the address is known (issue)
    data_ready: int      # cycle the store data is available for forwarding
    commit: int = 0


class StoreQueueModel:
    """Bounded window of stores, searchable by address."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("store queue needs at least one entry")
        self.entries = entries
        # maxlen evicts the oldest record on append — O(1), where a list
        # with pop(0) pays O(window) per store.
        self._window: deque[StoreRecord] = deque(maxlen=entries)
        # addr -> youngest windowed store at that address.  Invariant:
        # holds exactly the youngest same-address record of the window
        # (push overwrites; eviction deletes only when the evictee still
        # owns its slot, which implies no other same-address record
        # remains).  Turns the common alias probe into one dict lookup.
        self._by_addr: dict[int, StoreRecord] = {}
        # Capacity ring: commit cycles of stores `entries` places back.
        self._commit_ring: list[int] = [0] * entries
        self._head = 0
        self._count = 0

    def dispatch_ready_cycle(self) -> int:
        if self._count < self.entries:
            return 0
        return self._commit_ring[self._head] + 1

    def push(self, record: StoreRecord) -> None:
        window = self._window
        if len(window) == self.entries:
            evicted = window[0]
            if self._by_addr.get(evicted.addr) is evicted:
                del self._by_addr[evicted.addr]
        window.append(record)
        self._by_addr[record.addr] = record
        self._commit_ring[self._head] = record.commit
        self._head = (self._head + 1) % self.entries
        if self._count < self.entries:
            self._count += 1

    def youngest_alias(self, addr: int, before_seq: int) -> StoreRecord | None:
        """Youngest store older than ``before_seq`` at the same address."""
        record = self._by_addr.get(addr)
        if record is None:
            # The index covers every windowed address: no entry, no alias.
            return None
        if record.seq < before_seq:
            return record
        # The youngest same-address store is too young; an older one may
        # still qualify (only reachable with non-monotone probe seqs).
        for record in reversed(self._window):
            if record.seq < before_seq and record.addr == addr:
                return record
        return None

    def youngest_older(self, before_seq: int) -> StoreRecord | None:
        """Youngest store older than ``before_seq`` regardless of address
        (used by the conservative no-speculation ablation)."""
        for record in reversed(self._window):
            if record.seq < before_seq:
                return record
        return None

    def __len__(self) -> int:
        return len(self._window)


class LoadQueueModel:
    """Capacity-only model of the load queue."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("load queue needs at least one entry")
        self.entries = entries
        self._complete_ring: list[int] = [0] * entries
        self._head = 0
        self._count = 0

    def dispatch_ready_cycle(self) -> int:
        if self._count < self.entries:
            return 0
        return self._complete_ring[self._head] + 1

    def push(self, complete_cycle: int) -> None:
        self._complete_ring[self._head] = complete_cycle
        self._head = (self._head + 1) % self.entries
        if self._count < self.entries:
            self._count += 1
