"""Pipeline statistics and energy-relevant event counters."""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class PipelineStats:
    """Event counts accumulated by a timing run.

    The energy model (``repro.energy``) multiplies these counts by
    per-event energies; the Figure 9 component categories note which
    counters feed which category.
    """

    cycles: int = 0
    instructions: int = 0

    # Front end (Figure 9 "Fetch").
    fetches: int = 0
    wrongpath_fetches: int = 0   # estimated wrong-path work after mispredicts
    icache_accesses: int = 0
    icache_misses: int = 0
    predictor_lookups: int = 0
    branch_mispredicts: int = 0
    btb_misses: int = 0

    # Rename (Figure 9 "Rename").
    renames: int = 0

    # Instruction scheduling (Figure 9 "InstSchedule").
    dispatches: int = 0
    wakeups: int = 0
    selections: int = 0

    # Execution (Figure 9 "Execution").
    int_alu_ops: int = 0
    int_mul_ops: int = 0
    int_div_ops: int = 0
    fp_alu_ops: int = 0
    fp_mul_ops: int = 0
    fp_div_ops: int = 0

    # Datapath: register file + bypass network (Figure 9 "Datapath").
    regfile_reads: int = 0
    regfile_writes: int = 0
    bypass_transfers: int = 0

    # Memory system (Figure 9 "Memory").
    loads: int = 0
    stores: int = 0
    dcache_accesses: int = 0
    dcache_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    store_forwards: int = 0
    memory_violations: int = 0

    # Commit.
    commits: int = 0
    rob_writes: int = 0

    # DynaSpAM-specific (zero on the baseline).
    mapping_instructions: int = 0
    offloaded_instructions: int = 0
    fabric_invocations: int = 0
    fabric_configurations: int = 0
    fabric_fu_ops: int = 0
    fabric_int_alu_ops: int = 0
    fabric_int_muldiv_ops: int = 0
    fabric_fp_alu_ops: int = 0
    fabric_fp_muldiv_ops: int = 0
    fabric_ldst_ops: int = 0
    fabric_active_pe_cycles: int = 0
    fabric_datapath_transfers: int = 0
    fabric_fifo_ops: int = 0
    fabric_squashes: int = 0
    config_cache_reads: int = 0
    config_cache_writes: int = 0
    drain_cycles: int = 0

    # Top-down cycle accounting (no energy cost; ``repro analyze``).
    # Exclusive, conserved buckets charged along the commit timeline:
    # every advance of the commit point is charged to exactly one bucket,
    # so their sum equals ``cycles`` on every run (repro.obs.accounting).
    cycles_host: int = 0            # healthy host execution / commit throughput
    cycles_frontend: int = 0        # I-cache misses and BTB-miss fetch bubbles
    cycles_drain: int = 0           # back-end drain before a mapping phase
    cycles_mapping: int = 0         # mapper occupying the issue unit
    cycles_offload: int = 0         # commit waiting on fabric invocations
    cycles_squash_branch: int = 0   # mispredict redirects + branch squashes
    cycles_squash_memory: int = 0   # memory-order violation squash recovery

    # Simulator-internal observability (no energy cost; --profile output).
    # These are the ``repro.engine.ENGINE_TIER_COUNTERS``: identity gates
    # zero them before comparing reports across engine tiers.
    predict_memo_hits: int = 0
    predict_memo_misses: int = 0
    invocation_memo_hits: int = 0
    invocation_memo_misses: int = 0
    batched_invocations: int = 0

    def merge(self, other: "PipelineStats") -> None:
        """Accumulate another stats record into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
