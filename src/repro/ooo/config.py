"""Core configuration (the paper's Table 4)."""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_fu_pools() -> dict[str, int]:
    # "4 Int ALUs; 1 Int MUL/DIV; 4 Floating ALUs; 1 Floating MUL/DIV;
    #  2 LDST units" — branches execute on the integer ALUs, and the MUL
    #  and DIV op classes share their respective single unit.
    return {
        "int_alu": 4,
        "int_muldiv": 1,
        "fp_alu": 4,
        "fp_muldiv": 1,
        "ldst": 2,
    }


@dataclass
class CoreConfig:
    """Host OOO pipeline parameters (defaults = paper Table 4)."""

    # Widths.
    fetch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8

    # Window sizes.
    rob_entries: int = 192
    phys_registers: int = 256
    rs_entries: int = 60
    load_queue: int = 128
    store_queue: int = 128

    # Front end.
    frontend_depth: int = 4          # fetch -> dispatch stages
    btb_entries: int = 4096
    ras_entries: int = 16
    predictor_bits: int = 12         # gshare history/index bits
    predictor_kind: str = "tournament"   # | "bimodal" | "gshare"
    mispredict_redirect: int = 2     # extra bubbles beyond resolve latency
    btb_miss_penalty: int = 1

    # Memory system (latencies are load-to-use, in cycles).
    l1i_kb: int = 64
    l1i_assoc: int = 2
    l1i_latency: int = 2
    l1d_kb: int = 64
    l1d_assoc: int = 2
    l1d_latency: int = 2
    l2_kb: int = 2048
    l2_assoc: int = 8
    l2_latency: int = 20
    block_bytes: int = 64
    memory_latency: int = 120
    store_forward_latency: int = 2

    # Squash cost for memory-order violations (flush + refetch).
    violation_squash_penalty: int = 12

    # Functional-unit mix (pool name -> unit count).
    fu_pools: dict[str, int] = field(default_factory=_default_fu_pools)

    # Memory dependence predictor (Store Sets).
    ssit_entries: int = 1024
    storesets_enabled: bool = True

    def __post_init__(self) -> None:
        if self.fetch_width < 1 or self.issue_width < 1 or self.commit_width < 1:
            raise ValueError("pipeline widths must be positive")
        if self.rob_entries < self.issue_width:
            raise ValueError("ROB must hold at least one issue group")
