"""Host out-of-order pipeline substrate (the paper's GEM5 stand-in).

A trace-driven cycle-level timing model of an 8-wide OOO superscalar with
the paper's Table 4 configuration: branch prediction, store-set memory
dependence speculation, a two-level cache hierarchy, ROB/RS/LSQ capacity
constraints, and per-class functional-unit contention.
"""

from repro.ooo.config import CoreConfig
from repro.ooo.branch_predictor import BranchPredictor
from repro.ooo.storesets import StoreSetPredictor
from repro.ooo.caches import Cache, CacheHierarchy
from repro.ooo.fastpath import FastOOOPipeline, make_pipeline
from repro.ooo.pipeline import OOOPipeline, PipelineResult
from repro.ooo.stats import PipelineStats

__all__ = [
    "BranchPredictor",
    "Cache",
    "CacheHierarchy",
    "CoreConfig",
    "FastOOOPipeline",
    "OOOPipeline",
    "PipelineResult",
    "PipelineStats",
    "StoreSetPredictor",
    "make_pipeline",
]
