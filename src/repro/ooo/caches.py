"""Set-associative cache hierarchy.

Latency-oriented model: an access returns the load-to-use latency implied by
the level it hits in, and updates LRU/allocation state.  Bandwidth and MSHR
occupancy are not modeled (the paper's results do not hinge on them; the
kernels' working sets determine hit rates, which this model captures).
"""

from __future__ import annotations


class Cache:
    """One set-associative, write-allocate, LRU cache level."""

    def __init__(
        self,
        name: str,
        size_kb: int,
        assoc: int,
        block_bytes: int,
        latency: int,
    ) -> None:
        size_bytes = size_kb * 1024
        num_blocks = size_bytes // block_bytes
        self.name = name
        self.assoc = assoc
        self.num_sets = max(1, num_blocks // assoc)
        self.block_bytes = block_bytes
        self.latency = latency
        # Per-set list of tags in LRU order (index 0 = most recent).
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int) -> tuple[int, int]:
        block = addr // self.block_bytes
        return block % self.num_sets, block // self.num_sets

    def lookup(self, addr: int) -> bool:
        """Access the cache; returns True on hit.  Misses allocate."""
        set_index, tag = self._locate(addr)
        ways = self._sets[set_index]
        if tag in ways:
            self.hits += 1
            ways.remove(tag)
            ways.insert(0, tag)
            return True
        self.misses += 1
        ways.insert(0, tag)
        if len(ways) > self.assoc:
            ways.pop()
        return False

    def contains(self, addr: int) -> bool:
        """Non-mutating presence check."""
        set_index, tag = self._locate(addr)
        return tag in self._sets[set_index]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheHierarchy:
    """L1 (I or D) backed by a shared L2 backed by main memory."""

    def __init__(self, l1: Cache, l2: Cache, memory_latency: int) -> None:
        self.l1 = l1
        self.l2 = l2
        self.memory_latency = memory_latency

    def access(self, addr: int) -> int:
        """Access ``addr``; return the total load-to-use latency."""
        if self.l1.lookup(addr):
            return self.l1.latency
        if self.l2.lookup(addr):
            return self.l1.latency + self.l2.latency
        return self.l1.latency + self.l2.latency + self.memory_latency
