"""Trace-driven cycle-level OOO pipeline timing model.

Instructions are processed in program order; each is assigned fetch,
dispatch, issue, complete, and commit cycles subject to the structural
constraints of the Table 4 machine:

* fetch width, taken-branch fetch breaks, I-cache misses, branch
  mispredict redirects (wrong-path work is not simulated — its cost appears
  as fetch bubbles until the branch resolves);
* ROB / reservation-station / LQ / SQ capacity;
* issue width and per-pool functional-unit contention (dividers block);
* operand readiness through the register scoreboard (bypass modeled as
  zero-cycle once the producer completes);
* loads: store-set dependence prediction, store-to-load forwarding, and
  memory-order violation squashes;
* in-order commit at commit width.

Out-of-order issue emerges naturally: a younger instruction may receive an
earlier issue cycle than an older one if its operands are ready sooner.

The DynaSpAM framework drives the same engine and adds macro operations
(fat fabric invocations) through the ``macro_*`` primitives.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import NamedTuple

from repro.isa.instructions import DynamicInstruction
from repro.isa.opcodes import OpClass, latency_of
from repro.ooo.branch_predictor import BranchPredictor
from repro.ooo.caches import Cache, CacheHierarchy
from repro.ooo.config import CoreConfig
from repro.ooo.fus import FunctionalUnitPool
from repro.ooo.lsq import LoadQueueModel, StoreQueueModel, StoreRecord
from repro.ooo.regfile import RegisterScoreboard
from repro.ooo.rob import ReorderBufferModel
from repro.ooo.rs import ReservationStationModel
from repro.ooo.stats import PipelineStats
from repro.ooo.storesets import StoreSetPredictor

_EXEC_COUNTER = {
    OpClass.INT_ALU: "int_alu_ops",
    OpClass.INT_MUL: "int_mul_ops",
    OpClass.INT_DIV: "int_div_ops",
    OpClass.FP_ALU: "fp_alu_ops",
    OpClass.FP_MUL: "fp_mul_ops",
    OpClass.FP_DIV: "fp_div_ops",
    OpClass.BRANCH: "int_alu_ops",
    OpClass.JUMP: "int_alu_ops",
    OpClass.NOP: "int_alu_ops",
    OpClass.LOAD: "int_alu_ops",   # address generation
    OpClass.STORE: "int_alu_ops",  # address generation
}


class InstrTiming(NamedTuple):
    """Cycle assignment of one dynamic instruction.

    A NamedTuple rather than a dataclass: one is built per simulated
    instruction, and tuple construction is measurably cheaper in the hot
    loop while keeping the same attribute-access API.
    """

    seq: int
    fetch: int
    dispatch: int
    issue: int
    complete: int
    commit: int
    mispredicted: bool = False
    violated: bool = False


@dataclass
class PipelineResult:
    """Outcome of a timing run."""

    stats: PipelineStats
    cycles: int
    instructions: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class OOOPipeline:
    """The timing engine.  One instance per simulation run."""

    def __init__(
        self,
        config: CoreConfig | None = None,
        conservative_memory: bool = False,
        bus=None,
    ) -> None:
        self.config = config or CoreConfig()
        cfg = self.config
        self.stats = PipelineStats()
        self.conservative_memory = conservative_memory
        #: Optional ``repro.obs.EventBus`` (None = tracing disabled).  The
        #: DynaSpAM framework assigns it after construction because the
        #: bus's clock closes over this pipeline.
        self.bus = bus
        self._phase: str | None = None

        self.bpred = BranchPredictor(cfg)
        self.storesets = StoreSetPredictor(cfg.ssit_entries)
        l2 = Cache("L2", cfg.l2_kb, cfg.l2_assoc, cfg.block_bytes, cfg.l2_latency)
        self.l2 = l2
        self.icache = CacheHierarchy(
            Cache("L1I", cfg.l1i_kb, cfg.l1i_assoc, cfg.block_bytes, cfg.l1i_latency),
            l2,
            cfg.memory_latency,
        )
        self.dcache = CacheHierarchy(
            Cache("L1D", cfg.l1d_kb, cfg.l1d_assoc, cfg.block_bytes, cfg.l1d_latency),
            l2,
            cfg.memory_latency,
        )

        self.regs = RegisterScoreboard(cfg.phys_registers)
        self.rob = ReorderBufferModel(cfg.rob_entries)
        self.rs = ReservationStationModel(cfg.rs_entries)
        self.lq = LoadQueueModel(cfg.load_queue)
        self.sq = StoreQueueModel(cfg.store_queue)
        self.fus = FunctionalUnitPool(cfg.fu_pools)

        # Sliding-window slot occupancy.  Keys are cycles; entries behind
        # the watermarks proven in ``_prune_slot_windows`` can never be
        # probed again and are deleted on a fixed instruction cadence, so
        # memory stays bounded by the in-flight window instead of growing
        # with total simulated cycles.
        self._fetch_counts: dict[int, int] = {}
        self._issue_counts: dict[int, int] = {}
        self._commit_counts: dict[int, int] = {}
        self._ops_since_prune = 0
        self._store_by_seq: dict[int, StoreRecord] = {}
        self._store_seq_fifo: deque[int] = deque()

        self.seq = 0
        self.next_fetch_cycle = 0
        self.fetch_barrier = 0
        self.prev_dispatch_cycle = 0
        self.prev_commit_cycle = 0
        self.last_commit_cycle = 0
        self._last_fetch_block: int | None = None

        # Top-down cycle accounting.  Front-end stalls accrue here as
        # pending credits by cause; ``_alloc_commit`` realizes them when
        # the commit stream actually gaps, so hidden stalls are never
        # charged and the buckets partition the commit timeline exactly
        # (see repro.obs.accounting).
        self._stall_credit: dict[str, int] = {
            "squash_memory": 0,
            "squash_branch": 0,
            "drain": 0,
            "mapping": 0,
            "frontend": 0,
        }
        self._credit_fields = {
            "squash_memory": "cycles_squash_memory",
            "squash_branch": "cycles_squash_branch",
            "drain": "cycles_drain",
            "mapping": "cycles_mapping",
            "frontend": "cycles_frontend",
        }

    # ------------------------------------------------------------------
    # Slot allocation helpers
    # ------------------------------------------------------------------
    def _alloc_fetch(self, pc: int) -> int:
        cfg = self.config
        counts = self._fetch_counts
        cycle = max(self.next_fetch_cycle, self.fetch_barrier)
        while counts.get(cycle, 0) >= cfg.fetch_width:
            cycle += 1
        block = pc // cfg.block_bytes
        if block != self._last_fetch_block:
            self.stats.icache_accesses += 1
            latency = self.icache.access(pc)
            if latency > cfg.l1i_latency:
                self.stats.icache_misses += 1
                cycle += latency - cfg.l1i_latency
                self._credit_stall("frontend", latency - cfg.l1i_latency)
            self._last_fetch_block = block
        counts[cycle] = counts.get(cycle, 0) + 1
        self.next_fetch_cycle = cycle
        self.stats.fetches += 1
        return cycle

    def _alloc_issue(self, opclass: OpClass, ready: int, latency: int) -> int:
        counts = self._issue_counts
        cycle = ready
        while True:
            cycle = self.fus.earliest_free(opclass, cycle, latency)
            if counts.get(cycle, 0) < self.config.issue_width:
                break
            cycle += 1
        self.fus.acquire(opclass, cycle, latency)
        counts[cycle] = counts.get(cycle, 0) + 1
        self.stats.selections += 1
        return cycle

    def _credit_stall(self, cause: str, cycles: int) -> None:
        """Accrue pending front-end stall cycles against ``cause``."""
        if cycles > 0:
            self._stall_credit[cause] += cycles

    def _charge_commit_gap(self, gap: int, bucket: str | None) -> None:
        """Attribute ``gap`` cycles of commit-point advance.

        A fat fabric invocation (``bucket="offload"``) owns its whole gap;
        otherwise pending front-end stall credits are consumed first
        (severest cause first) and the remainder is healthy host time.
        """
        stats = self.stats
        if bucket == "offload":
            stats.cycles_offload += gap
            return
        credit = self._stall_credit
        for cause, field_name in self._credit_fields.items():
            if not gap:
                break
            available = credit[cause]
            if available:
                take = available if available < gap else gap
                credit[cause] = available - take
                setattr(stats, field_name, getattr(stats, field_name) + take)
                gap -= take
        stats.cycles_host += gap

    def _alloc_commit(self, complete: int, bucket: str | None = None) -> int:
        counts = self._commit_counts
        cycle = max(complete + 1, self.prev_commit_cycle)
        gap = cycle - self.prev_commit_cycle
        if gap:
            self._charge_commit_gap(gap, bucket)
        while counts.get(cycle, 0) >= self.config.commit_width:
            cycle += 1
            # Commit-width contention is healthy throughput, not a stall.
            self.stats.cycles_host += 1
        counts[cycle] = counts.get(cycle, 0) + 1
        self.prev_commit_cycle = cycle
        if cycle > self.last_commit_cycle:
            self.last_commit_cycle = cycle
        self.stats.commits += 1
        return cycle

    #: Instructions between slot-window prunes.  Large enough to keep the
    #: amortized cost negligible, small enough that the windows never hold
    #: more than a few thousand stale cycles.
    PRUNE_INTERVAL = 4096

    def _prune_slot_windows(self) -> None:
        """Drop slot-count entries that can never be probed again.

        Safe watermarks (all allocation cursors are monotone):

        * fetch slots are probed at cycles >= max(next_fetch_cycle,
          fetch_barrier) — both only ever increase, and ``_alloc_fetch`` /
          ``macro_dispatch`` re-read the count *at* the cursor, so entries
          strictly below it are dead;
        * issue slots (and FU occupancy) are probed at cycles >= ready >=
          dispatch + 1 >= prev_dispatch_cycle + 1, so entries at or below
          ``prev_dispatch_cycle`` are dead;
        * commit slots are probed at cycles >= max(complete + 1,
          prev_commit_cycle) >= prev_commit_cycle, so entries strictly
          below ``prev_commit_cycle`` are dead.

        Deletion happens in place — never by rebuilding the dicts — because
        the fast path caches direct references to them.
        """
        front = self.next_fetch_cycle
        if self.fetch_barrier > front:
            front = self.fetch_barrier
        counts = self._fetch_counts
        for cycle in [c for c in counts if c < front]:
            del counts[cycle]
        issue_floor = self.prev_dispatch_cycle + 1
        counts = self._issue_counts
        for cycle in [c for c in counts if c < issue_floor]:
            del counts[cycle]
        self.fus.prune_before(issue_floor)
        counts = self._commit_counts
        for cycle in [c for c in counts if c < self.prev_commit_cycle]:
            del counts[cycle]

    def _record_store(self, record: StoreRecord) -> None:
        self.sq.push(record)
        self._store_by_seq[record.seq] = record
        self._store_seq_fifo.append(record.seq)
        if len(self._store_seq_fifo) > self.config.store_queue * 2:
            old = self._store_seq_fifo.popleft()
            self._store_by_seq.pop(old, None)

    # ------------------------------------------------------------------
    # Main per-instruction model
    # ------------------------------------------------------------------
    def process(self, dyn: DynamicInstruction) -> InstrTiming:
        """Assign cycles to one dynamic instruction."""
        cfg = self.config
        stats = self.stats
        seq = self.seq
        self.seq += 1
        static = dyn.static
        opclass = static.opclass
        latency = latency_of(static.opcode)

        # ---- fetch & branch prediction -------------------------------
        fetch = self._alloc_fetch(dyn.pc)
        mispredicted = False
        if static.is_branch:
            stats.predictor_lookups += 1
            prediction = self.bpred.predict_and_update(dyn.pc, bool(dyn.taken))
            mispredicted = prediction != bool(dyn.taken)
            if mispredicted:
                stats.branch_mispredicts += 1
            if prediction and not self.bpred.btb_lookup(dyn.pc):
                stats.btb_misses += 1
                self.next_fetch_cycle = fetch + 1 + cfg.btb_miss_penalty
                self._credit_stall("frontend", cfg.btb_miss_penalty)
            elif prediction:
                # Correctly predicted taken branch ends the fetch group.
                self.next_fetch_cycle = fetch + 1
        elif opclass is OpClass.JUMP:
            if not self.bpred.btb_lookup(dyn.pc):
                stats.btb_misses += 1
                self.next_fetch_cycle = fetch + 1 + cfg.btb_miss_penalty
                self._credit_stall("frontend", cfg.btb_miss_penalty)
            else:
                self.next_fetch_cycle = fetch + 1

        # ---- rename / dispatch (in order) ----------------------------
        dispatch = max(
            fetch + cfg.frontend_depth,
            self.prev_dispatch_cycle,
            self.rob.dispatch_ready_cycle(),
            self.rs.dispatch_ready_cycle(),
        )
        if static.is_load:
            dispatch = max(dispatch, self.lq.dispatch_ready_cycle())
        if static.is_store:
            dispatch = max(dispatch, self.sq.dispatch_ready_cycle())
        self.prev_dispatch_cycle = dispatch
        stats.renames += 1
        stats.dispatches += 1
        stats.rob_writes += 1

        # ---- operand readiness ---------------------------------------
        ready = dispatch + 1
        for src in static.srcs:
            cycle = self.regs.ready_cycle(src)
            if cycle > ready:
                ready = cycle
        stats.wakeups += len(static.srcs)

        violated = False
        predicted_store: StoreRecord | None = None
        if static.is_load:
            stats.loads += 1
            if self.conservative_memory:
                older = self.sq.youngest_older(seq)
                if older is not None:
                    ready = max(ready, older.data_ready)
            elif cfg.storesets_enabled:
                wait_seq = self.storesets.load_dispatched(dyn.pc)
                if wait_seq is not None:
                    predicted_store = self._store_by_seq.get(wait_seq)
                    if predicted_store is not None:
                        ready = max(ready, predicted_store.data_ready)
        elif static.is_store:
            stats.stores += 1
            if cfg.storesets_enabled and not self.conservative_memory:
                prev_seq = self.storesets.store_dispatched(dyn.pc, seq)
                if prev_seq is not None:
                    prev = self._store_by_seq.get(prev_seq)
                    if prev is not None:
                        ready = max(ready, prev.data_ready)

        # ---- issue / execute -----------------------------------------
        issue = self._alloc_issue(opclass, ready, latency)
        counter = _EXEC_COUNTER[opclass]
        setattr(stats, counter, getattr(stats, counter) + 1)

        if static.is_load:
            alias = self.sq.youngest_alias(dyn.addr, seq)
            if alias is not None and issue < alias.addr_ready:
                # The load issued before the aliasing store executed: a
                # memory-order violation, detected when the store runs.
                violated = True
                stats.memory_violations += 1
                if cfg.storesets_enabled:
                    self.storesets.train_violation(dyn.pc, alias.pc)
                complete = alias.data_ready + cfg.store_forward_latency
                front = max(self.next_fetch_cycle, self.fetch_barrier)
                barrier = alias.addr_ready + cfg.violation_squash_penalty
                self._credit_stall("squash_memory", barrier - front)
                self.fetch_barrier = max(self.fetch_barrier, barrier)
            elif alias is not None:
                # Store-to-load forwarding from the store queue.
                stats.store_forwards += 1
                complete = max(
                    issue + cfg.store_forward_latency,
                    alias.data_ready + cfg.store_forward_latency,
                )
            else:
                stats.dcache_accesses += 1
                before_l2 = self.l2.accesses
                cache_latency = self.dcache.access(dyn.addr)
                if cache_latency > cfg.l1d_latency:
                    stats.dcache_misses += 1
                stats.l2_accesses += self.l2.accesses - before_l2
                complete = issue + 1 + cache_latency
            self.lq.push(complete)
        elif static.is_store:
            complete = issue + 1
        else:
            complete = issue + latency

        # ---- misprediction redirect ----------------------------------
        if mispredicted:
            front = max(self.next_fetch_cycle, self.fetch_barrier)
            barrier = complete + cfg.mispredict_redirect
            self._credit_stall("squash_branch", barrier - front)
            self.fetch_barrier = max(self.fetch_barrier, barrier)
            # Wrong-path work is not simulated, but its front-end energy is
            # real: estimate half-rate fetching from the mispredicted fetch
            # until the branch resolves, capped at the ROB window.
            wrong = min(
                (complete - fetch) * cfg.fetch_width // 2, cfg.rob_entries
            )
            stats.wrongpath_fetches += max(0, wrong)

        # ---- commit ----------------------------------------------------
        commit = self._alloc_commit(complete)
        self.rob.push(commit)
        self.rs.push(issue)
        if static.is_store:
            # The address resolves once the base register is ready (AGU
            # cycle), typically well before the store's data arrives.
            base_ready = dispatch + 1
            if static.srcs:
                base_ready = max(
                    base_ready, self.regs.ready_cycle(static.srcs[0])
                )
            self._record_store(
                StoreRecord(
                    seq=seq,
                    pc=dyn.pc,
                    addr=dyn.addr,
                    addr_ready=min(issue, base_ready + 1),
                    data_ready=complete,
                    commit=commit,
                )
            )
            # The store writes the cache when it commits.
            stats.dcache_accesses += 1
            before_l2 = self.l2.accesses
            cache_latency = self.dcache.access(dyn.addr)
            if cache_latency > self.config.l1d_latency:
                stats.dcache_misses += 1
            stats.l2_accesses += self.l2.accesses - before_l2

        # ---- writeback / scoreboard ----------------------------------
        if static.dest is not None:
            self.regs.define(static.dest, complete, seq)
            stats.regfile_writes += 1
        for src in static.srcs:
            if issue - self.regs.ready_cycle(src) <= 2:
                stats.bypass_transfers += 1
            else:
                stats.regfile_reads += 1

        stats.instructions += 1
        self._ops_since_prune += 1
        if self._ops_since_prune >= self.PRUNE_INTERVAL:
            self._ops_since_prune = 0
            self._prune_slot_windows()
        return InstrTiming(seq, fetch, dispatch, issue, complete, commit,
                           mispredicted, violated)

    # ------------------------------------------------------------------
    # Primitives for the DynaSpAM framework
    # ------------------------------------------------------------------
    def drain(self) -> int:
        """Stall fetch until everything in flight has committed.

        Used when a mapping phase begins (paper Section 3.1, step 1).
        Returns the cycle at which the pipeline back end is empty.
        """
        empty = max(self.rob.drain_cycle(), self.fus.all_idle_by())
        stalled_from = max(self.next_fetch_cycle, self.fetch_barrier)
        if empty > stalled_from:
            self.stats.drain_cycles += empty - stalled_from
            self._credit_stall("drain", empty - stalled_from)
        self.fetch_barrier = max(self.fetch_barrier, empty)
        if self.bus is not None:
            self.bus.emit(
                "pipeline.drain",
                cycle=stalled_from,
                until=max(empty, stalled_from),
                stall=max(0, empty - stalled_from),
            )
        return max(empty, stalled_from)

    def stall_fetch_until(self, cycle: int, cause: str | None = None) -> None:
        """Hold fetch until ``cycle`` (mapping occupies the issue unit).

        ``cause`` names the accounting bucket the stall accrues against
        ("mapping", "squash_branch", "squash_memory"); ``None`` raises the
        barrier without charging anyone (legacy callers).
        """
        if cause is not None:
            front = max(self.next_fetch_cycle, self.fetch_barrier)
            self._credit_stall(cause, cycle - front)
        self.fetch_barrier = max(self.fetch_barrier, cycle)

    def note_phase(self, phase: str) -> None:
        """Record an execution-phase transition (host | mapping | offload).

        Pure observability: emits a ``pipeline.phase`` mark when tracing
        is enabled and the phase actually changed; a no-op otherwise.
        """
        if self.bus is None or phase == self._phase:
            return
        self._phase = phase
        self.bus.emit(
            "pipeline.phase",
            phase=phase,
            cycle=max(self.next_fetch_cycle, self.fetch_barrier),
        )

    def macro_dispatch(self) -> tuple[int, int]:
        """Dispatch a fat macro operation (one fabric trace invocation).

        Occupies one fetch slot and one ROB entry.  Returns (seq, dispatch
        cycle); the caller computes completion and calls ``macro_commit``.
        """
        seq = self.seq
        self.seq += 1
        counts = self._fetch_counts
        cycle = max(self.next_fetch_cycle, self.fetch_barrier)
        while counts.get(cycle, 0) >= self.config.fetch_width:
            cycle += 1
        counts[cycle] = counts.get(cycle, 0) + 1
        self.next_fetch_cycle = cycle
        dispatch = max(
            cycle + self.config.frontend_depth,
            self.rob.dispatch_ready_cycle(),
        )
        self.stats.rob_writes += 1
        return seq, dispatch

    def macro_commit(self, complete: int) -> int:
        """Commit a fat macro operation that finished at ``complete``."""
        commit = self._alloc_commit(complete, bucket="offload")
        self.rob.push(commit)
        return commit

    def live_in_ready(self, regs) -> int:
        """Latest readiness cycle over the trace's live-in registers."""
        return self.regs.max_ready(regs)

    def set_live_out(self, reg: str, cycle: int, seq: int) -> None:
        """Broadcast a fabric live-out into the host scoreboard."""
        self.regs.define(reg, cycle, seq)

    def finish(self) -> PipelineResult:
        """Finalize the run."""
        self.stats.cycles = self.last_commit_cycle
        self.stats.l2_misses = self.l2.misses
        return PipelineResult(
            stats=self.stats,
            cycles=self.last_commit_cycle,
            instructions=self.stats.instructions,
        )

    def run_trace(self, trace) -> PipelineResult:
        """Convenience: process a full dynamic trace on the host pipeline."""
        for dyn in trace:
            self.process(dyn)
        return self.finish()
