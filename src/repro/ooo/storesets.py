"""Store-Sets memory dependence prediction (Chrysos & Emer [9]).

The predictor learns which (load PC, store PC) pairs alias by merging their
PCs into a common *store set* when a memory-order violation occurs.  At
dispatch, a load whose PC maps to a store set must wait for the last
in-flight store of that set; stores in a set are serialized among
themselves.  DynaSpAM reuses the same unit for fabric-resident memory
operations (paper Section 3.2, "Intra- and Inter-Trace Memory Ordering").
"""

from __future__ import annotations


class StoreSetPredictor:
    """SSIT + LFST organization of the Store-Sets predictor."""

    def __init__(self, ssit_entries: int = 1024) -> None:
        self.ssit_entries = ssit_entries
        # Store Set Identifier Table: PC hash -> store set id.
        self._ssit: dict[int, int] = {}
        # Last Fetched Store Table: store set id -> seq of last store.
        self._lfst: dict[int, int] = {}
        self._next_set_id = 0
        self.violations_trained = 0
        self.load_waits = 0
        #: Bumped whenever the learned sets (SSIT) change, so callers that
        #: cache ``same_set``-derived predictions can validate with one
        #: integer comparison instead of re-querying per memory op.
        self.generation = 0

    def _slot(self, pc: int) -> int:
        return (pc >> 2) % self.ssit_entries

    def _set_of(self, pc: int) -> int | None:
        return self._ssit.get(self._slot(pc))

    # ------------------------------------------------------------------
    # Dispatch-time queries
    # ------------------------------------------------------------------
    def store_dispatched(self, pc: int, seq: int) -> int | None:
        """Record an in-flight store; return the seq of the store it must
        order behind (stores within one set are serialized), or None."""
        set_id = self._set_of(pc)
        if set_id is None:
            return None
        previous = self._lfst.get(set_id)
        self._lfst[set_id] = seq
        return previous

    def load_dispatched(self, pc: int) -> int | None:
        """Return the seq of the in-flight store this load should wait for,
        or None if the load is predicted independent."""
        set_id = self._set_of(pc)
        if set_id is None:
            return None
        waiting_on = self._lfst.get(set_id)
        if waiting_on is not None:
            self.load_waits += 1
        return waiting_on

    def store_retired(self, pc: int, seq: int) -> None:
        """Clear the LFST entry when the recorded store leaves the window."""
        set_id = self._set_of(pc)
        if set_id is not None and self._lfst.get(set_id) == seq:
            del self._lfst[set_id]

    # ------------------------------------------------------------------
    # Violation training
    # ------------------------------------------------------------------
    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """Merge the load and store into a common store set."""
        self.violations_trained += 1
        self.generation += 1
        load_slot = self._slot(load_pc)
        store_slot = self._slot(store_pc)
        load_set = self._ssit.get(load_slot)
        store_set = self._ssit.get(store_slot)
        if load_set is None and store_set is None:
            set_id = self._next_set_id
            self._next_set_id += 1
            self._ssit[load_slot] = set_id
            self._ssit[store_slot] = set_id
        elif load_set is None:
            self._ssit[load_slot] = store_set
        elif store_set is None:
            self._ssit[store_slot] = load_set
        else:
            # Both assigned: merge into the smaller id (declining-set rule).
            winner = min(load_set, store_set)
            self._ssit[load_slot] = winner
            self._ssit[store_slot] = winner

    def same_set(self, load_pc: int, store_pc: int) -> bool:
        """True if both PCs currently map to the same store set.

        DynaSpAM consults this for memory operations resident on the fabric
        (the configuration keeps only PC, type, and relative order).
        """
        load_set = self._set_of(load_pc)
        return load_set is not None and load_set == self._set_of(store_pc)

    def clear_inflight(self) -> None:
        """Forget in-flight stores (pipeline squash); learned sets persist."""
        self._lfst.clear()
