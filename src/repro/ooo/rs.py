"""Reservation-station capacity model and the issue-select priority encoder.

``ReservationStationModel`` is the capacity constraint used by the fast
timing pass.  ``PriorityEncoder`` is the select logic proper: it picks, for
one functional unit, the highest-priority ready instruction, breaking ties
with the host priority rule (oldest first).  DynaSpAM's resource-aware
mapper reuses this exact encoder — the paper's point is that mapping rides
on the host's existing select logic, with only the priority inputs changed
(Algorithm 1, lines 10-12).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")

#: The host priority rule: oldest instruction first (smallest seq).
def oldest_first(item) -> int:
    return item.seq


class PriorityEncoder:
    """Grant logic choosing among ready instructions for one unit."""

    def __init__(self, host_priority_rule: Callable = oldest_first) -> None:
        self.host_priority_rule = host_priority_rule

    def select(
        self,
        candidates: Sequence[T],
        score: Callable[[T], int] | None = None,
    ) -> T | None:
        """Pick the candidate with the highest score; ties go to the host
        priority rule.  Candidates scoring below zero are infeasible and
        never selected.  With no ``score``, this is the plain host select.
        """
        best: T | None = None
        best_key: tuple[int, int] | None = None
        for item in candidates:
            item_score = score(item) if score is not None else 0
            if item_score < 0:
                continue
            # Higher score wins; then lower host-priority key (older) wins.
            key = (-item_score, self.host_priority_rule(item))
            if best_key is None or key < best_key:
                best = item
                best_key = key
        return best


class ReservationStationModel:
    """Window-capacity constraint for the fast timing pass.

    Approximates "dispatch stalls when the RS is full" by requiring the
    instruction ``entries`` places back to have issued — exact for FIFO
    drain, slightly conservative for out-of-order drain.
    """

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("RS needs at least one entry")
        self.entries = entries
        self._issue_ring: list[int] = [0] * entries
        self._head = 0
        self._count = 0

    def dispatch_ready_cycle(self) -> int:
        if self._count < self.entries:
            return 0
        return self._issue_ring[self._head] + 1

    def push(self, issue_cycle: int) -> None:
        self._issue_ring[self._head] = issue_cycle
        self._head = (self._head + 1) % self.entries
        if self._count < self.entries:
            self._count += 1
