"""Compiled hot path for the OOO timing model.

``FastOOOPipeline`` is a drop-in replacement for ``OOOPipeline`` that
produces *bit-identical* timing, statistics, and event sequences while
running several times faster.  It is the same model, re-expressed for
the interpreter:

* a per-``Instruction`` **decode cache**: opclass-derived facts (path
  kind, latency, functional-unit pool dict/size/occupancy span, the
  stats-counter slot, the fetch block) are resolved once per static
  instruction instead of per dynamic instance — eliminating the
  ``_EXEC_COUNTER`` dict lookup, ``getattr``/``setattr`` pair, enum
  hashing, and ``latency_of`` call on every instruction;
* ``process()`` is one flat, specialized function: branch/jump/load/
  store/ALU paths branch on a precomputed small-int kind, slot
  allocation and the ring-buffer capacity models are inlined, and
  monotone cursors live in locals for the duration of the call;
* **batched statistics**: hot counters accumulate in a plain int list
  indexed by module constants and flush additively into
  ``PipelineStats`` in ``finish()`` (cold counters — fabric, mapping,
  drain, offload buckets — are still written directly by the framework,
  which is why the flush adds rather than assigns);
* stall credits keep a running total so the common commit-gap case
  (no credits pending) skips the per-cause scan.

Invariants the fast path relies on (and the base model now guarantees):
the slot-count and FU-occupancy dicts are pruned *in place* (cached
references stay valid), the store window is a bounded deque, and the
``macro_*`` primitives used by the DynaSpAM framework mutate the same
shared structures, so host and offload execution interleave freely.

Bit-identity against the interpreted model is enforced by
``tests/engine/test_fastpath_identity.py`` and CI's fastpath-identity
job; ``repro perfbench`` measures the speedup.
"""

from __future__ import annotations

from repro.isa.instructions import DynamicInstruction, Instruction
from repro.isa.opcodes import FU_PIPELINED, OpClass
from repro.ooo.config import CoreConfig
from repro.ooo.fus import POOL_OF
from repro.ooo.lsq import StoreRecord
from repro.ooo.pipeline import InstrTiming, OOOPipeline, PipelineResult

#: PipelineStats fields mirrored by the batched-counter list, in slot
#: order.  Only counters touched by the per-instruction hot path belong
#: here; everything else keeps writing ``stats`` directly.
_SB_FIELDS: tuple[str, ...] = (
    "fetches", "wrongpath_fetches", "icache_accesses", "icache_misses",
    "predictor_lookups", "branch_mispredicts", "btb_misses",
    "renames", "dispatches", "wakeups", "selections",
    "int_alu_ops", "int_mul_ops", "int_div_ops",
    "fp_alu_ops", "fp_mul_ops", "fp_div_ops",
    "regfile_reads", "regfile_writes", "bypass_transfers",
    "loads", "stores", "dcache_accesses", "dcache_misses", "l2_accesses",
    "store_forwards", "memory_violations",
    "commits", "rob_writes", "instructions", "cycles_host",
)

(F_FETCHES, F_WRONGPATH, F_IC_ACC, F_IC_MISS,
 F_PRED, F_MISP, F_BTB,
 F_RENAMES, F_DISPATCHES, F_WAKEUPS, F_SELECTIONS,
 F_INT_ALU, F_INT_MUL, F_INT_DIV,
 F_FP_ALU, F_FP_MUL, F_FP_DIV,
 F_RF_READS, F_RF_WRITES, F_BYPASS,
 F_LOADS, F_STORES, F_DC_ACC, F_DC_MISS, F_L2_ACC,
 F_FORWARDS, F_VIOLATIONS,
 F_COMMITS, F_ROB_WRITES, F_INSTRUCTIONS, F_CYCLES_HOST,
 ) = range(len(_SB_FIELDS))

#: Stats slot charged for one execution of each opclass — the decode-time
#: resolution of ``pipeline._EXEC_COUNTER`` (branches, jumps, nops, and
#: memory address generation all execute on the integer ALUs).
_EXEC_SLOT: dict[OpClass, int] = {
    OpClass.INT_ALU: F_INT_ALU,
    OpClass.INT_MUL: F_INT_MUL,
    OpClass.INT_DIV: F_INT_DIV,
    OpClass.FP_ALU: F_FP_ALU,
    OpClass.FP_MUL: F_FP_MUL,
    OpClass.FP_DIV: F_FP_DIV,
    OpClass.BRANCH: F_INT_ALU,
    OpClass.JUMP: F_INT_ALU,
    OpClass.NOP: F_INT_ALU,
    OpClass.LOAD: F_INT_ALU,
    OpClass.STORE: F_INT_ALU,
}

#: Slots incremented exactly once per instruction, no matter its kind.
#: ``process`` counts instructions in one scalar and ``finish`` fans the
#: total out to these slots, saving six list increments per instruction.
_UNIFORM_SLOTS: tuple[int, ...] = (
    F_FETCHES, F_RENAMES, F_DISPATCHES, F_SELECTIONS,
    F_COMMITS, F_ROB_WRITES, F_INSTRUCTIONS,
)

# Specialized-path discriminator, resolved at decode time.
_KIND_ALU = 0
_KIND_BRANCH = 1
_KIND_JUMP = 2
_KIND_LOAD = 3
_KIND_STORE = 4


class FastOOOPipeline(OOOPipeline):
    """Decode-cached, inlined implementation of the timing model.

    Every structural model (ROB/RS/LQ/SQ rings, scoreboard dicts, FU
    occupancy dicts, slot windows) is the *same object* the base class
    owns; only the per-instruction control flow is re-expressed.  The
    framework's ``macro_dispatch``/``macro_commit``/``drain`` therefore
    work unchanged against a fast pipeline.
    """

    def __init__(
        self,
        config: CoreConfig | None = None,
        conservative_memory: bool = False,
        bus=None,
    ) -> None:
        super().__init__(config, conservative_memory, bus=bus)
        cfg = self.config
        self._fetch_width = cfg.fetch_width
        self._issue_width = cfg.issue_width
        self._commit_width = cfg.commit_width
        self._frontend_depth = cfg.frontend_depth
        self._block_bytes = cfg.block_bytes
        self._l1i_latency = cfg.l1i_latency
        self._l1d_latency = cfg.l1d_latency
        self._btb_miss_penalty = cfg.btb_miss_penalty
        self._mispredict_redirect = cfg.mispredict_redirect
        self._store_forward_latency = cfg.store_forward_latency
        self._violation_squash_penalty = cfg.violation_squash_penalty
        self._rob_entries = cfg.rob_entries
        self._storesets_enabled = cfg.storesets_enabled
        self._store_fifo_cap = cfg.store_queue * 2
        # Bound methods and interior structures of the shared models.
        # All of these are identity-stable for the life of the pipeline
        # (the base model prunes its dicts in place, never rebuilds).
        self._icache_access = self.icache.access
        self._dcache_access = self.dcache.access
        self._bpred_update = self.bpred.predict_and_update
        self._btb_lookup = self.bpred.btb_lookup
        self._ss_load_dispatched = self.storesets.load_dispatched
        self._ss_store_dispatched = self.storesets.store_dispatched
        self._ss_train = self.storesets.train_violation
        self._regs_ready = self.regs._ready
        self._regs_producer = self.regs._producer
        self._sq_window = self.sq._window
        self._sq_by_addr = self.sq._by_addr
        #: id(static) -> decode record.  The record pins the static
        #: instruction (slot 0) so a recycled id can never alias a dead
        #: object's cache entry.
        self._decode: dict[int, tuple] = {}
        self._sb: list[int] = [0] * len(_SB_FIELDS)
        #: Instructions processed since the last ``finish`` — fanned out
        #: to the ``_UNIFORM_SLOTS`` counters at flush time.
        self._uniform_count = 0
        #: Sum of ``_stall_credit`` values, maintained by the overridden
        #: credit hooks so the commit hot path can skip the per-cause
        #: scan whenever no credit is pending (the common case).
        self._credit_total = 0

    # ------------------------------------------------------------------
    # Decode cache
    # ------------------------------------------------------------------
    def _decode_static(self, static: Instruction, key: int) -> tuple:
        opclass = static.opclass
        if static.is_branch:
            kind = _KIND_BRANCH
        elif opclass is OpClass.JUMP:
            kind = _KIND_JUMP
        elif static.is_load:
            kind = _KIND_LOAD
        elif static.is_store:
            kind = _KIND_STORE
        else:
            kind = _KIND_ALU
        latency = static.latency
        pool = POOL_OF[opclass]
        srcs = static.srcs
        rec = (
            static,                          # 0: pin against id reuse
            kind,                            # 1
            latency,                         # 2
            srcs,                            # 3
            len(srcs),                       # 4
            static.dest,                     # 5
            _EXEC_SLOT[opclass],             # 6
            self.fus._busy[pool],            # 7: pool occupancy dict
            self.fus._sizes[pool],           # 8
            1 if FU_PIPELINED[opclass] else (latency if latency > 1 else 1),  # 9
            static.pc // self._block_bytes,  # 10: fetch block
        )
        self._decode[key] = rec
        return rec

    # ------------------------------------------------------------------
    # Stall-credit hooks (keep _credit_total coherent with the dict;
    # also used by the base-class drain/stall_fetch_until/macro paths)
    # ------------------------------------------------------------------
    def _credit_stall(self, cause: str, cycles: int) -> None:
        if cycles > 0:
            self._stall_credit[cause] += cycles
            self._credit_total += cycles

    def _charge_commit_gap(self, gap: int, bucket: str | None) -> None:
        stats = self.stats
        if bucket == "offload":
            stats.cycles_offload += gap
            return
        if self._credit_total:
            credit = self._stall_credit
            for cause, field_name in self._credit_fields.items():
                if not gap:
                    break
                available = credit[cause]
                if available:
                    take = available if available < gap else gap
                    credit[cause] = available - take
                    self._credit_total -= take
                    setattr(stats, field_name,
                            getattr(stats, field_name) + take)
                    gap -= take
        stats.cycles_host += gap

    # ------------------------------------------------------------------
    # The compiled per-instruction path
    # ------------------------------------------------------------------
    def process(self, dyn: DynamicInstruction) -> InstrTiming:
        """Assign cycles to one dynamic instruction (fast engine)."""
        static = dyn.static
        key = id(static)
        rec = self._decode.get(key)
        if rec is None or rec[0] is not static:
            rec = self._decode_static(static, key)
        kind = rec[1]
        latency = rec[2]
        srcs = rec[3]
        nsrcs = rec[4]

        sb = self._sb
        seq = self.seq
        self.seq = seq + 1
        pc = dyn.pc
        next_fetch = self.next_fetch_cycle
        barrier = self.fetch_barrier

        # ---- fetch & branch prediction -------------------------------
        fetch_counts = self._fetch_counts
        fetch_width = self._fetch_width
        cycle = next_fetch if next_fetch >= barrier else barrier
        count = fetch_counts.get(cycle, 0)
        while count >= fetch_width:
            cycle += 1
            count = fetch_counts.get(cycle, 0)
        if rec[10] != self._last_fetch_block:
            sb[F_IC_ACC] += 1
            lat_i = self._icache_access(pc)
            extra = lat_i - self._l1i_latency
            if extra > 0:
                sb[F_IC_MISS] += 1
                cycle += extra
                count = fetch_counts.get(cycle, 0)
                self._stall_credit["frontend"] += extra
                self._credit_total += extra
            self._last_fetch_block = rec[10]
        fetch_counts[cycle] = count + 1
        next_fetch = cycle
        fetch = cycle

        mispredicted = False
        if kind == _KIND_BRANCH:
            sb[F_PRED] += 1
            taken = bool(dyn.taken)
            prediction = self._bpred_update(pc, taken)
            if prediction != taken:
                mispredicted = True
                sb[F_MISP] += 1
            if prediction:
                if not self._btb_lookup(pc):
                    sb[F_BTB] += 1
                    penalty = self._btb_miss_penalty
                    next_fetch = fetch + 1 + penalty
                    if penalty > 0:
                        self._stall_credit["frontend"] += penalty
                        self._credit_total += penalty
                else:
                    # Correctly predicted taken branch ends the fetch group.
                    next_fetch = fetch + 1
        elif kind == _KIND_JUMP:
            if not self._btb_lookup(pc):
                sb[F_BTB] += 1
                penalty = self._btb_miss_penalty
                next_fetch = fetch + 1 + penalty
                if penalty > 0:
                    self._stall_credit["frontend"] += penalty
                    self._credit_total += penalty
            else:
                next_fetch = fetch + 1

        # ---- rename / dispatch (in order) ----------------------------
        rob = self.rob
        rs = self.rs
        dispatch = fetch + self._frontend_depth
        other = self.prev_dispatch_cycle
        if other > dispatch:
            dispatch = other
        if rob._count >= rob.entries:
            other = rob._commit_ring[rob._head] + 1
            if other > dispatch:
                dispatch = other
        if rs._count >= rs.entries:
            other = rs._issue_ring[rs._head] + 1
            if other > dispatch:
                dispatch = other
        if kind == _KIND_LOAD:
            lq = self.lq
            if lq._count >= lq.entries:
                other = lq._complete_ring[lq._head] + 1
                if other > dispatch:
                    dispatch = other
        elif kind == _KIND_STORE:
            sq = self.sq
            if sq._count >= sq.entries:
                other = sq._commit_ring[sq._head] + 1
                if other > dispatch:
                    dispatch = other
        self.prev_dispatch_cycle = dispatch

        # ---- operand readiness ---------------------------------------
        regs_ready = self._regs_ready
        ready = dispatch + 1
        for src in srcs:
            other = regs_ready.get(src, 0)
            if other > ready:
                ready = other
        sb[F_WAKEUPS] += nsrcs

        violated = False
        if kind == _KIND_LOAD:
            sb[F_LOADS] += 1
            if self.conservative_memory:
                older = self.sq.youngest_older(seq)
                if older is not None and older.data_ready > ready:
                    ready = older.data_ready
            elif self._storesets_enabled:
                wait_seq = self._ss_load_dispatched(pc)
                if wait_seq is not None:
                    predicted = self._store_by_seq.get(wait_seq)
                    if predicted is not None and predicted.data_ready > ready:
                        ready = predicted.data_ready
        elif kind == _KIND_STORE:
            sb[F_STORES] += 1
            if self._storesets_enabled and not self.conservative_memory:
                prev_seq = self._ss_store_dispatched(pc, seq)
                if prev_seq is not None:
                    prev = self._store_by_seq.get(prev_seq)
                    if prev is not None and prev.data_ready > ready:
                        ready = prev.data_ready

        # ---- issue / execute -----------------------------------------
        # Inlined _alloc_issue: find the earliest cycle with both a free
        # unit for the op's full occupancy span and a free issue slot.
        busy = rec[7]
        pool_size = rec[8]
        span = rec[9]
        issue_counts = self._issue_counts
        issue_width = self._issue_width
        cycle = ready
        if span == 1:
            while True:
                occupancy = busy.get(cycle, 0)
                if occupancy < pool_size:
                    slots = issue_counts.get(cycle, 0)
                    if slots < issue_width:
                        break
                cycle += 1
            busy[cycle] = occupancy + 1
            end = cycle + 1
        else:
            while True:
                free = True
                for k in range(span):
                    if busy.get(cycle + k, 0) >= pool_size:
                        free = False
                        break
                if free:
                    slots = issue_counts.get(cycle, 0)
                    if slots < issue_width:
                        break
                cycle += 1
            for k in range(span):
                claim = cycle + k
                busy[claim] = busy.get(claim, 0) + 1
            end = cycle + span
        fus = self.fus
        if end > fus._max_claimed:
            fus._max_claimed = end
        issue_counts[cycle] = slots + 1
        issue = cycle
        sb[rec[6]] += 1

        if kind == _KIND_LOAD:
            addr = dyn.addr
            # The by-addr index holds the youngest windowed store per
            # address; host seqs are monotone, so the seq guard only
            # falls back on the (never-hit) non-monotone probe case.
            alias = self._sq_by_addr.get(addr)
            if alias is not None and alias.seq >= seq:
                alias = None
                for record in reversed(self._sq_window):
                    if record.seq < seq and record.addr == addr:
                        alias = record
                        break
            if alias is not None and issue < alias.addr_ready:
                # The load issued before the aliasing store executed: a
                # memory-order violation, detected when the store runs.
                violated = True
                sb[F_VIOLATIONS] += 1
                if self._storesets_enabled:
                    self._ss_train(pc, alias.pc)
                complete = alias.data_ready + self._store_forward_latency
                front = next_fetch if next_fetch >= barrier else barrier
                redirect = alias.addr_ready + self._violation_squash_penalty
                if redirect > front:
                    self._stall_credit["squash_memory"] += redirect - front
                    self._credit_total += redirect - front
                if redirect > barrier:
                    barrier = redirect
            elif alias is not None:
                # Store-to-load forwarding from the store queue.
                sb[F_FORWARDS] += 1
                complete = issue + self._store_forward_latency
                other = alias.data_ready + self._store_forward_latency
                if other > complete:
                    complete = other
            else:
                sb[F_DC_ACC] += 1
                l2 = self.l2
                before_l2 = l2.hits + l2.misses
                lat_d = self._dcache_access(addr)
                if lat_d > self._l1d_latency:
                    sb[F_DC_MISS] += 1
                sb[F_L2_ACC] += l2.hits + l2.misses - before_l2
                complete = issue + 1 + lat_d
            lq = self.lq
            lq._complete_ring[lq._head] = complete
            lq._head = (lq._head + 1) % lq.entries
            if lq._count < lq.entries:
                lq._count += 1
        elif kind == _KIND_STORE:
            complete = issue + 1
        else:
            complete = issue + latency

        # ---- misprediction redirect ----------------------------------
        if mispredicted:
            front = next_fetch if next_fetch >= barrier else barrier
            redirect = complete + self._mispredict_redirect
            if redirect > front:
                self._stall_credit["squash_branch"] += redirect - front
                self._credit_total += redirect - front
            if redirect > barrier:
                barrier = redirect
            # Wrong-path work is not simulated, but its front-end energy
            # is real: half-rate fetching until the branch resolves,
            # capped at the ROB window.
            wrong = (complete - fetch) * fetch_width // 2
            if wrong > self._rob_entries:
                wrong = self._rob_entries
            if wrong > 0:
                sb[F_WRONGPATH] += wrong

        # ---- commit ----------------------------------------------------
        # Inlined _alloc_commit (bucket=None): when no stall credit is
        # pending the whole gap is healthy host time.
        commit_counts = self._commit_counts
        commit_width = self._commit_width
        prev_commit = self.prev_commit_cycle
        cycle = complete + 1
        if prev_commit > cycle:
            cycle = prev_commit
        gap = cycle - prev_commit
        if gap:
            if self._credit_total:
                self._charge_commit_gap(gap, None)
            else:
                sb[F_CYCLES_HOST] += gap
        count = commit_counts.get(cycle, 0)
        while count >= commit_width:
            cycle += 1
            # Commit-width contention is healthy throughput, not a stall.
            sb[F_CYCLES_HOST] += 1
            count = commit_counts.get(cycle, 0)
        commit_counts[cycle] = count + 1
        self.prev_commit_cycle = cycle
        if cycle > self.last_commit_cycle:
            self.last_commit_cycle = cycle
        commit = cycle

        rob._commit_ring[rob._head] = commit
        rob._head = (rob._head + 1) % rob.entries
        if rob._count < rob.entries:
            rob._count += 1
        if commit > rob.last_commit_cycle:
            rob.last_commit_cycle = commit
        rs._issue_ring[rs._head] = issue
        rs._head = (rs._head + 1) % rs.entries
        if rs._count < rs.entries:
            rs._count += 1

        if kind == _KIND_STORE:
            # The address resolves once the base register is ready (AGU
            # cycle), typically well before the store's data arrives.
            base_ready = dispatch + 1
            if nsrcs:
                other = regs_ready.get(srcs[0], 0)
                if other > base_ready:
                    base_ready = other
            addr_ready = base_ready + 1
            if issue < addr_ready:
                addr_ready = issue
            addr = dyn.addr
            record = StoreRecord(
                seq=seq,
                pc=pc,
                addr=addr,
                addr_ready=addr_ready,
                data_ready=complete,
                commit=commit,
            )
            sq = self.sq
            window = self._sq_window
            by_addr = self._sq_by_addr
            if len(window) == sq.entries:
                evicted = window[0]
                if by_addr.get(evicted.addr) is evicted:
                    del by_addr[evicted.addr]
            window.append(record)
            by_addr[addr] = record
            sq._commit_ring[sq._head] = commit
            sq._head = (sq._head + 1) % sq.entries
            if sq._count < sq.entries:
                sq._count += 1
            store_by_seq = self._store_by_seq
            store_by_seq[seq] = record
            fifo = self._store_seq_fifo
            fifo.append(seq)
            if len(fifo) > self._store_fifo_cap:
                store_by_seq.pop(fifo.popleft(), None)
            # The store writes the cache when it commits.
            sb[F_DC_ACC] += 1
            l2 = self.l2
            before_l2 = l2.hits + l2.misses
            lat_d = self._dcache_access(addr)
            if lat_d > self._l1d_latency:
                sb[F_DC_MISS] += 1
            sb[F_L2_ACC] += l2.hits + l2.misses - before_l2

        # ---- writeback / scoreboard ----------------------------------
        dest = rec[5]
        if dest is not None:
            if dest != "r0":
                regs = self.regs
                regs.renames += 1
                regs_ready[dest] = complete
                self._regs_producer[dest] = seq
            sb[F_RF_WRITES] += 1
        # Readiness is re-read *after* the define so a dest that is also
        # a source sees its new value — matching the interpreted model.
        for src in srcs:
            if issue - regs_ready.get(src, 0) <= 2:
                sb[F_BYPASS] += 1
            else:
                sb[F_RF_READS] += 1

        self._uniform_count += 1
        self.next_fetch_cycle = next_fetch
        self.fetch_barrier = barrier
        ops = self._ops_since_prune + 1
        if ops >= self.PRUNE_INTERVAL:
            self._ops_since_prune = 0
            self._prune_slot_windows()
        else:
            self._ops_since_prune = ops
        return InstrTiming(seq, fetch, dispatch, issue, complete, commit,
                           mispredicted, violated)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finish(self) -> PipelineResult:
        """Flush the batched counters, then finalize as usual."""
        sb = self._sb
        stats = self.stats
        n = self._uniform_count
        if n:
            self._uniform_count = 0
            for index in _UNIFORM_SLOTS:
                sb[index] += n
        for index, name in enumerate(_SB_FIELDS):
            value = sb[index]
            if value:
                setattr(stats, name, getattr(stats, name) + value)
                sb[index] = 0
        return super().finish()

    def run_trace(self, trace) -> PipelineResult:
        process = self.process
        for dyn in trace:
            process(dyn)
        return self.finish()


def make_pipeline(
    config: CoreConfig | None = None,
    conservative_memory: bool = False,
    bus=None,
) -> OOOPipeline:
    """Construct a pipeline for the currently selected engine."""
    from repro.engine import fastpath_enabled

    cls = FastOOOPipeline if fastpath_enabled() else OOOPipeline
    return cls(config, conservative_memory, bus=bus)
